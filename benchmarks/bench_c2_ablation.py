"""Experiment C2 -- ablations of the design choices called out in DESIGN.md.

Three knobs of the pipeline are ablated on a fixed instance:

* the rounding multiplier ``c`` (cost vs constraint-satisfaction trade-off,
  Section 4's multicriterion discussion);
* the constraint-(4) cutting plane (redundant in the IP, load-bearing in the
  fanout analysis);
* the degenerate-box handling in the GAP stage (our documented deviation from
  the literal paper rule, which would leave low-mass demands unserved).
"""

from __future__ import annotations

import numpy as np
from conftest import record_experiment

from repro.analysis import format_table
from repro.core.algorithm import DesignParameters, design_overlay
from repro.core.formulation import ExtensionOptions
from repro.core.rounding import RoundingParameters
from repro.workloads import RandomInstanceConfig, random_problem

SEEDS = [0, 1, 2]


def _problem():
    return random_problem(
        RandomInstanceConfig(num_streams=2, num_reflectors=10, num_sinks=24), rng=5
    )


def _run_variant(problem, label: str, **kwargs) -> dict:
    c = kwargs.pop("c", 8.0)
    drop_cut = kwargs.pop("drop_cutting_plane", False)
    keep_box = kwargs.pop("keep_degenerate_box", True)
    ratios, min_weights, unserved, fanouts = [], [], [], []
    for seed in SEEDS:
        params = DesignParameters(
            rounding=RoundingParameters(c=c, seed=seed),
            extensions=ExtensionOptions(drop_cutting_plane=drop_cut),
            keep_degenerate_box=keep_box,
            retry_rounding=False,
        )
        report = design_overlay(problem, params)
        solution = report.solution
        ratios.append(report.cost_ratio)
        min_weights.append(
            min(solution.weight_satisfaction(d) for d in problem.demands)
        )
        unserved.append(len(solution.unserved_demands()))
        fanouts.append(solution.max_fanout_factor())
    return {
        "variant": label,
        "mean_cost_ratio": float(np.mean(ratios)),
        "min_weight_fraction": float(np.min(min_weights)),
        "mean_unserved_demands": float(np.mean(unserved)),
        "max_fanout_factor": float(np.max(fanouts)),
    }


def test_c2_ablations(benchmark):
    problem = _problem()
    rows = [
        benchmark.pedantic(
            _run_variant, args=(problem, "baseline (c=8)"), kwargs={"c": 8.0}, rounds=1, iterations=1
        )
    ]
    rows.append(_run_variant(problem, "c=2 (cheap, weak guarantee)", c=2.0))
    rows.append(_run_variant(problem, "c=64 (paper constants)", c=64.0))
    rows.append(_run_variant(problem, "no cutting plane (4)", drop_cutting_plane=True))
    rows.append(
        _run_variant(problem, "literal paper box rule", keep_degenerate_box=False)
    )

    by_label = {row["variant"]: row for row in rows}
    # Larger c buys coverage at higher cost.
    assert (
        by_label["c=64 (paper constants)"]["mean_cost_ratio"]
        >= by_label["c=2 (cheap, weak guarantee)"]["mean_cost_ratio"] - 1e-9
    )
    assert (
        by_label["c=64 (paper constants)"]["min_weight_fraction"]
        >= by_label["c=2 (cheap, weak guarantee)"]["min_weight_fraction"] - 1e-9
    )
    # The degenerate-box handling only helps (fewer or equal unserved demands).
    assert (
        by_label["baseline (c=8)"]["mean_unserved_demands"]
        <= by_label["literal paper box rule"]["mean_unserved_demands"] + 1e-9
    )
    record_experiment(
        "C2_ablation",
        format_table(rows, title="C2: ablations of multiplier, cutting plane and box rule"),
    )
