"""Experiment C2 -- ablations of the design choices called out in DESIGN.md.

Scenario ``c2`` ablates three knobs of the pipeline on a fixed instance: the
rounding multiplier ``c`` (cost vs constraint-satisfaction trade-off), the
constraint-(4) cutting plane, and the degenerate-box handling in the GAP stage
(our documented deviation from the literal paper rule).
"""

from __future__ import annotations

from conftest import run_and_record


def test_c2_ablations():
    record = run_and_record("c2")
    assert len(record.rows) == 5
