"""Experiment T5 (assembly) -- sparse vs expression-tree LP parity and speedup.

Scenario ``t5_sparse`` measures the vectorized sparse LP assembly against the
expression-tree compatibility path on a large Akamai-like instance
(``REPRO_T5_SINKS`` sinks; 500 by default, 40 under ``REPRO_BENCH_SMOKE``):
both must reach the same optimal objective, and the sparse path must build the
matrices at least 5x faster at >= 200 sinks.
"""

from __future__ import annotations

from conftest import run_and_record


def test_t5_sparse_vs_expr_assembly():
    record = run_and_record("t5_sparse")
    assert record.metrics["objective_abs_diff"] <= 1e-9
