"""Experiment R3 -- streaming million-demand reliability audit.

Scenario ``r3`` designs an internet-scale instance, then audits it with the
memory-bounded streaming engine along a trial ladder, asserting the memory
contract (peak working set flat in the trial count and under the configured
budget), the bit-identity of a single-tile run against the batched engine,
and a diurnal trace replay producing per-window loss and rebuffering
metrics.  Smoke runs 50k sinks; the full (nightly) leg runs 1M sinks x 1k
trials.
"""

from __future__ import annotations

from conftest import run_and_record


def test_r3_streaming_audit():
    record = run_and_record("r3")
    assert record.rows, "r3 produced no ladder rungs"
    budgets = {row["rss_budget"] for row in record.rows}
    assert all(row["peak_rss_bytes"] <= max(budgets) for row in record.rows)
    assert all(row["demands"] >= row["sinks"] for row in record.rows)
