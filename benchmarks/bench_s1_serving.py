"""Experiment S1 -- design-service latency under a mixed serving workload.

Scenario ``s1`` drives the async :class:`repro.serve.DesignService` through
a mixed workload on internet-scale instances: three fresh-digest requests
(each pays the full ``sharded:spaa03`` pipeline), three repeat rounds over
the same digests (answered from the content-addressed result cache,
bit-identical modulo timings/cache provenance), one in-flight dedup burst
(two concurrent submissions of one digest collapse to one compute), and a
5-event churn stream through a single long-lived
:class:`repro.serve.DesignSession` raced against five independent
``design_incremental`` calls that each pay the JSON round-trip, problem
diff and fresh partition a standalone CLI invocation pays.  At full size
(10k sinks) the wall-clock gates require repeat-digest requests >= 10x
faster than fresh ones and the session to beat the independent chain.
``REPRO_BENCH_SMOKE=1`` shrinks the instances to CI size.
"""

from __future__ import annotations

from conftest import run_and_record


def test_s1_serving_latency_dedup_and_session_reuse():
    record = run_and_record("s1")
    for row in record.rows:
        assert row["repeat_payload_identical"] == 1
        assert row["session_matches_independent"] == 1
        assert row["session_unserved"] == 0
        assert row["deduplicated"] >= 1
        assert row["plan_reuse_events"] >= 1
