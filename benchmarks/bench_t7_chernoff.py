"""Experiment T7 -- Section 4 / Appendix A: the Hoeffding--Chernoff bound.

The rounding analysis rests on the tail bounds
``Pr[S <= (1-d)mu] <= exp(-d^2 mu / 2)`` and
``Pr[S >= (1+d)mu] <= exp(-d^2 mu / 3)`` for sums of independent [0,1]
variables.  Scenario ``t7`` measures empirical tail frequencies for Bernoulli
and uniform summands and confirms the analytic expressions upper-bound them.
"""

from __future__ import annotations

from conftest import run_and_record


def test_t7_chernoff_bounds_hold_empirically():
    record = run_and_record("t7")
    assert len(record.rows) == 6
