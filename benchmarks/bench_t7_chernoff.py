"""Experiment T7 -- Section 4 / Appendix A: the Hoeffding--Chernoff bound.

The rounding analysis rests on the tail bounds
``Pr[S <= (1-d)mu] <= exp(-d^2 mu / 2)`` and
``Pr[S >= (1+d)mu] <= exp(-d^2 mu / 3)`` for sums of independent [0,1]
variables.  This benchmark measures empirical tail frequencies for Bernoulli
and uniform summands and confirms the analytic expressions upper-bound them,
i.e. that the inequality the proofs rely on actually holds on the kind of
variables the rounding produces.
"""

from __future__ import annotations

import numpy as np
from conftest import record_experiment

from repro.analysis import format_table
from repro.core.concentration import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    empirical_tail_frequency,
)

TRIALS = 20_000


def _measure(kind: str, num_vars: int, delta: float, rng: np.random.Generator) -> dict:
    if kind == "bernoulli(0.3)":
        samples = rng.binomial(num_vars, 0.3, size=TRIALS).astype(float)
        mu = 0.3 * num_vars
    elif kind == "uniform[0,1]":
        samples = rng.random((TRIALS, num_vars)).sum(axis=1)
        mu = 0.5 * num_vars
    else:  # scaled bernoulli, mimicking the 1/(c log n) rounding increments
        scale = 0.2
        samples = scale * rng.binomial(num_vars, 0.4, size=TRIALS).astype(float)
        mu = scale * 0.4 * num_vars
    lower_emp = empirical_tail_frequency(samples, mu, delta, "lower")
    upper_emp = empirical_tail_frequency(samples, mu, delta, "upper")
    return {
        "summands": kind,
        "n_vars": num_vars,
        "delta": delta,
        "empirical_lower_tail": lower_emp,
        "bound_lower_tail": chernoff_lower_tail(mu, delta),
        "empirical_upper_tail": upper_emp,
        "bound_upper_tail": chernoff_upper_tail(mu, delta),
    }


def test_t7_chernoff_bounds_hold_empirically(benchmark):
    rng = np.random.default_rng(0)
    rows = [
        benchmark.pedantic(
            _measure, args=("bernoulli(0.3)", 60, 0.25, rng), rounds=1, iterations=1
        )
    ]
    for kind in ("bernoulli(0.3)", "uniform[0,1]", "scaled-bernoulli"):
        for delta in (0.25, 0.5):
            if kind == "bernoulli(0.3)" and delta == 0.25:
                continue
            rows.append(_measure(kind, 60, delta, rng))

    for row in rows:
        assert row["empirical_lower_tail"] <= row["bound_lower_tail"] + 0.01
        assert row["empirical_upper_tail"] <= row["bound_upper_tail"] + 0.01
    record_experiment(
        "T7_chernoff",
        format_table(
            rows,
            title="Appendix A reproduction: empirical tails vs Hoeffding-Chernoff bounds",
        ),
    )
