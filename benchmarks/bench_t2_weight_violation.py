"""Experiment T2 -- Lemma 4.3: weight constraints survive rounding whp.

With the paper's constants (delta = 1/4, c = 64) every weight constraint keeps
at least a (1 - delta) fraction of its requirement with probability >= 1 - 1/n.
Scenario ``t2`` performs many independent rounding draws per multiplier and
reports the worst per-demand weight fraction against the analytic union bound.
"""

from __future__ import annotations

from conftest import run_and_record


def test_t2_weight_constraint_violations():
    record = run_and_record("t2")
    paper_row = max(record.rows, key=lambda row: row["c"])
    assert paper_row["fraction_of_draws_violating"] <= paper_row["paper_union_bound"] + 0.05
