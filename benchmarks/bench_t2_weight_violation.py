"""Experiment T2 -- Lemma 4.3: weight constraints survive rounding whp.

With the paper's constants (delta = 1/4, c = 64, i.e. delta^2 c = 4) every
weight constraint keeps at least a (1 - delta) fraction of its requirement
with probability at least 1 - 1/n.  This benchmark performs many independent
rounding draws and reports the distribution of the worst per-demand weight
fraction, alongside the analytic bound on the violation probability.
"""

from __future__ import annotations

import numpy as np
from conftest import record_experiment

from repro.analysis import format_table
from repro.core.concentration import weight_violation_probability
from repro.core.formulation import build_formulation
from repro.core.rounding import RoundingParameters, audit_rounding, round_solution
from repro.workloads import RandomInstanceConfig, random_problem

NUM_DRAWS = 40


def _draw_statistics(c: float, delta: float, seed_base: int = 0) -> dict:
    problem = random_problem(
        RandomInstanceConfig(num_streams=2, num_reflectors=10, num_sinks=20), rng=1
    )
    formulation = build_formulation(problem)
    fractional = formulation.fractional_solution(formulation.solve()).support()
    rng = np.random.default_rng(seed_base)
    params = RoundingParameters(c=c, delta=delta)
    min_fractions = []
    violating_draws = 0
    for _ in range(NUM_DRAWS):
        rounded = round_solution(problem, fractional, params, rng)
        audit = audit_rounding(problem, rounded)
        min_fractions.append(audit.min_weight_fraction)
        if audit.min_weight_fraction < (1.0 - delta) - 1e-9:
            violating_draws += 1
    n = problem.num_demands
    return {
        "c": c,
        "delta": delta,
        "draws": NUM_DRAWS,
        "mean_min_weight_fraction": float(np.mean(min_fractions)),
        "worst_min_weight_fraction": float(np.min(min_fractions)),
        "fraction_of_draws_violating": violating_draws / NUM_DRAWS,
        "paper_union_bound(n * p_single)": min(
            1.0, n * weight_violation_probability(delta, c, n)
        ),
    }


def test_t2_weight_constraint_violations(benchmark):
    paper_row = benchmark.pedantic(
        _draw_statistics, args=(64.0, 0.25), rounds=1, iterations=1
    )
    rows = [paper_row]
    # Smaller multipliers: the guarantee weakens exactly as the bound predicts.
    for c in (16.0, 4.0):
        rows.append(_draw_statistics(c, 0.25, seed_base=7))

    # Shape checks: with the paper constants no draw should violate; the
    # violation frequency must grow as c shrinks.
    assert rows[0]["fraction_of_draws_violating"] <= rows[0]["paper_union_bound(n * p_single)"] + 0.05
    assert rows[0]["fraction_of_draws_violating"] <= rows[-1]["fraction_of_draws_violating"] + 1e-9
    record_experiment(
        "T2_weight_violation",
        format_table(
            rows,
            title="Lemma 4.3 reproduction: weight retention after randomized rounding",
        ),
    )
