"""Experiment R2 -- designs under the adversarial failure-scenario catalogue.

Scenario ``r2`` designs an akamai-like instance with the paper pipeline and
two baselines, then sweeps every registered failure scenario (correlated ISP
outages, regional failures, flash-crowd congestion, bursty links) through the
Monte-Carlo engine, verifying that the catalogue genuinely stresses each
design and that the stressed loss never drops below the failure-free
baseline.
"""

from __future__ import annotations

from conftest import run_and_record


def test_r2_failure_catalogue_sweep():
    record = run_and_record("r2")
    designs = {row["design"] for row in record.rows}
    scenarios = {row["scenario"] for row in record.rows}
    assert len(record.rows) == len(designs) * len(scenarios)
