"""Experiment R1 -- vectorized Monte-Carlo engine vs the legacy loop.

Scenario ``r1`` times the batched reliability engine
(:func:`repro.simulation.run_monte_carlo`) against repeated
:func:`repro.simulation.simulate_solution` calls on akamai-like workloads,
checks the statistical agreement of their loss estimates (z-score), and
asserts that the ``compat`` RNG mode is bit-identical to the legacy engine.
Full (non-smoke) runs require a >= 20x peak paired-throughput ratio.
"""

from __future__ import annotations

from conftest import run_and_record


def test_r1_vectorized_engine_speedup_and_equivalence():
    record = run_and_record("r1")
    for row in record.rows:
        assert row["compat_exact"]
