"""Experiment T5 -- Section 5.1: running time is dominated by the LP.

The paper argues the total running time equals that of solving an LP with
O(|S| * |R| * |D|) variables and constraints (the rounding and GAP stages are
cheaper).  This benchmark sweeps the instance size, records the LP size and
per-stage wall-clock times (matrix assembly and solve reported separately),
and checks the claimed shape: LP size grows linearly with |S||R||D| and the
LP solve dominates the pipeline.

It also measures the vectorized sparse LP assembly against the
expression-tree compatibility path on a large Akamai-like instance
(``REPRO_T5_SINKS`` sinks, default 500): both must reach the same optimal
objective, and the sparse path must build the matrices at least 5x faster.
Set ``REPRO_T5_SINKS`` to a small value (e.g. 40) for a CI smoke run.
"""

from __future__ import annotations

import os
import time

from conftest import record_experiment

from repro.analysis import format_table
from repro.analysis.experiments import run_design
from repro.core.algorithm import DesignParameters
from repro.core.formulation import build_formulation, build_sparse_formulation
from repro.workloads import (
    AkamaiLikeConfig,
    RandomInstanceConfig,
    generate_akamai_like_topology,
    random_problem,
)

SIZES = [
    (1, 5, 10),
    (2, 8, 20),
    (2, 12, 40),
    (3, 16, 60),
    (3, 20, 90),
]

#: Sink count of the akamai-like instance used by the sparse-vs-expr
#: assembly comparison; the 5x speedup assertion only applies at >= 200
#: sinks (small instances are dominated by constant overheads and noise).
COMPARISON_SINKS = int(os.environ.get("REPRO_T5_SINKS", "500"))


def _measure(size: tuple[int, int, int]) -> dict:
    streams, reflectors, sinks = size
    problem = random_problem(
        RandomInstanceConfig(
            num_streams=streams,
            num_reflectors=reflectors,
            num_sinks=sinks,
            delivery_edge_density=1.0,
            stream_edge_density=1.0,
        ),
        rng=0,
    )
    report, row = run_design(problem, DesignParameters(seed=0, retry_rounding=False))
    return {
        "|S|*|R|*n": streams * reflectors * sinks,
        "lp_variables": row["lp_variables"],
        "lp_constraints": row["lp_constraints"],
        "lp_nonzeros": row["lp_nonzeros"],
        "build_seconds": row["formulate_seconds"],
        "lp_seconds": row["lp_seconds"],
        "rounding_seconds": row["rounding_seconds"],
        "gap_seconds": row["gap_seconds"],
        "total_seconds": row["elapsed_seconds"],
    }


def test_t5_running_time_scaling(benchmark):
    rows = [benchmark.pedantic(_measure, args=(SIZES[2],), rounds=1, iterations=1)]
    for size in SIZES:
        if size == SIZES[2]:
            continue
        rows.append(_measure(size))
    rows.sort(key=lambda r: r["|S|*|R|*n"])

    # Shape checks: LP size grows with |S||R|n (within a constant factor of it),
    # and the LP solve is the dominant stage on the largest instance.
    assert rows[-1]["lp_variables"] > rows[0]["lp_variables"]
    ratio_small = rows[0]["lp_variables"] / rows[0]["|S|*|R|*n"]
    ratio_large = rows[-1]["lp_variables"] / rows[-1]["|S|*|R|*n"]
    assert 0.05 <= ratio_large <= 3.0 and 0.05 <= ratio_small <= 3.0
    largest = rows[-1]
    # Stage times on the sweep instances are tens of milliseconds, so allow a
    # small noise factor when checking that the LP solve dominates.
    assert largest["lp_seconds"] >= 0.8 * largest["rounding_seconds"]
    assert largest["lp_seconds"] >= 0.8 * largest["gap_seconds"]
    # With the sparse backend, matrix assembly must not dominate the solve.
    assert largest["build_seconds"] <= largest["lp_seconds"]
    record_experiment(
        "T5_scaling",
        format_table(
            rows,
            title="Section 5.1 reproduction: pipeline scaling with |S|*|R|*n "
            "(build vs solve breakdown)",
        ),
    )


def _akamai_instance(num_sinks: int):
    """An Akamai-like instance with ``num_sinks`` sinks (one per colo)."""
    regions = 5 if num_sinks >= 5 else 1
    config = AkamaiLikeConfig(
        num_regions=regions,
        colos_per_region=max(1, num_sinks // regions),
        reflectors_per_colo=1,
        num_streams=3,
        num_isps=4,
        num_sources=2,
        edge_density=0.12,
    )
    topology, _registry = generate_akamai_like_topology(config, rng=0)
    return topology.to_problem()


def test_t5_sparse_vs_expr_assembly():
    """Sparse assembly must match the expression path's LP and beat it >= 5x."""
    problem = _akamai_instance(COMPARISON_SINKS)

    start = time.perf_counter()
    sparse = build_sparse_formulation(problem)
    sparse_build = time.perf_counter() - start

    start = time.perf_counter()
    expr = build_formulation(problem)
    expr_build = time.perf_counter() - start

    assert sparse.num_variables == expr.num_variables
    assert sparse.num_constraints == expr.num_constraints

    start = time.perf_counter()
    sparse_solution = sparse.solve()
    sparse_solve = time.perf_counter() - start
    start = time.perf_counter()
    expr_solution = expr.solve()
    expr_solve = time.perf_counter() - start

    assert sparse_solution.is_optimal and expr_solution.is_optimal
    assert abs(sparse_solution.objective - expr_solution.objective) <= 1e-9

    speedup = expr_build / max(sparse_build, 1e-12)
    rows = [
        {
            "backend": "sparse",
            "sinks": problem.num_sinks,
            "demands": problem.num_demands,
            "lp_variables": sparse.num_variables,
            "lp_nonzeros": sparse.stats.num_nonzeros,
            "build_seconds": sparse_build,
            "solve_seconds": sparse_solve,
            "objective": sparse_solution.objective,
        },
        {
            "backend": "expr",
            "sinks": problem.num_sinks,
            "demands": problem.num_demands,
            "lp_variables": expr.num_variables,
            "lp_nonzeros": sum(len(c.expr.coeffs) for c in expr.model.constraints),
            "build_seconds": expr_build,
            "solve_seconds": expr_solve,
            "objective": expr_solution.objective,
        },
        {"backend": f"assembly speedup: {speedup:.1f}x"},
    ]
    record_experiment(
        "T5_sparse_vs_expr",
        format_table(
            rows,
            title=f"Sparse vs expression-tree LP assembly "
            f"({problem.num_sinks}-sink akamai-like instance)",
        ),
    )
    if problem.num_sinks >= 200:
        assert speedup >= 5.0, f"sparse assembly only {speedup:.1f}x faster"
