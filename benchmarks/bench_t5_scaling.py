"""Experiment T5 -- Section 5.1: running time is dominated by the LP.

The paper argues the total running time equals that of solving an LP with
O(|S| * |R| * |D|) variables and constraints (the rounding and GAP stages are
cheaper).  This benchmark sweeps the instance size, records the LP size and
per-stage wall-clock times, and checks the claimed shape: LP size grows
linearly with |S||R||D| and the LP solve dominates the pipeline.
"""

from __future__ import annotations

from conftest import record_experiment

from repro.analysis import format_table
from repro.analysis.experiments import run_design
from repro.core.algorithm import DesignParameters
from repro.workloads import RandomInstanceConfig, random_problem

SIZES = [
    (1, 5, 10),
    (2, 8, 20),
    (2, 12, 40),
    (3, 16, 60),
    (3, 20, 90),
]


def _measure(size: tuple[int, int, int]) -> dict:
    streams, reflectors, sinks = size
    problem = random_problem(
        RandomInstanceConfig(
            num_streams=streams,
            num_reflectors=reflectors,
            num_sinks=sinks,
            delivery_edge_density=1.0,
            stream_edge_density=1.0,
        ),
        rng=0,
    )
    report, row = run_design(problem, DesignParameters(seed=0, retry_rounding=False))
    return {
        "|S|*|R|*n": streams * reflectors * sinks,
        "lp_variables": row["lp_variables"],
        "lp_constraints": row["lp_constraints"],
        "lp_seconds": row["lp_seconds"],
        "rounding_seconds": row["rounding_seconds"],
        "gap_seconds": row["gap_seconds"],
        "total_seconds": row["elapsed_seconds"],
    }


def test_t5_running_time_scaling(benchmark):
    rows = [benchmark.pedantic(_measure, args=(SIZES[2],), rounds=1, iterations=1)]
    for size in SIZES:
        if size == SIZES[2]:
            continue
        rows.append(_measure(size))
    rows.sort(key=lambda r: r["|S|*|R|*n"])

    # Shape checks: LP size grows with |S||R|n (within a constant factor of it),
    # and the LP solve is the dominant stage on the largest instance.
    assert rows[-1]["lp_variables"] > rows[0]["lp_variables"]
    ratio_small = rows[0]["lp_variables"] / rows[0]["|S|*|R|*n"]
    ratio_large = rows[-1]["lp_variables"] / rows[-1]["|S|*|R|*n"]
    assert 0.05 <= ratio_large <= 3.0 and 0.05 <= ratio_small <= 3.0
    largest = rows[-1]
    assert largest["lp_seconds"] >= largest["rounding_seconds"]
    assert largest["lp_seconds"] >= largest["gap_seconds"]
    record_experiment(
        "T5_scaling",
        format_table(
            rows,
            title="Section 5.1 reproduction: pipeline scaling with |S|*|R|*n",
        ),
    )
