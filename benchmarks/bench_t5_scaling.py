"""Experiment T5 -- Section 5.1: running time is dominated by the LP.

The paper argues the total running time equals that of solving an LP with
O(|S| * |R| * |D|) variables and constraints (the rounding and GAP stages are
cheaper).  Scenario ``t5`` sweeps the instance size and records the LP size
and per-stage wall-clock times (matrix assembly and solve reported
separately); its validate hook checks the claimed shape.
"""

from __future__ import annotations

from conftest import run_and_record


def test_t5_running_time_scaling():
    record = run_and_record("t5")
    rows = sorted(record.rows, key=lambda row: row["size_product"])
    assert rows[-1]["lp_variables"] > rows[0]["lp_variables"]
