"""Experiment T8 -- hierarchical sharded pipeline vs monolithic design.

Scenario ``t8`` designs an internet-scale instance
(:mod:`repro.workloads.internet_scale`) twice -- once monolithically through
the ``spaa03`` pipeline and once through the ``sharded:spaa03`` pipeline of
:mod:`repro.scale` (partition -> per-shard design -> stitch) -- and gates the
sharded design on cost parity (<= 1.15x the monolithic cost), zero unserved
demands, the paper's weight/fanout guarantees, and, at full size (10k sinks),
a >= 4x wall-clock speedup.  ``REPRO_BENCH_SMOKE=1`` shrinks the instance to
CI size.
"""

from __future__ import annotations

from conftest import run_and_record


def test_t8_sharded_pipeline_cost_parity_and_speedup():
    record = run_and_record("t8")
    for row in record.rows:
        assert row["sharded_unserved"] == 0
        assert row["sharded_vs_monolithic_cost_ratio"] <= 1.15 + 1e-9
