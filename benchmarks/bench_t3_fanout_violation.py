"""Experiment T3 -- Lemma 4.6 + Section 5: fanout violations stay constant.

Lemma 4.6: after randomized rounding (c >= 24) every fanout constraint is
violated by at most a factor 2 whp; the GAP stage doubles that to at most 4 in
the final integral solution.  This benchmark measures the worst fanout factor
after each stage over many draws.
"""

from __future__ import annotations

import numpy as np
from conftest import record_experiment

from repro.analysis import format_table
from repro.core.formulation import build_formulation
from repro.core.gap import gap_round
from repro.core.rounding import RoundingParameters, audit_rounding, round_solution
from repro.workloads import RandomInstanceConfig, random_problem

NUM_DRAWS = 25


def _fanout_statistics(c: float) -> dict:
    problem = random_problem(
        RandomInstanceConfig(
            num_streams=3, num_reflectors=10, num_sinks=24, fanout_range=(5, 9)
        ),
        rng=2,
    )
    formulation = build_formulation(problem)
    fractional = formulation.fractional_solution(formulation.solve()).support()
    rng = np.random.default_rng(0)
    params = RoundingParameters(c=c)
    after_rounding, after_gap = [], []
    for _ in range(NUM_DRAWS):
        rounded = round_solution(problem, fractional, params, rng)
        audit = audit_rounding(problem, rounded)
        after_rounding.append(audit.max_fanout_factor)
        result = gap_round(problem, rounded)
        load: dict = {}
        for reflector, _key in result.assignments:
            load[reflector] = load.get(reflector, 0) + 1
        worst = max(
            (load[r] / problem.fanout(r) for r in load), default=0.0
        )
        after_gap.append(worst)
    return {
        "c": c,
        "draws": NUM_DRAWS,
        "max_fanout_factor_after_rounding": float(np.max(after_rounding)),
        "paper_bound_after_rounding": 2.0,
        "max_fanout_factor_final": float(np.max(after_gap)),
        "paper_bound_final": 4.0,
    }


def test_t3_fanout_violations(benchmark):
    paper_row = benchmark.pedantic(_fanout_statistics, args=(64.0,), rounds=1, iterations=1)
    rows = [paper_row, _fanout_statistics(24.0)]

    for row in rows:
        assert row["max_fanout_factor_after_rounding"] <= row["paper_bound_after_rounding"] + 1e-9
        assert row["max_fanout_factor_final"] <= row["paper_bound_final"] + 1e-9
    record_experiment(
        "T3_fanout_violation",
        format_table(
            rows,
            title="Lemma 4.6 / Section 5 reproduction: fanout violation factors",
        ),
    )
