"""Experiment T3 -- Lemma 4.6 + Section 5: fanout violations stay constant.

Lemma 4.6: after randomized rounding (c >= 24) every fanout constraint is
violated by at most a factor 2 whp; the GAP stage doubles that to at most 4 in
the final integral solution.  Scenario ``t3`` measures the worst fanout factor
after each stage over many draws.
"""

from __future__ import annotations

from conftest import run_and_record


def test_t3_fanout_violations():
    record = run_and_record("t3")
    for row in record.rows:
        assert row["max_fanout_factor_after_rounding"] <= 2.0 + 1e-9
        assert row["max_fanout_factor_final"] <= 4.0 + 1e-9
