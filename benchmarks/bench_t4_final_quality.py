"""Experiment T4 -- Section 5: final designs deliver >= 1/4 of the demanded weight.

The end-to-end guarantee: the integral solution delivers at least a quarter of
each demand's weight, i.e. the failure probability at each sink is at most the
fourth root of its target.  This benchmark runs the full pipeline (paper
constants, no repair) on random and Akamai-like instances and reports the
worst weight fraction and the worst achieved success probability against both
the target and the fourth-root bound.
"""

from __future__ import annotations

import numpy as np
from conftest import record_experiment

from repro.analysis import format_table
from repro.core.algorithm import DesignParameters, design_overlay
from repro.core.rounding import RoundingParameters
from repro.workloads import (
    AkamaiLikeConfig,
    RandomInstanceConfig,
    generate_akamai_like_topology,
    random_problem,
)


def _instances():
    yield "random-small", random_problem(
        RandomInstanceConfig(num_streams=2, num_reflectors=8, num_sinks=15), rng=0
    )
    yield "random-medium", random_problem(
        RandomInstanceConfig(num_streams=3, num_reflectors=12, num_sinks=30), rng=1
    )
    topology, _ = generate_akamai_like_topology(
        AkamaiLikeConfig(num_regions=2, colos_per_region=3, num_streams=2), rng=2
    )
    yield "akamai-like", topology.to_problem()


def _quality_row(name: str, problem) -> dict:
    params = DesignParameters(
        rounding=RoundingParameters.paper_defaults(), seed=0, repair_shortfall=False
    )
    report = design_overlay(problem, params)
    solution = report.solution
    weight_fractions = [solution.weight_satisfaction(d) for d in problem.demands]
    fourth_root_ok = []
    for demand in problem.demands:
        target_failure = 1.0 - demand.success_threshold
        achieved_failure = solution.failure_probability(demand)
        fourth_root_ok.append(achieved_failure <= target_failure ** 0.25 + 1e-9)
    return {
        "instance": name,
        "demands": problem.num_demands,
        "min_weight_fraction": float(np.min(weight_fractions)),
        "mean_weight_fraction": float(np.mean(weight_fractions)),
        "paper_bound": 0.25,
        "fraction_within_4th_root_failure": float(np.mean(fourth_root_ok)),
        "fraction_fully_meeting_target": float(
            np.mean([f >= 1.0 - 1e-9 for f in weight_fractions])
        ),
    }


def test_t4_final_quality_guarantee(benchmark):
    instances = list(_instances())
    first_name, first_problem = instances[0]
    rows = [benchmark.pedantic(_quality_row, args=(first_name, first_problem), rounds=1, iterations=1)]
    for name, problem in instances[1:]:
        rows.append(_quality_row(name, problem))

    for row in rows:
        assert row["min_weight_fraction"] >= row["paper_bound"] - 1e-9
        assert row["fraction_within_4th_root_failure"] >= 1.0 - 1e-9
    record_experiment(
        "T4_final_quality",
        format_table(
            rows,
            title="Section 5 reproduction: delivered weight vs the W/4 guarantee",
        ),
    )
