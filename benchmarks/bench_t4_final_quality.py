"""Experiment T4 -- Section 5: final designs deliver >= 1/4 of the demanded weight.

The end-to-end guarantee: the integral solution delivers at least a quarter of
each demand's weight, i.e. the failure probability at each sink is at most the
fourth root of its target.  Scenario ``t4`` runs the full pipeline (paper
constants, no repair) on random and Akamai-like instances.
"""

from __future__ import annotations

from conftest import run_and_record


def test_t4_final_quality_guarantee():
    record = run_and_record("t4")
    assert all(row["min_weight_fraction"] >= 0.25 - 1e-9 for row in record.rows)
