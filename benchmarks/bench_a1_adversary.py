"""Experiment A1 -- designer vs adversary on the AS/geo workload.

Scenario ``a1`` designs one AS/geo-grounded instance (real metro populations,
multi-homed carriers) with the extended color-constrained pipeline and the two
comparison baselines, then lets an adversary pick each design's worst failure
scenario from the full catalogue -- built-in scenarios plus the shipped DSL
files, including attacks targeted at the reflectors the design under test
actually leans on.  The ISP-diversity extension must strictly beat both
baselines at their respective adversarial worst cases.
"""

from __future__ import annotations

from conftest import run_and_record


def test_a1_designer_vs_adversary():
    record = run_and_record("a1")
    designs = {row["design"] for row in record.rows}
    scenarios = {row["scenario"] for row in record.rows}
    assert designs == {"spaa03-extended", "greedy", "single-tree"}
    assert len(record.rows) == len(designs) * len(scenarios)
    picks = [row for row in record.rows if row["adversary_pick"]]
    assert len(picks) == len(designs)
