"""Experiment I1 -- incremental update vs from-scratch re-design after churn.

Scenario ``i1`` designs an internet-scale instance once (the standing
design), samples 5% sink churn through the :mod:`repro.incremental` adapters
and then updates the design twice -- incrementally through
:func:`repro.api.design_incremental` (diff -> dirty shards -> residual
re-solve -> stitch) and from scratch through the same ``sharded:spaa03``
pipeline -- gating the incremental result on cost parity (<= 1.05x the
from-scratch cost), zero unserved demands, the factor-4 fanout bound, and,
at full size (10k sinks), a >= 10x wall-clock speedup.  Both timed sides run
``jobs=1`` so the speedup measures work avoided, not worker count.
``REPRO_BENCH_SMOKE=1`` shrinks the instance to CI size.
"""

from __future__ import annotations

from conftest import run_and_record


def test_i1_incremental_update_cost_parity_and_speedup():
    record = run_and_record("i1")
    for row in record.rows:
        assert row["incremental_unserved"] == 0
        assert row["incremental_vs_scratch_cost_ratio"] <= 1.05 + 1e-9
        assert row["incremental_max_fanout_factor"] <= 4.0 + 1e-9
