"""Experiment F1 -- Figure 1: the three-level overlay network substrate.

Scenario ``f1`` regenerates the tripartite sources -> reflectors -> sinks
digraph at several deployment sizes, checks the structural invariants inside
each task (strict three-level structure, every demand reachable), and measures
instance build throughput.
"""

from __future__ import annotations

from conftest import run_and_record


def test_fig1_structure_and_build_throughput():
    record = run_and_record("f1")
    assert all(row["feasible"] for row in record.rows)
