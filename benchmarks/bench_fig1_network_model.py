"""Experiment F1 -- Figure 1: the three-level overlay network substrate.

The paper's Figure 1 is the tripartite sources -> reflectors -> sinks digraph.
This benchmark regenerates it synthetically at several deployment sizes,
checks the structural invariants (strict three-level structure, every demand
reachable), and measures how fast instances are built and projected into the
algorithm's input -- the "workload generator" part of the harness.
"""

from __future__ import annotations

import time

from conftest import record_experiment

from repro.analysis import format_table
from repro.network.topology import NodeRole
from repro.workloads import AkamaiLikeConfig, generate_akamai_like_topology

SIZES = {
    "small": AkamaiLikeConfig(num_regions=2, colos_per_region=2, num_isps=2, num_streams=2),
    "medium": AkamaiLikeConfig(num_regions=3, colos_per_region=4, num_isps=3, num_streams=3),
    "large": AkamaiLikeConfig(num_regions=4, colos_per_region=6, num_isps=4, num_streams=4),
}


def _build(config: AkamaiLikeConfig, seed: int = 0):
    topology, registry = generate_akamai_like_topology(config, rng=seed)
    problem = topology.to_problem()
    return topology, registry, problem


def test_fig1_structure_and_build_throughput(benchmark):
    """Build the medium deployment repeatedly (timed) and validate all sizes."""
    topology, _registry, problem = benchmark(_build, SIZES["medium"])

    # Figure-1 invariants: strictly three levels, links only forward.
    for link in topology.links():
        tail_role = topology.node(link.tail).role
        head_role = topology.node(link.head).role
        assert (tail_role, head_role) in {
            (NodeRole.SOURCE, NodeRole.REFLECTOR),
            (NodeRole.REFLECTOR, NodeRole.SINK),
        }
    assert problem.feasibility_report() == []

    rows = []
    for name, config in SIZES.items():
        start = time.perf_counter()
        topo, registry, prob = _build(config)
        elapsed = time.perf_counter() - start
        summary = topo.size_summary()
        rows.append(
            {
                "deployment": name,
                "sources": summary["sources"],
                "reflectors": summary["reflectors"],
                "sinks": summary["sinks"],
                "links": summary["links"],
                "demands": summary["demands"],
                "isps": len(registry),
                "build_seconds": elapsed,
            }
        )
        for demand in prob.demands:
            assert len(prob.candidate_reflectors(demand)) >= 2
    record_experiment(
        "F1_network_model",
        format_table(rows, title="Figure 1 reproduction: 3-level overlay instances"),
    )
