"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` file is now a thin pytest wrapper around a registered
:class:`~repro.analysis.runner.ScenarioSpec` (see
:mod:`repro.analysis.scenarios`): it runs the scenario through the parallel
executor, asserts the spec's paper-shape thresholds, and persists both the
plain-text table and the machine-readable ``BENCH_<ID>.json`` record under
``benchmarks/results/``.  The same artifacts are produced without pytest by
``repro bench``.

Environment knobs (all optional):

* ``REPRO_BENCH_SMOKE=1`` -- CI-sized seed blocks / draw counts / sizes;
* ``REPRO_BENCH_JOBS=N|auto`` -- worker processes per scenario (default 1);
* ``REPRO_BENCH_SEED=N`` -- master seed (default 0);
* ``REPRO_T5_SINKS=N`` -- instance size of the sparse-vs-expr comparison.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis import format_table
from repro.analysis.runner import BenchRecord, get_scenario, run_scenario

RESULTS_DIR = Path(__file__).resolve().parent / "results"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("", "0")
JOBS = os.environ.get("REPRO_BENCH_JOBS", "1")
MASTER_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def record_experiment(name: str, text: str) -> None:
    """Print an experiment's table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_and_record(scenario_id: str) -> BenchRecord:
    """Run one registered scenario, persist its artifacts, assert thresholds."""
    spec = get_scenario(scenario_id)
    record = run_scenario(spec, jobs=JOBS, master_seed=MASTER_SEED, smoke=SMOKE)
    record.save(RESULTS_DIR / f"BENCH_{record.bench_id}.json")
    record_experiment(
        spec.artifact_stem,
        format_table(record.rows, columns=spec.columns, title=record.title),
    )
    if spec.validate is not None:
        failures = spec.validate(record)
        assert not failures, "; ".join(failures)
    return record
