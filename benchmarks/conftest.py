"""Shared fixtures and helpers for the benchmark harness.

Every benchmark prints the rows/series it reproduces (the analogue of the
paper's tables/figures) and also writes them to ``benchmarks/results/`` so the
numbers quoted in EXPERIMENTS.md can be regenerated with a single
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads import AkamaiLikeConfig, generate_akamai_like_topology

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def record_experiment(name: str, text: str) -> None:
    """Print an experiment's table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def akamai_problem():
    """A mid-sized Akamai-like instance shared by several benchmarks."""
    topology, registry = generate_akamai_like_topology(
        AkamaiLikeConfig(num_regions=3, colos_per_region=3, num_isps=3, num_streams=3),
        rng=0,
    )
    return topology, registry, topology.to_problem()
