"""Experiment T6 -- Sections 6.4/6.5: color constraints and ISP-outage resilience.

Two claims are exercised:

* the path-rounding used for the color/arc-capacity extensions keeps every
  constraint within a small constant factor (the paper proves <= 7 on the
  constraints and <= 14 on the cost);
* designs produced under color constraints survive single-ISP outages better
  than unconstrained designs (the operational motivation for the extension).
"""

from __future__ import annotations

import numpy as np
from conftest import record_experiment

from repro.analysis import format_table
from repro.core.algorithm import DesignParameters, design_overlay
from repro.core.extensions import color_constrained_parameters, design_overlay_extended
from repro.network.reliability import demand_success_probability
from repro.workloads import AkamaiLikeConfig, generate_akamai_like_topology


def _survivor_fraction(problem, solution, victim: str) -> float:
    survivors = 0
    for demand in problem.demands:
        success = demand_success_probability(
            problem, demand, solution.reflectors_serving(demand), failed_isps={victim}
        )
        if success + 1e-12 >= demand.success_threshold:
            survivors += 1
    return survivors / problem.num_demands


def _run(seed: int) -> dict:
    topology, registry, problem = _setup(seed)
    base = DesignParameters(seed=seed, repair_shortfall=True)
    plain_report = design_overlay(problem, base)
    colored_report = design_overlay_extended(problem, color_constrained_parameters(base))

    plain = plain_report.solution
    colored = colored_report.solution
    path_info = colored_report.path_rounding
    worst_plain = min(_survivor_fraction(problem, plain, isp) for isp in registry.names())
    worst_colored = min(
        _survivor_fraction(problem, colored, isp) for isp in registry.names()
    )
    return {
        "seed": seed,
        "demands": problem.num_demands,
        "plain_cost": plain.total_cost(),
        "colored_cost": colored.total_cost(),
        "cost_factor_vs_lp": colored.total_cost() / max(colored_report.lp_lower_bound, 1e-9),
        "paper_cost_factor_bound": 14.0,
        "entangled_violation_factor": (
            path_info.violation_factors.get("entangled", 0.0) if path_info else 0.0
        ),
        "fanout_violation_factor": (
            path_info.violation_factors.get("fanout", 0.0) if path_info else 0.0
        ),
        "paper_constraint_factor_bound": 7.0,
        "worst_outage_survivors_plain": worst_plain,
        "worst_outage_survivors_colored": worst_colored,
    }


def _setup(seed: int):
    topology, registry = generate_akamai_like_topology(
        AkamaiLikeConfig(
            num_regions=2, colos_per_region=3, num_isps=3, num_streams=2, reflectors_per_colo=2
        ),
        rng=seed,
    )
    return topology, registry, topology.to_problem()


def test_t6_color_constraints_and_resilience(benchmark):
    rows = [benchmark.pedantic(_run, args=(0,), rounds=1, iterations=1)]
    for seed in (1, 2):
        rows.append(_run(seed))

    for row in rows:
        assert row["entangled_violation_factor"] <= row["paper_constraint_factor_bound"] + 1e-9
        assert row["fanout_violation_factor"] <= row["paper_constraint_factor_bound"] + 1e-9
        assert row["cost_factor_vs_lp"] <= row["paper_cost_factor_bound"] + 1e-9
    # Resilience shape: on average the colored design survives outages at least
    # as well as the plain one.
    plain_mean = np.mean([row["worst_outage_survivors_plain"] for row in rows])
    colored_mean = np.mean([row["worst_outage_survivors_colored"] for row in rows])
    assert colored_mean >= plain_mean - 0.05
    record_experiment(
        "T6_color_constraints",
        format_table(
            rows,
            title="Sections 6.4/6.5 reproduction: color constraints and ISP-outage resilience",
        ),
    )
