"""Experiment T6 -- Sections 6.4/6.5: color constraints and ISP-outage resilience.

Two claims are exercised by scenario ``t6``: the path-rounding used for the
color/arc-capacity extensions keeps every constraint within a small constant
factor (the paper proves <= 7 on the constraints and <= 14 on the cost), and
designs produced under color constraints survive single-ISP outages at least
as well as unconstrained designs.
"""

from __future__ import annotations

from conftest import run_and_record


def test_t6_color_constraints_and_resilience():
    record = run_and_record("t6")
    for row in record.rows:
        assert row["cost_factor_vs_lp"] <= 14.0 + 1e-9
