"""Experiment F2 -- Figure 2: the modified-GAP conversion network.

Figure 2 of the paper is the five-level flow network used to turn the rounded
fractional assignment into a 0/1 solution.  This benchmark builds that network
from real rounded solutions, verifies its structural invariants (box ordering,
capacities, pair->box interval membership) and times the construction plus the
half-integral min-cost-flow extraction.
"""

from __future__ import annotations

import time

from conftest import record_experiment

from repro.analysis import format_table
from repro.core.formulation import build_formulation
from repro.core.gap import build_gap_network, solve_gap
from repro.core.rounding import RoundingParameters, round_solution
from repro.flow import assert_feasible_flow
from repro.workloads import RandomInstanceConfig, random_problem

SIZES = [
    ("small", RandomInstanceConfig(num_streams=2, num_reflectors=6, num_sinks=10)),
    ("medium", RandomInstanceConfig(num_streams=3, num_reflectors=10, num_sinks=25)),
    ("large", RandomInstanceConfig(num_streams=4, num_reflectors=16, num_sinks=50)),
]


def _rounded_instance(config: RandomInstanceConfig, seed: int = 0):
    problem = random_problem(config, rng=seed)
    formulation = build_formulation(problem)
    fractional = formulation.fractional_solution(formulation.solve()).support()
    rounded = round_solution(problem, fractional, RoundingParameters(c=64.0, seed=seed))
    return problem, rounded


def test_fig2_gap_network_construction_and_flow(benchmark):
    problem, rounded = _rounded_instance(SIZES[1][1])

    def build_and_solve():
        gap = build_gap_network(problem, rounded)
        return gap, solve_gap(problem, gap)

    gap, result = benchmark(build_and_solve)
    assert_feasible_flow(gap.network, gap.source, gap.sink)
    assert result.boxes_served <= result.boxes_total

    # Box invariants: intervals ordered by decreasing weight per demand.
    per_demand: dict = {}
    for box in gap.boxes:
        per_demand.setdefault(box.demand_key, []).append(box)
    for boxes in per_demand.values():
        boxes.sort(key=lambda b: b.index)
        for earlier, later in zip(boxes, boxes[1:]):
            assert earlier.lower >= later.lower - 1e-9

    rows = []
    for name, config in SIZES:
        prob, rnd = _rounded_instance(config)
        start = time.perf_counter()
        gap_net = build_gap_network(prob, rnd)
        built = time.perf_counter() - start
        start = time.perf_counter()
        res = solve_gap(prob, gap_net)
        solved = time.perf_counter() - start
        rows.append(
            {
                "instance": name,
                "demands": prob.num_demands,
                "pair_nodes": len(gap_net.pair_edge),
                "boxes": gap_net.total_demand,
                "boxes_served": res.boxes_served,
                "flow_nodes": gap_net.network.num_nodes,
                "flow_edges": gap_net.network.num_edges,
                "build_seconds": built,
                "flow_seconds": solved,
            }
        )
        assert res.boxes_served >= 0.9 * res.boxes_total
    record_experiment(
        "F2_gap_network",
        format_table(rows, title="Figure 2 reproduction: GAP conversion network"),
    )
