"""Experiment F2 -- Figure 2: the modified-GAP conversion network.

Scenario ``f2`` builds the five-level flow network from real rounded
solutions, verifies its structural invariants inside each task (box ordering,
capacities, feasible flow) and times the construction plus the half-integral
min-cost-flow extraction.
"""

from __future__ import annotations

from conftest import run_and_record


def test_fig2_gap_network_construction_and_flow():
    record = run_and_record("f2")
    assert all(row["boxes_served"] >= 0.9 * row["boxes_total"] for row in record.rows)
