"""Experiment F3 -- Figure 3: the integrality gap under entangled-set constraints.

Scenario ``f3`` reproduces the paper's exact example: a flow network with a
joint ("entangled") capacity of 3 on the edge set {a->b, p->q}, where the
maximum integral flow is 3 while the fractional optimum is 3.5 -- the reason
the Section-6 extensions need Srinivasan--Teo path rounding rather than plain
flow integrality.  ``tests/test_figure3.py`` pins the same numbers from an
independent construction, so the benchmark and the tests cannot drift apart.
"""

from __future__ import annotations

from conftest import run_and_record


def test_fig3_integrality_gap():
    record = run_and_record("f3")
    assert record.metrics["fractional_max_flow"] > record.metrics["integral_max_flow"] + 0.4
