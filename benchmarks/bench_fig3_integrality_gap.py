"""Experiment F3 -- Figure 3: the integrality gap under entangled-set constraints.

Scenario ``f3`` reproduces the paper's exact example: a flow network with a
joint ("entangled") capacity of 3 on the edge set {a->b, p->q}, where the
maximum integral flow is 3 while the fractional optimum is 3.5 -- the reason
the Section-6 extensions need Srinivasan--Teo path rounding rather than plain
flow integrality.  ``tests/test_figure3.py`` pins the same numbers from an
independent construction, so the benchmark and the tests cannot drift apart.

Since the ``milp-exact`` designer landed, the scenario also *measures* the
Section-2 integrality gap the paper could only reason about: the true integer
optimum (HiGHS branch-and-cut over the same sparse LP blocks) against the
fractional bound on internet-scale instances at 100-500 sinks.
"""

from __future__ import annotations

from conftest import run_and_record


def test_fig3_integrality_gap():
    record = run_and_record("f3")
    assert record.metrics["fractional_max_flow"] > record.metrics["integral_max_flow"] + 0.4
    gaps = {
        key: value
        for key, value in record.metrics.items()
        if key.startswith("integrality_gap_")
    }
    assert gaps, "no measured Section-2 integrality gap rows"
    assert all(gap >= 1.0 - 1e-9 for gap in gaps.values())
