"""Experiment F3 -- Figure 3: the integrality gap under entangled-set constraints.

Reproduces the paper's exact example: a flow network whose edges have the
drawn capacities plus a joint ("entangled") capacity of 3 on the edge set
{a->b, p->q}.  The maximum integral flow is 3 while the fractional optimum is
3.5 -- the reason the Section-6 extensions need Srinivasan--Teo path rounding
rather than plain flow integrality.
"""

from __future__ import annotations

from conftest import record_experiment

from repro.analysis import format_table

# Reuse the verified construction from the test suite so the benchmark and the
# tests can never drift apart.
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tests"))
from test_figure3 import ENTANGLED_CAPACITY, _solve_max_flow  # noqa: E402


def test_fig3_integrality_gap(benchmark):
    fractional = benchmark(_solve_max_flow, False)
    integral = _solve_max_flow(True)

    assert abs(fractional - 3.5) < 1e-6
    assert abs(integral - 3.0) < 1e-9

    rows = [
        {
            "quantity": "fractional max flow",
            "paper": 3.5,
            "measured": fractional,
        },
        {
            "quantity": "integral max flow",
            "paper": 3.0,
            "measured": integral,
        },
        {
            "quantity": "entangled-set capacity",
            "paper": 3.0,
            "measured": ENTANGLED_CAPACITY,
        },
    ]
    record_experiment(
        "F3_integrality_gap",
        format_table(rows, title="Figure 3 reproduction: integral 3 vs fractional 3.5"),
    )
