"""Experiment C1 -- comparative evaluation against the baseline strategies.

The paper positions the LP-rounding algorithm against simpler designs (greedy
heuristics, single multicast trees, naive per-sink choices).  This benchmark
runs all of them on the same Akamai-like flash-crowd workload and reports
cost, analytic reliability, and simulated post-reconstruction loss -- the
comparison the paper's Section 7 planned to run on production data.

Expected shape: the LP-based design (with the practical repair pass) meets
essentially all quality targets at a cost within a small constant of the LP
lower bound (far below its c log n worst-case bound); the single-tree design
is the cheapest but misses most strict quality targets because it has no
redundancy; random assignment is dominated on cost.  The greedy heuristic is
the strongest baseline on *average* cost -- the paper's contribution is the
worst-case guarantee, not beating heuristics on every instance -- and the
table records that honestly.
"""

from __future__ import annotations

from conftest import record_experiment

from repro.analysis import compare_designs, format_table
from repro.baselines import (
    greedy_design,
    naive_quality_first_design,
    random_design,
    single_tree_design,
)
from repro.core.algorithm import DesignParameters, design_overlay
from repro.core.rounding import RoundingParameters
from repro.simulation import SimulationConfig, simulate_solution
from repro.workloads import AkamaiLikeConfig, FlashCrowdConfig, generate_flash_crowd_scenario


def _build_problem():
    config = FlashCrowdConfig(
        deployment=AkamaiLikeConfig(
            num_regions=3, colos_per_region=3, num_isps=3, num_streams=2
        )
    )
    topology, _registry = generate_flash_crowd_scenario(config, rng=0)
    return topology.to_problem()


def _design_all(problem):
    report = design_overlay(
        problem,
        DesignParameters(seed=0, repair_shortfall=True, rounding=RoundingParameters(c=16.0)),
    )
    designs = {
        "spaa03+repair": report.solution,
        "greedy": greedy_design(problem),
        "naive-quality-first": naive_quality_first_design(problem),
        "single-tree": single_tree_design(problem),
        "random": random_design(problem, rng=0),
    }
    return report, designs


def test_c1_baseline_comparison(benchmark):
    problem = _build_problem()
    report, designs = benchmark.pedantic(_design_all, args=(problem,), rounds=1, iterations=1)

    def simulated_loss(problem_, solution_):
        sim = simulate_solution(
            problem_, solution_, SimulationConfig(num_packets=8000, seed=3)
        )
        return sim.mean_loss

    rows = compare_designs(
        problem,
        designs,
        lower_bound=report.lp_lower_bound,
        extra_metrics={"simulated_mean_loss": simulated_loss},
    )
    by_name = {row["design"]: row for row in rows}

    # Shape assertions (who wins, and roughly how).
    spaa = by_name["spaa03+repair"]
    # The LP-rounding design meets (almost) all quality targets...
    assert spaa["fraction_meeting_threshold"] >= 0.9
    # ... at a cost within a small constant of the LP bound, far below the
    # worst-case c log n guarantee ...
    assert spaa["cost_ratio"] <= 6.0
    assert spaa["cost_ratio"] <= 2.0 * report.rounded.multiplier
    # ... and cheaper than uncoordinated random assignment.
    assert spaa["total_cost"] <= by_name["random"]["total_cost"] * 1.05
    # The single-tree (IP-multicast-like) design has no redundancy: it is the
    # cheapest but misses most of the strict quality targets.
    assert by_name["single-tree"]["mean_paths_per_demand"] <= 1.0 + 1e-9
    assert (
        by_name["single-tree"]["fraction_meeting_threshold"]
        <= spaa["fraction_meeting_threshold"] - 0.3
    )
    assert spaa["simulated_mean_loss"] <= by_name["single-tree"]["simulated_mean_loss"] + 1e-6
    # The quality-first and greedy heuristics also reach the targets; greedy is
    # the strongest baseline on cost (no guarantee, as the paper notes).
    assert by_name["greedy"]["fraction_meeting_threshold"] >= 0.9
    assert by_name["greedy"]["total_cost"] <= by_name["naive-quality-first"]["total_cost"]

    record_experiment(
        "C1_baselines",
        format_table(
            rows,
            columns=[
                "design",
                "total_cost",
                "cost_ratio",
                "mean_success",
                "fraction_meeting_threshold",
                "mean_paths_per_demand",
                "max_fanout_factor",
                "simulated_mean_loss",
            ],
            title="C1: LP-rounding design vs baselines on the flash-crowd workload",
        ),
    )
