"""Experiment C1 -- comparative evaluation against the baseline strategies.

Scenario ``c1`` runs the LP-rounding design and the simpler baselines (greedy,
naive quality-first, single multicast tree, random) on the same Akamai-like
flash-crowd workload and reports cost, analytic reliability, and simulated
post-reconstruction loss -- the comparison the paper's Section 7 planned to
run on production data.  The expected shape (who wins, and roughly how) is
encoded in the scenario's validate hook.
"""

from __future__ import annotations

from conftest import run_and_record


def test_c1_baseline_comparison():
    record = run_and_record("c1")
    assert record.metrics["spaa_fraction_meeting_threshold"] >= 0.9
