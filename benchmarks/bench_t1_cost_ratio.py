"""Experiment T1 -- Lemma 4.1: cost within c log n of the LP optimum.

The paper bounds the expected cost after rounding by ``c log n`` times the LP
optimum (and the GAP stage adds at most a factor 2).  This benchmark measures
the *actual* cost ratio across instance sizes and seeds and reports how far
below the analytical bound it stays.
"""

from __future__ import annotations

import numpy as np
from conftest import record_experiment

from repro.analysis import format_table
from repro.analysis.experiments import run_design
from repro.core.algorithm import DesignParameters
from repro.core.rounding import RoundingParameters
from repro.workloads import RandomInstanceConfig, random_problem

SIZES = [
    (1, 5, 8),
    (2, 8, 16),
    (2, 12, 32),
    (3, 16, 48),
]
SEEDS = [0, 1, 2]


def _measure_size(size: tuple[int, int, int]) -> dict:
    streams, reflectors, sinks = size
    ratios, bounds = [], []
    for seed in SEEDS:
        problem = random_problem(
            RandomInstanceConfig(
                num_streams=streams, num_reflectors=reflectors, num_sinks=sinks
            ),
            rng=seed,
        )
        report, row = run_design(
            problem,
            DesignParameters(rounding=RoundingParameters(c=8.0, seed=seed)),
        )
        ratios.append(row["cost_ratio"])
        bounds.append(2.0 * report.rounded.multiplier)
    return {
        "|S|,|R|,n": f"{streams},{reflectors},{sinks}",
        "demands": sinks,
        "mean_cost_ratio": float(np.mean(ratios)),
        "max_cost_ratio": float(np.max(ratios)),
        "paper_bound(2 c log n)": float(np.mean(bounds)),
        "bound_slack": float(np.mean(bounds) / max(np.mean(ratios), 1e-9)),
    }


def test_t1_cost_ratio_vs_lp_bound(benchmark):
    rows = [benchmark.pedantic(_measure_size, args=(SIZES[1],), rounds=1, iterations=1)]
    for size in SIZES:
        if size == SIZES[1]:
            continue
        rows.append(_measure_size(size))
    rows.sort(key=lambda r: r["demands"])

    # Shape check (the paper's claim): measured ratios stay below the bound.
    for row in rows:
        assert row["max_cost_ratio"] <= row["paper_bound(2 c log n)"] + 1e-9
    record_experiment(
        "T1_cost_ratio",
        format_table(
            rows,
            title="Lemma 4.1 reproduction: cost ratio vs the c log n bound (c = 8)",
        ),
    )
