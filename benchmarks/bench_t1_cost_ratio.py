"""Experiment T1 -- Lemma 4.1: cost within c log n of the LP optimum.

The paper bounds the expected cost after rounding by ``c log n`` times the LP
optimum (and the GAP stage adds at most a factor 2).  The measurement lives in
the registered scenario ``t1`` (:mod:`repro.analysis.scenarios`); this wrapper
runs it through the parallel executor and asserts its thresholds.
"""

from __future__ import annotations

from conftest import run_and_record


def test_t1_cost_ratio_vs_lp_bound():
    record = run_and_record("t1")
    # Headline claim: every measured ratio stays below the analytic bound.
    assert all(
        row["cost_ratio"] <= row["paper_bound_2clogn"] + 1e-9 for row in record.rows
    )
