"""Maximum flow via Dinic's algorithm.

Dinic's algorithm repeatedly builds a BFS level graph on the residual network
and then sends blocking flows along level-respecting paths with an iterative
DFS.  On unit-capacity-like networks (which is what the Figure-2 GAP network
of the paper looks like after doubling) it runs in ``O(E * sqrt(V))`` time;
for general capacities the bound is ``O(V^2 E)`` which is far more than enough
for the instance sizes handled here.

The solver works directly on the residual arrays of a
:class:`repro.flow.graph.FlowNetwork`, so after :func:`max_flow` returns, the
network's :meth:`flow_on` accessors describe an optimal flow.
"""

from __future__ import annotations

from collections import deque

from repro.flow.graph import FlowNetwork

#: Flows below this magnitude are treated as zero when searching for
#: augmenting paths; keeps floating point residue from creating phantom arcs.
_EPS = 1e-12


def _build_levels(net: FlowNetwork, source: int, sink: int) -> list[int] | None:
    """BFS over residual arcs; returns per-node levels or None if sink unreachable."""
    levels = [-1] * net.num_nodes
    levels[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        for arc in net.out_arcs(node):
            target = net._arc_target(arc)
            if levels[target] < 0 and net.residual_capacity(arc) > _EPS:
                levels[target] = levels[node] + 1
                queue.append(target)
    if levels[sink] < 0:
        return None
    return levels


def _blocking_flow(
    net: FlowNetwork,
    source: int,
    sink: int,
    levels: list[int],
    arc_iters: list[int],
    limit: float,
) -> float:
    """Send a single augmenting path of up to ``limit`` units; 0 when none exists.

    Uses an explicit stack (rather than recursion) so very deep level graphs do
    not hit Python's recursion limit.
    """
    # Each stack frame is (node, arc used to enter it); path[0] is the source.
    path_nodes = [source]
    path_arcs: list[int] = []
    while path_nodes:
        node = path_nodes[-1]
        if node == sink:
            # Bottleneck along the path.
            bottleneck = limit
            for arc in path_arcs:
                bottleneck = min(bottleneck, net.residual_capacity(arc))
            for arc in path_arcs:
                net._push(arc, bottleneck)
            return bottleneck
        adj = net._adj[node]
        advanced = False
        while arc_iters[node] < len(adj):
            arc = adj[arc_iters[node]]
            target = net._arc_target(arc)
            if net.residual_capacity(arc) > _EPS and levels[target] == levels[node] + 1:
                path_nodes.append(target)
                path_arcs.append(arc)
                advanced = True
                break
            arc_iters[node] += 1
        if not advanced:
            # Dead end: retreat, exhaust this node's iterator so it is never
            # re-entered in this phase, and advance the parent's iterator past
            # the arc that led here (otherwise the parent would retry the same
            # arc forever).
            arc_iters[node] = len(adj)
            path_nodes.pop()
            if path_arcs:
                path_arcs.pop()
                parent = path_nodes[-1]
                arc_iters[parent] += 1
    return 0.0


def max_flow(net: FlowNetwork, source: int, sink: int, limit: float = float("inf")) -> float:
    """Compute a maximum ``source`` -> ``sink`` flow (optionally capped at ``limit``).

    Parameters
    ----------
    net:
        The flow network; its internal flow state is updated in place.
    source, sink:
        Node indices.
    limit:
        Optional upper bound on the amount of flow to send.

    Returns
    -------
    float
        The value of the flow found.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    total = 0.0
    while total < limit - _EPS:
        levels = _build_levels(net, source, sink)
        if levels is None:
            break
        arc_iters = [0] * net.num_nodes
        while True:
            pushed = _blocking_flow(net, source, sink, levels, arc_iters, limit - total)
            if pushed <= _EPS:
                break
            total += pushed
    return total
