"""Minimum-cost flow via successive shortest augmenting paths.

Two entry points are provided:

``min_cost_max_flow(net, source, sink, limit=inf)``
    Finds a maximum flow from ``source`` to ``sink`` of minimum total cost
    (optionally capped at ``limit`` units).  This is the routine used by the
    modified-GAP rounding stage (paper Section 5): the Figure-2 network has a
    super source and super sink, and we need the cheapest flow saturating the
    per-box demands.

``min_cost_flow(net, supplies)``
    Generic b-flow solver: ``supplies[v] > 0`` marks ``v`` as a supply node,
    ``< 0`` as a demand node.  It reduces to ``min_cost_max_flow`` through an
    auxiliary super source / super sink.

Algorithm
---------
Successive shortest augmenting paths with Johnson potentials: an initial
Bellman-Ford pass handles negative edge costs (the residual of a forward edge
has negated cost), after which every iteration runs Dijkstra on reduced costs
and augments along the shortest path.  With integral capacities the number of
iterations is bounded by the total flow value; the GAP networks built by the
core algorithm have integral (doubled) capacities, so the routine is exact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.flow.graph import FlowNetwork

_EPS = 1e-12
_INF = float("inf")


@dataclass
class FlowResult:
    """Result of a min-cost-flow computation.

    Attributes
    ----------
    value:
        Total amount of flow routed from the source side to the sink side.
    cost:
        Total cost ``sum(flow_e * cost_e)`` over user edges.
    edge_flow:
        Mapping from user edge id to the flow carried.
    satisfied:
        For :func:`min_cost_flow`: whether all supplies/demands were met.
    """

    value: float
    cost: float
    edge_flow: dict[int, float] = field(default_factory=dict)
    satisfied: bool = True


def _bellman_ford_potentials(net: FlowNetwork, source: int) -> list[float]:
    """Initial potentials handling negative residual costs (Bellman-Ford)."""
    n = net.num_nodes
    dist = [_INF] * n
    dist[source] = 0.0
    for _ in range(n - 1):
        changed = False
        for node in range(n):
            if dist[node] == _INF:
                continue
            for arc in net.out_arcs(node):
                if net.residual_capacity(arc) <= _EPS:
                    continue
                target = net._arc_target(arc)
                candidate = dist[node] + net._arc_cost_of(arc)
                if candidate < dist[target] - 1e-15:
                    dist[target] = candidate
                    changed = True
        if not changed:
            break
    return dist


def _dijkstra(
    net: FlowNetwork, source: int, potentials: list[float]
) -> tuple[list[float], list[int]]:
    """Shortest paths on reduced costs; returns (distances, parent arcs)."""
    n = net.num_nodes
    dist = [_INF] * n
    parent_arc = [-1] * n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    visited = [False] * n
    while heap:
        d, node = heapq.heappop(heap)
        if visited[node]:
            continue
        visited[node] = True
        for arc in net.out_arcs(node):
            if net.residual_capacity(arc) <= _EPS:
                continue
            target = net._arc_target(arc)
            if visited[target] or potentials[target] == _INF:
                continue
            reduced = net._arc_cost_of(arc) + potentials[node] - potentials[target]
            # Reduced costs are non-negative up to floating point noise.
            if reduced < 0:
                reduced = 0.0
            candidate = d + reduced
            if candidate < dist[target] - 1e-15:
                dist[target] = candidate
                parent_arc[target] = arc
                heapq.heappush(heap, (candidate, target))
    return dist, parent_arc


def min_cost_max_flow(
    net: FlowNetwork, source: int, sink: int, limit: float = _INF
) -> FlowResult:
    """Maximum flow of minimum cost from ``source`` to ``sink``.

    The network's internal flow state is updated in place; the returned
    :class:`FlowResult` additionally snapshots per-edge flows.
    """
    if source == sink:
        raise ValueError("source and sink must differ")

    potentials = _bellman_ford_potentials(net, source)
    total_flow = 0.0
    total_cost = 0.0
    while total_flow < limit - _EPS:
        dist, parent_arc = _dijkstra(net, source, potentials)
        if dist[sink] == _INF:
            break
        # Update potentials with the new distances (standard Johnson update).
        for node in range(net.num_nodes):
            if dist[node] < _INF and potentials[node] < _INF:
                potentials[node] += dist[node]
        # Find bottleneck along the path.
        bottleneck = limit - total_flow
        node = sink
        while node != source:
            arc = parent_arc[node]
            bottleneck = min(bottleneck, net.residual_capacity(arc))
            node = net._arc_target(arc ^ 1)
        if bottleneck <= _EPS:
            break
        # Augment.
        node = sink
        path_cost = 0.0
        while node != source:
            arc = parent_arc[node]
            net._push(arc, bottleneck)
            path_cost += net._arc_cost_of(arc)
            node = net._arc_target(arc ^ 1)
        total_flow += bottleneck
        total_cost += bottleneck * path_cost
    return FlowResult(value=total_flow, cost=total_cost, edge_flow=net.flows())


def min_cost_flow(net: FlowNetwork, supplies: dict[int, float]) -> FlowResult:
    """Minimum-cost b-flow.

    Parameters
    ----------
    net:
        Flow network.  Two auxiliary nodes are appended for the reduction; the
        caller's node indices remain valid.
    supplies:
        Mapping node -> supply.  Positive entries produce flow, negative
        entries consume it.  Supplies must sum to (approximately) zero.

    Returns
    -------
    FlowResult
        ``satisfied`` is True iff every supply and demand was routed.
    """
    balance = sum(supplies.values())
    if abs(balance) > 1e-6:
        raise ValueError(f"supplies must sum to zero, got {balance}")
    super_source = net.add_node()
    super_sink = net.add_node()
    total_supply = 0.0
    for node, amount in supplies.items():
        if amount > 0:
            net.add_edge(super_source, node, capacity=amount, cost=0.0)
            total_supply += amount
        elif amount < 0:
            net.add_edge(node, super_sink, capacity=-amount, cost=0.0)
    result = min_cost_max_flow(net, super_source, super_sink)
    result.satisfied = abs(result.value - total_supply) <= 1e-6
    return result
