"""Directed flow-network representation.

The representation follows the classic residual-pair layout used by
competitive-programming style flow solvers: every edge added by the user
creates a *forward* arc with the given capacity and cost and a paired
*backward* arc with zero capacity and negated cost.  The two arcs are stored
at consecutive indices so that ``edge_id ^ 1`` is always the reverse arc.

The structure is intentionally small and allocation-friendly: all per-edge
attributes live in parallel Python lists (converted to numpy arrays on demand
by the solvers), and nodes are referred to by integer indices.  Hashable user
labels are supported through an internal name table, which is what the GAP
network construction in :mod:`repro.core.gap` uses ("source", reflector ids,
(reflector, sink) pair tuples, per-sink box tuples, "sink").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator


@dataclass(frozen=True)
class Edge:
    """Read-only view of a user-added edge.

    Attributes
    ----------
    edge_id:
        Identifier of the forward arc; pass to :meth:`FlowNetwork.flow_on`.
    tail, head:
        Integer node indices.
    capacity:
        Original (non-residual) capacity.
    cost:
        Per-unit cost of sending flow along the edge.
    data:
        Arbitrary user payload attached at :meth:`FlowNetwork.add_edge` time.
    """

    edge_id: int
    tail: int
    head: int
    capacity: float
    cost: float
    data: object = None


class FlowNetwork:
    """A mutable directed graph with edge capacities and per-unit costs.

    Nodes may be created anonymously (:meth:`add_node`) or by hashable label
    (:meth:`node`).  Edges are directed; parallel edges and self-loops are
    allowed (self-loops never carry flow in any of the solvers).

    Examples
    --------
    >>> net = FlowNetwork()
    >>> s, a, t = net.node("s"), net.node("a"), net.node("t")
    >>> _ = net.add_edge(s, a, capacity=2.0, cost=1.0)
    >>> _ = net.add_edge(a, t, capacity=1.0, cost=0.0)
    >>> net.num_nodes, net.num_edges
    (3, 2)
    """

    def __init__(self) -> None:
        # Residual arrays: index e is an arc, e ^ 1 its reverse.
        self._arc_head: list[int] = []
        self._arc_cap: list[float] = []
        self._arc_cost: list[float] = []
        # Adjacency: node -> list of arc indices leaving it.
        self._adj: list[list[int]] = []
        # Bookkeeping for user edges (forward arcs only).
        self._edge_tail: list[int] = []
        self._edge_data: list[object] = []
        self._labels: dict[Hashable, int] = {}
        self._label_of: list[Hashable | None] = []

    # ------------------------------------------------------------------ nodes
    @property
    def num_nodes(self) -> int:
        """Number of nodes currently in the network."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of user-added (forward) edges."""
        return len(self._arc_head) // 2

    def add_node(self, label: Hashable | None = None) -> int:
        """Add a node and return its integer index.

        If ``label`` is given it must be unused; the node becomes addressable
        through :meth:`node` afterwards.
        """
        if label is not None and label in self._labels:
            raise ValueError(f"node label {label!r} already exists")
        idx = len(self._adj)
        self._adj.append([])
        self._label_of.append(label)
        if label is not None:
            self._labels[label] = idx
        return idx

    def node(self, label: Hashable) -> int:
        """Return the index of the node with ``label``, creating it if needed."""
        if label in self._labels:
            return self._labels[label]
        return self.add_node(label)

    def has_label(self, label: Hashable) -> bool:
        """Whether a node with the given label exists."""
        return label in self._labels

    def label_of(self, node: int) -> Hashable | None:
        """Return the label of ``node`` (``None`` for anonymous nodes)."""
        return self._label_of[node]

    # ------------------------------------------------------------------ edges
    def add_edge(
        self,
        tail: int,
        head: int,
        capacity: float,
        cost: float = 0.0,
        data: object = None,
    ) -> int:
        """Add a directed edge and return its edge id.

        Parameters
        ----------
        tail, head:
            Integer node indices (as returned by :meth:`add_node` / :meth:`node`).
        capacity:
            Non-negative capacity.
        cost:
            Per-unit cost; may be negative (the min-cost solver handles it via
            an initial Bellman-Ford potential pass).
        data:
            Arbitrary payload retrievable through :meth:`edge`.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if not (0 <= tail < self.num_nodes) or not (0 <= head < self.num_nodes):
            raise IndexError("tail/head out of range; add nodes first")
        arc = len(self._arc_head)
        # forward arc
        self._arc_head.append(head)
        self._arc_cap.append(float(capacity))
        self._arc_cost.append(float(cost))
        self._adj[tail].append(arc)
        # backward (residual) arc
        self._arc_head.append(tail)
        self._arc_cap.append(0.0)
        self._arc_cost.append(-float(cost))
        self._adj[head].append(arc + 1)

        self._edge_tail.append(tail)
        self._edge_data.append(data)
        return arc

    def edge(self, edge_id: int) -> Edge:
        """Return a read-only view of the user edge with id ``edge_id``."""
        if edge_id % 2 != 0 or edge_id >= len(self._arc_head):
            raise KeyError(f"{edge_id} is not a user edge id")
        user_index = edge_id // 2
        return Edge(
            edge_id=edge_id,
            tail=self._edge_tail[user_index],
            head=self._arc_head[edge_id],
            capacity=self._arc_cap[edge_id] + self._arc_cap[edge_id ^ 1],
            cost=self._arc_cost[edge_id],
            data=self._edge_data[user_index],
        )

    def edges(self) -> Iterator[Edge]:
        """Iterate over all user edges."""
        for user_index in range(self.num_edges):
            yield self.edge(2 * user_index)

    def out_arcs(self, node: int) -> Iterable[int]:
        """Residual arcs (forward and backward) leaving ``node``."""
        return self._adj[node]

    # -------------------------------------------------------------- flow state
    def flow_on(self, edge_id: int) -> float:
        """Current flow on the user edge ``edge_id``.

        The flow equals the residual capacity accumulated on the backward arc.
        """
        if edge_id % 2 != 0:
            raise KeyError(f"{edge_id} is not a user edge id")
        return self._arc_cap[edge_id ^ 1]

    def residual_capacity(self, arc: int) -> float:
        """Residual capacity of arc ``arc`` (forward or backward)."""
        return self._arc_cap[arc]

    def reset_flow(self) -> None:
        """Reset all flow to zero, restoring original capacities."""
        for user_index in range(self.num_edges):
            fwd = 2 * user_index
            bwd = fwd + 1
            total = self._arc_cap[fwd] + self._arc_cap[bwd]
            self._arc_cap[fwd] = total
            self._arc_cap[bwd] = 0.0

    # Internal mutation helpers used by the solvers --------------------------
    def _push(self, arc: int, amount: float) -> None:
        self._arc_cap[arc] -= amount
        self._arc_cap[arc ^ 1] += amount

    def _arc_target(self, arc: int) -> int:
        return self._arc_head[arc]

    def _arc_cost_of(self, arc: int) -> float:
        return self._arc_cost[arc]

    # ------------------------------------------------------------------ misc
    def total_flow_cost(self) -> float:
        """Cost of the currently stored flow (sum of flow * cost per edge)."""
        return sum(self.flow_on(2 * i) * self._arc_cost[2 * i] for i in range(self.num_edges))

    def flows(self) -> dict[int, float]:
        """Mapping from user edge id to current flow."""
        return {2 * i: self.flow_on(2 * i) for i in range(self.num_edges)}

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"FlowNetwork(nodes={self.num_nodes}, edges={self.num_edges})"
