"""Flow-network substrate.

This subpackage implements the flow machinery required by the modified
generalized-assignment (GAP) rounding stage of the SPAA'03 overlay design
algorithm (Section 5 of the paper, Figure 2), as well as by the
Srinivasan--Teo style path rounding used for the Section 6 extensions.

It is a self-contained substrate: graphs, maximum flow (Dinic) and
minimum-cost flow (successive shortest augmenting paths with potentials) are
implemented here from scratch; :mod:`networkx` is only used in the test suite
as an independent oracle.

Public API
----------
``FlowNetwork``
    Mutable directed flow network with capacities and per-unit costs.
``max_flow``
    Dinic's algorithm; returns the flow value and per-edge flows.
``min_cost_flow``
    Successive-shortest-path min-cost flow for a given supply/demand vector.
``min_cost_max_flow``
    Maximum flow of minimum cost between two terminals.
``FlowResult``
    Result container (value, cost, per-edge flow, per-node excess).
"""

from repro.flow.graph import Edge, FlowNetwork
from repro.flow.maxflow import max_flow
from repro.flow.mincost import FlowResult, min_cost_flow, min_cost_max_flow
from repro.flow.validation import (
    assert_feasible_flow,
    flow_conservation_violations,
    is_feasible_flow,
)

__all__ = [
    "Edge",
    "FlowNetwork",
    "FlowResult",
    "max_flow",
    "min_cost_flow",
    "min_cost_max_flow",
    "assert_feasible_flow",
    "flow_conservation_violations",
    "is_feasible_flow",
]
