"""Validation helpers for flows.

These are used both by the test suite (as invariants for property-based
testing of the solvers) and by :mod:`repro.core.gap`, which asserts that the
half-integral flow it derives from the Figure-2 network is feasible before
doubling it into the final 0/1 assignment.
"""

from __future__ import annotations

from repro.flow.graph import FlowNetwork

_DEFAULT_TOL = 1e-7


def flow_conservation_violations(
    net: FlowNetwork,
    source: int,
    sink: int,
    tol: float = _DEFAULT_TOL,
) -> dict[int, float]:
    """Net imbalance (inflow - outflow) at every node other than the terminals.

    Returns a mapping ``node -> imbalance`` restricted to nodes whose
    imbalance exceeds ``tol`` in absolute value.  An empty mapping means the
    stored flow conserves mass everywhere it should.
    """
    imbalance = [0.0] * net.num_nodes
    for edge in net.edges():
        flow = net.flow_on(edge.edge_id)
        imbalance[edge.tail] -= flow
        imbalance[edge.head] += flow
    violations: dict[int, float] = {}
    for node in range(net.num_nodes):
        if node in (source, sink):
            continue
        if abs(imbalance[node]) > tol:
            violations[node] = imbalance[node]
    return violations


def is_feasible_flow(
    net: FlowNetwork,
    source: int,
    sink: int,
    tol: float = _DEFAULT_TOL,
) -> bool:
    """Whether the stored flow respects capacities and conservation."""
    for edge in net.edges():
        flow = net.flow_on(edge.edge_id)
        if flow < -tol or flow > edge.capacity + tol:
            return False
    return not flow_conservation_violations(net, source, sink, tol)


def assert_feasible_flow(
    net: FlowNetwork,
    source: int,
    sink: int,
    tol: float = _DEFAULT_TOL,
) -> None:
    """Raise ``AssertionError`` with a diagnostic message if the flow is infeasible."""
    for edge in net.edges():
        flow = net.flow_on(edge.edge_id)
        if flow < -tol or flow > edge.capacity + tol:
            raise AssertionError(
                f"edge {edge.edge_id} ({edge.tail}->{edge.head}) carries {flow} "
                f"but has capacity {edge.capacity}"
            )
    violations = flow_conservation_violations(net, source, sink, tol)
    if violations:
        raise AssertionError(f"flow conservation violated at nodes {violations}")
