"""repro -- Designing Overlay Multicast Networks for Streaming (SPAA 2003).

A faithful, self-contained Python reproduction of the approximation algorithm
of Andreev, Maggs, Meyerson and Sitaraman for designing three-level overlay
multicast networks (sources -> reflectors -> edgeservers) that deliver live
streams subject to capacity, quality (loss) and reliability requirements at
near-minimum cost.

Quick start
-----------
>>> from repro import OverlayDesignProblem, DesignParameters, DesignRequest, run_request
>>> problem = OverlayDesignProblem()
>>> problem.add_stream("concert")
>>> for r in ("r1", "r2"):
...     problem.add_reflector(r, cost=10.0, fanout=4)
...     problem.add_stream_edge("concert", r, loss_probability=0.01, cost=1.0)
>>> problem.add_sink("boston")
>>> problem.add_delivery_edge("r1", "boston", loss_probability=0.05, cost=0.5)
>>> problem.add_delivery_edge("r2", "boston", loss_probability=0.10, cost=0.25)
>>> problem.add_demand("boston", "concert", success_threshold=0.99)
>>> result = run_request(
...     DesignRequest(problem, DesignParameters(seed=7, repair_shortfall=True)))
>>> result.solution.success_probability(problem.demands[0]) >= 0.99
True
>>> result.solution.total_cost() >= result.report.lp_lower_bound
True

(``repair_shortfall`` enables the Section-7-style greedy repair pass; the
bare approximation algorithm only meets the threshold *with high
probability*, which on a two-reflector toy instance is not a certainty.)

Every design strategy -- the paper's algorithm, its Section-6 extension and
all six baselines -- lives in the strategy registry (:mod:`repro.api`)
behind one typed request/response boundary.  The historical free functions
(``design_overlay`` and friends) are deprecated wrappers over it, so results
are identical seed-for-seed:

>>> from repro import get_designer
>>> direct = get_designer("spaa03").design(
...     DesignRequest(problem, DesignParameters(seed=7, repair_shortfall=True)))
>>> direct.solution.assignments == result.solution.assignments
True
>>> sorted(designer_names())[:3]
['exact', 'greedy', 'lp-bound']

Many requests fan out over worker processes deterministically via
``design_batch(requests, jobs=...)``; :mod:`repro.serve` layers a
content-addressed artifact cache, a long-lived :class:`~repro.serve.DesignSession`
and an async :class:`~repro.serve.DesignService` front on top.  See
``docs/api.md`` for the registry and the migration guide, and
``docs/serving.md`` for the service layer.

Package layout
--------------
``repro.core``        the paper's algorithm (LP, rounding, GAP, extensions)
``repro.api``         unified strategy API: registry, staged pipeline, batch
``repro.serve``       design service: artifact cache, sessions, async front
``repro.lp``          LP modeling/solving substrate
``repro.flow``        max-flow / min-cost-flow substrate
``repro.network``     overlay topology, loss models, exact reliability
``repro.workloads``   synthetic Akamai-like instance generators
``repro.simulation``  packet-level streaming simulation + failure injection
``repro.baselines``   greedy / naive / random / single-tree comparison designs
``repro.analysis``    metrics, audits, experiment helpers
"""

from repro.api import (
    Designer,
    DesignPipeline,
    DesignRequest,
    DesignResult,
    EvaluationSpec,
    design_batch,
    design_incremental,
    designer_names,
    get_designer,
    register_designer,
    run_request,
)
from repro.core.algorithm import (
    DesignParameters,
    DesignReport,
    design_overlay,
    fractional_lower_bound,
    repair_weight_shortfalls,
)
from repro.core.extensions import design_overlay_extended
from repro.core.formulation import (
    ExtensionOptions,
    build_formulation,
    build_sparse_formulation,
)
from repro.core.problem import Demand, DeliveryEdge, OverlayDesignProblem, StreamEdge
from repro.core.rounding import RoundingParameters
from repro.core.solution import OverlaySolution
from repro.incremental import ProblemDelta, apply_delta, diff_problems, invert_delta
from repro.serve import ArtifactCache, DesignService, DesignSession
from repro.simulation import (
    MonteCarloConfig,
    evaluate_design,
    run_monte_carlo,
    simulate_solution,
)

__version__ = "1.2.0"

__all__ = [
    "ArtifactCache",
    "Demand",
    "DeliveryEdge",
    "Designer",
    "DesignParameters",
    "DesignPipeline",
    "DesignReport",
    "DesignRequest",
    "DesignResult",
    "DesignService",
    "DesignSession",
    "EvaluationSpec",
    "ExtensionOptions",
    "MonteCarloConfig",
    "OverlayDesignProblem",
    "OverlaySolution",
    "ProblemDelta",
    "RoundingParameters",
    "StreamEdge",
    "apply_delta",
    "build_formulation",
    "build_sparse_formulation",
    "design_batch",
    "design_incremental",
    "design_overlay",
    "design_overlay_extended",
    "designer_names",
    "diff_problems",
    "evaluate_design",
    "fractional_lower_bound",
    "get_designer",
    "invert_delta",
    "register_designer",
    "repair_weight_shortfalls",
    "run_monte_carlo",
    "run_request",
    "simulate_solution",
    "__version__",
]
