"""Cost-effectiveness greedy baseline.

The natural generalisation of the greedy set-cover algorithm (Johnson /
Chvatal, cited by the paper as the matching ``O(log n)`` upper bound for
plain set cover) to this problem: repeatedly pick the *assignment* (reflector,
demand) with the best ratio of marginal cost to marginal covered weight, where
marginal cost includes the reflector build cost and the stream-edge cost the
first time they are incurred, and fanout bookkeeping prevents overloading a
reflector.

The paper points out why this heuristic has no guarantee here: with multiple
commodities and fanout limits the "coverage" of adding reflectors is not
concave ("adding two reflectors may improve our solution by a larger margin
than the sum of the improvements of the reflectors taken individually").  It
is nevertheless the strongest simple baseline and the primary comparison of
the C1 benchmark.
"""

from __future__ import annotations

import heapq

from repro.core.problem import Demand, OverlayDesignProblem
from repro.core.solution import OverlaySolution

_EPS = 1e-12


def greedy_design(
    problem: OverlayDesignProblem,
    fanout_slack: float = 1.0,
) -> OverlaySolution:
    """Greedy weighted multi-cover design.

    Compatibility wrapper over the unified strategy API: delegates to the
    registered ``"greedy"`` designer (``repro.api.get_designer("greedy")``)
    and returns its solution -- results are identical, see ``docs/api.md``.

    Parameters
    ----------
    problem:
        The design instance.
    fanout_slack:
        Multiple of each reflector's fanout the greedy is allowed to use
        (1.0 = respect fanout exactly; the paper's algorithm is allowed 4x, so
        comparisons at equal slack are also interesting).

    Returns
    -------
    OverlaySolution
        Assignments cover every demand's weight requirement whenever the
        fanout budget permits; remaining shortfalls are left (and reported by
        the solution audit), exactly as they would be for any other design.
    """
    import warnings

    from repro.api import DesignRequest, get_designer

    warnings.warn(
        "greedy_design is deprecated; submit a DesignRequest(strategy='greedy') "
        "through repro.api.run_request instead (see the migration table in "
        "docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    request = DesignRequest(problem=problem, options={"fanout_slack": fanout_slack})
    return get_designer("greedy").design(request).solution


def _greedy_design_impl(
    problem: OverlayDesignProblem,
    fanout_slack: float = 1.0,
) -> OverlaySolution:
    """The actual greedy algorithm (run by the registered designer)."""
    problem.validate()

    built: set[str] = set()
    deliveries: set[tuple[str, str]] = set()
    assignments: dict[tuple[str, str], list[str]] = {}
    load: dict[str, int] = {}
    remaining: dict[tuple[str, str], float] = {
        demand.key: problem.demand_weight(demand) for demand in problem.demands
    }
    demand_by_key: dict[tuple[str, str], Demand] = {d.key: d for d in problem.demands}

    def marginal_cost(demand: Demand, reflector: str) -> float:
        cost = problem.assignment_cost(demand, reflector)
        if reflector not in built:
            cost += problem.reflector_cost(reflector)
        if (demand.stream, reflector) not in deliveries:
            cost += problem.stream_edge(demand.stream, reflector).cost
        return cost

    def capacity_left(reflector: str) -> float:
        return fanout_slack * problem.fanout(reflector) - load.get(reflector, 0)

    # Priority queue of candidate assignments by cost-effectiveness.  Entries
    # are lazily revalidated when popped (standard lazy-greedy pattern) because
    # opening a reflector changes the marginal cost of its other assignments.
    heap: list[tuple[float, str, tuple[str, str]]] = []

    def push(demand: Demand, reflector: str) -> None:
        weight = problem.edge_weight(demand, reflector)
        if weight <= _EPS:
            return
        ratio = marginal_cost(demand, reflector) / weight
        heapq.heappush(heap, (ratio, reflector, demand.key))

    for demand in problem.demands:
        for reflector in problem.candidate_reflectors(demand):
            push(demand, reflector)

    while heap and any(value > _EPS for value in remaining.values()):
        ratio, reflector, demand_key = heapq.heappop(heap)
        demand = demand_by_key[demand_key]
        if remaining[demand_key] <= _EPS:
            continue
        if reflector in assignments.get(demand_key, []):
            continue
        if capacity_left(reflector) < 1.0:
            continue
        weight = problem.edge_weight(demand, reflector)
        current_ratio = marginal_cost(demand, reflector) / max(weight, _EPS)
        if current_ratio > ratio + 1e-9:
            # Stale entry (marginal cost changed); re-insert with the new key.
            heapq.heappush(heap, (current_ratio, reflector, demand_key))
            continue
        # Commit the assignment.
        assignments.setdefault(demand_key, []).append(reflector)
        built.add(reflector)
        deliveries.add((demand.stream, reflector))
        load[reflector] = load.get(reflector, 0) + 1
        remaining[demand_key] = max(0.0, remaining[demand_key] - weight)

    solution = OverlaySolution.from_assignments(
        problem, assignments, metadata={"algorithm": "greedy-cost-effectiveness"}
    )
    return solution
