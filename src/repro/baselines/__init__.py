"""Baseline overlay-design algorithms.

The paper positions its LP-rounding algorithm against simpler strategies
(greedy set-cover-style heuristics, single multicast trees, naive per-sink
choices); none of those come with its cost/reliability guarantees.  To make
that comparison measurable, this subpackage implements each strategy against
the same :class:`~repro.core.problem.OverlayDesignProblem` interface and
produces the same :class:`~repro.core.solution.OverlaySolution` type:

* :mod:`repro.baselines.greedy` -- cost-effectiveness greedy (the natural
  extension of the greedy set-cover algorithm to weighted multi-cover with
  fanout bookkeeping);
* :mod:`repro.baselines.naive` -- quality-first per-demand choice, ignoring
  global cost (the "traditional centralized" strawman of Section 1);
* :mod:`repro.baselines.random_design` -- random feasible-ish assignment
  (sanity floor for comparisons);
* :mod:`repro.baselines.single_tree` -- one reflector per stream, no
  redundancy (an IP-multicast-like tree, Section 1.4's alternative);
* :mod:`repro.baselines.lp_bound` -- the fractional LP optimum, the lower
  bound every cost ratio is measured against;
* :mod:`repro.baselines.milp` -- the Section-2 IP solved exactly through a
  registered MILP backend (scales far past the brute-force search; see
  ``docs/solvers.md``).

Every baseline is registered with the unified strategy registry
(:mod:`repro.api`) under a stable name (``"greedy"``, ``"naive-quality-first"``,
``"single-tree"``, ``"random"``, ``"exact"``, ``"milp-exact"``,
``"lp-bound"``); the functions
exported here are thin compatibility wrappers that delegate to the registered
designers and return identical results.  New code should prefer
``repro.api.get_designer(name).design(request)`` -- see ``docs/api.md``.
"""

from repro.baselines.exact import ExactResult, SearchSpaceTooLarge, exact_design
from repro.baselines.greedy import greedy_design
from repro.baselines.lp_bound import lp_lower_bound
from repro.baselines.milp import MILPResult, milp_exact_design
from repro.baselines.naive import naive_quality_first_design
from repro.baselines.random_design import random_design
from repro.baselines.single_tree import single_tree_design

__all__ = [
    "ExactResult",
    "MILPResult",
    "SearchSpaceTooLarge",
    "exact_design",
    "greedy_design",
    "lp_lower_bound",
    "milp_exact_design",
    "naive_quality_first_design",
    "random_design",
    "single_tree_design",
]
