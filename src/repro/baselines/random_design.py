"""Random-assignment baseline.

A deliberately weak comparison point: each demand is served by a uniformly
random subset of its candidate reflectors (respecting fanout), drawn until
the weight requirement is met or candidates run out.  Any sensible algorithm
should beat it on cost at equal reliability; its role in the C1 benchmark is
to calibrate how much of the gap between the LP-rounding algorithm and the
greedy heuristic is down to actual optimisation rather than problem slack.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution

_EPS = 1e-12


def random_design(
    problem: OverlayDesignProblem,
    rng: np.random.Generator | int | None = None,
    fanout_slack: float = 1.0,
) -> OverlaySolution:
    """Serve each demand from random candidate reflectors until satisfied.

    Compatibility wrapper over the unified strategy API: delegates to the
    registered ``"random"`` designer and returns its solution -- results are
    identical seed-for-seed, see ``docs/api.md``.  (A generator passed as
    ``rng`` is forwarded in-memory; such a request is not JSON-serializable.)
    """
    import warnings

    from repro.api import DesignRequest, get_designer

    warnings.warn(
        "random_design is deprecated; submit a DesignRequest(strategy='random') "
        "through repro.api.run_request instead (see the migration table in "
        "docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    request = DesignRequest(
        problem=problem, options={"rng": rng, "fanout_slack": fanout_slack}
    )
    return get_designer("random").design(request).solution


def _random_design_impl(
    problem: OverlayDesignProblem,
    rng: np.random.Generator | int | None = None,
    fanout_slack: float = 1.0,
) -> OverlaySolution:
    """The actual random-assignment algorithm (run by the registered designer)."""
    problem.validate()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    assignments: dict[tuple[str, str], list[str]] = {}
    load: dict[str, int] = {}

    def capacity_left(reflector: str) -> float:
        return fanout_slack * problem.fanout(reflector) - load.get(reflector, 0)

    demand_order = list(problem.demands)
    rng.shuffle(demand_order)
    for demand in demand_order:
        required = problem.demand_weight(demand)
        delivered = 0.0
        candidates = problem.candidate_reflectors(demand)
        rng.shuffle(candidates)
        chosen: list[str] = []
        for reflector in candidates:
            if delivered >= required - _EPS:
                break
            if capacity_left(reflector) < 1.0:
                continue
            chosen.append(reflector)
            load[reflector] = load.get(reflector, 0) + 1
            delivered += problem.edge_weight(demand, reflector)
        assignments[demand.key] = chosen

    return OverlaySolution.from_assignments(
        problem, assignments, metadata={"algorithm": "random-design"}
    )
