"""Quality-first naive baseline.

A caricature of the "traditional centralized" approach of the paper's
introduction, adapted to the three-level setting: every demand greedily grabs
the *most reliable* reflector paths (lowest two-hop loss) until its quality
requirement is met, with no regard for cost and no coordination between
demands beyond fanout bookkeeping.  It usually meets the quality targets but
at a much higher cost than the LP-rounding algorithm -- which is exactly the
trade-off the C1 benchmark quantifies.
"""

from __future__ import annotations

from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution

_EPS = 1e-12


def naive_quality_first_design(
    problem: OverlayDesignProblem,
    fanout_slack: float = 1.0,
) -> OverlaySolution:
    """Serve each demand from its most reliable reflectors until satisfied.

    Compatibility wrapper over the unified strategy API: delegates to the
    registered ``"naive-quality-first"`` designer and returns its solution --
    results are identical, see ``docs/api.md``.
    """
    import warnings

    from repro.api import DesignRequest, get_designer

    warnings.warn(
        "naive_quality_first_design is deprecated; submit a "
        "DesignRequest(strategy='naive-quality-first') through "
        "repro.api.run_request instead (see the migration table in docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    request = DesignRequest(problem=problem, options={"fanout_slack": fanout_slack})
    return get_designer("naive-quality-first").design(request).solution


def _naive_quality_first_design_impl(
    problem: OverlayDesignProblem,
    fanout_slack: float = 1.0,
) -> OverlaySolution:
    """The actual quality-first algorithm (run by the registered designer)."""
    problem.validate()

    assignments: dict[tuple[str, str], list[str]] = {}
    load: dict[str, int] = {}

    def capacity_left(reflector: str) -> float:
        return fanout_slack * problem.fanout(reflector) - load.get(reflector, 0)

    # Hardest demands first so they get first pick of the reliable reflectors.
    demands = sorted(
        problem.demands, key=lambda d: problem.demand_weight(d), reverse=True
    )
    for demand in demands:
        required = problem.demand_weight(demand)
        delivered = 0.0
        candidates = sorted(
            problem.candidate_reflectors(demand),
            key=lambda r: problem.path_failure(demand, r),
        )
        chosen: list[str] = []
        for reflector in candidates:
            if delivered >= required - _EPS:
                break
            if capacity_left(reflector) < 1.0:
                continue
            chosen.append(reflector)
            load[reflector] = load.get(reflector, 0) + 1
            delivered += problem.edge_weight(demand, reflector)
        assignments[demand.key] = chosen

    return OverlaySolution.from_assignments(
        problem, assignments, metadata={"algorithm": "naive-quality-first"}
    )
