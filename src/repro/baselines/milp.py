"""Exact MILP solver for the Section-2 integer program.

Where :mod:`repro.baselines.exact` brute-forces tiny instances by enumerating
per-demand reflector subsets, this module hands the *actual* Section-2 integer
program -- the same :class:`~repro.lp.sparse.SparseLPBuilder` blocks the LP
relaxation uses, with integrality restored on every variable -- to a MILP
backend (:mod:`repro.lp.backends`, ``"highs-mip"`` by default).  That scales
the ground truth from a handful of sinks to hundreds, which is what lets the
F3 benchmark measure the paper's LP-vs-OPT integrality gap at realistic sizes.

Symmetry breaking
-----------------
Internet-scale instances contain many *interchangeable* reflectors: same
build cost, fanout, color and capacity, and identical stream/delivery edges
(metro templates stamp them out by the dozen).  Any permutation of such a
class maps feasible designs to feasible designs of equal cost, so the
branch-and-bound tree contains each design once per permutation.  Following
the orbitope trick from districting MILPs, we order the build variables
within each equivalence class (``z[r1] >= z[r2] >= ...`` in a canonical
order), keeping exactly the lexicographically-largest representative of each
orbit.  The constraint is valid (every orbit retains a member) and cheap
(one sparse row per adjacent pair).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.formulation import ExtensionOptions, build_sparse_formulation
from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution
from repro.lp import LPStatus, SolveOptions, get_backend, solve_compiled
from repro.lp.model import CompiledLP
from repro.lp.sparse import BlockStats
from repro.lp.expr import Sense


@dataclass
class MILPResult:
    """Outcome of an exact MILP solve.

    Attributes
    ----------
    solution:
        The integral overlay design extracted from the incumbent.
    optimal_cost:
        Cost of the design (proven optimal unless ``status`` is
        ``"feasible"``, i.e. a time/gap limit stopped the solver early).
    status:
        ``"optimal"`` or ``"feasible"`` (limit hit with an incumbent).
    mip_gap:
        Relative incumbent-vs-bound gap reported by the solver.
    mip_dual_bound:
        Best proven lower bound on the integer optimum.
    node_count:
        Branch-and-bound nodes explored.
    symmetry_rows:
        Number of orbitope ordering rows added (0 when disabled or when no
        reflectors are interchangeable).
    symmetry_classes:
        Number of interchangeable-reflector classes of size >= 2.
    backend:
        Solver backend that produced the incumbent.
    lp_values:
        Raw variable vector of the incumbent (z, y, x layout of the sparse
        formulation) -- reusable as a warm start for subsequent solves.
    """

    solution: OverlaySolution
    optimal_cost: float
    status: str
    mip_gap: float | None
    mip_dual_bound: float | None
    node_count: int | None
    symmetry_rows: int
    symmetry_classes: int
    backend: str
    lp_values: np.ndarray


def _reflector_equivalence_classes(problem: OverlayDesignProblem) -> list[list[str]]:
    """Group reflectors that are interchangeable under any solution permutation.

    Two reflectors are interchangeable when swapping them maps feasible
    designs to feasible designs of identical cost: same build cost, fanout,
    color and Section-6.2 capacity, and identical stream-edge and
    delivery-edge data (costs, losses, arc capacities, per-stream overrides).
    Returned classes are sorted by reflector registration order; only classes
    with at least two members are returned.
    """
    in_streams: dict[str, list] = defaultdict(list)
    for edge in problem.stream_edges():
        in_streams[edge.reflector].append((edge.stream, edge.cost))
    out_links: dict[str, list] = defaultdict(list)
    overrides = problem.delivery_stream_cost_overrides()
    for reflector, sink, loss, cost in problem.delivery_link_data():
        per_stream = tuple(sorted(overrides.get((reflector, sink), {}).items()))
        cap = problem.arc_capacity(reflector, sink)
        out_links[reflector].append((sink, loss, cost, cap, per_stream))

    order = {name: i for i, name in enumerate(problem.reflectors)}
    classes: dict[tuple, list[str]] = defaultdict(list)
    for name in problem.reflectors:
        info = problem.reflector_info(name)
        signature = (
            info.cost,
            info.fanout,
            info.color,
            info.capacity,
            tuple(sorted(in_streams[name])),
            tuple(sorted(out_links[name])),
        )
        classes[signature].append(name)
    grouped = [sorted(members, key=order.__getitem__) for members in classes.values()]
    grouped = [members for members in grouped if len(members) >= 2]
    grouped.sort(key=lambda members: order[members[0]])
    return grouped


def _with_symmetry_rows(
    compiled: CompiledLP, z_index: dict[str, int], classes: list[list[str]]
) -> tuple[CompiledLP, int]:
    """Append ``z[r_k] - z[r_{k+1}] >= 0`` ordering rows for each class.

    Interchangeable reflectors' delivery edges are identical, so *sinks* are
    indifferent to which representatives carry their streams; forcing builds
    onto the earliest-registered members of each class removes the
    permutation orbit from the search tree without excluding any cost value.
    """
    rows: list[tuple[int, int]] = []
    for members in classes:
        for left, right in zip(members, members[1:]):
            rows.append((z_index[left], z_index[right]))
    if not rows:
        return compiled, 0
    n = len(compiled.c)
    data = np.empty(2 * len(rows))
    data[0::2] = -1.0  # -z[left] + z[right] <= 0  <=>  z[left] >= z[right]
    data[1::2] = 1.0
    row_idx = np.repeat(np.arange(len(rows)), 2)
    col_idx = np.asarray(rows).reshape(-1)
    block = sparse.csr_matrix((data, (row_idx, col_idx)), shape=(len(rows), n))
    A_ub = block if compiled.A_ub is None else sparse.vstack(
        [compiled.A_ub, block], format="csr"
    )
    b_ub = np.concatenate(
        [
            np.zeros(0) if compiled.b_ub is None else np.asarray(compiled.b_ub),
            np.zeros(len(rows)),
        ]
    )
    extended = CompiledLP(
        c=compiled.c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=compiled.A_eq,
        b_eq=compiled.b_eq,
        bounds=compiled.bounds,
        objective_sign=compiled.objective_sign,
        objective_constant=compiled.objective_constant,
    )
    return extended, len(rows)


def milp_exact_design(
    problem: OverlayDesignProblem,
    extensions: ExtensionOptions | None = None,
    backend: str = "highs-mip",
    time_limit: float | None = None,
    mip_gap: float | None = None,
    symmetry_breaking: bool = True,
    warm_start: np.ndarray | None = None,
) -> MILPResult:
    """Solve the Section-2 IP exactly through a registered MILP backend.

    Raises :class:`~repro.lp.SolverError` for unknown backends and
    ``ValueError`` when the IP is infeasible (the message names the
    constraint-family row counts of the build).
    """
    get_backend(backend)  # fail fast with the installed-backend list
    problem.validate()
    formulation = build_sparse_formulation(problem, extensions)
    compiled, stats = formulation.compiled, formulation.stats

    z_index = {name: i for i, name in enumerate(formulation.z_keys)}
    symmetry_rows = 0
    classes: list[list[str]] = []
    if symmetry_breaking:
        classes = _reflector_equivalence_classes(problem)
        compiled, symmetry_rows = _with_symmetry_rows(compiled, z_index, classes)
        if symmetry_rows:
            stats.blocks.append(
                BlockStats(
                    name="(sym) orbitope ordering",
                    rows=symmetry_rows,
                    nonzeros=2 * symmetry_rows,
                    sense=Sense.LE,
                )
            )

    # The Section-2 IP is binary in every variable family (z, y, x).
    integrality = np.ones(len(compiled.c), dtype=np.int8)
    options = SolveOptions(
        integrality=integrality,
        time_limit=time_limit,
        mip_gap=mip_gap,
        warm_start=warm_start,
    )
    lp_solution = solve_compiled(compiled, backend, options=options, stats=stats)
    if not lp_solution.has_solution:
        raise ValueError(
            f"Section-2 IP was not solved: {lp_solution.status.value} "
            f"({lp_solution.message})"
        )

    values = np.asarray(lp_solution.values, dtype=float)
    nz, ny = len(formulation.z_keys), len(formulation.y_keys)
    x_values = values[nz + ny :]
    assignments: dict = defaultdict(list)
    for (reflector, demand_key), value in zip(formulation.x_keys, x_values):
        if value >= 0.5:
            assignments[demand_key].append(reflector)
    solution = OverlaySolution.from_assignments(
        problem,
        dict(assignments),
        metadata={
            "algorithm": "milp-exact",
            "solver_backend": lp_solution.backend,
            "symmetry_rows": symmetry_rows,
        },
    )
    status = "optimal" if lp_solution.status is LPStatus.OPTIMAL else "feasible"
    return MILPResult(
        solution=solution,
        optimal_cost=solution.total_cost(),
        status=status,
        mip_gap=lp_solution.mip_gap,
        mip_dual_bound=lp_solution.mip_dual_bound,
        node_count=lp_solution.mip_node_count,
        symmetry_rows=symmetry_rows,
        symmetry_classes=len(classes),
        backend=lp_solution.backend,
        lp_values=values,
    )


__all__ = ["MILPResult", "milp_exact_design", "_reflector_equivalence_classes"]
