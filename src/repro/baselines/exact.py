"""Exact (brute-force) solver for tiny instances.

The paper measures its algorithm against the LP optimum because computing the
true integer optimum is NP-hard (the problem contains set cover).  For *tiny*
instances, however, the optimum can be found by exhaustive search over the
per-demand reflector subsets, which gives the test suite and the ablation
benchmarks a ground truth: the LP bound must be below it, feasible heuristics
must be above it, and the approximation factor of the main algorithm can be
measured against the real OPT rather than the LP relaxation.

The search enumerates, for every demand, the candidate-reflector subsets that
meet its weight requirement (pruned to subsets of size at most
``max_subset_size``), and then walks the cross product with branch-and-bound
on cost and on the fanout constraints.  Complexity is exponential;
:func:`exact_design` refuses instances whose search space exceeds
``max_search_nodes`` so it cannot be misused on real workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.problem import Demand, OverlayDesignProblem
from repro.core.solution import OverlaySolution

_EPS = 1e-12


@dataclass
class ExactResult:
    """Outcome of the exhaustive search."""

    solution: OverlaySolution
    optimal_cost: float
    nodes_explored: int


class SearchSpaceTooLarge(ValueError):
    """Raised when the instance is too big for exhaustive search."""


def _feasible_subsets(
    problem: OverlayDesignProblem, demand: Demand, max_subset_size: int
) -> list[tuple[str, ...]]:
    """Candidate-reflector subsets meeting the demand's weight requirement."""
    required = problem.demand_weight(demand)
    # Dedup before enumerating: duplicate candidate entries (duplicate
    # registered delivery edges) would otherwise enumerate the same subset
    # repeatedly and inflate nodes_explored.
    candidates = sorted(set(problem.candidate_reflectors(demand)))
    subsets: list[tuple[str, ...]] = []
    for size in range(1, min(max_subset_size, len(candidates)) + 1):
        for subset in combinations(candidates, size):
            weight = sum(problem.edge_weight(demand, r) for r in subset)
            if weight + _EPS >= required:
                # Skip supersets of an already-feasible subset of smaller size:
                # they can never be cheaper on the assignment component alone,
                # but they *can* be cheaper overall by sharing reflector builds,
                # so we keep them -- only exact duplicates are skipped.
                subsets.append(subset)
    return subsets


def exact_design(
    problem: OverlayDesignProblem,
    max_subset_size: int = 3,
    max_search_nodes: int = 2_000_000,
) -> ExactResult:
    """Find a minimum-cost feasible design by exhaustive search.

    Feasibility means: every demand's weight requirement met (constraint (5))
    and every reflector within its fanout (constraint (3)).  Raises
    :class:`SearchSpaceTooLarge` when the product of per-demand subset counts
    exceeds ``max_search_nodes`` and ``ValueError`` when some demand has no
    feasible subset (within ``max_subset_size`` reflectors).

    Compatibility wrapper over the unified strategy API: delegates to the
    registered ``"exact"`` designer and rebuilds the :class:`ExactResult`
    from its result -- outputs are identical, see ``docs/api.md``.
    """
    import warnings

    from repro.api import DesignRequest, get_designer

    warnings.warn(
        "exact_design is deprecated; submit a DesignRequest(strategy='exact') "
        "through repro.api.run_request instead (see the migration table in "
        "docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    request = DesignRequest(
        problem=problem,
        options={
            "max_subset_size": max_subset_size,
            "max_search_nodes": max_search_nodes,
        },
    )
    result = get_designer("exact").design(request)
    return ExactResult(
        solution=result.solution,
        optimal_cost=result.metadata["optimal_cost"],
        nodes_explored=result.metadata["nodes_explored"],
    )


def _exact_design_impl(
    problem: OverlayDesignProblem,
    max_subset_size: int = 3,
    max_search_nodes: int = 2_000_000,
) -> ExactResult:
    """The actual branch-and-bound search (run by the registered designer)."""
    problem.validate()
    demands = problem.demands
    per_demand_subsets: list[list[tuple[str, ...]]] = []
    for demand in demands:
        subsets = _feasible_subsets(problem, demand, max_subset_size)
        if not subsets:
            raise ValueError(
                f"demand {demand.key} cannot be satisfied with subsets of size "
                f"<= {max_subset_size}"
            )
        # Order by assignment cost so branch-and-bound prunes early.
        subsets.sort(
            key=lambda subset: sum(problem.assignment_cost(demand, r) for r in subset)
        )
        per_demand_subsets.append(subsets)

    space = 1
    for subsets in per_demand_subsets:
        space *= len(subsets)
        if space > max_search_nodes:
            raise SearchSpaceTooLarge(
                f"search space exceeds {max_search_nodes} nodes; "
                "exact_design is only meant for tiny instances"
            )

    best_cost = float("inf")
    best_assignment: list[tuple[str, ...]] | None = None
    nodes = 0

    chosen: list[tuple[str, ...]] = []
    load: dict[str, int] = {}
    built: dict[str, int] = {}
    deliveries: dict[tuple[str, str], int] = {}
    running_cost = 0.0

    def marginal_cost(demand: Demand, subset: tuple[str, ...]) -> float:
        cost = 0.0
        for reflector in subset:
            cost += problem.assignment_cost(demand, reflector)
            if built.get(reflector, 0) == 0:
                cost += problem.reflector_cost(reflector)
            if deliveries.get((demand.stream, reflector), 0) == 0:
                cost += problem.stream_edge(demand.stream, reflector).cost
        return cost

    def apply(demand: Demand, subset: tuple[str, ...], delta: int) -> None:
        for reflector in subset:
            load[reflector] = load.get(reflector, 0) + delta
            built[reflector] = built.get(reflector, 0) + delta
            key = (demand.stream, reflector)
            deliveries[key] = deliveries.get(key, 0) + delta

    def recurse(index: int) -> None:
        nonlocal best_cost, best_assignment, running_cost, nodes
        nodes += 1
        if running_cost >= best_cost - 1e-12:
            return
        if index == len(demands):
            best_cost = running_cost
            best_assignment = list(chosen)
            return
        demand = demands[index]
        for subset in per_demand_subsets[index]:
            if any(
                load.get(reflector, 0) + 1 > problem.fanout(reflector)
                for reflector in subset
            ):
                continue
            cost = marginal_cost(demand, subset)
            if running_cost + cost >= best_cost - 1e-12:
                continue
            chosen.append(subset)
            apply(demand, subset, +1)
            running_cost += cost
            recurse(index + 1)
            running_cost -= cost
            apply(demand, subset, -1)
            chosen.pop()

    recurse(0)
    if best_assignment is None:
        raise ValueError("no feasible design exists within the fanout bounds")

    assignments = {
        demand.key: list(subset) for demand, subset in zip(demands, best_assignment)
    }
    solution = OverlaySolution.from_assignments(
        problem, assignments, metadata={"algorithm": "exact-brute-force"}
    )
    return ExactResult(
        solution=solution, optimal_cost=solution.total_cost(), nodes_explored=nodes
    )
