"""Fractional LP lower bound.

The LP relaxation's optimum is a lower bound on the cost of *any* feasible
integral design, so every approximation-ratio measurement in the benchmark
harness divides by it.  This module is a thin, documented alias kept in
``repro.baselines`` so comparative experiments can treat the bound as "one
more algorithm" in their result tables.
"""

from __future__ import annotations

from repro.core.formulation import ExtensionOptions
from repro.core.problem import OverlayDesignProblem


def lp_lower_bound(
    problem: OverlayDesignProblem, extensions: ExtensionOptions | None = None
) -> float:
    """Optimal objective of the Section-2 LP relaxation (cost lower bound).

    Compatibility wrapper over the unified strategy API: delegates to the
    registered ``"lp-bound"`` designer and returns its ``lower_bound`` --
    results are identical, see ``docs/api.md``.
    """
    import warnings

    from repro.api import DesignRequest, get_designer
    from repro.core.algorithm import DesignParameters

    warnings.warn(
        "lp_lower_bound is deprecated; submit a DesignRequest("
        "strategy='lp-bound') through repro.api.run_request instead (see the "
        "migration table in docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    parameters = (
        DesignParameters(extensions=extensions)
        if extensions is not None
        else DesignParameters()
    )
    request = DesignRequest(problem=problem, parameters=parameters)
    return get_designer("lp-bound").design(request).lower_bound
