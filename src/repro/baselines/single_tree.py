"""Single-tree (IP-multicast-like) baseline.

Section 1.4 of the paper describes classic IP multicast and reflector trees:
one distribution tree per stream, so "if a node or link in a multicast tree
fails, all of the leaves downstream of the failure lose access to the stream"
and every packet lost upstream is lost by every leaf.

This baseline builds the analogous design in the three-level setting: each
stream is distributed through as few reflectors as possible (each demand gets
exactly one serving reflector), chosen to maximise reliability subject to
fanout.  It is cheap but has no redundancy, so its measured post-
reconstruction loss and its resilience to ISP outages are both poor -- the
contrast the C1 benchmark and the failure-resilience example highlight.
"""

from __future__ import annotations

from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution


def single_tree_design(
    problem: OverlayDesignProblem,
    fanout_slack: float = 1.0,
    prefer_cheap: bool = False,
) -> OverlaySolution:
    """Serve every demand through exactly one reflector (no redundancy).

    Reflectors are preferred by reliability (or by cost when ``prefer_cheap``)
    and shared across the demands of a stream so the "tree" stays narrow.

    Compatibility wrapper over the unified strategy API: delegates to the
    registered ``"single-tree"`` designer and returns its solution -- results
    are identical, see ``docs/api.md``.
    """
    import warnings

    from repro.api import DesignRequest, get_designer

    warnings.warn(
        "single_tree_design is deprecated; submit a "
        "DesignRequest(strategy='single-tree') through repro.api.run_request "
        "instead (see the migration table in docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    request = DesignRequest(
        problem=problem,
        options={"fanout_slack": fanout_slack, "prefer_cheap": prefer_cheap},
    )
    return get_designer("single-tree").design(request).solution


def _single_tree_design_impl(
    problem: OverlayDesignProblem,
    fanout_slack: float = 1.0,
    prefer_cheap: bool = False,
) -> OverlaySolution:
    """The actual single-tree algorithm (run by the registered designer)."""
    problem.validate()

    assignments: dict[tuple[str, str], list[str]] = {}
    load: dict[str, int] = {}

    def capacity_left(reflector: str) -> float:
        return fanout_slack * problem.fanout(reflector) - load.get(reflector, 0)

    # Group demands per stream so reflector reuse (tree sharing) is possible.
    for stream in problem.streams:
        stream_demands = [d for d in problem.demands if d.stream == stream]
        opened: set[str] = set()
        for demand in stream_demands:
            candidates = problem.candidate_reflectors(demand)
            if not candidates:
                assignments[demand.key] = []
                continue

            def preference(reflector: str) -> tuple:
                reuse_bonus = 0 if reflector in opened else 1
                if prefer_cheap:
                    metric = problem.assignment_cost(demand, reflector)
                else:
                    metric = problem.path_failure(demand, reflector)
                return (reuse_bonus, metric)

            chosen = None
            for reflector in sorted(candidates, key=preference):
                if capacity_left(reflector) >= 1.0:
                    chosen = reflector
                    break
            if chosen is None:
                assignments[demand.key] = []
                continue
            assignments[demand.key] = [chosen]
            opened.add(chosen)
            load[chosen] = load.get(chosen, 0) + 1

    return OverlaySolution.from_assignments(
        problem, assignments, metadata={"algorithm": "single-tree"}
    )
