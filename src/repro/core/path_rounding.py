"""Path-formulation rounding for the Section 6.3--6.5 extensions.

When the GAP conversion network carries *additional* constraints that bind
sets of edges together -- reflector->sink arc capacities (Section 6.3) or the
"color" / ISP-diversity constraints (Section 6.4) -- plain flow integrality is
lost: the paper's Figure 3 shows a network whose fractional max flow (3.5)
strictly exceeds its integral max flow (3) once an *entangled set* of edges is
given a joint capacity.  The paper's fix (Section 6.5) reformulates the
network LP over *paths* from the source to the level-4 boxes:

.. math::

    (i)\\;  \\sum_{p \\ni e} y_p \\le 4 u_e \\quad
    (ii)\\; \\sum_{p: s \\to b} y_p = 1 \\quad
    (iii)\\; \\sum_{p \\cap S_i \\ne \\emptyset} y_p \\le 4 u_i \\quad
    (iv)\\; \\sum_p c_p y_p \\le 2X

and applies the dependent-rounding theorem of Srinivasan and Teo to obtain an
integral path selection whose constraint violations are bounded by an additive
constant (translating into a multiplicative factor <= 7 on the constraints and
<= 14 on the cost).

Reproduction note
-----------------
Srinivasan--Teo's Theorem 2.2 is itself a rounding algorithm built on the
pessimistic-estimator method.  We implement the same *interface and
guarantee shape* with a simpler, empirically-verified scheme:

1. solve the path LP exactly (every s->box path in the Figure-2 network is a
   three-edge path, so the path set is small and enumerable);
2. sample exactly one path per box from the per-box distribution given by the
   LP values (this satisfies constraint (ii) by construction and every other
   constraint in expectation);
3. redraw (a bounded number of times) while any constraint is violated by
   more than the configured factor, and fall back to the best draw seen.

The T6 benchmark measures the resulting violation factors; across the
evaluation workloads they stay well inside the paper's constants (7 for
constraints, 14 for cost).  This substitution is recorded in DESIGN.md /
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.core.gap import WeightBox, build_boxes_for_demand
from repro.core.lp_solution import AssignmentKey, RoundedSolution
from repro.core.problem import OverlayDesignProblem
from repro.lp import LinearExpr, LinearProgram, Objective, solve_lp

_MASS_TOL = 1e-12


@dataclass(frozen=True)
class EntangledSet:
    """A set of assignment keys whose pair edges share a joint capacity.

    ``capacity`` is expressed in *assignment units* (x variables); a color
    constraint has capacity 1 (at most one reflector of the color serves the
    demand), an arc-capacity constraint has capacity ``u_ij``.
    """

    name: str
    keys: frozenset[AssignmentKey]
    capacity: float


@dataclass(frozen=True)
class BoxPath:
    """An s -> reflector -> pair -> box path in the Figure-2 network."""

    key: AssignmentKey  # (reflector, demand key)
    box_index: int
    cost: float
    weight: float


@dataclass
class PathRoundingResult:
    """Outcome of the path-based rounding.

    ``assignments`` is the final 0/1 pair selection; ``violation_factors``
    records, for every constraint family, the worst multiplicative violation
    of the *original* (un-inflated) capacities; ``lp_cost`` is the optimum of
    the path LP (the cost guarantee is measured against it).
    """

    assignments: set[AssignmentKey]
    chosen_paths: list[BoxPath]
    lp_cost: float
    cost: float
    violation_factors: dict[str, float] = field(default_factory=dict)
    attempts: int = 1
    boxes_total: int = 0
    boxes_served: int = 0


def color_entangled_sets(
    problem: OverlayDesignProblem, support: Sequence[AssignmentKey]
) -> list[EntangledSet]:
    """Entangled sets implementing the Section-6.4 color constraints.

    One set per (demand, color) with at least two candidate reflectors of that
    color in the support: the demand may be served by at most one of them.
    """
    sets: list[EntangledSet] = []
    by_demand: dict[tuple[str, str], dict[Hashable, list[AssignmentKey]]] = {}
    for key in support:
        reflector, demand_key = key
        color = problem.color(reflector)
        if color is None:
            continue
        by_demand.setdefault(demand_key, {}).setdefault(color, []).append(key)
    for demand_key, by_color in by_demand.items():
        for color, keys in by_color.items():
            if len(keys) >= 2:
                sets.append(
                    EntangledSet(
                        name=f"color[{color}]@{demand_key}",
                        keys=frozenset(keys),
                        capacity=1.0,
                    )
                )
    return sets


def arc_capacity_entangled_sets(
    problem: OverlayDesignProblem, support: Sequence[AssignmentKey]
) -> list[EntangledSet]:
    """Entangled sets implementing the Section-6.3 reflector->sink arc capacities."""
    sets: list[EntangledSet] = []
    by_arc: dict[tuple[str, str], list[AssignmentKey]] = {}
    for key in support:
        reflector, (sink, _stream) = key
        capacity = problem.arc_capacity(reflector, sink)
        if capacity is None:
            continue
        by_arc.setdefault((reflector, sink), []).append(key)
    for (reflector, sink), keys in by_arc.items():
        capacity = problem.arc_capacity(reflector, sink)
        assert capacity is not None
        sets.append(
            EntangledSet(
                name=f"arc[{reflector}->{sink}]",
                keys=frozenset(keys),
                capacity=capacity,
            )
        )
    return sets


def _enumerate_paths(
    problem: OverlayDesignProblem,
    rounded: RoundedSolution,
    keep_degenerate_box: bool,
) -> tuple[list[BoxPath], dict[tuple[str, str], list[WeightBox]]]:
    """All s->box paths implied by the rounded solution's support."""
    demand_lookup = {demand.key: demand for demand in problem.demands}
    by_demand: dict[tuple[str, str], list[tuple[str, float, float]]] = {}
    for (reflector, demand_key), value in rounded.x.items():
        if value <= _MASS_TOL:
            continue
        demand = demand_lookup[demand_key]
        by_demand.setdefault(demand_key, []).append(
            (reflector, problem.edge_weight(demand, reflector), value)
        )

    paths: list[BoxPath] = []
    boxes_by_demand: dict[tuple[str, str], list[WeightBox]] = {}
    for demand_key, entries in by_demand.items():
        demand = demand_lookup[demand_key]
        boxes = build_boxes_for_demand(demand, entries, keep_degenerate_box)
        boxes_by_demand[demand_key] = boxes
        for reflector, weight, _value in entries:
            key: AssignmentKey = (reflector, demand_key)
            cost = problem.assignment_cost(demand, reflector)
            for box in boxes:
                if box.contains(weight):
                    paths.append(
                        BoxPath(key=key, box_index=box.index, cost=cost, weight=weight)
                    )
    return paths, boxes_by_demand


def _solve_path_lp(
    problem: OverlayDesignProblem,
    paths: list[BoxPath],
    boxes_by_demand: dict[tuple[str, str], list[WeightBox]],
    entangled_sets: Sequence[EntangledSet],
) -> tuple[np.ndarray, float]:
    """Solve the path LP (constraints (i)-(iii); cost is the objective).

    Returns the per-path fractional values and the LP objective.
    """
    model = LinearProgram(name="gap-path-lp", objective_sense=Objective.MINIMIZE)
    variables = [model.add_variable(name=f"y[{idx}]", lower=0.0, upper=1.0) for idx in range(len(paths))]

    # (ii) one unit of flow per box.
    by_box: dict[tuple[tuple[str, str], int], list[int]] = {}
    for idx, path in enumerate(paths):
        by_box.setdefault((path.key[1], path.box_index), []).append(idx)
    for (demand_key, box_index), idxs in by_box.items():
        expr = LinearExpr.sum(variables[i] for i in idxs)
        model.add_constraint(expr.equals(1.0), name=f"(ii)[{demand_key},{box_index}]")

    # (i) pair-edge capacities: each pair may carry at most 2 half-unit paths.
    by_pair: dict[AssignmentKey, list[int]] = {}
    for idx, path in enumerate(paths):
        by_pair.setdefault(path.key, []).append(idx)
    for key, idxs in by_pair.items():
        expr = LinearExpr.sum(variables[i] for i in idxs)
        model.add_constraint(expr <= 2.0, name=f"(i)pair[{key}]")

    # (i) reflector fanout: at most 2 * F_i half-unit paths per reflector.
    by_reflector: dict[str, list[int]] = {}
    for idx, path in enumerate(paths):
        by_reflector.setdefault(path.key[0], []).append(idx)
    for reflector, idxs in by_reflector.items():
        expr = LinearExpr.sum(variables[i] for i in idxs)
        model.add_constraint(
            expr <= 2.0 * problem.fanout(reflector), name=f"(i)fanout[{reflector}]"
        )

    # (iii) entangled sets: capacity in assignment units -> 2x in half units.
    for entangled in entangled_sets:
        idxs = [i for i, path in enumerate(paths) if path.key in entangled.keys]
        if not idxs:
            continue
        expr = LinearExpr.sum(variables[i] for i in idxs)
        model.add_constraint(expr <= 2.0 * entangled.capacity, name=f"(iii)[{entangled.name}]")

    # Objective (iv is folded into the objective: minimize total path cost).
    objective = LinearExpr.weighted_sum(
        (path.cost / 2.0, variables[idx]) for idx, path in enumerate(paths)
    )
    model.set_objective(objective)

    solution = solve_lp(model)
    if not solution.is_optimal:
        raise ValueError(
            "path LP infeasible -- the extension constraints are too tight for "
            f"the rounded support ({solution.status.value})"
        )
    values = np.array([solution.value(var) for var in variables])
    return values, solution.objective


def _measure_violations(
    problem: OverlayDesignProblem,
    chosen: list[BoxPath],
    entangled_sets: Sequence[EntangledSet],
) -> dict[str, float]:
    """Worst multiplicative violations of the un-inflated constraints."""
    factors: dict[str, float] = {"fanout": 0.0, "pair": 0.0, "entangled": 0.0}
    # Fanout: assignments per reflector vs F_i.
    per_reflector: dict[str, set[tuple[str, str]]] = {}
    for path in chosen:
        per_reflector.setdefault(path.key[0], set()).add(path.key[1])
    for reflector, demand_keys in per_reflector.items():
        factors["fanout"] = max(
            factors["fanout"], len(demand_keys) / problem.fanout(reflector)
        )
    # Pair usage (a pair serving its demand counts once regardless of boxes).
    factors["pair"] = 1.0 if chosen else 0.0
    # Entangled sets: distinct pairs used per set vs capacity.
    used_pairs = {path.key for path in chosen}
    for entangled in entangled_sets:
        used = len(used_pairs & entangled.keys)
        if entangled.capacity > 0:
            factors["entangled"] = max(factors["entangled"], used / entangled.capacity)
    return factors


def path_round(
    problem: OverlayDesignProblem,
    rounded: RoundedSolution,
    entangled_sets: Sequence[EntangledSet] | None = None,
    rng: np.random.Generator | None = None,
    keep_degenerate_box: bool = True,
    max_attempts: int = 30,
    fanout_slack: float = 4.0,
    entangled_slack: float = 2.0,
) -> PathRoundingResult:
    """Round the remaining fractional assignments via the path formulation.

    Parameters
    ----------
    problem, rounded:
        Instance and Section-3 rounding output (as for :func:`repro.core.gap.gap_round`).
    entangled_sets:
        Joint-capacity constraints (Sections 6.3/6.4); build them with
        :func:`color_entangled_sets` / :func:`arc_capacity_entangled_sets`.
    rng:
        Random generator used for the per-box path sampling.
    keep_degenerate_box:
        See :mod:`repro.core.gap`.
    max_attempts:
        Number of redraws allowed while the violation thresholds are exceeded.
    fanout_slack, entangled_slack:
        Acceptance thresholds for the violation factors (the paper's analysis
        allows constants up to 7; the defaults are tighter because instances
        rarely need more).
    """
    entangled_sets = list(entangled_sets or [])
    if rng is None:
        rng = np.random.default_rng()

    paths, boxes_by_demand = _enumerate_paths(problem, rounded, keep_degenerate_box)
    boxes_total = sum(len(boxes) for boxes in boxes_by_demand.values())
    if not paths:
        return PathRoundingResult(
            assignments=set(),
            chosen_paths=[],
            lp_cost=0.0,
            cost=0.0,
            violation_factors={},
            boxes_total=boxes_total,
            boxes_served=0,
        )

    values, lp_cost = _solve_path_lp(problem, paths, boxes_by_demand, entangled_sets)

    # Per-box categorical distributions.
    by_box: dict[tuple[tuple[str, str], int], list[int]] = {}
    for idx, path in enumerate(paths):
        by_box.setdefault((path.key[1], path.box_index), []).append(idx)

    def draw() -> list[BoxPath]:
        chosen: list[BoxPath] = []
        for box_key, idxs in by_box.items():
            probabilities = np.array([max(values[i], 0.0) for i in idxs])
            total = probabilities.sum()
            if total <= 0:
                continue
            probabilities = probabilities / total
            pick = rng.choice(len(idxs), p=probabilities)
            chosen.append(paths[idxs[pick]])
        return chosen

    best: tuple[list[BoxPath], dict[str, float]] | None = None
    best_score = float("inf")
    attempts_used = max_attempts
    for attempt in range(1, max_attempts + 1):
        chosen = draw()
        factors = _measure_violations(problem, chosen, entangled_sets)
        score = max(
            factors.get("fanout", 0.0) / fanout_slack,
            factors.get("entangled", 0.0) / entangled_slack if entangled_sets else 0.0,
        )
        if score <= 1.0 + 1e-9:
            attempts_used = attempt
            best = (chosen, factors)
            break
        if score < best_score:
            best_score = score
            best = (chosen, factors)
    assert best is not None
    chosen, factors = best

    assignments = {path.key for path in chosen}
    cost = 0.0
    demand_lookup = {demand.key: demand for demand in problem.demands}
    for key in assignments:
        reflector, demand_key = key
        cost += problem.assignment_cost(demand_lookup[demand_key], reflector)
    return PathRoundingResult(
        assignments=assignments,
        chosen_paths=chosen,
        lp_cost=lp_cost,
        cost=cost,
        violation_factors=factors,
        attempts=attempts_used,
        boxes_total=boxes_total,
        boxes_served=len({(p.key[1], p.box_index) for p in chosen}),
    )
