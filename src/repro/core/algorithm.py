"""The end-to-end overlay design pipeline: LP -> rounding -> GAP -> solution.

:func:`design_overlay` is the library's main entry point.  It follows the
paper exactly:

1. build the Section-2 LP relaxation (:mod:`repro.core.formulation`) --
   optionally with the Section-6 extensions -- and solve it;
2. apply the Section-3 randomized rounding (:mod:`repro.core.rounding`),
   optionally redrawing until the weight / fanout audit accepts the draw;
3. apply the Section-5 modified-GAP rounding (:mod:`repro.core.gap`) to turn
   the remaining fractional assignment variables into a 0/1 solution;
4. assemble an :class:`repro.core.solution.OverlaySolution` and, optionally,
   run a greedy *repair* pass that tops up demands left short of their
   requirement using spare fanout ("heuristics based on the algorithm",
   Section 7).

Every stage's intermediate result and wall-clock time is recorded in the
returned :class:`DesignReport`, which is what the benchmark harness consumes.

Since the :mod:`repro.api` redesign the stages themselves live in
:mod:`repro.api.pipeline` as swappable stage objects; :func:`design_overlay`
is a thin compatibility wrapper over ``DesignPipeline.standard()`` (the
``"spaa03"`` entry of the strategy registry) and produces bit-identical
results for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.audit import SolutionAudit

from repro.core.formulation import (
    ExtensionOptions,
    OverlayFormulation,
    SparseOverlayFormulation,
    build_formulation,
    build_sparse_formulation,
)
from repro.core.gap import GapResult
from repro.core.lp_solution import FractionalSolution, RoundedSolution
from repro.core.problem import OverlayDesignProblem
from repro.core.rounding import RoundingAudit, RoundingParameters
from repro.core.solution import OverlaySolution
from repro.lp import LPBuildStats


@dataclass
class DesignParameters:
    """Knobs of the full pipeline.

    Attributes
    ----------
    rounding:
        Parameters of the Section-3 randomized rounding (multiplier ``c``,
        target slack ``delta``, seed).
    extensions:
        Which Section-6 constraints to include in the LP.
    retry_rounding:
        Redraw the rounding until the audit accepts it (Monte Carlo -> Las
        Vegas); ``max_rounding_attempts`` bounds the redraws.
    max_rounding_attempts:
        Upper bound on redraws when ``retry_rounding`` is set.
    keep_degenerate_box:
        See :mod:`repro.core.gap`; keeping it True avoids leaving demands with
        less than one unit of fractional mass completely unserved.
    repair_shortfall:
        After the GAP stage, greedily add assignments (respecting a fanout
        slack of ``repair_fanout_slack``) for demands still below their
        required weight.  Off by default so that the measured guarantees are
        those of the paper's algorithm; examples enable it because a deployed
        system would.
    repair_fanout_slack:
        Fanout multiple the repair pass is allowed to use (4.0 matches the
        paper's final guarantee).
    lp_backend:
        How the Section-2 LP is assembled: ``"sparse"`` (default) uses the
        vectorized block builder of :mod:`repro.lp.sparse`; ``"expr"`` uses
        the expression-tree modeling layer.  Both produce the same relaxation
        and objective; sparse is ~an order of magnitude faster to build on
        large instances.
    solver_backend:
        Which registered solver backend (:mod:`repro.lp.backends`) solves the
        LP relaxation: ``"highs"`` (default), ``"highs-mip"``, or
        ``"gurobi"``.  Validated against the backend registry; unknown names
        raise ``ValueError`` listing the installed backends.
    seed:
        Convenience override for ``rounding.seed``.
    """

    rounding: RoundingParameters = field(default_factory=RoundingParameters)
    extensions: ExtensionOptions = field(default_factory=ExtensionOptions)
    retry_rounding: bool = True
    max_rounding_attempts: int = 20
    keep_degenerate_box: bool = True
    repair_shortfall: bool = False
    repair_fanout_slack: float = 4.0
    lp_backend: str = "sparse"
    solver_backend: str = "highs"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.lp_backend not in ("sparse", "expr"):
            raise ValueError(
                f"lp_backend must be 'sparse' or 'expr', got {self.lp_backend!r}"
            )
        from repro.lp.backends import backend_names

        if self.solver_backend not in backend_names():
            raise ValueError(
                f"solver_backend must be one of {backend_names()}, "
                f"got {self.solver_backend!r}"
            )
        if self.seed is not None:
            self.rounding = RoundingParameters(
                c=self.rounding.c, delta=self.rounding.delta, seed=self.seed
            )


@dataclass
class DesignReport:
    """Everything produced along the pipeline, for inspection and benchmarking.

    Attributes
    ----------
    solution:
        The final integral overlay design.
    fractional:
        The optimal LP solution (its objective is the lower bound used for
        approximation-ratio measurements).
    rounded:
        The state after Section-3 rounding.
    rounding_audit:
        Weight / fanout violation audit of the accepted rounding draw.
    gap:
        The Section-5 GAP result.
    formulation_size:
        (num variables, num constraints) of the LP.
    stage_seconds:
        Wall-clock time per stage ("formulate", "solve_lp", "rounding", "gap",
        "repair", and -- since the pipeline gained its audit stage -- "audit").
    rounding_attempts:
        Number of rounding draws used.
    lp_build_stats:
        Matrix-assembly report (:class:`repro.lp.LPBuildStats`) when the
        sparse LP backend built the formulation; ``None`` on the
        expression-tree path.
    solution_audit:
        Constraint-violation audit of the final solution, produced by the
        pipeline's audit stage (:class:`repro.analysis.audit.SolutionAudit`).
        Consumers should reuse it instead of re-running ``audit_solution``.
    lp_lower_bound:
        Alias for ``fractional.objective``.
    """

    solution: OverlaySolution
    fractional: FractionalSolution
    rounded: RoundedSolution
    rounding_audit: RoundingAudit
    gap: GapResult
    formulation_size: tuple[int, int]
    stage_seconds: dict[str, float]
    rounding_attempts: int
    lp_build_stats: "LPBuildStats | None" = None
    solution_audit: "SolutionAudit | None" = None

    @property
    def lp_lower_bound(self) -> float:
        return self.fractional.objective

    @property
    def cost_ratio(self) -> float:
        """Final cost divided by the LP lower bound (>= 1; paper bound: c log n)."""
        lower = self.lp_lower_bound
        if lower <= 0:
            return float("inf") if self.solution.total_cost() > 0 else 1.0
        return self.solution.total_cost() / lower

    def summary(self) -> dict:
        info = self.solution.summary()
        info.update(
            {
                "lp_lower_bound": self.lp_lower_bound,
                "cost_ratio": self.cost_ratio,
                "lp_variables": self.formulation_size[0],
                "lp_constraints": self.formulation_size[1],
                "rounding_attempts": self.rounding_attempts,
                "stage_seconds": dict(self.stage_seconds),
            }
        )
        return info


def design_overlay(
    problem: OverlayDesignProblem,
    parameters: DesignParameters | None = None,
    rng: np.random.Generator | None = None,
) -> DesignReport:
    """Design an overlay multicast network for ``problem``.

    This is the full approximation algorithm of the paper; see
    :class:`DesignParameters` for the available knobs.  Raises ``ValueError``
    if the instance is structurally invalid or its LP relaxation is infeasible
    (e.g. some demand cannot reach enough reflectors -- use
    :meth:`OverlayDesignProblem.feasibility_report` for diagnostics).

    .. note::
       This is a compatibility wrapper over the unified strategy API: it runs
       :meth:`repro.api.DesignPipeline.standard` (the registered ``"spaa03"``
       designer) and produces bit-identical results for a fixed seed.  New
       code should prefer ``repro.api.get_designer("spaa03").design(request)``
       or :class:`repro.api.DesignPipeline` directly -- see ``docs/api.md``.
    """
    # Compatibility wrapper: the staged pipeline is the implementation now.
    import warnings

    from repro.api.pipeline import DesignPipeline

    warnings.warn(
        "design_overlay is deprecated; submit a DesignRequest("
        "strategy='spaa03') through repro.api.run_request instead (see the "
        "migration table in docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return DesignPipeline.standard().run(problem, parameters, rng).report()


def repair_weight_shortfalls(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    fanout_slack: float = 4.0,
) -> OverlaySolution:
    """Greedy post-processing: top up demands that fall short of their weight.

    For every demand whose delivered weight is below its requirement, add the
    cheapest-per-weight unused candidate reflectors until the requirement is
    met or no reflector has spare (slackened) fanout.  This is the kind of
    practical heuristic layered on top of the approximation algorithm that the
    paper's Section 7 anticipates; the approximation guarantee is unaffected
    because assignments are only ever added within the already-allowed fanout
    slack.
    """
    assignments = {key: list(reflectors) for key, reflectors in solution.assignments.items()}
    load: dict[str, int] = {}
    for reflectors in assignments.values():
        for reflector in reflectors:
            load[reflector] = load.get(reflector, 0) + 1

    def capacity_left(reflector: str) -> float:
        return fanout_slack * problem.fanout(reflector) - load.get(reflector, 0)

    for demand in problem.demands:
        key = demand.key
        required = problem.demand_weight(demand)
        current = set(assignments.get(key, []))
        delivered = sum(problem.edge_weight(demand, r) for r in current)
        if delivered >= required - 1e-12:
            continue
        candidates = [
            reflector
            for reflector in problem.candidate_reflectors(demand)
            if reflector not in current and capacity_left(reflector) >= 1.0
        ]
        # Cheapest additional cost per unit of weight first.
        candidates.sort(
            key=lambda r: (
                problem.assignment_cost(demand, r)
                / max(problem.edge_weight(demand, r), 1e-12)
            )
        )
        for reflector in candidates:
            if delivered >= required - 1e-12:
                break
            assignments.setdefault(key, []).append(reflector)
            current.add(reflector)
            load[reflector] = load.get(reflector, 0) + 1
            delivered += problem.edge_weight(demand, reflector)

    repaired = OverlaySolution.from_assignments(problem, assignments, metadata=dict(solution.metadata))
    repaired.metadata["repaired"] = True
    return repaired


def fractional_lower_bound(
    problem: OverlayDesignProblem,
    extensions: ExtensionOptions | None = None,
    lp_backend: str = "sparse",
    solver_backend: str = "highs",
) -> float:
    """Solve only the LP relaxation and return its objective (the OPT lower bound)."""
    if lp_backend not in ("sparse", "expr"):
        raise ValueError(f"lp_backend must be 'sparse' or 'expr', got {lp_backend!r}")
    if lp_backend == "sparse":
        formulation: OverlayFormulation | SparseOverlayFormulation = build_sparse_formulation(
            problem, extensions
        )
    else:
        formulation = build_formulation(problem, extensions)
    lp_solution = formulation.solve(solver_backend)
    return formulation.fractional_solution(lp_solution).objective


__all__ = [
    "DesignParameters",
    "DesignReport",
    "design_overlay",
    "fractional_lower_bound",
    "repair_weight_shortfalls",
]
