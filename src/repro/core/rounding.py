"""Randomized rounding of the LP relaxation (Section 3 of the paper).

Given an optimal fractional solution ``(z_hat, y_hat, x_hat)`` the procedure,
with a preset multiplier ``c > 1`` and ``n`` the number of (stream, sink)
demand pairs, is:

1. ``z_dot_i  = min(z_hat_i * c * log n, 1)``
2. ``y_dot_ki = min(y_hat_ki * c * log n / z_dot_i, 1)``
3. round ``z_bar_i = 1`` with probability ``z_dot_i`` (else 0);
4. if ``z_bar_i = 1``, round ``y_bar_ki = 1`` with probability ``y_dot_ki``;
5. if ``z_dot_i = y_dot_ki = 1`` set ``x_bar_kij = x_hat_kij`` (kept
   fractional); otherwise, if ``y_bar_ki = 1``, set ``x_bar_kij = 1/(c log n)``
   with probability ``x_hat_kij / y_hat_ki``;
6. everything else is 0.

The expected cost is at most ``c log n`` times the LP optimum (Lemma 4.1);
with high probability every weight constraint retains at least a ``(1-delta)``
fraction of its requirement (Lemma 4.3, with ``delta^2 c = 4``) and every
fanout constraint is violated by at most a factor 2 (Lemma 4.6, ``c >= 24``).

Implementation notes
---------------------
* ``log`` is the natural logarithm (the Chernoff analysis needs
  ``exp(-delta^2 c log n / 2) = n^{-delta^2 c / 2}``).
* For tiny instances ``log n`` can be 0 (n = 1) or below 1; we clamp the
  multiplier at ``max(c * log n, 1)`` so the procedure remains well defined.
  The clamp only *increases* inflation, so Lemmas 4.3/4.6 still apply; only
  the cost bound becomes ``max(c log n, 1) * OPT``.
* The rounding is Monte Carlo; :func:`round_solution` draws once, and
  :func:`round_solution_with_retries` re-draws until the audit accepts the
  weight/fanout violations (the standard fix for Monte Carlo algorithms with
  constant success probability).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.concentration import multiplier_for_failure_probability
from repro.core.lp_solution import AssignmentKey, FractionalSolution, RoundedSolution
from repro.core.problem import OverlayDesignProblem

#: Fractional LP values below this threshold are treated as zero.
_SUPPORT_TOL = 1e-9


@dataclass
class RoundingParameters:
    """Parameters of the Section-3 rounding.

    Attributes
    ----------
    c:
        The preset multiplier.  The paper's analysis wants ``c >= 24`` for the
        fanout lemma and ``delta^2 c = 4`` for the weight lemma (e.g. ``c = 64``
        with ``delta = 1/4``); in practice much smaller values already give
        feasible-ish solutions at far lower cost, which is why ``c`` is a knob
        (the C2 ablation benchmark sweeps it).
    delta:
        Target relative weight slack used when auditing a draw (weight
        constraints are accepted if they retain a ``1 - delta`` fraction).
    seed:
        Seed for the internal RNG (ignored when ``rng`` is passed explicitly
        to the rounding functions).
    """

    c: float = 8.0
    delta: float = 0.25
    seed: int | None = None

    @classmethod
    def paper_defaults(cls) -> "RoundingParameters":
        """The constants used in the paper's analysis: ``delta=1/4``, ``c=64``."""
        delta = 0.25
        return cls(c=multiplier_for_failure_probability(delta), delta=delta)

    def multiplier(self, num_demands: int) -> float:
        """The effective inflation factor ``max(c * ln(n), 1)``."""
        return effective_multiplier(self.c, num_demands)


def effective_multiplier(c: float, num_demands: int) -> float:
    """``max(c * ln(n), 1)`` with ``n`` clamped to at least 2 (see module notes)."""
    if num_demands < 1:
        raise ValueError("number of demands must be at least 1")
    return max(c * math.log(max(num_demands, 2)), 1.0)


def round_solution(
    problem: OverlayDesignProblem,
    fractional: FractionalSolution,
    parameters: RoundingParameters | None = None,
    rng: np.random.Generator | None = None,
) -> RoundedSolution:
    """Perform one draw of the Section-3 randomized rounding.

    Parameters
    ----------
    problem:
        The overlay design instance (supplies ``n`` and the edge weights used
        downstream).
    fractional:
        Optimal LP solution ``(z_hat, y_hat, x_hat)``.
    parameters:
        Rounding parameters; defaults to :class:`RoundingParameters()`.
    rng:
        Numpy random generator; a fresh one is created from
        ``parameters.seed`` when omitted.

    Returns
    -------
    RoundedSolution
        0/1 values for ``z`` and ``y`` and values in ``{0, 1/(c log n), x_hat}``
        for ``x``; also records the inflated ``z_dot``/``y_dot`` values and the
        multiplier used.
    """
    parameters = parameters or RoundingParameters()
    if rng is None:
        rng = np.random.default_rng(parameters.seed)

    multiplier = effective_multiplier(parameters.c, problem.num_demands)

    # Step [1]: z_dot = min(z_hat * c log n, 1)
    z_dot: dict[str, float] = {}
    for reflector, value in fractional.z.items():
        if value <= _SUPPORT_TOL:
            continue
        z_dot[reflector] = min(value * multiplier, 1.0)

    # Step [2]: y_dot = min(y_hat * c log n / z_dot, 1)
    y_dot: dict[tuple[str, str], float] = {}
    for (stream, reflector), value in fractional.y.items():
        if value <= _SUPPORT_TOL:
            continue
        scale = z_dot.get(reflector, 0.0)
        if scale <= 0.0:
            continue
        y_dot[(stream, reflector)] = min(value * multiplier / scale, 1.0)

    # Step [3]: round z
    z_bar: dict[str, int] = {}
    for reflector, probability in z_dot.items():
        z_bar[reflector] = int(rng.random() < probability)

    # Step [4]: round y conditioned on z
    y_bar: dict[tuple[str, str], int] = {}
    for (stream, reflector), probability in y_dot.items():
        if z_bar.get(reflector, 0) == 1:
            y_bar[(stream, reflector)] = int(rng.random() < probability)
        else:
            y_bar[(stream, reflector)] = 0

    # Steps [5]/[6]: x values
    x_bar: dict[AssignmentKey, float] = {}
    for (reflector, (sink, stream)), x_hat in fractional.x.items():
        if x_hat <= _SUPPORT_TOL:
            continue
        y_key = (stream, reflector)
        y_hat = fractional.y.get(y_key, 0.0)
        if y_hat <= _SUPPORT_TOL:
            continue
        if z_dot.get(reflector, 0.0) >= 1.0 and y_dot.get(y_key, 0.0) >= 1.0:
            # Both inflated variables saturated: keep the fractional value.
            x_bar[(reflector, (sink, stream))] = x_hat
        elif y_bar.get(y_key, 0) == 1:
            keep_probability = min(x_hat / y_hat, 1.0)
            if rng.random() < keep_probability:
                x_bar[(reflector, (sink, stream))] = 1.0 / multiplier

    # Ensure y/z are set wherever x survived (they are by construction, but the
    # deterministic x branch relies on z_dot = y_dot = 1 implying z_bar = y_bar = 1).
    for reflector, (sink, stream) in x_bar:
        z_bar[reflector] = 1
        y_bar[(stream, reflector)] = 1

    return RoundedSolution(
        z=z_bar,
        y=y_bar,
        x=x_bar,
        scaled_z=z_dot,
        scaled_y=y_dot,
        multiplier=multiplier,
    )


@dataclass
class RoundingAudit:
    """Violation summary of one rounding draw (used by retries and benchmarks).

    ``weight_fraction`` maps each demand key to the fraction of its required
    weight retained (``>= 1`` means fully satisfied); ``fanout_factor`` maps
    each reflector to load / fanout.
    """

    weight_fraction: dict[tuple[str, str], float]
    fanout_factor: dict[str, float]

    @property
    def min_weight_fraction(self) -> float:
        return min(self.weight_fraction.values()) if self.weight_fraction else 1.0

    @property
    def max_fanout_factor(self) -> float:
        return max(self.fanout_factor.values()) if self.fanout_factor else 0.0

    def acceptable(self, delta: float, fanout_slack: float = 2.0) -> bool:
        """Paper-style acceptance: weights >= 1 - delta, fanout <= fanout_slack."""
        return (
            self.min_weight_fraction >= (1.0 - delta) - 1e-9
            and self.max_fanout_factor <= fanout_slack + 1e-9
        )


def audit_rounding(
    problem: OverlayDesignProblem, rounded: RoundedSolution
) -> RoundingAudit:
    """Measure the weight and fanout constraint violations of a rounding draw."""
    weight_fraction: dict[tuple[str, str], float] = {}
    for demand in problem.demands:
        required = problem.demand_weight(demand)
        delivered = rounded.delivered_weight(problem, demand)
        weight_fraction[demand.key] = delivered / required if required > 0 else 1.0

    fanout_factor: dict[str, float] = {}
    load: dict[str, float] = {}
    for (reflector, _key), value in rounded.x.items():
        load[reflector] = load.get(reflector, 0.0) + value
    for reflector, used in load.items():
        fanout_factor[reflector] = used / problem.fanout(reflector)
    return RoundingAudit(weight_fraction=weight_fraction, fanout_factor=fanout_factor)


def round_solution_with_retries(
    problem: OverlayDesignProblem,
    fractional: FractionalSolution,
    parameters: RoundingParameters | None = None,
    rng: np.random.Generator | None = None,
    max_attempts: int = 20,
    fanout_slack: float = 2.0,
) -> tuple[RoundedSolution, RoundingAudit, int]:
    """Redraw the rounding until the audit accepts it (or attempts run out).

    The paper's guarantees hold *with high probability*; repeating the draw
    until the constraints are met (a standard Monte-Carlo-to-Las-Vegas
    conversion) does not change the expected cost bound by more than a
    constant factor.  Returns the accepted (or best-seen) draw, its audit and
    the number of attempts used.
    """
    parameters = parameters or RoundingParameters()
    if rng is None:
        rng = np.random.default_rng(parameters.seed)
    best: tuple[RoundedSolution, RoundingAudit] | None = None
    best_score = -math.inf
    for attempt in range(1, max_attempts + 1):
        rounded = round_solution(problem, fractional, parameters, rng)
        audit = audit_rounding(problem, rounded)
        if audit.acceptable(parameters.delta, fanout_slack):
            return rounded, audit, attempt
        # Track the draw with the best worst-case weight fraction as fallback.
        score = audit.min_weight_fraction - 0.01 * max(
            0.0, audit.max_fanout_factor - fanout_slack
        )
        if score > best_score:
            best_score = score
            best = (rounded, audit)
    assert best is not None
    return best[0], best[1], max_attempts
