"""Hoeffding--Chernoff concentration bounds (Section 4 and Appendix A).

The analysis of the randomized rounding uses a Chernoff-type bound for sums of
independent random variables bounded in ``[0, 1]`` (Theorem 4.2 in the paper,
proved in Appendix A from Hoeffding's inequality):

.. math::

    \\Pr[S \\le (1-\\delta)\\mu] \\le \\exp(-\\delta^2 \\mu / 2), \\qquad
    \\Pr[S \\ge (1+\\delta)\\mu] \\le \\exp(-\\delta^2 \\mu / 3).

These functions are used in three places:

* :mod:`repro.core.rounding` exposes the multiplier choice ``delta^2 c = 4``
  that the paper derives from the bound (Lemma 4.3);
* the T7 benchmark compares the analytic tails with empirical tail frequencies;
* the test suite checks the algebraic relationships (monotonicity, the
  Hoeffding form dominating the simplified form, etc.).
"""

from __future__ import annotations

import math

import numpy as np


def chernoff_lower_tail(mu: float, delta: float) -> float:
    """Bound on ``Pr[S <= (1 - delta) * mu]`` for independent [0,1] summands."""
    _check_args(mu, delta)
    return math.exp(-(delta**2) * mu / 2.0)


def chernoff_upper_tail(mu: float, delta: float) -> float:
    """Bound on ``Pr[S >= (1 + delta) * mu]`` for independent [0,1] summands."""
    _check_args(mu, delta)
    return math.exp(-(delta**2) * mu / 3.0)


def hoeffding_upper_tail(n: int, mu: float, t: float) -> float:
    """Hoeffding's exact exponential bound on ``Pr[S - mu >= t]`` (Theorem A.1).

    ``n`` is the number of summands, ``mu`` the expectation of the sum and
    ``0 < t < n - mu``.  The Appendix derives the simpler
    :func:`chernoff_upper_tail` from this expression; the property tests check
    the domination.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < t < n - mu:
        raise ValueError(f"t must lie in (0, n - mu) = (0, {n - mu}), got {t}")
    if mu <= 0:
        return 1.0
    first = (mu / (mu + t)) ** (mu + t)
    second = ((n - mu) / (n - mu - t)) ** (n - mu - t)
    return first * second


def multiplier_for_failure_probability(delta: float, exponent: float = 4.0) -> float:
    """The paper's choice of the rounding multiplier constant ``c``.

    Lemma 4.3 wants each of the ``n`` weight constraints to fail with
    probability at most ``n^{-delta^2 c / 2}``; a union bound over ``n``
    constraints with target overall failure ``1/n`` requires
    ``delta^2 * c = exponent`` with ``exponent = 4`` (the paper: "we need to
    set delta^2 * c = 4.  If delta = 1/4 then c = 64").
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    return exponent / delta**2


def weight_violation_probability(delta: float, c: float, n: int) -> float:
    """Paper's bound on the probability that one weight constraint is violated.

    After rounding with multiplier ``c * log n``, a fixed weight constraint is
    short of ``(1 - delta)`` times its requirement with probability at most
    ``n^{-delta^2 c / 2}`` (Section 4, using ``mu >= c log n``).
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    if n == 1:
        # log(1) = 0: the bound degenerates; report the trivial bound.
        return 1.0
    return float(n ** (-(delta**2) * c / 2.0))


def empirical_tail_frequency(
    samples: np.ndarray, mu: float, delta: float, side: str = "lower"
) -> float:
    """Fraction of sample sums falling in the tail the bound talks about.

    Parameters
    ----------
    samples:
        1-D array of observed sums ``S`` (one entry per independent trial).
    mu:
        The expectation of the sum.
    delta:
        Relative deviation.
    side:
        ``"lower"`` for ``S <= (1-delta) mu``; ``"upper"`` for ``S >= (1+delta) mu``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size == 0:
        raise ValueError("samples must be a non-empty 1-D array")
    if side == "lower":
        return float(np.mean(samples <= (1.0 - delta) * mu))
    if side == "upper":
        return float(np.mean(samples >= (1.0 + delta) * mu))
    raise ValueError(f"side must be 'lower' or 'upper', got {side!r}")


def _check_args(mu: float, delta: float) -> None:
    if mu < 0:
        raise ValueError(f"mu must be non-negative, got {mu}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must lie in (0, 1), got {delta}")
