"""The 3-level overlay network design problem (Section 2 of the paper).

An :class:`OverlayDesignProblem` captures the input of the
"3-level network reliability min-cost multicommodity flow problem":

* a set of *streams* (commodities), one per entrypoint / source;
* a set of *reflectors*, each with a build cost ``r_i`` and a fanout bound
  ``F_i`` (and, optionally, a *color* identifying its ISP for the Section 6.4
  extension and a capacity for Section 6.2/6.3);
* a set of *sinks* (edgeservers);
* *stream edges* source->reflector with loss probability ``p_ki`` and
  per-stream carriage cost ``c^k_ki``;
* *delivery edges* reflector->sink with loss probability ``p_ij`` and cost
  ``c^k_ij`` (optionally per-stream);
* *demands*: (sink, stream, success threshold ``Phi``) triples.

The paper assumes WLOG that each sink demands a single commodity (multi-demand
sinks are split into copies).  Here each :class:`Demand` object *is* that
(sink, stream) copy, so ``n`` -- the paper's number of sinks -- equals
``len(problem.demands)``, and no explicit splitting step is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.core.weights import (
    edge_weight,
    path_failure_probability,
    threshold_to_weight,
)


@dataclass(frozen=True)
class StreamEdge:
    """Edge from a source (stream) to a reflector.

    Attributes
    ----------
    stream, reflector:
        Endpoint identifiers.
    loss_probability:
        ``p_ki`` -- probability that a packet of the stream is lost on the way
        to the reflector.
    cost:
        ``c^k_ki`` -- cost of forwarding the stream to this reflector.
    """

    stream: str
    reflector: str
    loss_probability: float
    cost: float


@dataclass(frozen=True)
class DeliveryEdge:
    """Edge from a reflector to a sink, carrying a specific stream.

    Attributes
    ----------
    stream, reflector, sink:
        Identifiers; the stream matters because carriage cost may depend on the
        commodity (different encodings have different bitrates).
    loss_probability:
        ``p_ij`` -- loss probability of the reflector->sink link (independent
        of the stream).
    cost:
        ``c^k_ij`` -- cost of sending this stream over the link.
    """

    stream: str
    reflector: str
    sink: str
    loss_probability: float
    cost: float


@dataclass(frozen=True)
class Demand:
    """A (sink, stream) pair with a required success probability ``Phi``."""

    sink: str
    stream: str
    success_threshold: float

    @property
    def key(self) -> tuple[str, str]:
        return (self.sink, self.stream)


@dataclass
class ReflectorInfo:
    """Static attributes of a reflector."""

    name: str
    cost: float
    fanout: int
    color: Hashable | None = None
    capacity: float | None = None  # Section 6.2 extension: max distinct streams


@dataclass
class FeasibilityIssue:
    """A demand that cannot be met even using every reflector (diagnostic)."""

    demand: Demand
    required_weight: float
    available_weight: float
    reachable_reflectors: int


class OverlayDesignProblem:
    """Mutable builder + immutable view of a 3-level overlay design instance.

    Build an instance by adding streams, reflectors, sinks, edges and demands;
    then hand it to :func:`repro.core.algorithm.design_overlay` (or any of the
    baselines in :mod:`repro.baselines`).

    Examples
    --------
    >>> problem = OverlayDesignProblem()
    >>> problem.add_stream("event")
    >>> problem.add_reflector("r1", cost=5.0, fanout=10)
    >>> problem.add_sink("boston")
    >>> problem.add_stream_edge("event", "r1", loss_probability=0.01, cost=1.0)
    >>> problem.add_delivery_edge("r1", "boston", loss_probability=0.05, cost=0.5)
    >>> problem.add_demand("boston", "event", success_threshold=0.9)
    >>> problem.num_demands
    1
    """

    def __init__(self, name: str = "overlay-design") -> None:
        self.name = name
        self._streams: list[str] = []
        self._stream_set: set[str] = set()
        self._reflectors: dict[str, ReflectorInfo] = {}
        self._sinks: list[str] = []
        self._sink_set: set[str] = set()
        self._stream_edges: dict[tuple[str, str], StreamEdge] = {}
        self._delivery_links: dict[tuple[str, str], tuple[float, float]] = {}
        # Inverted index sink -> reflectors with a delivery edge, so candidate
        # lookups cost O(candidates) instead of scanning every reflector (the
        # difference between seconds and hours at internet scale).
        self._sink_reflectors: dict[str, list[str]] = {}
        self._reflector_order: dict[str, int] = {}
        self._delivery_stream_costs: dict[tuple[str, str], dict[str, float]] = {}
        self._demands: list[Demand] = []
        self._demand_keys: set[tuple[str, str]] = set()
        self._stream_bandwidth: dict[str, float] = {}
        self._arc_capacity: dict[tuple[str, str], float] = {}

    # --------------------------------------------------------------- building
    def add_stream(self, stream: str, bandwidth: float = 1.0) -> None:
        """Register a stream (commodity).

        ``bandwidth`` is only used by the Section 6.1 extension (``B^k``); the
        base formulation treats every stream as one unit of fanout.
        """
        if stream in self._stream_set:
            raise ValueError(f"stream {stream!r} already exists")
        if bandwidth <= 0:
            raise ValueError(f"stream bandwidth must be positive, got {bandwidth}")
        self._streams.append(stream)
        self._stream_set.add(stream)
        self._stream_bandwidth[stream] = float(bandwidth)

    def add_reflector(
        self,
        reflector: str,
        cost: float,
        fanout: int,
        color: Hashable | None = None,
        capacity: float | None = None,
    ) -> None:
        """Register a reflector with build cost ``r_i`` and fanout bound ``F_i``.

        ``color`` groups reflectors (e.g. by ISP) for the Section 6.4
        color-constraint extension; ``capacity`` bounds the number of distinct
        streams delivered to the reflector (Section 6.2, constraint (8)).
        """
        if reflector in self._reflectors:
            raise ValueError(f"reflector {reflector!r} already exists")
        if cost < 0:
            raise ValueError(f"reflector cost must be non-negative, got {cost}")
        if fanout <= 0:
            raise ValueError(f"reflector fanout must be positive, got {fanout}")
        if capacity is not None and capacity <= 0:
            raise ValueError(f"reflector capacity must be positive, got {capacity}")
        self._reflector_order[reflector] = len(self._reflectors)
        self._reflectors[reflector] = ReflectorInfo(
            name=reflector, cost=float(cost), fanout=int(fanout), color=color, capacity=capacity
        )

    def add_sink(self, sink: str) -> None:
        """Register a sink (edgeserver)."""
        if sink in self._sink_set:
            raise ValueError(f"sink {sink!r} already exists")
        self._sinks.append(sink)
        self._sink_set.add(sink)

    def add_stream_edge(
        self, stream: str, reflector: str, loss_probability: float, cost: float
    ) -> None:
        """Add the source->reflector edge for ``stream`` (at most one per pair)."""
        self._require_stream(stream)
        self._require_reflector(reflector)
        _check_probability(loss_probability)
        if cost < 0:
            raise ValueError(f"edge cost must be non-negative, got {cost}")
        key = (stream, reflector)
        if key in self._stream_edges:
            raise ValueError(f"stream edge {key} already exists")
        self._stream_edges[key] = StreamEdge(stream, reflector, float(loss_probability), float(cost))

    def add_delivery_edge(
        self,
        reflector: str,
        sink: str,
        loss_probability: float,
        cost: float,
        stream_costs: Mapping[str, float] | None = None,
        capacity: float | None = None,
    ) -> None:
        """Add the reflector->sink link.

        ``cost`` is the default per-stream carriage cost; ``stream_costs``
        overrides it for specific streams (the paper allows ``c^k_ij`` to depend
        on the commodity, e.g. to capture different encoding bitrates).
        ``capacity`` bounds the number of streams on the link (Section 6.3,
        constraint (7')).
        """
        self._require_reflector(reflector)
        self._require_sink(sink)
        _check_probability(loss_probability)
        if cost < 0:
            raise ValueError(f"edge cost must be non-negative, got {cost}")
        key = (reflector, sink)
        if key in self._delivery_links:
            raise ValueError(f"delivery edge {key} already exists")
        self._delivery_links[key] = (float(loss_probability), float(cost))
        self._sink_reflectors.setdefault(sink, []).append(reflector)
        if stream_costs:
            for stream, stream_cost in stream_costs.items():
                self._require_stream(stream)
                if stream_cost < 0:
                    raise ValueError("per-stream cost must be non-negative")
            self._delivery_stream_costs[key] = {
                stream: float(value) for stream, value in stream_costs.items()
            }
        if capacity is not None:
            if capacity <= 0:
                raise ValueError(f"arc capacity must be positive, got {capacity}")
            self._arc_capacity[key] = float(capacity)

    def add_demand(self, sink: str, stream: str, success_threshold: float) -> None:
        """Require ``sink`` to receive ``stream`` with success probability >= threshold."""
        self._require_sink(sink)
        self._require_stream(stream)
        if not 0.0 < success_threshold < 1.0:
            raise ValueError(
                f"success threshold must lie strictly between 0 and 1, got {success_threshold}"
            )
        key = (sink, stream)
        if key in self._demand_keys:
            raise ValueError(f"demand {key} already exists")
        self._demand_keys.add(key)
        self._demands.append(Demand(sink, stream, float(success_threshold)))

    # ----------------------------------------------------------------- access
    @property
    def streams(self) -> list[str]:
        return list(self._streams)

    @property
    def reflectors(self) -> list[str]:
        return list(self._reflectors)

    @property
    def sinks(self) -> list[str]:
        return list(self._sinks)

    @property
    def demands(self) -> list[Demand]:
        return list(self._demands)

    @property
    def num_streams(self) -> int:
        return len(self._streams)

    @property
    def num_reflectors(self) -> int:
        return len(self._reflectors)

    @property
    def num_sinks(self) -> int:
        return len(self._sinks)

    @property
    def num_demands(self) -> int:
        """The paper's ``n``: the number of (stream, sink) demand pairs."""
        return len(self._demands)

    def reflector_info(self, reflector: str) -> ReflectorInfo:
        self._require_reflector(reflector)
        return self._reflectors[reflector]

    def reflector_cost(self, reflector: str) -> float:
        return self.reflector_info(reflector).cost

    def fanout(self, reflector: str) -> int:
        return self.reflector_info(reflector).fanout

    def color(self, reflector: str) -> Hashable | None:
        return self.reflector_info(reflector).color

    def colors(self) -> dict[Hashable, list[str]]:
        """Reflectors grouped by color (reflectors without a color are skipped)."""
        groups: dict[Hashable, list[str]] = {}
        for name, info in self._reflectors.items():
            if info.color is not None:
                groups.setdefault(info.color, []).append(name)
        return groups

    def stream_bandwidth(self, stream: str) -> float:
        self._require_stream(stream)
        return self._stream_bandwidth[stream]

    def has_stream_edge(self, stream: str, reflector: str) -> bool:
        return (stream, reflector) in self._stream_edges

    def stream_edge(self, stream: str, reflector: str) -> StreamEdge:
        try:
            return self._stream_edges[(stream, reflector)]
        except KeyError:
            raise KeyError(f"no stream edge {stream!r} -> {reflector!r}") from None

    def stream_edges(self) -> list[StreamEdge]:
        return list(self._stream_edges.values())

    def has_delivery_link(self, reflector: str, sink: str) -> bool:
        return (reflector, sink) in self._delivery_links

    def delivery_loss(self, reflector: str, sink: str) -> float:
        try:
            return self._delivery_links[(reflector, sink)][0]
        except KeyError:
            raise KeyError(f"no delivery edge {reflector!r} -> {sink!r}") from None

    def delivery_cost(self, reflector: str, sink: str, stream: str) -> float:
        loss_cost = self._delivery_links.get((reflector, sink))
        if loss_cost is None:
            raise KeyError(f"no delivery edge {reflector!r} -> {sink!r}")
        overrides = self._delivery_stream_costs.get((reflector, sink))
        if overrides and stream in overrides:
            return overrides[stream]
        return loss_cost[1]

    def delivery_edge(self, reflector: str, sink: str, stream: str) -> DeliveryEdge:
        return DeliveryEdge(
            stream=stream,
            reflector=reflector,
            sink=sink,
            loss_probability=self.delivery_loss(reflector, sink),
            cost=self.delivery_cost(reflector, sink, stream),
        )

    def delivery_links(self) -> list[tuple[str, str]]:
        """All (reflector, sink) pairs with a delivery edge."""
        return list(self._delivery_links)

    def delivery_link_data(self) -> list[tuple[str, str, float, float]]:
        """``(reflector, sink, loss, base_cost)`` per link, in insertion order.

        Bulk accessor for the vectorized LP builder: one call instead of two
        per-link lookups, so instance data can be lifted into numpy arrays.
        """
        return [
            (reflector, sink, loss, cost)
            for (reflector, sink), (loss, cost) in self._delivery_links.items()
        ]

    def delivery_stream_cost_overrides(self) -> dict[tuple[str, str], dict[str, float]]:
        """Per-stream cost overrides: ``(reflector, sink) -> {stream: cost}``."""
        return {key: dict(value) for key, value in self._delivery_stream_costs.items()}

    def arc_capacities(self) -> dict[tuple[str, str], float]:
        """All declared Section-6.3 arc capacities: ``(reflector, sink) -> u_ij``."""
        return dict(self._arc_capacity)

    def arc_capacity(self, reflector: str, sink: str) -> float | None:
        """Section 6.3 capacity of the reflector->sink arc, or None."""
        return self._arc_capacity.get((reflector, sink))

    def reflector_capacity(self, reflector: str) -> float | None:
        """Section 6.2 capacity (max distinct streams) of a reflector, or None."""
        return self.reflector_info(reflector).capacity

    # ----------------------------------------------------- derived quantities
    def candidate_reflectors(self, demand: Demand) -> list[str]:
        """Reflectors that can serve ``demand`` (both edges present).

        Listed in reflector registration order (the order a full scan of
        ``self._reflectors`` would produce), via the per-sink delivery index.
        """
        stream = demand.stream
        candidates = [
            reflector
            for reflector in self._sink_reflectors.get(demand.sink, ())
            if (stream, reflector) in self._stream_edges
        ]
        candidates.sort(key=self._reflector_order.__getitem__)
        return candidates

    def path_failure(self, demand: Demand, reflector: str) -> float:
        """Two-hop failure probability for serving ``demand`` via ``reflector``."""
        stream_edge = self.stream_edge(demand.stream, reflector)
        delivery_loss = self.delivery_loss(reflector, demand.sink)
        return path_failure_probability(stream_edge.loss_probability, delivery_loss)

    def demand_weight(self, demand: Demand) -> float:
        """``W_kj = -log(1 - Phi)`` for the demand."""
        return threshold_to_weight(demand.success_threshold)

    def edge_weight(self, demand: Demand, reflector: str, cap_at_demand: bool = True) -> float:
        """``w_kij`` for serving ``demand`` through ``reflector``.

        When ``cap_at_demand`` is True (the default, matching the paper's WLOG
        assumption), the weight is capped at the demand weight ``W_kj``.
        """
        stream_edge = self.stream_edge(demand.stream, reflector)
        delivery_loss = self.delivery_loss(reflector, demand.sink)
        cap = self.demand_weight(demand) if cap_at_demand else None
        return edge_weight(stream_edge.loss_probability, delivery_loss, demand_weight=cap)

    def assignment_cost(self, demand: Demand, reflector: str) -> float:
        """Cost ``c^k_ij`` of assigning ``demand`` to ``reflector`` (delivery leg only)."""
        return self.delivery_cost(reflector, demand.sink, demand.stream)

    def total_fanout(self) -> int:
        """Sum of reflector fanout bounds (an upper bound on total assignments)."""
        return sum(info.fanout for info in self._reflectors.values())

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise ``ValueError`` if the instance is structurally incomplete.

        Checks that every demand has at least one candidate reflector and that
        the instance has at least one stream, reflector, sink and demand.
        """
        if not self._streams:
            raise ValueError("problem has no streams")
        if not self._reflectors:
            raise ValueError("problem has no reflectors")
        if not self._sinks:
            raise ValueError("problem has no sinks")
        if not self._demands:
            raise ValueError("problem has no demands")
        for demand in self._demands:
            if not self.candidate_reflectors(demand):
                raise ValueError(
                    f"demand {demand.key} has no candidate reflectors "
                    "(missing stream edge or delivery edge)"
                )

    def feasibility_report(self) -> list[FeasibilityIssue]:
        """Demands whose weight requirement cannot be met even using all reflectors.

        The LP is infeasible exactly when this list is non-empty (ignoring
        fanout contention); callers can use it to produce actionable error
        messages before running the full algorithm.
        """
        issues: list[FeasibilityIssue] = []
        for demand in self._demands:
            required = self.demand_weight(demand)
            candidates = self.candidate_reflectors(demand)
            available = sum(self.edge_weight(demand, reflector) for reflector in candidates)
            if available + 1e-12 < required:
                issues.append(
                    FeasibilityIssue(
                        demand=demand,
                        required_weight=required,
                        available_weight=available,
                        reachable_reflectors=len(candidates),
                    )
                )
        return issues

    def size_signature(self) -> tuple[int, int, int]:
        """(|S|, |R|, n) -- the quantities the paper's running time is stated in."""
        return (self.num_streams, self.num_reflectors, self.num_demands)

    # ---------------------------------------------------------------- helpers
    def _require_stream(self, stream: str) -> None:
        if stream not in self._stream_set:
            raise KeyError(f"unknown stream {stream!r}")

    def _require_reflector(self, reflector: str) -> None:
        if reflector not in self._reflectors:
            raise KeyError(f"unknown reflector {reflector!r}")

    def _require_sink(self, sink: str) -> None:
        if sink not in self._sink_set:
            raise KeyError(f"unknown sink {sink!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"OverlayDesignProblem(name={self.name!r}, streams={self.num_streams}, "
            f"reflectors={self.num_reflectors}, sinks={self.num_sinks}, "
            f"demands={self.num_demands})"
        )


def _check_probability(value: float) -> None:
    if not 0.0 <= value <= 1.0 or math.isnan(value):
        raise ValueError(f"loss probability must lie in [0, 1], got {value}")
