"""The IP/LP formulation of Section 2, plus the Section 6 constraint variants.

The integer program (Section 2 of the paper), with ``y^k_i`` the indicator for
delivering stream ``k`` to reflector ``i``, ``z_i`` for building reflector
``i`` and ``x^k_ij`` for serving sink ``j``'s demand for stream ``k`` through
reflector ``i``:

.. math::

    \\min \\; \\sum_i r_i z_i + \\sum_{i,k} c^k_{ki} y^k_i
              + \\sum_{i,k,j} c^k_{ij} x^k_{ij}

subject to::

    (1)  y^k_i <= z_i
    (2)  x^k_ij <= y^k_i
    (3)  sum_{k,j} x^k_ij <= F_i z_i
    (4)  sum_j   x^k_ij <= F_i y^k_i        (redundant in the IP, a useful
                                             cutting plane for the rounding)
    (5)  sum_i  w^k_ij x^k_ij >= W^k_j
    (6)  x, y, z in {0,1}  (relaxed to [0,1] in the LP)

Section 6 extensions (all opt-in through :class:`ExtensionOptions`):

* 6.1 per-stream bandwidth ``B^k`` replaces (3)/(4) by (3')/(4');
* 6.2 reflector capacities  (8)  ``sum_k y^k_i <= u_i``;
* 6.3 arc capacities        (7') ``sum_k x^k_ij <= u_ij``;
* 6.4 color constraints     (9)  ``sum_{i in R_l} x^k_ij <= 1``.

This module only *builds* the LP; solving and rounding live in
:mod:`repro.core.algorithm`, :mod:`repro.core.rounding` and
:mod:`repro.core.gap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.lp_solution import AssignmentKey, FractionalSolution
from repro.core.problem import Demand, OverlayDesignProblem
from repro.lp import LinearExpr, LinearProgram, LPSolution, Objective, Variable, solve_lp


@dataclass
class ExtensionOptions:
    """Which Section-6 extensions to include in the formulation.

    Attributes
    ----------
    use_bandwidth:
        Section 6.1 -- weight each assignment by the stream's bandwidth ``B^k``
        in the fanout constraints (3')/(4').
    use_reflector_capacities:
        Section 6.2 -- add constraint (8) for reflectors that declare a
        ``capacity`` in the problem.
    use_arc_capacities:
        Section 6.3 -- add constraint (7') for delivery edges that declare a
        ``capacity``.
    use_color_constraints:
        Section 6.4 -- add constraint (9) for every color class and demand.
    drop_cutting_plane:
        Omit constraint (4).  The IP is unchanged (Claim 2.1 shows (4) is
        dominated) but the rounding analysis relies on it; the C2 ablation
        benchmark measures the effect of dropping it.
    """

    use_bandwidth: bool = False
    use_reflector_capacities: bool = False
    use_arc_capacities: bool = False
    use_color_constraints: bool = False
    drop_cutting_plane: bool = False


@dataclass
class OverlayFormulation:
    """A built LP plus the variable maps needed to interpret its solution."""

    problem: OverlayDesignProblem
    model: LinearProgram
    z_vars: dict[str, Variable]
    y_vars: dict[tuple[str, str], Variable]
    x_vars: dict[AssignmentKey, Variable]
    #: cached edge weights w^k_ij keyed like the x variables
    weights: dict[AssignmentKey, float]
    #: cached demand weights W^k_j keyed by demand key
    demand_weights: dict[tuple[str, str], float]
    options: ExtensionOptions = field(default_factory=ExtensionOptions)

    # ------------------------------------------------------------------ solve
    def solve(self) -> LPSolution:
        """Solve the LP relaxation (Section 2, relaxed constraint (6))."""
        return solve_lp(self.model)

    def fractional_solution(self, lp_solution: LPSolution) -> FractionalSolution:
        """Extract ``(z_hat, y_hat, x_hat)`` from a solved LP."""
        if not lp_solution.is_optimal:
            raise ValueError(
                f"LP relaxation was not solved to optimality: {lp_solution.status.value} "
                f"({lp_solution.message})"
            )
        return FractionalSolution(
            z={name: lp_solution.value(var) for name, var in self.z_vars.items()},
            y={key: lp_solution.value(var) for key, var in self.y_vars.items()},
            x={key: lp_solution.value(var) for key, var in self.x_vars.items()},
            objective=lp_solution.objective,
        )

    # ------------------------------------------------------------- accessors
    def assignment_keys_for_demand(self, demand: Demand) -> list[AssignmentKey]:
        """All x-variable keys serving a particular demand."""
        return [key for key in self.x_vars if key[1] == demand.key]

    def assignment_keys_for_reflector(self, reflector: str) -> list[AssignmentKey]:
        """All x-variable keys routed through a particular reflector."""
        return [key for key in self.x_vars if key[0] == reflector]

    @property
    def num_variables(self) -> int:
        return self.model.num_variables

    @property
    def num_constraints(self) -> int:
        return self.model.num_constraints


def build_formulation(
    problem: OverlayDesignProblem,
    options: ExtensionOptions | None = None,
) -> OverlayFormulation:
    """Build the Section-2 LP relaxation (optionally with Section-6 extensions).

    The variable set is restricted to the problem's support: an ``x`` variable
    exists only for (reflector, demand) pairs where both the stream edge and
    the delivery edge exist, and a ``y`` variable only for existing stream
    edges.  This matches the paper's tripartite digraph and keeps the LP at
    ``O(|S|·|R|·|D|)`` size.
    """
    options = options or ExtensionOptions()
    problem.validate()

    model = LinearProgram(name=f"{problem.name}-lp", objective_sense=Objective.MINIMIZE)

    # Variables -------------------------------------------------------------
    z_vars: dict[str, Variable] = {}
    for reflector in problem.reflectors:
        z_vars[reflector] = model.add_variable(name=f"z[{reflector}]", lower=0.0, upper=1.0)

    y_vars: dict[tuple[str, str], Variable] = {}
    for edge in problem.stream_edges():
        key = (edge.stream, edge.reflector)
        y_vars[key] = model.add_variable(
            name=f"y[{edge.stream},{edge.reflector}]", lower=0.0, upper=1.0
        )

    x_vars: dict[AssignmentKey, Variable] = {}
    weights: dict[AssignmentKey, float] = {}
    demand_weights: dict[tuple[str, str], float] = {}
    for demand in problem.demands:
        demand_weights[demand.key] = problem.demand_weight(demand)
        for reflector in problem.candidate_reflectors(demand):
            key: AssignmentKey = (reflector, demand.key)
            x_vars[key] = model.add_variable(
                name=f"x[{reflector},{demand.sink},{demand.stream}]", lower=0.0, upper=1.0
            )
            weights[key] = problem.edge_weight(demand, reflector)

    # Objective --------------------------------------------------------------
    objective = LinearExpr()
    for reflector, var in z_vars.items():
        objective += problem.reflector_cost(reflector) * var
    for (stream, reflector), var in y_vars.items():
        objective += problem.stream_edge(stream, reflector).cost * var
    for (reflector, (sink, stream)), var in x_vars.items():
        objective += problem.delivery_cost(reflector, sink, stream) * var
    model.set_objective(objective)

    # Constraint (1): y <= z --------------------------------------------------
    for (stream, reflector), y_var in y_vars.items():
        model.add_constraint(
            y_var - z_vars[reflector] <= 0.0, name=f"(1)[{stream},{reflector}]"
        )

    # Constraint (2): x <= y --------------------------------------------------
    for (reflector, (sink, stream)), x_var in x_vars.items():
        y_var = y_vars.get((stream, reflector))
        if y_var is None:  # pragma: no cover - excluded by candidate_reflectors
            raise RuntimeError("x variable exists without its y variable")
        model.add_constraint(
            x_var - y_var <= 0.0, name=f"(2)[{reflector},{sink},{stream}]"
        )

    # Fanout constraints (3)/(4) or their bandwidth versions (3')/(4') --------
    bandwidth = (
        {stream: problem.stream_bandwidth(stream) for stream in problem.streams}
        if options.use_bandwidth
        else {stream: 1.0 for stream in problem.streams}
    )

    for reflector in problem.reflectors:
        keys = [key for key in x_vars if key[0] == reflector]
        if not keys:
            continue
        fanout = float(problem.fanout(reflector))
        total_load = LinearExpr.weighted_sum(
            (bandwidth[key[1][1]], x_vars[key]) for key in keys
        )
        model.add_constraint(
            total_load - fanout * z_vars[reflector] <= 0.0, name=f"(3)[{reflector}]"
        )
        if not options.drop_cutting_plane:
            by_stream: dict[str, list[AssignmentKey]] = {}
            for key in keys:
                by_stream.setdefault(key[1][1], []).append(key)
            for stream, stream_keys in by_stream.items():
                y_var = y_vars.get((stream, reflector))
                if y_var is None:
                    continue
                stream_load = LinearExpr.weighted_sum(
                    (bandwidth[stream], x_vars[key]) for key in stream_keys
                )
                model.add_constraint(
                    stream_load - fanout * y_var <= 0.0, name=f"(4)[{reflector},{stream}]"
                )

    # Constraint (5): weight coverage -----------------------------------------
    for demand in problem.demands:
        keys = [key for key in x_vars if key[1] == demand.key]
        coverage = LinearExpr.weighted_sum((weights[key], x_vars[key]) for key in keys)
        model.add_constraint(
            coverage >= demand_weights[demand.key],
            name=f"(5)[{demand.sink},{demand.stream}]",
        )

    # Section 6.2: reflector capacities (8) ------------------------------------
    if options.use_reflector_capacities:
        for reflector in problem.reflectors:
            capacity = problem.reflector_capacity(reflector)
            if capacity is None:
                continue
            keys = [key for key in y_vars if key[1] == reflector]
            if not keys:
                continue
            load = LinearExpr.sum(y_vars[key] for key in keys)
            model.add_constraint(load <= capacity, name=f"(8)[{reflector}]")

    # Section 6.3: arc capacities (7') -----------------------------------------
    if options.use_arc_capacities:
        for reflector, sink in problem.delivery_links():
            capacity = problem.arc_capacity(reflector, sink)
            if capacity is None:
                continue
            keys = [key for key in x_vars if key[0] == reflector and key[1][0] == sink]
            if not keys:
                continue
            load = LinearExpr.sum(x_vars[key] for key in keys)
            model.add_constraint(load <= capacity, name=f"(7')[{reflector},{sink}]")

    # Section 6.4: color constraints (9) ----------------------------------------
    if options.use_color_constraints:
        color_groups = problem.colors()
        for demand in problem.demands:
            for color, members in color_groups.items():
                keys = [
                    (reflector, demand.key)
                    for reflector in members
                    if (reflector, demand.key) in x_vars
                ]
                if len(keys) < 2:
                    # A single member can never exceed one copy.
                    continue
                load = LinearExpr.sum(x_vars[key] for key in keys)
                model.add_constraint(
                    load <= 1.0, name=f"(9)[{color},{demand.sink},{demand.stream}]"
                )

    return OverlayFormulation(
        problem=problem,
        model=model,
        z_vars=z_vars,
        y_vars=y_vars,
        x_vars=x_vars,
        weights=weights,
        demand_weights=demand_weights,
        options=options,
    )
