"""The IP/LP formulation of Section 2, plus the Section 6 constraint variants.

The integer program (Section 2 of the paper), with ``y^k_i`` the indicator for
delivering stream ``k`` to reflector ``i``, ``z_i`` for building reflector
``i`` and ``x^k_ij`` for serving sink ``j``'s demand for stream ``k`` through
reflector ``i``:

.. math::

    \\min \\; \\sum_i r_i z_i + \\sum_{i,k} c^k_{ki} y^k_i
              + \\sum_{i,k,j} c^k_{ij} x^k_{ij}

subject to::

    (1)  y^k_i <= z_i
    (2)  x^k_ij <= y^k_i
    (3)  sum_{k,j} x^k_ij <= F_i z_i
    (4)  sum_j   x^k_ij <= F_i y^k_i        (redundant in the IP, a useful
                                             cutting plane for the rounding)
    (5)  sum_i  w^k_ij x^k_ij >= W^k_j
    (6)  x, y, z in {0,1}  (relaxed to [0,1] in the LP)

Section 6 extensions (all opt-in through :class:`ExtensionOptions`):

* 6.1 per-stream bandwidth ``B^k`` replaces (3)/(4) by (3')/(4');
* 6.2 reflector capacities  (8)  ``sum_k y^k_i <= u_i``;
* 6.3 arc capacities        (7') ``sum_k x^k_ij <= u_ij``;
* 6.4 color constraints     (9)  ``sum_{i in R_l} x^k_ij <= 1``.

This module only *builds* the LP; solving and rounding live in
:mod:`repro.core.algorithm`, :mod:`repro.core.rounding` and
:mod:`repro.core.gap`.

Two builders produce the same relaxation:

* :func:`build_formulation` -- the expression-tree path over
  :mod:`repro.lp.model`.  One Python object per variable/constraint; reads
  like the paper and is the teaching/compatibility surface.
* :func:`build_sparse_formulation` -- the vectorized path over
  :mod:`repro.lp.sparse`.  Variables are allocated as index blocks and every
  constraint family is emitted as one batched coordinate block, so assembly
  cost is a handful of numpy operations over the instance arrays.  This is
  what :func:`repro.core.algorithm.design_overlay` uses by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lp_solution import AssignmentKey, FractionalSolution
from repro.core.problem import Demand, OverlayDesignProblem
from repro.core.weights import MAX_WEIGHT, MIN_FAILURE_PROBABILITY
from repro.lp import (
    CompiledLP,
    LinearExpr,
    LinearProgram,
    LPBuildStats,
    LPSolution,
    Objective,
    Sense,
    SolveOptions,
    SparseLPBuilder,
    Variable,
    solve_compiled,
    solve_lp,
)


@dataclass
class ExtensionOptions:
    """Which Section-6 extensions to include in the formulation.

    Attributes
    ----------
    use_bandwidth:
        Section 6.1 -- weight each assignment by the stream's bandwidth ``B^k``
        in the fanout constraints (3')/(4').
    use_reflector_capacities:
        Section 6.2 -- add constraint (8) for reflectors that declare a
        ``capacity`` in the problem.
    use_arc_capacities:
        Section 6.3 -- add constraint (7') for delivery edges that declare a
        ``capacity``.
    use_color_constraints:
        Section 6.4 -- add constraint (9) for every color class and demand.
    drop_cutting_plane:
        Omit constraint (4).  The IP is unchanged (Claim 2.1 shows (4) is
        dominated) but the rounding analysis relies on it; the C2 ablation
        benchmark measures the effect of dropping it.
    """

    use_bandwidth: bool = False
    use_reflector_capacities: bool = False
    use_arc_capacities: bool = False
    use_color_constraints: bool = False
    drop_cutting_plane: bool = False


@dataclass
class OverlayFormulation:
    """A built LP plus the variable maps needed to interpret its solution."""

    problem: OverlayDesignProblem
    model: LinearProgram
    z_vars: dict[str, Variable]
    y_vars: dict[tuple[str, str], Variable]
    x_vars: dict[AssignmentKey, Variable]
    #: cached edge weights w^k_ij keyed like the x variables
    weights: dict[AssignmentKey, float]
    #: cached demand weights W^k_j keyed by demand key
    demand_weights: dict[tuple[str, str], float]
    options: ExtensionOptions = field(default_factory=ExtensionOptions)

    # ------------------------------------------------------------------ solve
    def solve(
        self, backend: str = "highs", *, options: SolveOptions | None = None
    ) -> LPSolution:
        """Solve the LP relaxation (Section 2, relaxed constraint (6))."""
        return solve_lp(self.model, backend, options=options)

    def fractional_solution(self, lp_solution: LPSolution) -> FractionalSolution:
        """Extract ``(z_hat, y_hat, x_hat)`` from a solved LP."""
        if not lp_solution.is_optimal:
            raise ValueError(
                f"LP relaxation was not solved to optimality: {lp_solution.status.value} "
                f"({lp_solution.message})"
            )
        return FractionalSolution(
            z={name: lp_solution.value(var) for name, var in self.z_vars.items()},
            y={key: lp_solution.value(var) for key, var in self.y_vars.items()},
            x={key: lp_solution.value(var) for key, var in self.x_vars.items()},
            objective=lp_solution.objective,
        )

    # ------------------------------------------------------------- accessors
    def assignment_keys_for_demand(self, demand: Demand) -> list[AssignmentKey]:
        """All x-variable keys serving a particular demand."""
        return [key for key in self.x_vars if key[1] == demand.key]

    def assignment_keys_for_reflector(self, reflector: str) -> list[AssignmentKey]:
        """All x-variable keys routed through a particular reflector."""
        return [key for key in self.x_vars if key[0] == reflector]

    @property
    def num_variables(self) -> int:
        return self.model.num_variables

    @property
    def num_constraints(self) -> int:
        return self.model.num_constraints


def build_formulation(
    problem: OverlayDesignProblem,
    options: ExtensionOptions | None = None,
) -> OverlayFormulation:
    """Build the Section-2 LP relaxation (optionally with Section-6 extensions).

    The variable set is restricted to the problem's support: an ``x`` variable
    exists only for (reflector, demand) pairs where both the stream edge and
    the delivery edge exist, and a ``y`` variable only for existing stream
    edges.  This matches the paper's tripartite digraph and keeps the LP at
    ``O(|S|·|R|·|D|)`` size.
    """
    options = options or ExtensionOptions()
    problem.validate()

    model = LinearProgram(name=f"{problem.name}-lp", objective_sense=Objective.MINIMIZE)

    # Variables -------------------------------------------------------------
    z_vars: dict[str, Variable] = {}
    for reflector in problem.reflectors:
        z_vars[reflector] = model.add_variable(name=f"z[{reflector}]", lower=0.0, upper=1.0)

    y_vars: dict[tuple[str, str], Variable] = {}
    for edge in problem.stream_edges():
        key = (edge.stream, edge.reflector)
        y_vars[key] = model.add_variable(
            name=f"y[{edge.stream},{edge.reflector}]", lower=0.0, upper=1.0
        )

    x_vars: dict[AssignmentKey, Variable] = {}
    weights: dict[AssignmentKey, float] = {}
    demand_weights: dict[tuple[str, str], float] = {}
    for demand in problem.demands:
        demand_weights[demand.key] = problem.demand_weight(demand)
        for reflector in problem.candidate_reflectors(demand):
            key: AssignmentKey = (reflector, demand.key)
            x_vars[key] = model.add_variable(
                name=f"x[{reflector},{demand.sink},{demand.stream}]", lower=0.0, upper=1.0
            )
            weights[key] = problem.edge_weight(demand, reflector)

    # Objective --------------------------------------------------------------
    objective = LinearExpr()
    for reflector, var in z_vars.items():
        objective += problem.reflector_cost(reflector) * var
    for (stream, reflector), var in y_vars.items():
        objective += problem.stream_edge(stream, reflector).cost * var
    for (reflector, (sink, stream)), var in x_vars.items():
        objective += problem.delivery_cost(reflector, sink, stream) * var
    model.set_objective(objective)

    # Constraint (1): y <= z --------------------------------------------------
    for (stream, reflector), y_var in y_vars.items():
        model.add_constraint(
            y_var - z_vars[reflector] <= 0.0, name=f"(1)[{stream},{reflector}]"
        )

    # Constraint (2): x <= y --------------------------------------------------
    for (reflector, (sink, stream)), x_var in x_vars.items():
        y_var = y_vars.get((stream, reflector))
        if y_var is None:  # pragma: no cover - excluded by candidate_reflectors
            raise RuntimeError("x variable exists without its y variable")
        model.add_constraint(
            x_var - y_var <= 0.0, name=f"(2)[{reflector},{sink},{stream}]"
        )

    # Fanout constraints (3)/(4) or their bandwidth versions (3')/(4') --------
    bandwidth = (
        {stream: problem.stream_bandwidth(stream) for stream in problem.streams}
        if options.use_bandwidth
        else {stream: 1.0 for stream in problem.streams}
    )

    for reflector in problem.reflectors:
        keys = [key for key in x_vars if key[0] == reflector]
        if not keys:
            continue
        fanout = float(problem.fanout(reflector))
        total_load = LinearExpr.weighted_sum(
            (bandwidth[key[1][1]], x_vars[key]) for key in keys
        )
        model.add_constraint(
            total_load - fanout * z_vars[reflector] <= 0.0, name=f"(3)[{reflector}]"
        )
        if not options.drop_cutting_plane:
            by_stream: dict[str, list[AssignmentKey]] = {}
            for key in keys:
                by_stream.setdefault(key[1][1], []).append(key)
            for stream, stream_keys in by_stream.items():
                y_var = y_vars.get((stream, reflector))
                if y_var is None:
                    continue
                stream_load = LinearExpr.weighted_sum(
                    (bandwidth[stream], x_vars[key]) for key in stream_keys
                )
                model.add_constraint(
                    stream_load - fanout * y_var <= 0.0, name=f"(4)[{reflector},{stream}]"
                )

    # Constraint (5): weight coverage -----------------------------------------
    for demand in problem.demands:
        keys = [key for key in x_vars if key[1] == demand.key]
        coverage = LinearExpr.weighted_sum((weights[key], x_vars[key]) for key in keys)
        model.add_constraint(
            coverage >= demand_weights[demand.key],
            name=f"(5)[{demand.sink},{demand.stream}]",
        )

    # Section 6.2: reflector capacities (8) ------------------------------------
    if options.use_reflector_capacities:
        for reflector in problem.reflectors:
            capacity = problem.reflector_capacity(reflector)
            if capacity is None:
                continue
            keys = [key for key in y_vars if key[1] == reflector]
            if not keys:
                continue
            load = LinearExpr.sum(y_vars[key] for key in keys)
            model.add_constraint(load <= capacity, name=f"(8)[{reflector}]")

    # Section 6.3: arc capacities (7') -----------------------------------------
    if options.use_arc_capacities:
        for reflector, sink in problem.delivery_links():
            capacity = problem.arc_capacity(reflector, sink)
            if capacity is None:
                continue
            keys = [key for key in x_vars if key[0] == reflector and key[1][0] == sink]
            if not keys:
                continue
            load = LinearExpr.sum(x_vars[key] for key in keys)
            model.add_constraint(load <= capacity, name=f"(7')[{reflector},{sink}]")

    # Section 6.4: color constraints (9) ----------------------------------------
    if options.use_color_constraints:
        color_groups = problem.colors()
        for demand in problem.demands:
            for color, members in color_groups.items():
                keys = [
                    (reflector, demand.key)
                    for reflector in members
                    if (reflector, demand.key) in x_vars
                ]
                if len(keys) < 2:
                    # A single member can never exceed one copy.
                    continue
                load = LinearExpr.sum(x_vars[key] for key in keys)
                model.add_constraint(
                    load <= 1.0, name=f"(9)[{color},{demand.sink},{demand.stream}]"
                )

    return OverlayFormulation(
        problem=problem,
        model=model,
        z_vars=z_vars,
        y_vars=y_vars,
        x_vars=x_vars,
        weights=weights,
        demand_weights=demand_weights,
        options=options,
    )


# ---------------------------------------------------------------------------
# Vectorized sparse path
# ---------------------------------------------------------------------------


@dataclass
class SparseOverlayFormulation:
    """The Section-2 LP assembled directly in matrix form.

    Produces *exactly* the same relaxation as :class:`OverlayFormulation`
    (same variables in the same order, same constraint families), but holds a
    :class:`~repro.lp.model.CompiledLP` instead of an expression tree, plus an
    :class:`~repro.lp.LPBuildStats` describing assembly cost.

    Variable layout: ``z`` for every reflector first, then ``y`` for every
    stream edge, then ``x`` for every (reflector, demand) support pair --
    matching the allocation order of :func:`build_formulation` so solutions
    are interchangeable between the two paths.
    """

    problem: OverlayDesignProblem
    compiled: CompiledLP
    stats: LPBuildStats
    z_keys: list[str]
    y_keys: list[tuple[str, str]]
    x_keys: list[AssignmentKey]
    weights: dict[AssignmentKey, float]
    demand_weights: dict[tuple[str, str], float]
    options: ExtensionOptions = field(default_factory=ExtensionOptions)

    # ------------------------------------------------------------------ solve
    def solve(
        self, backend: str = "highs", *, options: SolveOptions | None = None
    ) -> LPSolution:
        """Solve the LP relaxation (Section 2, relaxed constraint (6))."""
        return solve_compiled(self.compiled, backend, options=options, stats=self.stats)

    def fractional_solution(self, lp_solution: LPSolution) -> FractionalSolution:
        """Extract ``(z_hat, y_hat, x_hat)`` from a solved LP."""
        if not lp_solution.is_optimal:
            raise ValueError(
                f"LP relaxation was not solved to optimality: {lp_solution.status.value} "
                f"({lp_solution.message})"
            )
        values = np.asarray(lp_solution.values, dtype=float)
        nz, ny = len(self.z_keys), len(self.y_keys)
        return FractionalSolution(
            z=dict(zip(self.z_keys, values[:nz].tolist())),
            y=dict(zip(self.y_keys, values[nz : nz + ny].tolist())),
            x=dict(zip(self.x_keys, values[nz + ny :].tolist())),
            objective=lp_solution.objective,
        )

    # ------------------------------------------------------------- accessors
    def assignment_keys_for_demand(self, demand: Demand) -> list[AssignmentKey]:
        """All x-variable keys serving a particular demand."""
        return [key for key in self.x_keys if key[1] == demand.key]

    def assignment_keys_for_reflector(self, reflector: str) -> list[AssignmentKey]:
        """All x-variable keys routed through a particular reflector."""
        return [key for key in self.x_keys if key[0] == reflector]

    @property
    def num_variables(self) -> int:
        return int(self.compiled.c.size)

    @property
    def num_constraints(self) -> int:
        return self.stats.num_constraints


def build_sparse_formulation(
    problem: OverlayDesignProblem,
    options: ExtensionOptions | None = None,
) -> SparseOverlayFormulation:
    """Build the Section-2 LP relaxation as batched sparse blocks.

    Semantically identical to :func:`build_formulation` (same variable
    support, same constraint families, optionally the same Section-6
    extensions) but assembled with vectorized numpy over the instance arrays:
    the ``x`` support is the nonzero set of a ``(demands, reflectors)``
    boolean mask, and each constraint family -- (1), (2), (3), (4), (5) and
    the Section-6 blocks -- is emitted as a single coordinate block.
    """
    options = options or ExtensionOptions()
    problem.validate()

    builder = SparseLPBuilder(name=f"{problem.name}-lp", objective_sense=Objective.MINIMIZE)

    # Instance arrays --------------------------------------------------------
    reflectors = problem.reflectors
    streams = problem.streams
    sinks = problem.sinks
    demands = problem.demands
    n_reflectors, n_streams, n_sinks = len(reflectors), len(streams), len(sinks)
    s_index = {name: i for i, name in enumerate(streams)}
    k_index = {name: i for i, name in enumerate(sinks)}

    infos = [problem.reflector_info(name) for name in reflectors]
    reflector_cost = np.array([info.cost for info in infos])
    fanout = np.array([float(info.fanout) for info in infos])

    edges = problem.stream_edges()
    r_index = {name: i for i, name in enumerate(reflectors)}
    se_stream = np.array([s_index[e.stream] for e in edges], dtype=np.int64)
    se_reflector = np.array([r_index[e.reflector] for e in edges], dtype=np.int64)
    se_loss = np.array([e.loss_probability for e in edges])
    se_cost = np.array([e.cost for e in edges])
    n_edges = len(edges)
    stream_ok = np.zeros((n_streams, n_reflectors), dtype=bool)
    stream_ok[se_stream, se_reflector] = True
    se_pos = np.full((n_streams, n_reflectors), -1, dtype=np.int64)
    se_pos[se_stream, se_reflector] = np.arange(n_edges)

    links = problem.delivery_link_data()
    dl_reflector = np.array([r_index[r] for r, _k, _l, _c in links], dtype=np.int64)
    dl_sink = np.array([k_index[k] for _r, k, _l, _c in links], dtype=np.int64)
    dl_loss = np.array([loss for _r, _k, loss, _c in links])
    dl_cost = np.array([cost for _r, _k, _l, cost in links])
    n_links = len(links)
    deliv_ok = np.zeros((n_reflectors, n_sinks), dtype=bool)
    deliv_ok[dl_reflector, dl_sink] = True
    dl_pos = np.full((n_reflectors, n_sinks), -1, dtype=np.int64)
    dl_pos[dl_reflector, dl_sink] = np.arange(n_links)

    d_sink = np.array([k_index[d.sink] for d in demands], dtype=np.int64)
    d_stream = np.array([s_index[d.stream] for d in demands], dtype=np.int64)
    d_threshold = np.array([d.success_threshold for d in demands])
    n_demands = len(demands)
    # W_kj = -log(1 - Phi), clamped exactly like weights.threshold_to_weight.
    d_failure = 1.0 - d_threshold
    demand_weight = np.where(
        d_failure <= MIN_FAILURE_PROBABILITY,
        MAX_WEIGHT,
        np.minimum(MAX_WEIGHT, -np.log(np.maximum(d_failure, MIN_FAILURE_PROBABILITY))),
    )

    # x support: (demand, reflector) pairs with both edges present -----------
    support = stream_ok[d_stream] & deliv_ok[:, d_sink].T  # (demands, reflectors)
    xd, xr = np.nonzero(support)
    x_stream = d_stream[xd]
    x_sink = d_sink[xd]
    x_link = dl_pos[xr, x_sink]
    x_edge = se_pos[x_stream, xr]
    n_x = xd.size

    # w_kij: serial loss rule + log transform, capped at W_kj ----------------
    p1 = se_loss[x_edge]
    p2 = dl_loss[x_link]
    q = p1 + p2 - p1 * p2
    cap = np.minimum(MAX_WEIGHT, demand_weight[xd])
    x_weight = np.where(
        q <= MIN_FAILURE_PROBABILITY,
        cap,
        np.minimum(cap, -np.log(np.maximum(q, MIN_FAILURE_PROBABILITY))),
    )

    # c^k_ij: per-link base cost with optional per-stream overrides ----------
    x_cost = dl_cost[x_link].copy()
    overrides = problem.delivery_stream_cost_overrides()
    if overrides:
        override_table = np.full((n_links, n_streams), np.nan)
        for (reflector, sink), per_stream in overrides.items():
            link = dl_pos[r_index[reflector], k_index[sink]]
            for stream, cost in per_stream.items():
                override_table[link, s_index[stream]] = cost
        override_cost = override_table[x_link, x_stream]
        overridden = ~np.isnan(override_cost)
        x_cost[overridden] = override_cost[overridden]

    # Variables (same layout as build_formulation: z, then y, then x) --------
    z_cols = builder.add_variables(n_reflectors, 0.0, 1.0, name="z")
    y_cols = builder.add_variables(n_edges, 0.0, 1.0, name="y")
    x_cols = builder.add_variables(n_x, 0.0, 1.0, name="x")

    # Objective --------------------------------------------------------------
    builder.add_objective_terms(z_cols, reflector_cost)
    builder.add_objective_terms(y_cols, se_cost)
    builder.add_objective_terms(x_cols, x_cost)

    ones_x = np.ones(n_x)

    # Constraint (1): y <= z --------------------------------------------------
    rows = np.tile(np.arange(n_edges), 2)
    builder.add_block(
        "(1) y<=z",
        rows,
        np.concatenate([y_cols, z_cols[se_reflector]]),
        np.concatenate([np.ones(n_edges), -np.ones(n_edges)]),
        np.zeros(n_edges),
        Sense.LE,
    )

    # Constraint (2): x <= y --------------------------------------------------
    rows = np.tile(np.arange(n_x), 2)
    builder.add_block(
        "(2) x<=y",
        rows,
        np.concatenate([x_cols, y_cols[x_edge]]),
        np.concatenate([ones_x, -ones_x]),
        np.zeros(n_x),
        Sense.LE,
    )

    # Fanout constraints (3)/(4) or their bandwidth versions (3')/(4') --------
    if options.use_bandwidth:
        bandwidth = np.array([problem.stream_bandwidth(s) for s in streams])
    else:
        bandwidth = np.ones(n_streams)
    x_load = bandwidth[x_stream]

    used_reflectors, load_row = np.unique(xr, return_inverse=True)
    n_load_rows = used_reflectors.size
    builder.add_block(
        "(3) fanout vs z",
        np.concatenate([load_row, np.arange(n_load_rows)]),
        np.concatenate([x_cols, z_cols[used_reflectors]]),
        np.concatenate([x_load, -fanout[used_reflectors]]),
        np.zeros(n_load_rows),
        Sense.LE,
    )

    if not options.drop_cutting_plane:
        pair_key = xr * n_streams + x_stream
        used_pairs, pair_row = np.unique(pair_key, return_inverse=True)
        pair_reflector = used_pairs // n_streams
        pair_stream = used_pairs % n_streams
        pair_edge = se_pos[pair_stream, pair_reflector]  # always >= 0 on the support
        n_pair_rows = used_pairs.size
        builder.add_block(
            "(4) fanout vs y",
            np.concatenate([pair_row, np.arange(n_pair_rows)]),
            np.concatenate([x_cols, y_cols[pair_edge]]),
            np.concatenate([x_load, -fanout[pair_reflector]]),
            np.zeros(n_pair_rows),
            Sense.LE,
        )

    # Constraint (5): weight coverage -----------------------------------------
    builder.add_block(
        "(5) weight coverage",
        xd,
        x_cols,
        x_weight,
        demand_weight,
        Sense.GE,
    )

    # Section 6.2: reflector capacities (8) ------------------------------------
    if options.use_reflector_capacities:
        reflector_cap = np.array(
            [np.nan if info.capacity is None else float(info.capacity) for info in infos]
        )
        capped = ~np.isnan(reflector_cap[se_reflector])
        if capped.any():
            used, row = np.unique(se_reflector[capped], return_inverse=True)
            builder.add_block(
                "(8) reflector capacity",
                row,
                y_cols[capped],
                np.ones(int(capped.sum())),
                reflector_cap[used],
                Sense.LE,
            )

    # Section 6.3: arc capacities (7') -----------------------------------------
    if options.use_arc_capacities:
        link_cap = np.full(n_links, np.nan)
        for (reflector, sink), capacity in problem.arc_capacities().items():
            link_cap[dl_pos[r_index[reflector], k_index[sink]]] = capacity
        capped = ~np.isnan(link_cap[x_link])
        if capped.any():
            used, row = np.unique(x_link[capped], return_inverse=True)
            builder.add_block(
                "(7') arc capacity",
                row,
                x_cols[capped],
                np.ones(int(capped.sum())),
                link_cap[used],
                Sense.LE,
            )

    # Section 6.4: color constraints (9) ----------------------------------------
    if options.use_color_constraints:
        color_groups = problem.colors()
        color_of = np.full(n_reflectors, -1, dtype=np.int64)
        for color_id, members in enumerate(color_groups.values()):
            for member in members:
                color_of[r_index[member]] = color_id
        colored = color_of[xr] >= 0
        if colored.any():
            group_key = xd[colored] * np.int64(len(color_groups)) + color_of[xr[colored]]
            groups, row = np.unique(group_key, return_inverse=True)
            counts = np.bincount(row)
            # A single member can never exceed one copy.
            keep_group = counts >= 2
            if keep_group.any():
                row_of_group = np.full(groups.size, -1, dtype=np.int64)
                row_of_group[keep_group] = np.arange(int(keep_group.sum()))
                keep_entry = keep_group[row]
                builder.add_block(
                    "(9) color",
                    row_of_group[row[keep_entry]],
                    x_cols[colored][keep_entry],
                    np.ones(int(keep_entry.sum())),
                    np.ones(int(keep_group.sum())),
                    Sense.LE,
                )

    compiled, stats = builder.build()

    # Key lists / caches mirroring OverlayFormulation's dict maps -------------
    y_keys = [(edge.stream, edge.reflector) for edge in edges]
    x_keys: list[AssignmentKey] = [
        (reflectors[r], (sinks[k], streams[s]))
        for r, k, s in zip(xr.tolist(), x_sink.tolist(), x_stream.tolist())
    ]
    return SparseOverlayFormulation(
        problem=problem,
        compiled=compiled,
        stats=stats,
        z_keys=list(reflectors),
        y_keys=y_keys,
        x_keys=x_keys,
        weights=dict(zip(x_keys, x_weight.tolist())),
        demand_weights=dict(
            zip((d.key for d in demands), demand_weight.tolist())
        ),
        options=options,
    )
