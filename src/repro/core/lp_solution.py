"""Containers for fractional and rounded solutions of the Section-2 LP.

The paper's pipeline transforms an optimal *fractional* solution
``(z_hat, y_hat, x_hat)`` into a *rounded* solution ``(z_bar, y_bar, x_bar)``
(Section 3) where only the ``x_bar`` values may still be fractional, and
finally into a 0/1 solution via the modified GAP network (Section 5).  These
dataclasses carry the intermediate states between stages and are also exposed
to users who want to inspect them (e.g. the T2/T3 benchmarks measure
constraint violations *after rounding but before GAP*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import Demand, OverlayDesignProblem


#: Key type for assignment variables: (reflector, demand-key) where the demand
#: key is the (sink, stream) pair.
AssignmentKey = tuple[str, tuple[str, str]]


@dataclass
class FractionalSolution:
    """Optimal fractional solution ``(z_hat, y_hat, x_hat)`` of the LP relaxation.

    Attributes
    ----------
    z:
        ``reflector -> z_hat_i`` (fractional "build" indicator).
    y:
        ``(stream, reflector) -> y_hat_ki`` (fractional stream-delivery indicator).
    x:
        ``(reflector, (sink, stream)) -> x_hat_kij`` (fractional assignment).
    objective:
        LP objective value -- a lower bound on the optimal IP cost, used as the
        denominator of every measured approximation ratio.
    """

    z: dict[str, float]
    y: dict[tuple[str, str], float]
    x: dict[AssignmentKey, float]
    objective: float

    def support(self, tol: float = 1e-9) -> "FractionalSolution":
        """Copy with entries below ``tol`` dropped (keeps later stages sparse)."""
        return FractionalSolution(
            z={k: v for k, v in self.z.items() if v > tol},
            y={k: v for k, v in self.y.items() if v > tol},
            x={k: v for k, v in self.x.items() if v > tol},
            objective=self.objective,
        )

    def cost(self, problem: "OverlayDesignProblem") -> float:
        """Re-evaluate the objective of this (possibly modified) solution."""
        total = 0.0
        for reflector, value in self.z.items():
            total += problem.reflector_cost(reflector) * value
        for (stream, reflector), value in self.y.items():
            total += problem.stream_edge(stream, reflector).cost * value
        for (reflector, (sink, stream)), value in self.x.items():
            total += problem.delivery_cost(reflector, sink, stream) * value
        return total


@dataclass
class RoundedSolution:
    """State after the Section-3 randomized rounding.

    ``z`` and ``y`` are 0/1; ``x`` values are each either ``x_hat`` (kept
    fractional because both inflated variables saturated at 1), ``1/(c log n)``
    or 0.  ``scaled_z``/``scaled_y`` keep the intermediate inflated values
    (the paper's ``z_dot``/``y_dot``), which the analysis benchmarks inspect.
    """

    z: dict[str, int]
    y: dict[tuple[str, str], int]
    x: dict[AssignmentKey, float]
    scaled_z: dict[str, float] = field(default_factory=dict)
    scaled_y: dict[tuple[str, str], float] = field(default_factory=dict)
    multiplier: float = 1.0  # the value of c * log(n) actually used

    def cost(self, problem: "OverlayDesignProblem") -> float:
        """Cost ``C_bar`` of the rounded (still partially fractional) solution."""
        total = 0.0
        for reflector, value in self.z.items():
            total += problem.reflector_cost(reflector) * value
        for (stream, reflector), value in self.y.items():
            total += problem.stream_edge(stream, reflector).cost * value
        for (reflector, (sink, stream)), value in self.x.items():
            total += problem.delivery_cost(reflector, sink, stream) * value
        return total

    def delivered_weight(self, problem: "OverlayDesignProblem", demand: "Demand") -> float:
        """``sum_i x_bar * w`` for a demand (LHS of constraint (5) after rounding)."""
        total = 0.0
        for (reflector, key), value in self.x.items():
            if key == demand.key and value > 0:
                total += value * problem.edge_weight(demand, reflector)
        return total

    def reflector_load(self, reflector: str) -> float:
        """``sum_{k,j} x_bar_kij`` for a reflector (LHS of the fanout constraint)."""
        return sum(value for (r, _key), value in self.x.items() if r == reflector)
