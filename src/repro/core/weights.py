"""Probability <-> weight transforms (Section 1.3 and Section 2 of the paper).

The paper's reliability model:

* A packet sent over two consecutive links with loss probabilities ``p1`` and
  ``p2`` is lost with probability ``p1 + p2 - p1*p2`` (it survives only if it
  survives both hops).
* A packet delivered to a sink along several *independent* two-hop paths is
  lost only if it is lost on every path, i.e. with probability ``prod(q_i)``.

To turn the multiplicative reliability requirement into a linear covering
constraint, the paper takes negative logarithms:

* ``w_kij = -log(p_ki + p_ij - p_ki * p_ij)`` is the *weight* of serving sink
  ``j`` with commodity ``k`` through reflector ``i``.
* ``W_kj = -log(1 - Phi_kj)`` is the weight demanded by sink ``j``, where
  ``Phi_kj`` is the required success probability.

Then "success probability at least Phi" is exactly "sum of path weights at
least W" (for independent paths), which is constraint (5) of the IP.

Numerical care: zero failure probabilities map to infinite weight, so all
transforms accept a ``cap`` and the formulation caps ``w`` at ``W`` (the paper
notes this is WLOG since extra weight at a single edge never helps).
"""

from __future__ import annotations

import math
from typing import Iterable

#: Smallest failure probability we distinguish from "never fails".  Weights are
#: capped as if probabilities below this were equal to it (-log gives ~46 nats).
MIN_FAILURE_PROBABILITY = 1e-20

#: Largest finite weight produced by the transforms.
MAX_WEIGHT = -math.log(MIN_FAILURE_PROBABILITY)


def path_failure_probability(p_source_reflector: float, p_reflector_sink: float) -> float:
    """Loss probability of the two-hop path source -> reflector -> sink.

    This is the serial composition rule of Section 1.3:
    ``p1 + p2 - p1 * p2``.
    """
    _check_probability(p_source_reflector, "p_source_reflector")
    _check_probability(p_reflector_sink, "p_reflector_sink")
    return p_source_reflector + p_reflector_sink - p_source_reflector * p_reflector_sink


def combined_failure_probability(path_failures: Iterable[float]) -> float:
    """Loss probability at a sink receiving copies along independent paths.

    Parallel composition: the packet is lost only if every copy is lost, so the
    probability is the product of per-path failure probabilities.  An empty
    iterable means the sink receives nothing, i.e. failure probability 1.
    """
    product = 1.0
    for q in path_failures:
        _check_probability(q, "path failure probability")
        product *= q
    return product


def failure_to_weight(failure_probability: float, cap: float = MAX_WEIGHT) -> float:
    """``w = -log(q)`` with clamping for ``q`` at or near zero.

    Parameters
    ----------
    failure_probability:
        The probability ``q`` that a packet fails to arrive along this path.
    cap:
        Upper bound on the returned weight (defaults to the global
        :data:`MAX_WEIGHT`).  The Section-2 formulation additionally caps each
        edge weight at the sink's demanded weight ``W``.
    """
    _check_probability(failure_probability, "failure_probability")
    if failure_probability <= MIN_FAILURE_PROBABILITY:
        return cap
    return min(cap, -math.log(failure_probability))


def weight_to_failure(weight: float) -> float:
    """Inverse transform ``q = exp(-w)``."""
    if weight < 0:
        raise ValueError(f"weight must be non-negative, got {weight}")
    return math.exp(-weight)


def threshold_to_weight(success_threshold: float, cap: float = MAX_WEIGHT) -> float:
    """Demand weight ``W = -log(1 - Phi)`` for a success-probability threshold.

    ``Phi = 0`` (no requirement) maps to weight 0; ``Phi = 1`` is clamped to the
    cap (a sink can never be guaranteed lossless delivery over lossy links).
    """
    if not 0.0 <= success_threshold <= 1.0:
        raise ValueError(f"success threshold must lie in [0, 1], got {success_threshold}")
    return failure_to_weight(1.0 - success_threshold, cap=cap)


def success_from_weight(total_weight: float) -> float:
    """Success probability implied by a total delivered weight: ``1 - exp(-w)``."""
    if total_weight < 0:
        raise ValueError(f"total weight must be non-negative, got {total_weight}")
    return 1.0 - math.exp(-total_weight)


def edge_weight(
    p_source_reflector: float,
    p_reflector_sink: float,
    demand_weight: float | None = None,
) -> float:
    """Weight ``w_kij`` of a (commodity, reflector, sink) delivery edge.

    Combines the serial loss rule with the log transform and, if
    ``demand_weight`` is given, caps the result at it (the paper's WLOG
    ``w_kij <= W_kj`` assumption, needed for the Chernoff analysis).
    """
    q = path_failure_probability(p_source_reflector, p_reflector_sink)
    cap = MAX_WEIGHT if demand_weight is None else min(MAX_WEIGHT, demand_weight)
    return failure_to_weight(q, cap=cap)


def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
