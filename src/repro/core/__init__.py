"""Core algorithms: the paper's primary contribution.

This subpackage implements the SPAA'03 three-level overlay multicast design
algorithm end to end:

* :mod:`repro.core.problem` -- the 3-level min-cost reliability multicommodity
  flow problem (Section 2's input data).
* :mod:`repro.core.weights` -- probability <-> weight transforms.
* :mod:`repro.core.formulation` -- the IP/LP of Section 2 plus the Section 6
  constraint variants, built on :mod:`repro.lp`.
* :mod:`repro.core.rounding` -- the randomized rounding of Section 3.
* :mod:`repro.core.concentration` -- Hoeffding--Chernoff bounds (Section 4 /
  Appendix A) used for analysis and validated empirically in the benchmarks.
* :mod:`repro.core.gap` -- the modified generalized-assignment rounding of
  Section 5 (the Figure-2 network).
* :mod:`repro.core.path_rounding` -- the Srinivasan--Teo style path rounding
  used for the Section 6.3-6.5 extensions.
* :mod:`repro.core.extensions` -- bandwidth, arc-capacity and color-constraint
  extensions (Sections 6.1-6.4).
* :mod:`repro.core.algorithm` -- the :func:`design_overlay` pipeline.
* :mod:`repro.core.solution` -- the resulting overlay design and its audit.
"""

from repro.core.algorithm import DesignParameters, DesignReport, design_overlay
from repro.core.problem import Demand, OverlayDesignProblem, StreamEdge, DeliveryEdge
from repro.core.solution import OverlaySolution
from repro.core.weights import (
    failure_to_weight,
    path_failure_probability,
    success_from_weight,
    threshold_to_weight,
    weight_to_failure,
)

__all__ = [
    "Demand",
    "DeliveryEdge",
    "DesignParameters",
    "DesignReport",
    "OverlayDesignProblem",
    "OverlaySolution",
    "StreamEdge",
    "design_overlay",
    "failure_to_weight",
    "path_failure_probability",
    "success_from_weight",
    "threshold_to_weight",
    "weight_to_failure",
]
