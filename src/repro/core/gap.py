"""Modified generalized-assignment (GAP) rounding -- Section 5 / Figure 2.

After the Section-3 rounding the only fractional variables left are the
assignment values ``x_bar``.  The paper converts them to a 0/1 solution by
building a five-level flow network (Figure 2) and extracting a half-integral
min-cost flow:

* **level 1** -- a super source ``s``;
* **level 2** -- the reflectors; edge ``s -> i`` with capacity ``F_i``;
* **level 3** -- (reflector, sink) pairs with ``x_bar != 0``; edge
  ``i -> (i, j)`` with capacity 1;
* **level 4** -- per sink ``j``, ``s_j = floor(2 * sum_i x_bar_ij)`` *boxes*.
  The weights ``w_ij`` of the sink's candidate pairs are sorted in decreasing
  order and the ``x_bar`` mass is walked through in chunks of 1/2; each chunk
  defines a box whose *weight interval* spans the weights consumed by the
  chunk.  The last box is dropped.  A pair connects to every box whose
  interval contains its weight, with capacity 1/2;
* **level 5** -- a super sink ``T``; every box connects to it with capacity
  1/2, and the demand is 1/2 per box.

The fractional ``x_bar`` (reduced to respect capacities) saturates all box
demands, so a max flow saturates them too; because all capacities are
multiples of 1/2 there is a *half-integral* min-cost max flow.  Interpreting
"pair (i, j) carries positive flow" as ``x_ij = 1`` ("doubling the halves")
yields the final integral solution, which violates fanout by at most another
factor 2 (total 4) and preserves at least half the delivered weight (total
factor 4, i.e. the final failure probability is at most the fourth root of
the target).

Implementation notes
---------------------
* All capacities are doubled so the min-cost max-flow solver
  (:func:`repro.flow.min_cost_max_flow`) works with integers; dividing by two
  recovers the paper's half-integral flow.
* Degenerate box counts: if ``sum_i x_bar_ij < 1`` the paper's rule would give
  zero boxes after dropping the last one, which would leave the demand
  entirely unserved.  We keep a single box in that case (and only drop the
  last box when ``s_j >= 2``); this is a strict improvement in delivered
  weight and never hurts the other guarantees.  The deviation is recorded in
  EXPERIMENTS.md.
* Costs: the per-unit cost of the ``i -> (i, j)`` edge is half the assignment
  cost, so that the doubled flow pays exactly the assignment cost when a pair
  is fully used and half of it when it is used "halfway" (the paper accounts
  for the doubling inside its O(log n) cost factor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lp_solution import AssignmentKey, RoundedSolution
from repro.core.problem import Demand, OverlayDesignProblem
from repro.flow import FlowNetwork, min_cost_max_flow

#: x_bar values smaller than this are treated as zero mass.
_MASS_TOL = 1e-12


@dataclass(frozen=True)
class WeightBox:
    """A level-4 box: half a unit of demanded weight for one sink.

    ``upper``/``lower`` bound the weights of the pairs allowed to serve this
    box (inclusive); boxes of the same demand are ordered by decreasing weight.
    """

    demand_key: tuple[str, str]
    index: int
    upper: float
    lower: float

    def contains(self, weight: float, tol: float = 1e-12) -> bool:
        return self.lower - tol <= weight <= self.upper + tol


@dataclass
class GapNetwork:
    """The constructed Figure-2 network plus bookkeeping to read the flow back."""

    network: FlowNetwork
    source: int
    sink: int
    boxes: list[WeightBox]
    #: edge id of the reflector -> (reflector, demand) pair edge, per assignment key
    pair_edge: dict[AssignmentKey, int]
    #: edge ids of pair -> box edges, per assignment key
    pair_box_edges: dict[AssignmentKey, list[int]] = field(default_factory=dict)
    #: total (doubled) demand, i.e. number of boxes
    total_demand: int = 0


@dataclass
class GapResult:
    """Outcome of the GAP stage.

    Attributes
    ----------
    assignments:
        The final 0/1 choice: set of (reflector, demand-key) pairs served.
    flow_value:
        Amount of (doubled) flow routed; equals ``boxes_total`` when every box
        demand was saturated.
    boxes_total, boxes_served:
        Number of boxes constructed / saturated -- the audit uses the gap
        between them to report unserved weight.
    cost:
        Cost of the extracted flow (assignment-cost scale, see module notes).
    """

    assignments: set[AssignmentKey]
    flow_value: float
    boxes_total: int
    boxes_served: int
    cost: float


def build_boxes_for_demand(
    demand: Demand,
    entries: list[tuple[str, float, float]],
    keep_degenerate_box: bool = True,
) -> list[WeightBox]:
    """Construct the level-4 boxes for one demand.

    Parameters
    ----------
    demand:
        The (sink, stream) demand.
    entries:
        List of ``(reflector, weight, x_bar)`` with positive ``x_bar``.
    keep_degenerate_box:
        Keep one box when the paper's rule would produce none (see module
        notes).  Disable to follow the paper literally.

    Returns
    -------
    list[WeightBox]
        Boxes ordered by decreasing weight interval.
    """
    entries = [e for e in entries if e[2] > _MASS_TOL]
    if not entries:
        return []
    # Sort by decreasing weight (the paper's w_{1j} >= w_{2j} >= ...).
    entries.sort(key=lambda item: (-item[1], item[0]))
    total_mass = sum(x for _, _, x in entries)
    box_count = int(2.0 * total_mass + 1e-9)

    raw_boxes: list[tuple[float, float]] = []
    cumulative = 0.0
    current_upper = entries[0][1]
    target = 0.5
    for _, weight, mass in entries:
        cumulative += mass
        # Close as many half-unit boxes as this entry's mass completes.
        while cumulative >= target - 1e-12 and len(raw_boxes) < box_count:
            raw_boxes.append((current_upper, weight))
            current_upper = weight
            target += 0.5

    # Paper: "eliminate the last box for each sink".  With the degenerate-case
    # handling enabled we never drop below one box (and synthesise one spanning
    # the full weight range if the paper's rule would produce none at all).
    if keep_degenerate_box:
        if len(raw_boxes) >= 2:
            raw_boxes = raw_boxes[:-1]
        elif not raw_boxes and total_mass > _MASS_TOL:
            raw_boxes = [(entries[0][1], entries[-1][1])]
    else:
        raw_boxes = raw_boxes[:-1]

    return [
        WeightBox(demand_key=demand.key, index=idx, upper=hi, lower=lo)
        for idx, (hi, lo) in enumerate(raw_boxes)
    ]


def build_gap_network(
    problem: OverlayDesignProblem,
    rounded: RoundedSolution,
    keep_degenerate_box: bool = True,
) -> GapNetwork:
    """Build the (doubled-capacity) Figure-2 network from a rounded solution."""
    net = FlowNetwork()
    source = net.add_node("s")
    sink = net.add_node("T")

    # Group surviving x_bar values by demand.
    by_demand: dict[tuple[str, str], list[tuple[str, float, float]]] = {}
    for (reflector, demand_key), value in rounded.x.items():
        if value <= _MASS_TOL:
            continue
        by_demand.setdefault(demand_key, []).append((reflector, 0.0, value))

    demand_lookup = {demand.key: demand for demand in problem.demands}

    # Level 2: reflectors present in the support.
    reflector_nodes: dict[str, int] = {}
    for (reflector, _demand_key) in rounded.x:
        if reflector not in reflector_nodes:
            reflector_nodes[reflector] = net.add_node(("reflector", reflector))
            net.add_edge(
                source,
                reflector_nodes[reflector],
                capacity=2.0 * problem.fanout(reflector),
                cost=0.0,
            )

    boxes: list[WeightBox] = []
    pair_edge: dict[AssignmentKey, int] = {}
    pair_box_edges: dict[AssignmentKey, list[int]] = {}
    total_demand = 0

    for demand_key, entries in by_demand.items():
        demand = demand_lookup[demand_key]
        # Fill in the weights (deferred above to avoid recomputing per entry).
        entries = [
            (reflector, problem.edge_weight(demand, reflector), value)
            for reflector, _w, value in entries
        ]
        demand_boxes = build_boxes_for_demand(demand, entries, keep_degenerate_box)
        if not demand_boxes:
            continue
        # Level 4/5: box nodes and their edges to the super sink.
        box_nodes: list[int] = []
        for box in demand_boxes:
            node = net.add_node(("box", demand_key, box.index))
            net.add_edge(node, sink, capacity=1.0, cost=0.0)  # 1/2 doubled
            box_nodes.append(node)
            boxes.append(box)
            total_demand += 1
        # Level 3: (reflector, demand) pair nodes.
        for reflector, weight, value in entries:
            key: AssignmentKey = (reflector, demand_key)
            pair_node = net.add_node(("pair", reflector, demand_key))
            cost = problem.assignment_cost(demand, reflector) / 2.0
            pair_edge[key] = net.add_edge(
                reflector_nodes[reflector], pair_node, capacity=2.0, cost=cost
            )
            edges: list[int] = []
            for box, box_node in zip(demand_boxes, box_nodes):
                if box.contains(weight):
                    edges.append(net.add_edge(pair_node, box_node, capacity=1.0, cost=0.0))
            pair_box_edges[key] = edges

    return GapNetwork(
        network=net,
        source=source,
        sink=sink,
        boxes=boxes,
        pair_edge=pair_edge,
        pair_box_edges=pair_box_edges,
        total_demand=total_demand,
    )


def solve_gap(problem: OverlayDesignProblem, gap: GapNetwork) -> GapResult:
    """Extract the min-cost max flow from a built GAP network and read it back."""
    result = min_cost_max_flow(gap.network, gap.source, gap.sink)

    assignments: set[AssignmentKey] = set()
    cost = 0.0
    for key, edge_id in gap.pair_edge.items():
        flow = gap.network.flow_on(edge_id)
        if flow > 0.5:  # any positive (doubled) flow means the pair is used
            assignments.add(key)
            reflector, (sink_name, stream) = key
            cost += problem.delivery_cost(reflector, sink_name, stream)

    # Count saturated boxes by inspecting box -> T edges.
    boxes_served = 0
    for edge in gap.network.edges():
        label = gap.network.label_of(edge.head)
        if label == "T" and gap.network.flow_on(edge.edge_id) > 0.5:
            boxes_served += 1

    return GapResult(
        assignments=assignments,
        flow_value=result.value,
        boxes_total=gap.total_demand,
        boxes_served=boxes_served,
        cost=cost,
    )


def gap_round(
    problem: OverlayDesignProblem,
    rounded: RoundedSolution,
    keep_degenerate_box: bool = True,
) -> GapResult:
    """Convenience wrapper: build the Figure-2 network and solve it."""
    gap = build_gap_network(problem, rounded, keep_degenerate_box)
    return solve_gap(problem, gap)
