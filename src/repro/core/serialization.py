"""JSON (de)serialization of problems and solutions.

A deployable overlay designer needs its inputs (measured loss rates, costs,
fanouts, demand sets) and outputs (which reflectors serve which edgeservers)
to cross process boundaries: the measurement pipeline produces the instance,
the designer runs periodically ("our algorithm is reasonably fast so it can be
rerun as often as needed", Section 1.3), and the resulting design is pushed to
the entrypoints and reflectors.  This module provides a stable, versioned JSON
encoding for :class:`OverlayDesignProblem` and :class:`OverlaySolution` and is
what the CLI (:mod:`repro.cli`) reads and writes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution

#: Format version written into every document; bump on breaking changes.
FORMAT_VERSION = 1


def problem_to_dict(problem: OverlayDesignProblem) -> dict[str, Any]:
    """Encode a problem as a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "overlay-design-problem",
        "name": problem.name,
        "streams": [
            {"name": stream, "bandwidth": problem.stream_bandwidth(stream)}
            for stream in problem.streams
        ],
        "reflectors": [
            {
                "name": reflector,
                "cost": info.cost,
                "fanout": info.fanout,
                "color": info.color,
                "capacity": info.capacity,
            }
            for reflector in problem.reflectors
            for info in [problem.reflector_info(reflector)]
        ],
        "sinks": list(problem.sinks),
        "stream_edges": [
            {
                "stream": edge.stream,
                "reflector": edge.reflector,
                "loss_probability": edge.loss_probability,
                "cost": edge.cost,
            }
            for edge in problem.stream_edges()
        ],
        "delivery_edges": [
            {
                "reflector": reflector,
                "sink": sink,
                "loss_probability": problem.delivery_loss(reflector, sink),
                "cost": problem.delivery_cost(reflector, sink, problem.streams[0])
                if problem.streams
                else 0.0,
                "stream_costs": {
                    stream: problem.delivery_cost(reflector, sink, stream)
                    for stream in problem.streams
                    if problem.delivery_cost(reflector, sink, stream)
                    != (
                        problem.delivery_cost(reflector, sink, problem.streams[0])
                        if problem.streams
                        else 0.0
                    )
                },
                "capacity": problem.arc_capacity(reflector, sink),
            }
            for reflector, sink in problem.delivery_links()
        ],
        "demands": [
            {
                "sink": demand.sink,
                "stream": demand.stream,
                "success_threshold": demand.success_threshold,
            }
            for demand in problem.demands
        ],
    }


def problem_from_dict(data: dict[str, Any]) -> OverlayDesignProblem:
    """Decode a problem from a dictionary produced by :func:`problem_to_dict`."""
    _check_document(data, "overlay-design-problem")
    problem = OverlayDesignProblem(name=data.get("name", "overlay-design"))
    for stream in data.get("streams", []):
        problem.add_stream(stream["name"], bandwidth=stream.get("bandwidth", 1.0))
    for reflector in data.get("reflectors", []):
        problem.add_reflector(
            reflector["name"],
            cost=reflector["cost"],
            fanout=reflector["fanout"],
            color=reflector.get("color"),
            capacity=reflector.get("capacity"),
        )
    for sink in data.get("sinks", []):
        problem.add_sink(sink)
    for edge in data.get("stream_edges", []):
        problem.add_stream_edge(
            edge["stream"],
            edge["reflector"],
            loss_probability=edge["loss_probability"],
            cost=edge["cost"],
        )
    for edge in data.get("delivery_edges", []):
        problem.add_delivery_edge(
            edge["reflector"],
            edge["sink"],
            loss_probability=edge["loss_probability"],
            cost=edge["cost"],
            stream_costs=edge.get("stream_costs") or None,
            capacity=edge.get("capacity"),
        )
    for demand in data.get("demands", []):
        problem.add_demand(
            demand["sink"], demand["stream"], success_threshold=demand["success_threshold"]
        )
    return problem


def solution_to_dict(solution: OverlaySolution) -> dict[str, Any]:
    """Encode a solution (without its problem) as a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "overlay-solution",
        "problem_name": solution.problem.name,
        "built_reflectors": sorted(solution.built_reflectors),
        "stream_deliveries": sorted(list(pair) for pair in solution.stream_deliveries),
        "assignments": [
            {"sink": sink, "stream": stream, "reflectors": list(reflectors)}
            for (sink, stream), reflectors in sorted(solution.assignments.items())
        ],
        "metadata": {
            key: value
            for key, value in solution.metadata.items()
            if isinstance(value, (str, int, float, bool, type(None)))
        },
        "summary": solution.summary(),
    }


def solution_from_dict(
    data: dict[str, Any], problem: OverlayDesignProblem
) -> OverlaySolution:
    """Decode a solution against its problem instance."""
    _check_document(data, "overlay-solution")
    assignments = {
        (entry["sink"], entry["stream"]): list(entry["reflectors"])
        for entry in data.get("assignments", [])
    }
    solution = OverlaySolution.from_assignments(
        problem, assignments, metadata=dict(data.get("metadata", {}))
    )
    return solution


def dump_problem(problem: OverlayDesignProblem, path: str) -> None:
    """Write a problem to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(problem_to_dict(problem), handle, indent=2, sort_keys=True)


def load_problem(path: str) -> OverlayDesignProblem:
    """Read a problem from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return problem_from_dict(json.load(handle))


def dump_solution(solution: OverlaySolution, path: str) -> None:
    """Write a solution to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(solution_to_dict(solution), handle, indent=2, sort_keys=True)


def load_solution(path: str, problem: OverlayDesignProblem) -> OverlaySolution:
    """Read a solution from a JSON file (needs the matching problem)."""
    with open(path, "r", encoding="utf-8") as handle:
        return solution_from_dict(json.load(handle), problem)


def canonical_digest(document: Any, *, places: int = 9, length: int = 16) -> str:
    """Stable short digest of a JSON-compatible document.

    Floats are rounded to ``places`` decimal places and dictionary keys are
    sorted before hashing, so the digest is insensitive to insertion order
    and to sub-ULP float noise -- the same convention the golden regression
    corpus uses.  Two documents with equal digests are, for regression
    purposes, the same document.
    """

    def canonical(obj: Any) -> Any:
        if isinstance(obj, float):
            return round(float(obj), places)
        if isinstance(obj, dict):
            return {str(k): canonical(v) for k, v in sorted(obj.items())}
        if isinstance(obj, (list, tuple)):
            return [canonical(v) for v in obj]
        return obj

    payload = json.dumps(canonical(document), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:length]


def problem_digest(problem: OverlayDesignProblem) -> str:
    """Canonical content digest of a problem (name excluded).

    Ignores the instance's ``name`` and the order entities were added in:
    two problems describing the same network (same streams, reflectors,
    sinks, edges, demands) digest identically even if they were built in
    different orders -- which is what makes the digest useful for checking
    delta round-trips (``apply(apply(P, d), invert(d)) == P``).
    """
    document = problem_to_dict(problem)
    document.pop("name", None)
    for key in ("streams", "reflectors", "stream_edges", "delivery_edges", "demands"):
        document[key] = sorted(
            document[key], key=lambda entry: json.dumps(entry, sort_keys=True)
        )
    document["sinks"] = sorted(document["sinks"])
    return canonical_digest(document)


def solution_digest(solution: OverlaySolution) -> str:
    """Canonical digest of a solution's observable outcome.

    Covers the assignments, builds, deliveries, and cost summary -- not the
    free-form metadata (which records provenance such as timings or the
    algorithm label, and legitimately differs between equivalent runs).
    """
    document = solution_to_dict(solution)
    document.pop("metadata", None)
    document.pop("problem_name", None)
    return canonical_digest(document)


def check_document(
    data: dict[str, Any],
    expected_kind: str,
    *,
    version: int = FORMAT_VERSION,
    version_key: str = "format_version",
    accept_versions: tuple[int, ...] | None = None,
) -> int:
    """Validate a document's ``kind`` discriminator and version field.

    Shared by this module's problem/solution documents (``format_version``)
    and the :mod:`repro.api` request/result documents (``schema_version``).
    ``accept_versions`` lists every readable version when a schema bump keeps
    older documents loadable (defaults to just ``version``); the version
    actually found is returned so decoders can branch on it.
    """
    if not isinstance(data, dict):
        raise ValueError("document must be a JSON object")
    kind = data.get("kind")
    if kind != expected_kind:
        raise ValueError(f"expected a {expected_kind!r} document, got {kind!r}")
    accepted = accept_versions if accept_versions is not None else (version,)
    found = data.get(version_key)
    if found not in accepted:
        readable = "/".join(str(v) for v in accepted)
        raise ValueError(
            f"unsupported {version_key} {found!r} (this build reads {readable})"
        )
    return found


def _check_document(data: dict[str, Any], expected_kind: str) -> None:
    check_document(data, expected_kind)
