"""High-level drivers for the Section 6 extensions.

Section 6 of the paper discusses several generalizations of the base problem:

* **6.1 bandwidth on reflectors** -- streams of different bitrates consume the
  reflector fanout proportionally to their bandwidth ``B^k``.  This only
  changes the fanout constraints of the LP ((3')/(4')), so it is handled by
  :class:`repro.core.formulation.ExtensionOptions(use_bandwidth=True)` and the
  unchanged pipeline.
* **6.2 capacities on all arcs** -- the paper proves no constant-factor
  guarantee is possible (it would imply one for set cover); the LP can still
  carry the constraint (8), and the rounding violates it by ``O(log n)``.
* **6.3 capacities between reflectors and sinks** and **6.4 color
  constraints** -- these survive into the GAP stage as *entangled edge sets*
  and require the path-formulation rounding of Section 6.5
  (:mod:`repro.core.path_rounding`).

:func:`design_overlay_extended` runs the full pipeline with any combination of
these, swapping the plain GAP stage for the path rounding whenever entangled
constraints are present.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.algorithm import DesignParameters, DesignReport, repair_weight_shortfalls
from repro.core.formulation import (
    ExtensionOptions,
    build_formulation,
    build_sparse_formulation,
)
from repro.core.gap import GapResult, gap_round
from repro.core.path_rounding import (
    EntangledSet,
    PathRoundingResult,
    arc_capacity_entangled_sets,
    color_entangled_sets,
    path_round,
)
from repro.core.problem import OverlayDesignProblem
from repro.core.rounding import audit_rounding, round_solution, round_solution_with_retries
from repro.core.solution import OverlaySolution


@dataclass
class ExtendedDesignReport(DesignReport):
    """A :class:`DesignReport` plus the path-rounding details (when used)."""

    path_rounding: PathRoundingResult | None = None
    entangled_sets: list[EntangledSet] = field(default_factory=list)


def design_overlay_extended(
    problem: OverlayDesignProblem,
    parameters: DesignParameters | None = None,
    rng: np.random.Generator | None = None,
) -> ExtendedDesignReport:
    """Run the pipeline with the Section-6 extensions requested in ``parameters``.

    When ``parameters.extensions`` enables arc capacities or color constraints,
    the final integralization uses the Section-6.5 path rounding instead of the
    plain min-cost-flow GAP rounding; otherwise this behaves exactly like
    :func:`repro.core.algorithm.design_overlay`.
    """
    parameters = parameters or DesignParameters()
    if rng is None:
        rng = np.random.default_rng(parameters.rounding.seed)
    options = parameters.extensions
    timings: dict[str, float] = {}

    start = time.perf_counter()
    if parameters.lp_backend == "sparse":
        formulation = build_sparse_formulation(problem, options)
    else:
        formulation = build_formulation(problem, options)
    timings["formulate"] = time.perf_counter() - start

    start = time.perf_counter()
    lp_solution = formulation.solve()
    timings["solve_lp"] = time.perf_counter() - start
    fractional = formulation.fractional_solution(lp_solution).support()

    start = time.perf_counter()
    if parameters.retry_rounding:
        rounded, audit, attempts = round_solution_with_retries(
            problem,
            fractional,
            parameters.rounding,
            rng,
            max_attempts=parameters.max_rounding_attempts,
        )
    else:
        rounded = round_solution(problem, fractional, parameters.rounding, rng)
        audit = audit_rounding(problem, rounded)
        attempts = 1
    timings["rounding"] = time.perf_counter() - start

    needs_path_rounding = options.use_color_constraints or options.use_arc_capacities

    entangled: list[EntangledSet] = []
    path_result: PathRoundingResult | None = None
    start = time.perf_counter()
    if needs_path_rounding:
        support = list(rounded.x.keys())
        if options.use_color_constraints:
            entangled.extend(color_entangled_sets(problem, support))
        if options.use_arc_capacities:
            entangled.extend(arc_capacity_entangled_sets(problem, support))
        path_result = path_round(
            problem,
            rounded,
            entangled_sets=entangled,
            rng=rng,
            keep_degenerate_box=parameters.keep_degenerate_box,
        )
        gap_result = GapResult(
            assignments=path_result.assignments,
            flow_value=float(path_result.boxes_served),
            boxes_total=path_result.boxes_total,
            boxes_served=path_result.boxes_served,
            cost=path_result.cost,
        )
    else:
        gap_result = gap_round(problem, rounded, parameters.keep_degenerate_box)
    timings["gap"] = time.perf_counter() - start

    solution = OverlaySolution.from_assignments(
        problem,
        gap_result.assignments,
        metadata={
            "algorithm": "spaa03-lp-rounding-extended",
            "multiplier": rounded.multiplier,
            "rounding_attempts": attempts,
            "path_rounding": needs_path_rounding,
        },
    )

    start = time.perf_counter()
    if parameters.repair_shortfall:
        solution = repair_weight_shortfalls(
            problem, solution, fanout_slack=parameters.repair_fanout_slack
        )
    timings["repair"] = time.perf_counter() - start

    return ExtendedDesignReport(
        solution=solution,
        fractional=fractional,
        rounded=rounded,
        rounding_audit=audit,
        gap=gap_result,
        formulation_size=(formulation.num_variables, formulation.num_constraints),
        stage_seconds=timings,
        rounding_attempts=attempts,
        lp_build_stats=getattr(formulation, "stats", None),
        path_rounding=path_result,
        entangled_sets=entangled,
    )


def color_constrained_parameters(
    base: DesignParameters | None = None,
) -> DesignParameters:
    """Convenience: parameters with the Section-6.4 color constraints switched on."""
    base = base or DesignParameters()
    return DesignParameters(
        rounding=base.rounding,
        extensions=ExtensionOptions(
            use_bandwidth=base.extensions.use_bandwidth,
            use_reflector_capacities=base.extensions.use_reflector_capacities,
            use_arc_capacities=base.extensions.use_arc_capacities,
            use_color_constraints=True,
            drop_cutting_plane=base.extensions.drop_cutting_plane,
        ),
        retry_rounding=base.retry_rounding,
        max_rounding_attempts=base.max_rounding_attempts,
        keep_degenerate_box=base.keep_degenerate_box,
        repair_shortfall=base.repair_shortfall,
        repair_fanout_slack=base.repair_fanout_slack,
        lp_backend=base.lp_backend,
    )


__all__ = [
    "ExtendedDesignReport",
    "color_constrained_parameters",
    "design_overlay_extended",
]
