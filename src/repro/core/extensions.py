"""High-level drivers for the Section 6 extensions.

Section 6 of the paper discusses several generalizations of the base problem:

* **6.1 bandwidth on reflectors** -- streams of different bitrates consume the
  reflector fanout proportionally to their bandwidth ``B^k``.  This only
  changes the fanout constraints of the LP ((3')/(4')), so it is handled by
  :class:`repro.core.formulation.ExtensionOptions(use_bandwidth=True)` and the
  unchanged pipeline.
* **6.2 capacities on all arcs** -- the paper proves no constant-factor
  guarantee is possible (it would imply one for set cover); the LP can still
  carry the constraint (8), and the rounding violates it by ``O(log n)``.
* **6.3 capacities between reflectors and sinks** and **6.4 color
  constraints** -- these survive into the GAP stage as *entangled edge sets*
  and require the path-formulation rounding of Section 6.5
  (:mod:`repro.core.path_rounding`).

:func:`design_overlay_extended` runs the full pipeline with any combination of
these, swapping the plain GAP stage for the path rounding whenever entangled
constraints are present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.algorithm import DesignParameters, DesignReport
from repro.core.formulation import ExtensionOptions
from repro.core.path_rounding import EntangledSet, PathRoundingResult
from repro.core.problem import OverlayDesignProblem


@dataclass
class ExtendedDesignReport(DesignReport):
    """A :class:`DesignReport` plus the path-rounding details (when used)."""

    path_rounding: PathRoundingResult | None = None
    entangled_sets: list[EntangledSet] = field(default_factory=list)


def design_overlay_extended(
    problem: OverlayDesignProblem,
    parameters: DesignParameters | None = None,
    rng: np.random.Generator | None = None,
) -> ExtendedDesignReport:
    """Run the pipeline with the Section-6 extensions requested in ``parameters``.

    When ``parameters.extensions`` enables arc capacities or color constraints,
    the final integralization uses the Section-6.5 path rounding instead of the
    plain min-cost-flow GAP rounding; otherwise this behaves exactly like
    :func:`repro.core.algorithm.design_overlay`.

    .. note::
       This is a compatibility wrapper over the unified strategy API: it runs
       :meth:`repro.api.DesignPipeline.extended` (the registered
       ``"spaa03-extended"`` designer) and produces bit-identical results for
       a fixed seed.  New code should prefer
       ``repro.api.get_designer("spaa03-extended")`` -- see ``docs/api.md``.
    """
    import warnings

    from repro.api.pipeline import DesignPipeline

    warnings.warn(
        "design_overlay_extended is deprecated; submit a DesignRequest("
        "strategy='spaa03-extended') through repro.api.run_request instead "
        "(see the migration table in docs/api.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    context = DesignPipeline.extended().run(problem, parameters, rng)
    return extended_report_from_context(context)


def extended_report_from_context(context) -> ExtendedDesignReport:
    """Assemble an :class:`ExtendedDesignReport` from a finished pipeline context."""
    return ExtendedDesignReport(
        **context.report_fields(),
        path_rounding=context.path_rounding,
        entangled_sets=list(context.entangled_sets),
    )


def color_constrained_parameters(
    base: DesignParameters | None = None,
) -> DesignParameters:
    """Convenience: parameters with the Section-6.4 color constraints switched on."""
    base = base or DesignParameters()
    return DesignParameters(
        rounding=base.rounding,
        extensions=ExtensionOptions(
            use_bandwidth=base.extensions.use_bandwidth,
            use_reflector_capacities=base.extensions.use_reflector_capacities,
            use_arc_capacities=base.extensions.use_arc_capacities,
            use_color_constraints=True,
            drop_cutting_plane=base.extensions.drop_cutting_plane,
        ),
        retry_rounding=base.retry_rounding,
        max_rounding_attempts=base.max_rounding_attempts,
        keep_degenerate_box=base.keep_degenerate_box,
        repair_shortfall=base.repair_shortfall,
        repair_fanout_slack=base.repair_fanout_slack,
        lp_backend=base.lp_backend,
        solver_backend=base.solver_backend,
    )


__all__ = [
    "ExtendedDesignReport",
    "color_constrained_parameters",
    "design_overlay_extended",
    "extended_report_from_context",
]
