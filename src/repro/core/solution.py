"""The final overlay design produced by the algorithm (or by a baseline).

An :class:`OverlaySolution` is a 0/1 choice of

* which reflectors to *build* (pay ``r_i``),
* which streams to *deliver to* which reflectors (pay ``c^k_ki``),
* which (reflector -> sink) assignments carry each demand (pay ``c^k_ij``),

together with evaluation helpers: total cost, per-demand delivered weight and
success probability, fanout usage, and violation factors relative to the
instance's requirements.  Both the core algorithm and every baseline in
:mod:`repro.baselines` produce this type, which is what makes the comparative
benchmarks (C1) and the packet-level simulation uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.problem import Demand, OverlayDesignProblem
from repro.core.weights import combined_failure_probability, success_from_weight


@dataclass
class OverlaySolution:
    """A concrete overlay multicast design for a given problem instance.

    Attributes
    ----------
    problem:
        The instance this solution belongs to.
    built_reflectors:
        Reflectors that are paid for (``z_i = 1``).
    stream_deliveries:
        (stream, reflector) pairs that are paid for (``y^k_i = 1``).
    assignments:
        Mapping from demand key (sink, stream) to the list of reflectors
        serving it (``x^k_ij = 1``).
    metadata:
        Free-form information recorded by the producing algorithm (stage
        timings, attempt counts, ...), surfaced in reports.
    """

    problem: OverlayDesignProblem
    built_reflectors: set[str] = field(default_factory=set)
    stream_deliveries: set[tuple[str, str]] = field(default_factory=set)
    assignments: dict[tuple[str, str], list[str]] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_assignments(
        cls,
        problem: OverlayDesignProblem,
        assignments: Mapping[tuple[str, str], Iterable[str]] | Iterable[tuple[str, tuple[str, str]]],
        metadata: dict | None = None,
    ) -> "OverlaySolution":
        """Build a solution from assignments alone, inferring ``y`` and ``z``.

        ``assignments`` may be either a mapping ``demand key -> reflectors`` or
        an iterable of ``(reflector, demand key)`` pairs (the form produced by
        the GAP stage).  Reflector builds and stream deliveries are the minimal
        sets needed to support the assignments.
        """
        normalized: dict[tuple[str, str], list[str]] = {}
        if isinstance(assignments, Mapping):
            for demand_key, reflectors in assignments.items():
                normalized[demand_key] = sorted(set(reflectors))
        else:
            for reflector, demand_key in assignments:
                normalized.setdefault(demand_key, [])
                if reflector not in normalized[demand_key]:
                    normalized[demand_key].append(reflector)
            for demand_key in normalized:
                normalized[demand_key] = sorted(normalized[demand_key])

        built: set[str] = set()
        deliveries: set[tuple[str, str]] = set()
        for (sink, stream), reflectors in normalized.items():
            for reflector in reflectors:
                built.add(reflector)
                deliveries.add((stream, reflector))
        return cls(
            problem=problem,
            built_reflectors=built,
            stream_deliveries=deliveries,
            assignments=normalized,
            metadata=metadata or {},
        )

    # ------------------------------------------------------------------- cost
    def reflector_cost(self) -> float:
        # All three cost sums iterate in sorted order so the totals are a pure
        # function of the solution's *content*: a solution rehydrated from its
        # JSON document reproduces the original floats bit-for-bit even though
        # its containers were populated in a different order.
        return sum(self.problem.reflector_cost(r) for r in sorted(self.built_reflectors))

    def stream_delivery_cost(self) -> float:
        return sum(
            self.problem.stream_edge(stream, reflector).cost
            for stream, reflector in sorted(self.stream_deliveries)
        )

    def assignment_cost(self) -> float:
        total = 0.0
        for (sink, stream), reflectors in sorted(self.assignments.items()):
            for reflector in reflectors:
                total += self.problem.delivery_cost(reflector, sink, stream)
        return total

    def total_cost(self) -> float:
        """The objective of Section 2 evaluated on this integral solution."""
        return self.reflector_cost() + self.stream_delivery_cost() + self.assignment_cost()

    # ------------------------------------------------------------ reliability
    def reflectors_serving(self, demand: Demand) -> list[str]:
        return list(self.assignments.get(demand.key, []))

    def delivered_weight(self, demand: Demand) -> float:
        """LHS of constraint (5): total (capped) weight delivered to the demand."""
        return sum(
            self.problem.edge_weight(demand, reflector)
            for reflector in self.reflectors_serving(demand)
        )

    def failure_probability(self, demand: Demand) -> float:
        """Exact probability that a packet reaches the sink along *no* path.

        Uses the true (uncapped) per-path failure probabilities, i.e. the
        quantity the weights are a proxy for.
        """
        failures = [
            self.problem.path_failure(demand, reflector)
            for reflector in self.reflectors_serving(demand)
        ]
        return combined_failure_probability(failures) if failures else 1.0

    def success_probability(self, demand: Demand) -> float:
        return 1.0 - self.failure_probability(demand)

    def weight_satisfaction(self, demand: Demand) -> float:
        """Delivered weight / required weight (>= 1 means the demand is met)."""
        required = self.problem.demand_weight(demand)
        if required <= 0:
            return 1.0
        return self.delivered_weight(demand) / required

    def weight_success_probability(self, demand: Demand) -> float:
        """Success probability implied by the *capped* delivered weight.

        This is the conservative quantity the approximation guarantee speaks
        about (a factor-4 weight shortfall corresponds to the fourth root of
        the failure target).
        """
        return success_from_weight(self.delivered_weight(demand))

    # ----------------------------------------------------------------- fanout
    def fanout_used(self, reflector: str) -> int:
        """Number of assignments routed through ``reflector``."""
        return sum(
            1
            for reflectors in self.assignments.values()
            for r in reflectors
            if r == reflector
        )

    def fanout_factor(self, reflector: str) -> float:
        """Fanout used / fanout bound (> 1 means the bound is violated)."""
        return self.fanout_used(reflector) / self.problem.fanout(reflector)

    def max_fanout_factor(self) -> float:
        used = {r for reflectors in self.assignments.values() for r in reflectors}
        if not used:
            return 0.0
        return max(self.fanout_factor(reflector) for reflector in used)

    def bandwidth_used(self, reflector: str) -> float:
        """Bandwidth-weighted load (Section 6.1) routed through ``reflector``."""
        total = 0.0
        for (sink, stream), reflectors in self.assignments.items():
            if reflector in reflectors:
                total += self.problem.stream_bandwidth(stream)
        return total

    # ------------------------------------------------------------- diagnostics
    def unserved_demands(self) -> list[Demand]:
        """Demands that receive no copy of their stream at all."""
        return [d for d in self.problem.demands if not self.reflectors_serving(d)]

    def demands_below_threshold(self) -> list[Demand]:
        """Demands whose exact success probability is below their requirement."""
        return [
            demand
            for demand in self.problem.demands
            if self.success_probability(demand) + 1e-12 < demand.success_threshold
        ]

    def color_violations(self) -> list[tuple[Demand, object, int]]:
        """Section 6.4 check: demands served more than once from a single color.

        Returns (demand, color, copies) triples for every violation.
        """
        violations: list[tuple[Demand, object, int]] = []
        for demand in self.problem.demands:
            per_color: dict[object, int] = {}
            for reflector in self.reflectors_serving(demand):
                color = self.problem.color(reflector)
                if color is None:
                    continue
                per_color[color] = per_color.get(color, 0) + 1
            for color, copies in per_color.items():
                if copies > 1:
                    violations.append((demand, color, copies))
        return violations

    def summary(self) -> dict:
        """Compact dictionary summary used by reports, examples and benchmarks."""
        demands = self.problem.demands
        satisfactions = [self.weight_satisfaction(d) for d in demands]
        successes = [self.success_probability(d) for d in demands]
        return {
            "total_cost": self.total_cost(),
            "reflectors_built": len(self.built_reflectors),
            "assignments": sum(len(v) for v in self.assignments.values()),
            "unserved_demands": len(self.unserved_demands()),
            "min_weight_satisfaction": min(satisfactions) if satisfactions else 1.0,
            "mean_weight_satisfaction": (
                sum(satisfactions) / len(satisfactions) if satisfactions else 1.0
            ),
            "min_success_probability": min(successes) if successes else 1.0,
            "max_fanout_factor": self.max_fanout_factor(),
            "demands_below_threshold": len(self.demands_below_threshold()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"OverlaySolution(reflectors={len(self.built_reflectors)}, "
            f"assignments={sum(len(v) for v in self.assignments.values())}, "
            f"cost={self.total_cost():.3f})"
        )
