"""The standard designer catalogue: paper algorithm, extension, seven baselines.

Importing this module registers every built-in strategy with
:mod:`repro.api.registry`:

========================  ===================================================
``spaa03``                the paper's LP -> rounding -> GAP pipeline
``spaa03-extended``       Section-6 variant (path rounding when entangled)
``greedy``                cost-effectiveness greedy (baseline)
``naive-quality-first``   most-reliable-first per demand (baseline)
``single-tree``           one reflector per demand, IP-multicast-like (baseline)
``random``                random feasible-ish assignment (baseline)
``exact``                 brute-force optimum for tiny instances (baseline)
``milp-exact``            exact Section-2 IP via a MILP backend (baseline)
``lp-bound``              fractional LP optimum, bound only (baseline)
========================  ===================================================

The legacy entry points (``design_overlay``, ``greedy_design``, ...) are thin
compatibility wrappers over these registrations, so every caller -- old or
new -- runs the exact same code and produces bit-identical solutions for a
fixed seed.
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np

from repro.analysis.audit import audit_solution
from repro.api.pipeline import DesignPipeline, PipelineContext
from repro.api.registry import register_designer
from repro.api.types import DesignRequest, DesignResult
from repro.baselines.exact import _exact_design_impl
from repro.baselines.greedy import _greedy_design_impl
from repro.baselines.milp import milp_exact_design
from repro.baselines.naive import _naive_quality_first_design_impl
from repro.baselines.random_design import _random_design_impl
from repro.baselines.single_tree import _single_tree_design_impl
from repro.core.algorithm import fractional_lower_bound
from repro.core.solution import OverlaySolution


def _strategy_options(request: DesignRequest, **defaults) -> dict:
    """Merge ``request.options`` over ``defaults``, rejecting unknown keys."""
    unknown = sorted(set(request.options) - set(defaults))
    if unknown:
        raise ValueError(
            f"unknown option(s) {unknown} for strategy {request.strategy!r} "
            f"(accepted: {sorted(defaults)})"
        )
    return {**defaults, **request.options}


def _pipeline_result(request: DesignRequest, context: PipelineContext) -> DesignResult:
    metadata = {
        **context.metadata,
        "multiplier": context.rounded.multiplier,
        "rounding_attempts": context.rounding_attempts,
    }
    if context.path_rounding is not None:
        metadata["path_rounding"] = True
    return DesignResult(
        strategy=request.strategy,
        solution=context.solution,
        lower_bound=context.lp_lower_bound,
        stage_seconds=dict(context.stage_seconds),
        audit=context.solution_audit,
        metadata=metadata,
        request_id=request.request_id,
        report=context.report(),
    )


def _baseline_result(
    request: DesignRequest,
    solution: OverlaySolution,
    elapsed: float,
    metadata: Mapping | None = None,
) -> DesignResult:
    start = time.perf_counter()
    audit = audit_solution(request.problem, solution)
    audit_seconds = time.perf_counter() - start
    return DesignResult(
        strategy=request.strategy,
        solution=solution,
        stage_seconds={"design": elapsed, "audit": audit_seconds},
        audit=audit,
        metadata=dict(metadata or {}),
        request_id=request.request_id,
    )


# ---------------------------------------------------------------------------
# The paper's algorithm and its Section-6 extension
# ---------------------------------------------------------------------------


@register_designer(
    "spaa03",
    description="SPAA'03 LP-rounding pipeline (formulate/solve/round/repair/audit)",
    in_comparisons=False,
)
def _run_spaa03(request: DesignRequest) -> DesignResult:
    # warm_start is advisory (see repro.lp.SolveOptions): honored only by
    # backends with MIP starts, so default results never change.
    options = _strategy_options(request, warm_start=None)
    context = DesignPipeline.standard().run(
        request.problem, request.parameters, warm_start=options["warm_start"]
    )
    return _pipeline_result(request, context)


@register_designer(
    "spaa03-extended",
    description="Section-6 extended pipeline (path rounding for entangled constraints)",
    in_comparisons=False,
)
def _run_spaa03_extended(request: DesignRequest) -> DesignResult:
    options = _strategy_options(request, warm_start=None)
    context = DesignPipeline.extended().run(
        request.problem, request.parameters, warm_start=options["warm_start"]
    )
    return _pipeline_result(request, context)


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


@register_designer(
    "greedy",
    description="cost-effectiveness greedy (weighted multi-cover)",
    baseline=True,
)
def _run_greedy(request: DesignRequest) -> DesignResult:
    options = _strategy_options(request, fanout_slack=1.0)
    start = time.perf_counter()
    solution = _greedy_design_impl(request.problem, **options)
    return _baseline_result(request, solution, time.perf_counter() - start)


@register_designer(
    "naive-quality-first",
    description="most-reliable reflectors first, cost-blind",
    baseline=True,
)
def _run_naive(request: DesignRequest) -> DesignResult:
    options = _strategy_options(request, fanout_slack=1.0)
    start = time.perf_counter()
    solution = _naive_quality_first_design_impl(request.problem, **options)
    return _baseline_result(request, solution, time.perf_counter() - start)


@register_designer(
    "single-tree",
    description="one reflector per demand (IP-multicast-like, no redundancy)",
    baseline=True,
)
def _run_single_tree(request: DesignRequest) -> DesignResult:
    options = _strategy_options(request, fanout_slack=1.0, prefer_cheap=False)
    start = time.perf_counter()
    solution = _single_tree_design_impl(request.problem, **options)
    return _baseline_result(request, solution, time.perf_counter() - start)


@register_designer(
    "random",
    description="uniformly random feasible-ish assignment (sanity floor)",
    baseline=True,
)
def _run_random(request: DesignRequest) -> DesignResult:
    options = _strategy_options(request, rng=None, seed=None, fanout_slack=1.0)
    rng = options.pop("rng")
    seed = options.pop("seed")
    if rng is None:
        rng = seed if seed is not None else request.seed
    start = time.perf_counter()
    solution = _random_design_impl(request.problem, rng=rng, **options)
    return _baseline_result(request, solution, time.perf_counter() - start)


@register_designer(
    "exact",
    description="brute-force optimum (tiny instances only)",
    baseline=True,
    in_comparisons=False,
)
def _run_exact(request: DesignRequest) -> DesignResult:
    options = _strategy_options(
        request, max_subset_size=3, max_search_nodes=2_000_000
    )
    start = time.perf_counter()
    result = _exact_design_impl(request.problem, **options)
    return _baseline_result(
        request,
        result.solution,
        time.perf_counter() - start,
        metadata={
            "optimal_cost": result.optimal_cost,
            "nodes_explored": result.nodes_explored,
        },
    )


@register_designer(
    "milp-exact",
    description="exact Section-2 IP via a MILP backend (scales past brute force)",
    baseline=True,
    in_comparisons=False,
)
def _run_milp_exact(request: DesignRequest) -> DesignResult:
    options = _strategy_options(
        request,
        time_limit=None,
        mip_gap=None,
        symmetry_breaking=True,
        warm_start=None,
    )
    if options["warm_start"] is not None:
        # Warm starts arrive as plain lists when the request came over JSON.
        options["warm_start"] = np.asarray(options["warm_start"], dtype=float)
    backend = request.parameters.solver_backend
    if backend == "highs":
        # The design-parameter default is the LP backend; an integer solve
        # needs a MIP-capable one unless the caller explicitly picked.
        backend = "highs-mip"
    start = time.perf_counter()
    result = milp_exact_design(
        request.problem,
        extensions=request.parameters.extensions,
        backend=backend,
        **options,
    )
    elapsed = time.perf_counter() - start
    design_result = _baseline_result(
        request,
        result.solution,
        elapsed,
        metadata={
            "optimal_cost": result.optimal_cost,
            "milp_status": result.status,
            "mip_gap": result.mip_gap,
            "mip_dual_bound": result.mip_dual_bound,
            "node_count": result.node_count,
            "symmetry_rows": result.symmetry_rows,
            "symmetry_classes": result.symmetry_classes,
            "solver_backend": result.backend,
            "time_limit": options["time_limit"],
            "mip_gap_limit": options["mip_gap"],
        },
    )
    design_result.lower_bound = result.mip_dual_bound
    return design_result


@register_designer(
    "lp-bound",
    description="fractional LP optimum (cost lower bound, no integral design)",
    baseline=True,
    in_comparisons=False,
    produces_solution=False,
)
def _run_lp_bound(request: DesignRequest) -> DesignResult:
    _strategy_options(request)
    start = time.perf_counter()
    lower_bound = fractional_lower_bound(
        request.problem,
        request.parameters.extensions,
        lp_backend=request.parameters.lp_backend,
        solver_backend=request.parameters.solver_backend,
    )
    elapsed = time.perf_counter() - start
    solution = OverlaySolution.from_assignments(
        request.problem, {}, metadata={"algorithm": "lp-bound"}
    )
    return DesignResult(
        strategy=request.strategy,
        solution=solution,
        lower_bound=lower_bound,
        stage_seconds={"solve_lp": elapsed},
        request_id=request.request_id,
    )
