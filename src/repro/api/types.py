"""Typed request/response boundary of the design service.

A :class:`DesignRequest` bundles everything needed to produce one overlay
design -- the problem instance, the pipeline knobs
(:class:`~repro.core.algorithm.DesignParameters`), the strategy name resolved
through the :mod:`repro.api.registry`, and per-strategy ``options`` -- and a
:class:`DesignResult` is what every strategy returns: the solution, the LP
lower bound when the strategy computed one, per-stage wall-clock timings, the
constraint-violation audit, and free-form metadata.

Both types have a versioned JSON encoding (``schema_version`` +
``kind`` discriminator, extending the document conventions of
:mod:`repro.core.serialization`), which is what ``repro batch`` reads and
writes and what :func:`repro.api.design_batch` ships across worker processes.
``options`` must be JSON-typed for a request to serialize; purely in-memory
callers may put richer objects (e.g. a ``numpy`` generator under ``"rng"``)
in it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.audit import SolutionAudit
from repro.core.algorithm import DesignParameters, DesignReport
from repro.core.formulation import ExtensionOptions
from repro.core.problem import OverlayDesignProblem
from repro.core.rounding import RoundingParameters
from repro.core.serialization import (
    check_document,
    problem_from_dict,
    problem_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from repro.core.solution import OverlaySolution

#: Version written into every request/result document; bump on breaking changes.
#: Version 2 added the ``cache`` provenance block to result documents (digest,
#: per-stage hit/miss, session id); version-1 documents still load.
SCHEMA_VERSION = 2

#: Every document version this build can read (newest last).
SCHEMA_VERSIONS_READ = (1, 2)

REQUEST_KIND = "design-request"
RESULT_KIND = "design-result"


@dataclass
class EvaluationSpec:
    """Monte-Carlo reliability evaluation attached to a design request.

    When a request carries one, the registry runs the produced solution
    through the failure-scenario catalogue
    (:func:`repro.simulation.evaluate_design`) and attaches the per-scenario
    reliability metrics to the result's ``evaluation`` field.

    Attributes
    ----------
    scenarios:
        Registered failure-scenario names, or ``"all"`` for the whole
        catalogue.
    trials:
        Monte-Carlo trials per scenario.
    num_packets:
        Packets per simulated session.
    window:
        Worst-window statistic size (multiples of 8 stay on the engine's
        byte-aligned fast path).
    seed:
        Seed of the evaluation sweep (failure draws + engine randomness).
    mode:
        ``"batched"`` (the in-RAM engine, the default) or ``"streaming"``
        (the memory-bounded tiled fold of
        :func:`repro.simulation.evaluate_design_streaming`).
    traces:
        Registered load-trace names replayed through the streaming fold
        (per-window loss + rebuffering metrics); requires
        ``mode="streaming"``.
    max_memory:
        Streaming working-set bound in bytes (``None`` keeps the default
        tile grid).
    scenario_files:
        Paths to scenario DSL documents (see :mod:`repro.simulation.dsl`)
        registered into the catalogue before the sweep runs; their names
        become sweepable exactly like built-ins (``scenarios="all"`` picks
        them up).  Validation failures surface when the request runs.
    """

    scenarios: tuple[str, ...] | str = "all"
    trials: int = 30
    num_packets: int = 2000
    window: int = 200
    seed: int = 0
    mode: str = "batched"
    traces: tuple[str, ...] = ()
    max_memory: int | None = None
    scenario_files: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.scenarios, list):
            self.scenarios = tuple(self.scenarios)
        if isinstance(self.traces, list):
            self.traces = tuple(self.traces)
        if isinstance(self.scenario_files, list):
            self.scenario_files = tuple(self.scenario_files)
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.num_packets <= 0:
            raise ValueError("num_packets must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.mode not in ("batched", "streaming"):
            raise ValueError(f"mode must be 'batched' or 'streaming', got {self.mode!r}")
        if self.traces and self.mode != "streaming":
            raise ValueError("traces require mode='streaming'")
        if self.max_memory is not None and self.max_memory <= 0:
            raise ValueError("max_memory must be positive when set")


def evaluation_spec_to_dict(spec: EvaluationSpec) -> dict[str, Any]:
    """Encode an :class:`EvaluationSpec` as a JSON-compatible mapping."""
    scenarios = spec.scenarios
    data: dict[str, Any] = {
        "scenarios": list(scenarios) if not isinstance(scenarios, str) else scenarios,
        "trials": spec.trials,
        "num_packets": spec.num_packets,
        "window": spec.window,
        "seed": spec.seed,
    }
    # Streaming fields are additive: emitted only when non-default so
    # documents written for the batched mode are byte-stable across builds.
    if spec.mode != "batched":
        data["mode"] = spec.mode
    if spec.traces:
        data["traces"] = list(spec.traces)
    if spec.max_memory is not None:
        data["max_memory"] = spec.max_memory
    if spec.scenario_files:
        data["scenario_files"] = list(spec.scenario_files)
    return data


def evaluation_spec_from_dict(data: dict[str, Any]) -> EvaluationSpec:
    """Decode an :class:`EvaluationSpec` from its JSON form."""
    scenarios = data.get("scenarios", "all")
    return EvaluationSpec(
        scenarios=scenarios if isinstance(scenarios, str) else tuple(scenarios),
        trials=data.get("trials", 30),
        num_packets=data.get("num_packets", 2000),
        window=data.get("window", 200),
        seed=data.get("seed", 0),
        mode=data.get("mode", "batched"),
        traces=tuple(data.get("traces", ())),
        max_memory=data.get("max_memory"),
        scenario_files=tuple(data.get("scenario_files", ())),
    )


@dataclass
class DesignRequest:
    """One unit of design work addressed to a registered strategy.

    Attributes
    ----------
    problem:
        The instance to design for.
    parameters:
        Pipeline knobs; strategies that don't use a knob ignore it (e.g. the
        greedy baseline only reads the seed).  ``parameters.rounding.seed`` is
        the canonical per-request seed (see :attr:`seed`).
    strategy:
        Registry name resolved via :func:`repro.api.get_designer`.
    options:
        Per-strategy keyword options (e.g. ``{"fanout_slack": 2.0}`` for the
        greedy baseline).  Unknown options raise ``ValueError`` at design time.
    evaluation:
        Optional :class:`EvaluationSpec`; when present (and the strategy
        produces a solution) the result carries per-scenario reliability
        metrics from the Monte-Carlo engine under ``result.evaluation``.
    request_id:
        Optional caller-supplied correlation id, echoed on the result.
    """

    problem: OverlayDesignProblem
    parameters: DesignParameters = field(default_factory=DesignParameters)
    strategy: str = "spaa03"
    options: dict = field(default_factory=dict)
    evaluation: EvaluationSpec | None = None
    request_id: str | None = None

    @property
    def seed(self) -> int | None:
        """The request's seed (``parameters.rounding.seed``)."""
        return self.parameters.rounding.seed


@dataclass
class DesignResult:
    """What every registered strategy returns for a :class:`DesignRequest`.

    Attributes
    ----------
    strategy:
        Registry name of the designer that produced this result.
    solution:
        The integral design (empty for bound-only strategies like
        ``"lp-bound"``).
    lower_bound:
        The LP lower bound when the strategy computed one, else ``None``.
    stage_seconds:
        Per-stage wall-clock times (pipeline strategies report every stage;
        one-shot baselines report a single ``"design"`` entry).
    audit:
        Constraint-violation audit of ``solution`` (``None`` for bound-only
        strategies).
    metadata:
        Free-form strategy-specific extras (rounding attempts, search nodes,
        ...).  Only JSON-typed values survive serialization.
    evaluation:
        Per-scenario reliability metrics (``{scenario: {metric: value}}``)
        when the request carried an :class:`EvaluationSpec`, else ``None``.
    cache:
        Cache provenance stamped by the serving layer (:mod:`repro.serve`):
        ``request_digest``/``problem_digest`` (the content-addressed keys),
        ``stages`` (per-stage ``"hit"``/``"miss"``), ``session_id`` when the
        result came out of a :class:`~repro.serve.DesignSession`, and
        ``served_from_cache`` for whole-result hits.  ``None`` for results
        produced outside the serving layer (schema version 2; see
        ``docs/serving.md``).
    request_id:
        Echo of the request's correlation id.
    report:
        The full in-memory :class:`~repro.core.algorithm.DesignReport` for
        pipeline strategies (never serialized; ``None`` after a round-trip).
    """

    strategy: str
    solution: OverlaySolution
    lower_bound: float | None = None
    stage_seconds: dict[str, float] = field(default_factory=dict)
    audit: SolutionAudit | None = None
    metadata: dict = field(default_factory=dict)
    evaluation: dict[str, dict[str, float]] | None = None
    cache: dict | None = None
    request_id: str | None = None
    report: DesignReport | None = None
    schema_version: int = SCHEMA_VERSION

    @property
    def total_cost(self) -> float:
        return self.solution.total_cost()

    @property
    def cost_ratio(self) -> float:
        """Cost over the LP lower bound; ``inf`` when no bound is available."""
        if self.lower_bound is None or self.lower_bound <= 0:
            return float("inf") if self.total_cost > 0 else 1.0
        return self.total_cost / self.lower_bound

    def summary(self) -> dict:
        """Flat metric dictionary (the ``repro design`` table)."""
        info = dict(self.solution.summary())
        info["strategy"] = self.strategy
        if self.lower_bound is not None:
            info["lp_lower_bound"] = self.lower_bound
            info["cost_ratio"] = self.cost_ratio
        if self.report is not None:
            info["lp_variables"] = self.report.formulation_size[0]
            info["lp_constraints"] = self.report.formulation_size[1]
            info["rounding_attempts"] = self.report.rounding_attempts
        info["stage_seconds"] = dict(self.stage_seconds)
        return info


# ---------------------------------------------------------------------------
# JSON (de)serialization
# ---------------------------------------------------------------------------


def parameters_to_dict(parameters: DesignParameters) -> dict[str, Any]:
    """Encode :class:`DesignParameters` (all knobs, nested dataclasses inline)."""
    return {
        "rounding": {
            "c": parameters.rounding.c,
            "delta": parameters.rounding.delta,
            "seed": parameters.rounding.seed,
        },
        "extensions": {
            "use_bandwidth": parameters.extensions.use_bandwidth,
            "use_reflector_capacities": parameters.extensions.use_reflector_capacities,
            "use_arc_capacities": parameters.extensions.use_arc_capacities,
            "use_color_constraints": parameters.extensions.use_color_constraints,
            "drop_cutting_plane": parameters.extensions.drop_cutting_plane,
        },
        "retry_rounding": parameters.retry_rounding,
        "max_rounding_attempts": parameters.max_rounding_attempts,
        "keep_degenerate_box": parameters.keep_degenerate_box,
        "repair_shortfall": parameters.repair_shortfall,
        "repair_fanout_slack": parameters.repair_fanout_slack,
        "lp_backend": parameters.lp_backend,
        "solver_backend": parameters.solver_backend,
    }


def parameters_from_dict(data: dict[str, Any]) -> DesignParameters:
    """Decode :class:`DesignParameters` from :func:`parameters_to_dict` output."""
    rounding = data.get("rounding", {})
    extensions = data.get("extensions", {})
    return DesignParameters(
        rounding=RoundingParameters(
            c=rounding.get("c", 8.0),
            delta=rounding.get("delta", 0.25),
            seed=rounding.get("seed"),
        ),
        extensions=ExtensionOptions(
            use_bandwidth=extensions.get("use_bandwidth", False),
            use_reflector_capacities=extensions.get("use_reflector_capacities", False),
            use_arc_capacities=extensions.get("use_arc_capacities", False),
            use_color_constraints=extensions.get("use_color_constraints", False),
            drop_cutting_plane=extensions.get("drop_cutting_plane", False),
        ),
        retry_rounding=data.get("retry_rounding", True),
        max_rounding_attempts=data.get("max_rounding_attempts", 20),
        keep_degenerate_box=data.get("keep_degenerate_box", True),
        repair_shortfall=data.get("repair_shortfall", False),
        repair_fanout_slack=data.get("repair_fanout_slack", 4.0),
        lp_backend=data.get("lp_backend", "sparse"),
        solver_backend=data.get("solver_backend", "highs"),
    )


def audit_to_dict(audit: SolutionAudit) -> dict[str, Any]:
    """Encode a :class:`~repro.analysis.audit.SolutionAudit` losslessly."""
    return {
        "weight_fraction": [
            [sink, stream, value]
            for (sink, stream), value in sorted(audit.weight_fraction.items())
        ],
        "fanout_factor": {
            reflector: value for reflector, value in sorted(audit.fanout_factor.items())
        },
        "color_violations": audit.color_violations,
        "arc_capacity_factor": [
            [reflector, sink, value]
            for (reflector, sink), value in sorted(audit.arc_capacity_factor.items())
        ],
        "unserved_demands": audit.unserved_demands,
    }


def audit_from_dict(data: dict[str, Any]) -> SolutionAudit:
    """Decode a :class:`~repro.analysis.audit.SolutionAudit`."""
    return SolutionAudit(
        weight_fraction={
            (sink, stream): value
            for sink, stream, value in data.get("weight_fraction", [])
        },
        fanout_factor=dict(data.get("fanout_factor", {})),
        color_violations=data.get("color_violations", 0),
        arc_capacity_factor={
            (reflector, sink): value
            for reflector, sink, value in data.get("arc_capacity_factor", [])
        },
        unserved_demands=data.get("unserved_demands", 0),
    )


def request_to_dict(request: DesignRequest) -> dict[str, Any]:
    """Encode a request (problem embedded) as a JSON-compatible document."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": REQUEST_KIND,
        "strategy": request.strategy,
        "request_id": request.request_id,
        "parameters": parameters_to_dict(request.parameters),
        "options": dict(request.options),
        "evaluation": (
            evaluation_spec_to_dict(request.evaluation)
            if request.evaluation is not None
            else None
        ),
        "problem": problem_to_dict(request.problem),
    }


def request_from_dict(data: dict[str, Any]) -> DesignRequest:
    """Decode a request document produced by :func:`request_to_dict`.

    Reads every version in :data:`SCHEMA_VERSIONS_READ`, so documents written
    by older builds keep loading after a schema bump.
    """
    check_document(
        data,
        REQUEST_KIND,
        version=SCHEMA_VERSION,
        version_key="schema_version",
        accept_versions=SCHEMA_VERSIONS_READ,
    )
    evaluation_data = data.get("evaluation")
    return DesignRequest(
        problem=problem_from_dict(data["problem"]),
        parameters=parameters_from_dict(data.get("parameters", {})),
        strategy=data.get("strategy", "spaa03"),
        options=dict(data.get("options", {})),
        evaluation=(
            evaluation_spec_from_dict(evaluation_data)
            if evaluation_data is not None
            else None
        ),
        request_id=data.get("request_id"),
    )


def result_to_dict(result: DesignResult) -> dict[str, Any]:
    """Encode a result as a JSON-compatible document.

    The in-memory ``report`` is intentionally dropped (it holds the full LP
    and rounding state); everything else -- including stage timings and every
    audit field -- round-trips through :func:`result_from_dict`.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": RESULT_KIND,
        "strategy": result.strategy,
        "request_id": result.request_id,
        "lower_bound": result.lower_bound,
        "stage_seconds": dict(result.stage_seconds),
        "audit": audit_to_dict(result.audit) if result.audit is not None else None,
        "metadata": {
            key: value
            for key, value in result.metadata.items()
            if isinstance(value, (str, int, float, bool, type(None)))
        },
        "evaluation": result.evaluation,
        "cache": dict(result.cache) if result.cache is not None else None,
        "solution": solution_to_dict(result.solution),
    }


def result_from_dict(
    data: dict[str, Any], problem: OverlayDesignProblem
) -> DesignResult:
    """Decode a result document against its problem instance.

    Reads every version in :data:`SCHEMA_VERSIONS_READ`: version-1 documents
    (no ``cache`` block) load with ``cache=None``.
    """
    check_document(
        data,
        RESULT_KIND,
        version=SCHEMA_VERSION,
        version_key="schema_version",
        accept_versions=SCHEMA_VERSIONS_READ,
    )
    audit_data = data.get("audit")
    cache_data = data.get("cache")
    return DesignResult(
        strategy=data.get("strategy", "unknown"),
        solution=solution_from_dict(data["solution"], problem),
        lower_bound=data.get("lower_bound"),
        stage_seconds=dict(data.get("stage_seconds", {})),
        audit=audit_from_dict(audit_data) if audit_data is not None else None,
        metadata=dict(data.get("metadata", {})),
        evaluation=data.get("evaluation"),
        cache=dict(cache_data) if cache_data is not None else None,
        request_id=data.get("request_id"),
    )


__all__ = [
    "SCHEMA_VERSION",
    "SCHEMA_VERSIONS_READ",
    "DesignRequest",
    "DesignResult",
    "EvaluationSpec",
    "audit_from_dict",
    "audit_to_dict",
    "evaluation_spec_from_dict",
    "evaluation_spec_to_dict",
    "parameters_from_dict",
    "parameters_to_dict",
    "request_from_dict",
    "request_to_dict",
    "result_from_dict",
    "result_to_dict",
]
