"""The design-strategy registry: one typed entry point for every algorithm.

Every way of producing an overlay design -- the paper's LP-rounding pipeline,
its Section-6 extended variant, and each comparison baseline -- is registered
here as a :class:`Designer` under a short stable name.  Callers resolve
strategies with :func:`get_designer` and run them through the uniform
``design(request) -> result`` boundary, so CLIs, benchmarks and the batch
executor never hand-dispatch on ad-hoc function signatures::

    from repro.api import DesignRequest, get_designer

    result = get_designer("greedy").design(DesignRequest(problem=problem))

Registering a new strategy is one decorator; setting ``in_comparisons=True``
(the default) makes it automatically appear in ``repro compare`` and the C1
comparison benchmark::

    from repro.api import register_designer

    @register_designer("my-heuristic", description="example")
    def _run(request):
        return DesignResult(strategy="my-heuristic", solution=...)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.types import DesignRequest, DesignResult


@runtime_checkable
class Designer(Protocol):
    """The strategy interface: a named ``design(request) -> result`` callable."""

    name: str
    description: str

    def design(self, request: "DesignRequest") -> "DesignResult":
        """Produce a design (or bound) for ``request``."""
        ...  # pragma: no cover - protocol body


@dataclass(frozen=True)
class RegisteredDesigner:
    """A registry entry wrapping a strategy function.

    Attributes
    ----------
    name:
        Stable registry name (``"spaa03"``, ``"greedy"``, ...).
    run:
        The strategy function ``(DesignRequest) -> DesignResult``.
    description:
        One-line human description (``repro design --list-strategies``).
    baseline:
        True for the comparison strategies the paper positions itself against.
    in_comparisons:
        Include this designer's solution in registry-driven comparison tables
        (``repro compare``, the C1 benchmark).  Off for the reference
        algorithm itself, for bound-only strategies, and for strategies too
        expensive to run on arbitrary instances (``"exact"``).
    produces_solution:
        False for bound-only strategies (``"lp-bound"``) whose ``solution``
        is an empty placeholder.
    """

    name: str
    run: Callable[["DesignRequest"], "DesignResult"]
    description: str = ""
    baseline: bool = False
    in_comparisons: bool = True
    produces_solution: bool = True

    def design(self, request: "DesignRequest") -> "DesignResult":
        # Normalize the strategy name so error messages and results name this
        # designer even when the caller left request.strategy at its default.
        if request.strategy != self.name:
            request = replace(request, strategy=self.name)
        result = self.run(request)
        result.strategy = self.name
        result.request_id = request.request_id
        if request.evaluation is not None and self.produces_solution:
            # Reliability sweep across the failure-scenario catalogue; lazy
            # import keeps the registry importable without the simulation
            # stack (and avoids a circular import at module load).
            from repro.simulation import evaluate_design, evaluate_design_streaming

            spec = request.evaluation
            if spec.scenario_files:
                from repro.simulation import register_scenario_file

                for path in spec.scenario_files:
                    register_scenario_file(path)
            if spec.mode == "streaming":
                result.evaluation = evaluate_design_streaming(
                    request.problem,
                    result.solution,
                    spec.scenarios,
                    trials=spec.trials,
                    num_packets=spec.num_packets,
                    window=spec.window,
                    seed=spec.seed,
                    traces=spec.traces,
                    max_memory=spec.max_memory,
                )
            else:
                result.evaluation = evaluate_design(
                    request.problem,
                    result.solution,
                    spec.scenarios,
                    trials=spec.trials,
                    num_packets=spec.num_packets,
                    window=spec.window,
                    seed=spec.seed,
                )
        return result


#: Registration-ordered registry (insertion order is the presentation order).
_REGISTRY: dict[str, RegisteredDesigner] = {}

#: Dynamically materialised ``"sharded:<inner>"`` designers, cached per name.
#: Kept out of ``_REGISTRY`` so the stable strategy catalogue (names, order,
#: comparison membership) is unaffected by which sharded variants were used.
_SHARDED_CACHE: dict[str, RegisteredDesigner] = {}


def register_designer(
    name: str,
    *,
    description: str = "",
    baseline: bool = False,
    in_comparisons: bool = True,
    produces_solution: bool = True,
) -> Callable:
    """Decorator registering a strategy function under ``name``.

    Last registration wins (so reloads and test doubles work); the decorated
    function is returned unchanged.
    """

    def decorate(run: Callable) -> Callable:
        _REGISTRY[name] = RegisteredDesigner(
            name=name,
            run=run,
            description=description,
            baseline=baseline,
            in_comparisons=in_comparisons,
            produces_solution=produces_solution,
        )
        # A cached sharded wrapper closes over the inner designer; drop it so
        # re-registration (reloads, test doubles) wins there too.
        _SHARDED_CACHE.pop(f"sharded:{name}", None)
        return run

    return decorate


def get_designer(name: str) -> RegisteredDesigner:
    """Resolve a strategy by name (raises ``KeyError`` when unknown).

    Besides the registered catalogue, ``"sharded:<strategy>"`` names resolve
    to the hierarchical sharded pipeline of :mod:`repro.scale` wrapped around
    the named inner strategy (``ValueError`` for bound-only inner strategies,
    which have no design to shard).
    """
    _ensure_designers_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    if name.startswith("sharded:"):
        if name not in _SHARDED_CACHE:
            # Lazy import: repro.scale depends on this module.
            from repro.scale.pipeline import make_sharded_designer

            _SHARDED_CACHE[name] = make_sharded_designer(name)
        return _SHARDED_CACHE[name]
    known = ", ".join(_REGISTRY)
    raise KeyError(
        f"unknown designer {name!r} (known: {known}; any solution-producing "
        "strategy X is also available as 'sharded:X')"
    )


def designer_names() -> list[str]:
    """Registered strategy names, in registration order."""
    _ensure_designers_loaded()
    return list(_REGISTRY)


def registered_designers() -> list[RegisteredDesigner]:
    """All registered designers, in registration order."""
    _ensure_designers_loaded()
    return list(_REGISTRY.values())


def comparison_designers() -> list[RegisteredDesigner]:
    """Designers that participate in registry-driven comparison tables."""
    return [d for d in registered_designers() if d.in_comparisons]


def run_request(request: "DesignRequest") -> "DesignResult":
    """Resolve ``request.strategy`` and run it (the one-call entry point)."""
    return get_designer(request.strategy).design(request)


def _ensure_designers_loaded() -> None:
    # The standard designers register themselves on import; loading lazily
    # avoids a circular import (designers -> pipeline -> core -> api).
    import repro.api.designers  # noqa: F401


__all__ = [
    "Designer",
    "RegisteredDesigner",
    "comparison_designers",
    "designer_names",
    "get_designer",
    "register_designer",
    "registered_designers",
    "run_request",
]
