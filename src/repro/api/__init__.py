"""repro.api -- the unified strategy API over every design algorithm.

This package is the typed request/response boundary the rest of the system
(CLI, benchmarks, batch executor, future service layers) talks to:

* :mod:`repro.api.types` -- :class:`DesignRequest` / :class:`DesignResult`
  dataclasses with versioned JSON (de)serialization;
* :mod:`repro.api.registry` -- the :class:`Designer` protocol and the
  ``@register_designer`` strategy registry (:func:`get_designer`);
* :mod:`repro.api.pipeline` -- the composable staged pipeline
  (``Formulate -> Solve -> Round -> Repair -> Audit``) behind the paper's
  algorithm, with stage-swap and hook points for experiments;
* :mod:`repro.api.designers` -- the built-in catalogue: the paper algorithm
  (``"spaa03"``), its Section-6 extension (``"spaa03-extended"``) and the six
  baselines;
* :mod:`repro.api.batch` -- :func:`design_batch`, the deterministic parallel
  batch entry point.

Quick start::

    from repro.api import DesignRequest, design_batch, get_designer

    result = get_designer("spaa03").design(DesignRequest(problem, parameters))
    results = design_batch(requests, jobs=4)

The classic entry points (``repro.design_overlay``, ``repro.baselines.*``)
remain as thin compatibility wrappers over this API.
"""

from repro.api.batch import (
    design_batch,
    dump_requests_jsonl,
    dump_results_jsonl,
    load_requests_jsonl,
)
from repro.api.pipeline import (
    AuditStage,
    DesignPipeline,
    ExtendedRoundStage,
    FormulateStage,
    PipelineContext,
    PipelineStage,
    RepairStage,
    RoundStage,
    SolveStage,
)
from repro.api.registry import (
    Designer,
    RegisteredDesigner,
    comparison_designers,
    designer_names,
    get_designer,
    register_designer,
    registered_designers,
    run_request,
)
from repro.api.types import (
    SCHEMA_VERSION,
    DesignRequest,
    DesignResult,
    EvaluationSpec,
    evaluation_spec_from_dict,
    evaluation_spec_to_dict,
    parameters_from_dict,
    parameters_to_dict,
    request_from_dict,
    request_to_dict,
    result_from_dict,
    result_to_dict,
)

# Register the built-in strategies (import has the side effect).
import repro.api.designers  # noqa: E402,F401  isort:skip

# The incremental engine rides the registry/batch machinery above, so its
# import must come after the built-ins are registered.
from repro.incremental.engine import design_incremental  # noqa: E402  isort:skip

__all__ = [
    "SCHEMA_VERSION",
    "AuditStage",
    "Designer",
    "DesignPipeline",
    "DesignRequest",
    "DesignResult",
    "EvaluationSpec",
    "ExtendedRoundStage",
    "FormulateStage",
    "PipelineContext",
    "PipelineStage",
    "RegisteredDesigner",
    "RepairStage",
    "RoundStage",
    "SolveStage",
    "comparison_designers",
    "design_batch",
    "design_incremental",
    "designer_names",
    "dump_requests_jsonl",
    "dump_results_jsonl",
    "evaluation_spec_from_dict",
    "evaluation_spec_to_dict",
    "get_designer",
    "load_requests_jsonl",
    "parameters_from_dict",
    "parameters_to_dict",
    "register_designer",
    "registered_designers",
    "request_from_dict",
    "request_to_dict",
    "result_from_dict",
    "result_to_dict",
    "run_request",
]
