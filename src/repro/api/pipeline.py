"""The staged design pipeline: Formulate -> Solve -> Round -> Repair -> Audit.

The paper's algorithm is inherently a staged pipeline -- formulate the
Section-2 LP, solve it, round the fractional solution (Sections 3 + 5), repair
shortfalls (Section 7) and audit the result -- and this module makes those
stages first-class objects.  :class:`DesignPipeline` runs an ordered list of
:class:`PipelineStage` instances over a shared :class:`PipelineContext`;
every intermediate artifact (formulation, LP solution, fractional support,
rounding draw, GAP result, final solution, audit) lives on the context, and
per-stage wall-clock times accumulate in ``context.stage_seconds``.

Experiments can customize the pipeline without forking the driver:

* **swap a stage** -- ``DesignPipeline.standard().with_stage("round",
  MyRoundStage())`` replaces the Section-3/5 rounding with any object
  implementing :class:`PipelineStage`;
* **intercept an intermediate result** -- ``DesignPipeline.standard(hooks=
  [hook])`` calls ``hook(stage_name, context)`` after every stage, so e.g. the
  fractional LP solution is observable right after the ``"solve"`` stage.

:func:`repro.core.algorithm.design_overlay` and
:func:`repro.core.extensions.design_overlay_extended` are thin wrappers over
:meth:`DesignPipeline.standard` and :meth:`DesignPipeline.extended`; the
registry designers of :mod:`repro.api.designers` run the same pipelines, so
all entry points produce bit-identical solutions for a fixed seed.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.analysis.audit import SolutionAudit, audit_solution
from repro.core.algorithm import (
    DesignParameters,
    DesignReport,
    repair_weight_shortfalls,
)
from repro.core.formulation import build_formulation, build_sparse_formulation
from repro.core.gap import GapResult, gap_round
from repro.core.lp_solution import FractionalSolution, RoundedSolution
from repro.core.path_rounding import (
    EntangledSet,
    PathRoundingResult,
    arc_capacity_entangled_sets,
    color_entangled_sets,
    path_round,
)
from repro.core.problem import OverlayDesignProblem
from repro.core.rounding import (
    RoundingAudit,
    audit_rounding,
    round_solution,
    round_solution_with_retries,
)
from repro.core.solution import OverlaySolution
from repro.lp import SolveOptions


@dataclass
class PipelineContext:
    """Everything a pipeline run produces, shared mutable state between stages.

    Stages read their inputs from and write their outputs to this object, so a
    custom stage can consume anything its predecessors produced.  ``metadata``
    is free-form scratch space for experiment hooks and custom stages.
    """

    problem: OverlayDesignProblem
    parameters: DesignParameters
    rng: np.random.Generator
    #: optional warm-start vector for the LP solve (advisory; see
    #: :class:`repro.lp.SolveOptions` -- only backends that support MIP
    #: starts honor it, so the default backend's results never change).
    warm_start: np.ndarray | None = None
    formulation: object | None = None
    lp_solution: object | None = None
    fractional: FractionalSolution | None = None
    rounded: RoundedSolution | None = None
    rounding_audit: RoundingAudit | None = None
    rounding_attempts: int = 0
    gap: GapResult | None = None
    path_rounding: PathRoundingResult | None = None
    entangled_sets: list[EntangledSet] = field(default_factory=list)
    solution: OverlaySolution | None = None
    solution_audit: SolutionAudit | None = None
    stage_seconds: dict[str, float] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    @property
    def lp_lower_bound(self) -> float | None:
        return self.fractional.objective if self.fractional is not None else None

    def report_fields(self) -> dict:
        """Constructor kwargs shared by ``DesignReport`` and its subclasses.

        Used by :meth:`report` and by
        :func:`repro.core.extensions.extended_report_from_context`, so the
        field mapping exists exactly once.
        """
        return {
            "solution": self.solution,
            "fractional": self.fractional,
            "rounded": self.rounded,
            "rounding_audit": self.rounding_audit,
            "gap": self.gap,
            "formulation_size": (
                self.formulation.num_variables,
                self.formulation.num_constraints,
            ),
            "stage_seconds": dict(self.stage_seconds),
            "rounding_attempts": self.rounding_attempts,
            "lp_build_stats": getattr(self.formulation, "stats", None),
            "solution_audit": self.solution_audit,
        }

    def report(self) -> DesignReport:
        """Assemble the classic :class:`~repro.core.algorithm.DesignReport`."""
        return DesignReport(**self.report_fields())


class StageCache:
    """Protocol for the optional formulate/solve artifact cache.

    The serving layer (:mod:`repro.serve`) installs an implementation via
    :func:`use_stage_cache`; the standard :class:`FormulateStage` and
    :class:`SolveStage` consult it so repeated solves of content-identical
    (sub)problems -- repeat-digest requests, residual shard re-solves inside
    a long-lived session -- skip LP assembly and the simplex run entirely.

    Implementations key on problem *content* plus whatever parameters affect
    the artifact (``lp_backend`` and ``extensions`` for formulations; the LP
    solve adds nothing further, being deterministic given the formulation).
    Returned artifacts must be treated as immutable: formulations are solved
    read-only and fractional solutions are only read by the rounding stages,
    so one cached object may serve many concurrent pipeline runs.
    """

    def get_formulation(
        self, problem: OverlayDesignProblem, parameters: DesignParameters
    ) -> object | None:
        raise NotImplementedError

    def put_formulation(
        self,
        problem: OverlayDesignProblem,
        parameters: DesignParameters,
        formulation: object,
    ) -> None:
        raise NotImplementedError

    def get_lp(
        self, problem: OverlayDesignProblem, parameters: DesignParameters
    ) -> tuple[object, FractionalSolution] | None:
        raise NotImplementedError

    def put_lp(
        self,
        problem: OverlayDesignProblem,
        parameters: DesignParameters,
        lp_solution: object,
        fractional: FractionalSolution,
    ) -> None:
        raise NotImplementedError


_STAGE_CACHE: contextvars.ContextVar[StageCache | None] = contextvars.ContextVar(
    "repro_stage_cache", default=None
)


def get_stage_cache() -> StageCache | None:
    """The stage cache active in the current context, if any."""
    return _STAGE_CACHE.get()


@contextmanager
def use_stage_cache(cache: StageCache | None) -> Iterator[StageCache | None]:
    """Install ``cache`` as the active stage cache for the enclosed block.

    Scoped per :mod:`contextvars` context, so concurrent service worker
    threads (and nested pipeline runs, e.g. per-shard inner designs executed
    inline at ``jobs=1``) each see the cache their own front installed.
    Worker *processes* spawned by ``jobs>1`` do not inherit it -- a
    subprocess simply runs uncached, which affects speed, never results.
    """
    token = _STAGE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _STAGE_CACHE.reset(token)


class PipelineStage:
    """One stage of the design pipeline.

    Subclasses set ``name`` (the key used by :meth:`DesignPipeline.with_stage`
    and reported to hooks) and implement :meth:`run`, reading/writing the
    shared :class:`PipelineContext`.  Stages record their own wall-clock times
    into ``context.stage_seconds`` -- the standard stages use the same keys as
    the pre-pipeline driver (``formulate``, ``solve_lp``, ``rounding``,
    ``gap``, ``repair``) so existing report consumers keep working; the audit
    stage adds an ``audit`` key.
    """

    name: str = "stage"

    def run(self, context: PipelineContext) -> None:
        raise NotImplementedError


class FormulateStage(PipelineStage):
    """Build the Section-2 LP relaxation (sparse or expression backend)."""

    name = "formulate"

    def run(self, context: PipelineContext) -> None:
        parameters = context.parameters
        cache = get_stage_cache()
        start = time.perf_counter()
        formulation = None
        if cache is not None:
            formulation = cache.get_formulation(context.problem, parameters)
            context.metadata["cache_formulate"] = (
                "miss" if formulation is None else "hit"
            )
        if formulation is None:
            if parameters.lp_backend == "sparse":
                formulation = build_sparse_formulation(
                    context.problem, parameters.extensions
                )
            else:
                formulation = build_formulation(
                    context.problem, parameters.extensions
                )
            if cache is not None:
                cache.put_formulation(context.problem, parameters, formulation)
        context.formulation = formulation
        context.stage_seconds["formulate"] = time.perf_counter() - start


class SolveStage(PipelineStage):
    """Solve the LP and extract the fractional support."""

    name = "solve"

    def run(self, context: PipelineContext) -> None:
        cache = get_stage_cache()
        start = time.perf_counter()
        if cache is not None:
            cached = cache.get_lp(context.problem, context.parameters)
            if cached is not None:
                context.metadata["cache_solve"] = "hit"
                context.lp_solution, context.fractional = cached
                context.stage_seconds["solve_lp"] = time.perf_counter() - start
                return
            context.metadata["cache_solve"] = "miss"
        parameters = context.parameters
        options = None
        if context.warm_start is not None:
            options = SolveOptions(warm_start=context.warm_start)
        context.lp_solution = context.formulation.solve(
            parameters.solver_backend, options=options
        )
        context.metadata["solver_backend"] = parameters.solver_backend
        context.stage_seconds["solve_lp"] = time.perf_counter() - start
        context.fractional = context.formulation.fractional_solution(
            context.lp_solution
        ).support()
        if cache is not None:
            cache.put_lp(
                context.problem,
                context.parameters,
                context.lp_solution,
                context.fractional,
            )


class RoundStage(PipelineStage):
    """Section-3 randomized rounding followed by the Section-5 GAP rounding."""

    name = "round"
    algorithm_label = "spaa03-lp-rounding"

    def run(self, context: PipelineContext) -> None:
        self._draw(context)
        self._integralize(context)
        context.solution = OverlaySolution.from_assignments(
            context.problem,
            context.gap.assignments,
            metadata=self.solution_metadata(context),
        )

    def _draw(self, context: PipelineContext) -> None:
        parameters = context.parameters
        start = time.perf_counter()
        if parameters.retry_rounding:
            rounded, audit, attempts = round_solution_with_retries(
                context.problem,
                context.fractional,
                parameters.rounding,
                context.rng,
                max_attempts=parameters.max_rounding_attempts,
            )
        else:
            rounded = round_solution(
                context.problem, context.fractional, parameters.rounding, context.rng
            )
            audit = audit_rounding(context.problem, rounded)
            attempts = 1
        context.rounded = rounded
        context.rounding_audit = audit
        context.rounding_attempts = attempts
        context.stage_seconds["rounding"] = time.perf_counter() - start

    def _integralize(self, context: PipelineContext) -> None:
        start = time.perf_counter()
        context.gap = gap_round(
            context.problem, context.rounded, context.parameters.keep_degenerate_box
        )
        context.stage_seconds["gap"] = time.perf_counter() - start

    def solution_metadata(self, context: PipelineContext) -> dict:
        return {
            "algorithm": self.algorithm_label,
            "multiplier": context.rounded.multiplier,
            "rounding_attempts": context.rounding_attempts,
        }


class ExtendedRoundStage(RoundStage):
    """Rounding for the Section-6 extensions.

    When arc capacities or color constraints are enabled the remaining
    fractional assignments are entangled across demands, so the plain GAP
    rounding is replaced by the Section-6.5 path rounding over the computed
    entangled sets; otherwise this behaves exactly like :class:`RoundStage`.
    """

    name = "round"
    algorithm_label = "spaa03-lp-rounding-extended"

    def _integralize(self, context: PipelineContext) -> None:
        options = context.parameters.extensions
        needs_path_rounding = options.use_color_constraints or options.use_arc_capacities
        start = time.perf_counter()
        if needs_path_rounding:
            support = list(context.rounded.x.keys())
            if options.use_color_constraints:
                context.entangled_sets.extend(
                    color_entangled_sets(context.problem, support)
                )
            if options.use_arc_capacities:
                context.entangled_sets.extend(
                    arc_capacity_entangled_sets(context.problem, support)
                )
            context.path_rounding = path_round(
                context.problem,
                context.rounded,
                entangled_sets=context.entangled_sets,
                rng=context.rng,
                keep_degenerate_box=context.parameters.keep_degenerate_box,
            )
            context.gap = GapResult(
                assignments=context.path_rounding.assignments,
                flow_value=float(context.path_rounding.boxes_served),
                boxes_total=context.path_rounding.boxes_total,
                boxes_served=context.path_rounding.boxes_served,
                cost=context.path_rounding.cost,
            )
        else:
            context.gap = gap_round(
                context.problem, context.rounded, context.parameters.keep_degenerate_box
            )
        context.stage_seconds["gap"] = time.perf_counter() - start

    def solution_metadata(self, context: PipelineContext) -> dict:
        metadata = super().solution_metadata(context)
        metadata["path_rounding"] = context.path_rounding is not None
        return metadata


class RepairStage(PipelineStage):
    """Optional Section-7-style greedy repair of weight shortfalls."""

    name = "repair"

    def run(self, context: PipelineContext) -> None:
        start = time.perf_counter()
        if context.parameters.repair_shortfall:
            context.solution = repair_weight_shortfalls(
                context.problem,
                context.solution,
                fanout_slack=context.parameters.repair_fanout_slack,
            )
        context.stage_seconds["repair"] = time.perf_counter() - start


class AuditStage(PipelineStage):
    """Constraint-violation audit of the final solution."""

    name = "audit"

    def run(self, context: PipelineContext) -> None:
        start = time.perf_counter()
        context.solution_audit = audit_solution(context.problem, context.solution)
        context.stage_seconds["audit"] = time.perf_counter() - start


class DesignPipeline:
    """An ordered list of stages plus per-stage observation hooks.

    ``hooks`` are callables ``(stage_name, context) -> None`` invoked after
    each stage completes; they observe (and may annotate ``context.metadata``)
    but should not replace pipeline state -- use a custom stage for that.
    """

    def __init__(
        self,
        stages: list[PipelineStage] | None = None,
        hooks: list | None = None,
    ) -> None:
        self.stages = list(stages) if stages is not None else self.default_stages()
        self.hooks = list(hooks or [])

    @staticmethod
    def default_stages() -> list[PipelineStage]:
        return [
            FormulateStage(),
            SolveStage(),
            RoundStage(),
            RepairStage(),
            AuditStage(),
        ]

    @classmethod
    def standard(cls, hooks: list | None = None) -> "DesignPipeline":
        """The paper's algorithm: the pipeline behind ``design_overlay``."""
        return cls(hooks=hooks)

    @classmethod
    def extended(cls, hooks: list | None = None) -> "DesignPipeline":
        """The Section-6 variant: the pipeline behind ``design_overlay_extended``."""
        return cls(hooks=hooks).with_stage("round", ExtendedRoundStage())

    def stage(self, name: str) -> PipelineStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        known = ", ".join(stage.name for stage in self.stages)
        raise KeyError(f"no stage named {name!r} (stages: {known})")

    def with_stage(self, name: str, replacement: PipelineStage) -> "DesignPipeline":
        """Return a new pipeline with the stage named ``name`` replaced.

        The receiver is left untouched, so a pipeline can safely serve as a
        shared template: ``base.with_stage("round", MyStage())`` never changes
        what ``base.run(...)`` executes.
        """
        self.stage(name)  # raises KeyError with the stage list if unknown
        return DesignPipeline(
            [replacement if stage.name == name else stage for stage in self.stages],
            list(self.hooks),
        )

    def run(
        self,
        problem: OverlayDesignProblem,
        parameters: DesignParameters | None = None,
        rng: np.random.Generator | None = None,
        warm_start: np.ndarray | None = None,
    ) -> PipelineContext:
        """Run every stage over ``problem`` and return the filled context.

        Matches the classic drivers exactly: the RNG defaults to
        ``np.random.default_rng(parameters.rounding.seed)`` and each stage
        consumes it in the same order, so solutions are bit-identical to the
        pre-pipeline ``design_overlay`` for a fixed seed.  ``warm_start``
        seeds the LP solve on backends that honor starts (advisory;
        never changes results on the default backend).
        """
        parameters = parameters or DesignParameters()
        if rng is None:
            rng = np.random.default_rng(parameters.rounding.seed)
        context = PipelineContext(
            problem=problem, parameters=parameters, rng=rng, warm_start=warm_start
        )
        for stage in self.stages:
            stage.run(context)
            for hook in self.hooks:
                hook(stage.name, context)
        return context


__all__ = [
    "AuditStage",
    "DesignPipeline",
    "ExtendedRoundStage",
    "FormulateStage",
    "PipelineContext",
    "PipelineStage",
    "RepairStage",
    "RoundStage",
    "SolveStage",
    "StageCache",
    "get_stage_cache",
    "use_stage_cache",
]
