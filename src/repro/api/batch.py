"""Batch entry point: many design requests through the parallel executor.

:func:`design_batch` is the service-shaped front door the ROADMAP's batched-
traffic goal needs: hand it a list of :class:`~repro.api.types.DesignRequest`
and it fans them out over worker processes via
:func:`repro.analysis.runner.execute_tasks`.  Requests cross the process
boundary as their versioned JSON documents, results come back in request
order, and each request carries its own seed -- so a batch is deterministic
given its requests regardless of ``jobs`` (the same bit-for-bit guarantee the
benchmark runner makes).

The JSONL helpers are the file format of ``repro batch``: one request (or
result) document per line.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import json

from repro.analysis.runner import execute_tasks
from repro.api.registry import get_designer
from repro.api.types import (
    DesignRequest,
    DesignResult,
    request_from_dict,
    request_to_dict,
    result_from_dict,
    result_to_dict,
)


def _batch_task(task: dict) -> dict:
    """One batch unit (module-level, hence picklable for worker processes)."""
    request = request_from_dict(task["request"])
    result = get_designer(request.strategy).design(request)
    return result_to_dict(result)


def design_batch(
    requests: Sequence[DesignRequest] | Iterable[DesignRequest],
    jobs: int | str | None = 1,
) -> list[DesignResult]:
    """Execute many design requests, possibly across worker processes.

    Results are returned in request order and are bit-identical (up to
    wall-clock timings) between ``jobs=1`` and any parallel setting, because
    every request derives all randomness from its own seed.  Requests must be
    JSON-serializable (see :func:`repro.api.types.request_to_dict`) -- that is
    what ships them to the workers.

    Custom strategies and ``jobs > 1``: worker processes resolve strategies by
    re-importing :mod:`repro.api`, so a designer registered via
    ``@register_designer`` is only visible to workers if its registration runs
    at import time of a module the workers also import.  Under the ``spawn``
    start method (macOS/Windows default) a designer registered only in the
    parent interpreter session raises ``KeyError`` in the pool -- run such
    batches with ``jobs=1`` or move the registration into an importable
    module.  The built-in catalogue is always available.
    """
    requests = list(requests)
    tasks = [{"request": request_to_dict(request)} for request in requests]
    documents = execute_tasks(_batch_task, tasks, jobs=jobs)
    return [
        result_from_dict(document, request.problem)
        for request, document in zip(requests, documents)
    ]


def load_requests_jsonl(path: str | Path) -> list[DesignRequest]:
    """Read a JSON-lines file of request documents (blank lines ignored)."""
    requests = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            requests.append(request_from_dict(json.loads(line)))
        except (ValueError, KeyError) as error:
            raise ValueError(f"{path}:{lineno}: bad request document: {error}") from None
    return requests


def dump_requests_jsonl(requests: Iterable[DesignRequest], path: str | Path) -> Path:
    """Write requests as a JSON-lines file (one document per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(request_to_dict(request), sort_keys=True) for request in requests]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def dump_results_jsonl(results: Iterable[DesignResult], path: str | Path) -> Path:
    """Write results as a JSON-lines file (one document per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(result_to_dict(result), sort_keys=True) for result in results]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


__all__ = [
    "design_batch",
    "dump_requests_jsonl",
    "dump_results_jsonl",
    "load_requests_jsonl",
]
