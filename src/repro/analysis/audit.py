"""Constraint audits and checks of the paper's guarantees.

:func:`audit_solution` measures, for any integral design, how far each
constraint family of the Section-2 IP is from being satisfied;
:func:`check_paper_guarantees` specialises the audit to the exact guarantees
the paper proves for its algorithm (weight >= 1/4 of requirement, fanout <= 4x,
cost <= c log n x LP optimum) and returns a pass/fail verdict per guarantee.
These are the primitives behind the T1--T4 benchmarks and a large part of the
integration test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.algorithm import DesignReport
from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution


@dataclass
class SolutionAudit:
    """Per-constraint-family violation measurements for an integral design.

    All "fractions"/"factors" are normalised so 1.0 means exactly tight:
    ``weight_fraction < 1`` is a shortfall, ``fanout_factor > 1`` an overload.
    """

    weight_fraction: dict[tuple[str, str], float] = field(default_factory=dict)
    fanout_factor: dict[str, float] = field(default_factory=dict)
    color_violations: int = 0
    arc_capacity_factor: dict[tuple[str, str], float] = field(default_factory=dict)
    unserved_demands: int = 0

    @property
    def min_weight_fraction(self) -> float:
        return min(self.weight_fraction.values()) if self.weight_fraction else 1.0

    @property
    def max_fanout_factor(self) -> float:
        return max(self.fanout_factor.values()) if self.fanout_factor else 0.0

    @property
    def max_arc_capacity_factor(self) -> float:
        return max(self.arc_capacity_factor.values()) if self.arc_capacity_factor else 0.0

    def summary(self) -> dict:
        return {
            "min_weight_fraction": self.min_weight_fraction,
            "max_fanout_factor": self.max_fanout_factor,
            "color_violations": self.color_violations,
            "max_arc_capacity_factor": self.max_arc_capacity_factor,
            "unserved_demands": self.unserved_demands,
        }


def audit_solution(problem: OverlayDesignProblem, solution: OverlaySolution) -> SolutionAudit:
    """Measure all constraint violations of an integral design."""
    audit = SolutionAudit()

    for demand in problem.demands:
        audit.weight_fraction[demand.key] = solution.weight_satisfaction(demand)
    audit.unserved_demands = len(solution.unserved_demands())

    used_reflectors = {
        reflector for reflectors in solution.assignments.values() for reflector in reflectors
    }
    for reflector in used_reflectors:
        audit.fanout_factor[reflector] = solution.fanout_factor(reflector)

    audit.color_violations = len(solution.color_violations())

    for reflector, sink in problem.delivery_links():
        capacity = problem.arc_capacity(reflector, sink)
        if capacity is None:
            continue
        used = sum(
            1
            for (demand_sink, _stream), reflectors in solution.assignments.items()
            if demand_sink == sink and reflector in reflectors
        )
        audit.arc_capacity_factor[(reflector, sink)] = used / capacity
    return audit


@dataclass
class GuaranteeCheck:
    """Verdict of a single paper guarantee on a concrete run."""

    name: str
    bound: float
    measured: float
    holds: bool
    description: str = ""


def check_paper_guarantees(
    problem: OverlayDesignProblem,
    report: DesignReport,
    weight_factor: float = 4.0,
    fanout_factor: float = 4.0,
) -> list[GuaranteeCheck]:
    """Check the Section-5 guarantees on a finished :class:`DesignReport`.

    * weight: every demand retains at least ``1/weight_factor`` of its
      required weight (paper: factor 4);
    * fanout: no reflector exceeds ``fanout_factor`` times its fanout
      (paper: factor 4);
    * cost: the final cost is at most ``c log n`` times the LP lower bound
      (paper: Lemma 4.1 plus the constant-factor GAP stage).
    """
    solution = report.solution
    audit = audit_solution(problem, solution)

    checks: list[GuaranteeCheck] = []
    weight_bound = 1.0 / weight_factor
    checks.append(
        GuaranteeCheck(
            name="weight >= W/4",
            bound=weight_bound,
            measured=audit.min_weight_fraction,
            holds=audit.min_weight_fraction + 1e-9 >= weight_bound,
            description=(
                "Every (stream, sink) demand keeps at least a quarter of its "
                "required weight (failure probability at most the 4th root of target)."
            ),
        )
    )
    checks.append(
        GuaranteeCheck(
            name="fanout <= 4F",
            bound=fanout_factor,
            measured=audit.max_fanout_factor,
            holds=audit.max_fanout_factor <= fanout_factor + 1e-9,
            description="No reflector serves more than four times its fanout bound.",
        )
    )
    # The cost bound the paper proves is in expectation; we check against the
    # actually-used multiplier (c log n), with a factor 2 for the GAP doubling.
    cost_bound = 2.0 * report.rounded.multiplier
    checks.append(
        GuaranteeCheck(
            name="cost <= 2 c log n * OPT_LP",
            bound=cost_bound,
            measured=report.cost_ratio,
            holds=report.cost_ratio <= cost_bound + 1e-9,
            description=(
                "Final cost over the LP lower bound stays within the rounding "
                "multiplier (c log n) times the GAP doubling factor."
            ),
        )
    )
    return checks
