"""The registered scenario catalogue: every paper experiment as a ScenarioSpec.

Each ``benchmarks/bench_*.py`` experiment is declared here as a
:class:`~repro.analysis.runner.ScenarioSpec`: a list of picklable task dicts
(workload family x size x seed block x design parameters), a module-level
task function that measures one unit, per-metric comparison policies, and a
``validate`` hook holding the paper-shape thresholds.  The ``repro bench``
CLI and the pytest wrappers under ``benchmarks/`` both run these specs
through :func:`repro.analysis.runner.run_scenario`.

Conventions
-----------
* All randomness inside a task derives from seeds carried in the task dict,
  which in turn derive from the scenario's master seed -- a run is therefore
  reproducible from one integer and independent of ``--jobs``.
* Row keys ending in ``_seconds`` are wall-clock noise: they are reported but
  never aggregated into comparable metrics.
* ``smoke=True`` shrinks seed blocks / draw counts / instance sizes for CI;
  the committed ``benchmarks/results/baseline.json`` is a smoke baseline.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from repro.analysis.experiments import run_design
from repro.analysis.metrics import compare_designs
from repro.analysis.runner import (
    BenchRecord,
    MetricPolicy,
    ScenarioSpec,
    register_scenario,
)
from repro.api import DesignPipeline, DesignRequest, comparison_designers, get_designer
from repro.core.algorithm import DesignParameters
from repro.core.concentration import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    empirical_tail_frequency,
    weight_violation_probability,
)
from repro.core.extensions import (
    color_constrained_parameters,
    extended_report_from_context,
)
from repro.core.formulation import (
    ExtensionOptions,
    build_formulation,
    build_sparse_formulation,
)
from repro.core.gap import build_gap_network, gap_round, solve_gap
from repro.core.rounding import (
    RoundingParameters,
    audit_rounding,
    round_solution,
)
from repro.flow import assert_feasible_flow
from repro.lp import LinearExpr, LinearProgram, Objective, solve_lp
from repro.network.reliability import demand_success_probability
from repro.network.topology import NodeRole
from repro.simulation import (
    FailureSchedule,
    MonteCarloConfig,
    SimulationConfig,
    StreamingConfig,
    compile_path_table,
    evaluate_design,
    failure_scenario_names,
    run_monte_carlo,
    run_streaming_monte_carlo,
    simulate_solution,
)
from repro.workloads import (
    AkamaiLikeConfig,
    AsGeoConfig,
    FlashCrowdConfig,
    InternetScaleConfig,
    RandomInstanceConfig,
    generate_akamai_like_topology,
    generate_as_geo_problem,
    generate_flash_crowd_scenario,
    generate_internet_scale_problem,
    random_problem,
)
from repro.workloads.tiny import build_tiny_problem


# ---------------------------------------------------------------------------
# tiny -- fast full-pipeline scenario (CI smoke, determinism tests)
# ---------------------------------------------------------------------------


def tiny_task(task: dict) -> dict:
    problem = build_tiny_problem()
    parameters = DesignParameters(seed=task["seed"], repair_shortfall=True)
    _, row = run_design(problem, parameters)
    row["seed"] = task["seed"]
    return row


def tiny_tasks(master_seed: int, smoke: bool) -> list[dict]:
    count = 2 if smoke else 4
    return [{"seed": master_seed + k} for k in range(count)]


def tiny_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        if row["unserved_demands"] != 0:
            failures.append(f"seed {row['seed']}: {row['unserved_demands']} unserved demands")
        if row["min_weight_fraction"] < 1.0 - 1e-9:
            failures.append(
                f"seed {row['seed']}: repaired design below full weight "
                f"({row['min_weight_fraction']:.3f})"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="tiny",
        suites=("paper",),
        title="Full pipeline on the tiny 3-reflector instance (seed sweep)",
        task_fn=tiny_task,
        make_tasks=tiny_tasks,
        policies={
            "total_cost": MetricPolicy("lower", rel_tol=1e-4),
            "cost_ratio": MetricPolicy("lower", rel_tol=1e-4),
            "lp_lower_bound": MetricPolicy("equal", rel_tol=1e-6, abs_tol=1e-6),
            "min_weight_fraction": MetricPolicy("higher", abs_tol=1e-6),
            "unserved_demands": MetricPolicy("equal", rel_tol=0.0),
        },
        validate=tiny_validate,
        artifact="TINY_pipeline",
        description="Smallest end-to-end sweep; used by CI smoke and determinism tests.",
    )
)


# ---------------------------------------------------------------------------
# T1 -- Lemma 4.1: cost within c log n of the LP optimum
# ---------------------------------------------------------------------------

T1_SIZES = [(1, 5, 8), (2, 8, 16), (2, 12, 32), (3, 16, 48)]


def t1_task(task: dict) -> dict:
    streams, reflectors, sinks = task["size"]
    problem = random_problem(
        RandomInstanceConfig(
            num_streams=streams, num_reflectors=reflectors, num_sinks=sinks
        ),
        rng=task["seed"],
    )
    report, row = run_design(
        problem,
        DesignParameters(rounding=RoundingParameters(c=task["c"], seed=task["seed"])),
    )
    return {
        "|S|,|R|,n": f"{streams},{reflectors},{sinks}",
        "demands": sinks,
        "seed": task["seed"],
        "cost_ratio": row["cost_ratio"],
        "paper_bound_2clogn": 2.0 * report.rounded.multiplier,
        "elapsed_seconds": row["elapsed_seconds"],
    }


def t1_tasks(master_seed: int, smoke: bool) -> list[dict]:
    sizes = T1_SIZES[:2] if smoke else T1_SIZES
    seeds = 2 if smoke else 3
    return [
        {"size": list(size), "seed": master_seed + k, "c": 8.0}
        for size in sizes
        for k in range(seeds)
    ]


def t1_validate(record: BenchRecord) -> list[str]:
    return [
        f"{row['|S|,|R|,n']} seed {row['seed']}: cost ratio {row['cost_ratio']:.3f} "
        f"exceeds the 2 c log n bound {row['paper_bound_2clogn']:.3f}"
        for row in record.rows
        if row["cost_ratio"] > row["paper_bound_2clogn"] + 1e-9
    ]


register_scenario(
    ScenarioSpec(
        scenario_id="t1",
        suites=("paper",),
        title="Lemma 4.1 reproduction: cost ratio vs the c log n bound (c = 8)",
        task_fn=t1_task,
        make_tasks=t1_tasks,
        policies={
            "cost_ratio": MetricPolicy("lower", rel_tol=0.2),
            "paper_bound_2clogn": MetricPolicy("equal", rel_tol=1e-6),
        },
        validate=t1_validate,
        artifact="T1_cost_ratio",
        description="Cost of the rounded design relative to the LP lower bound.",
    )
)


# ---------------------------------------------------------------------------
# T2 -- Lemma 4.3: weight constraints survive rounding whp
# ---------------------------------------------------------------------------


def t2_task(task: dict) -> dict:
    c, delta = task["c"], task["delta"]
    problem = random_problem(
        RandomInstanceConfig(num_streams=2, num_reflectors=10, num_sinks=20),
        rng=task["instance_rng"],
    )
    formulation = build_formulation(problem)
    fractional = formulation.fractional_solution(formulation.solve()).support()
    rng = np.random.default_rng(task["seed"])
    params = RoundingParameters(c=c, delta=delta)
    min_fractions = []
    violating_draws = 0
    for _ in range(task["draws"]):
        rounded = round_solution(problem, fractional, params, rng)
        audit = audit_rounding(problem, rounded)
        min_fractions.append(audit.min_weight_fraction)
        if audit.min_weight_fraction < (1.0 - delta) - 1e-9:
            violating_draws += 1
    n = problem.num_demands
    return {
        "c": c,
        "delta": delta,
        "draws": task["draws"],
        "mean_min_weight_fraction": float(np.mean(min_fractions)),
        "worst_min_weight_fraction": float(np.min(min_fractions)),
        "fraction_of_draws_violating": violating_draws / task["draws"],
        "paper_union_bound": min(1.0, n * weight_violation_probability(delta, c, n)),
    }


def t2_tasks(master_seed: int, smoke: bool) -> list[dict]:
    draws = 10 if smoke else 40
    tasks = [
        {"c": 64.0, "delta": 0.25, "draws": draws, "seed": master_seed, "instance_rng": 1}
    ]
    for c in (16.0, 4.0):
        tasks.append(
            {"c": c, "delta": 0.25, "draws": draws, "seed": master_seed + 7, "instance_rng": 1}
        )
    return tasks


def t2_validate(record: BenchRecord) -> list[str]:
    failures = []
    rows = sorted(record.rows, key=lambda r: -r["c"])
    paper = rows[0]
    if paper["fraction_of_draws_violating"] > paper["paper_union_bound"] + 0.05:
        failures.append(
            f"c={paper['c']}: violating fraction {paper['fraction_of_draws_violating']:.3f} "
            f"exceeds the union bound {paper['paper_union_bound']:.3f}"
        )
    if paper["fraction_of_draws_violating"] > rows[-1]["fraction_of_draws_violating"] + 1e-9:
        failures.append("violation frequency does not grow as c shrinks")
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="t2",
        suites=("paper",),
        title="Lemma 4.3 reproduction: weight retention after randomized rounding",
        task_fn=t2_task,
        make_tasks=t2_tasks,
        policies={
            "mean_min_weight_fraction": MetricPolicy("higher", rel_tol=0.05),
            "worst_min_weight_fraction": MetricPolicy("higher", rel_tol=0.15),
            "fraction_of_draws_violating": MetricPolicy("lower", abs_tol=0.1),
        },
        validate=t2_validate,
        artifact="T2_weight_violation",
        description="Distribution of worst per-demand weight fraction over rounding draws.",
    )
)


# ---------------------------------------------------------------------------
# T3 -- Lemma 4.6 + Section 5: fanout violations stay constant
# ---------------------------------------------------------------------------


def t3_task(task: dict) -> dict:
    problem = random_problem(
        RandomInstanceConfig(
            num_streams=3, num_reflectors=10, num_sinks=24, fanout_range=(5, 9)
        ),
        rng=2,
    )
    formulation = build_formulation(problem)
    fractional = formulation.fractional_solution(formulation.solve()).support()
    rng = np.random.default_rng(task["seed"])
    params = RoundingParameters(c=task["c"])
    after_rounding, after_gap = [], []
    for _ in range(task["draws"]):
        rounded = round_solution(problem, fractional, params, rng)
        audit = audit_rounding(problem, rounded)
        after_rounding.append(audit.max_fanout_factor)
        result = gap_round(problem, rounded)
        load: dict = {}
        for reflector, _key in result.assignments:
            load[reflector] = load.get(reflector, 0) + 1
        worst = max((load[r] / problem.fanout(r) for r in load), default=0.0)
        after_gap.append(worst)
    return {
        "c": task["c"],
        "draws": task["draws"],
        "max_fanout_factor_after_rounding": float(np.max(after_rounding)),
        "paper_bound_after_rounding": 2.0,
        "max_fanout_factor_final": float(np.max(after_gap)),
        "paper_bound_final": 4.0,
    }


def t3_tasks(master_seed: int, smoke: bool) -> list[dict]:
    draws = 8 if smoke else 25
    return [{"c": c, "draws": draws, "seed": master_seed} for c in (64.0, 24.0)]


def t3_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        if row["max_fanout_factor_after_rounding"] > row["paper_bound_after_rounding"] + 1e-9:
            failures.append(
                f"c={row['c']}: fanout factor {row['max_fanout_factor_after_rounding']:.3f} "
                "after rounding exceeds the factor-2 bound"
            )
        if row["max_fanout_factor_final"] > row["paper_bound_final"] + 1e-9:
            failures.append(
                f"c={row['c']}: final fanout factor {row['max_fanout_factor_final']:.3f} "
                "exceeds the factor-4 bound"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="t3",
        suites=("paper",),
        title="Lemma 4.6 / Section 5 reproduction: fanout violation factors",
        task_fn=t3_task,
        make_tasks=t3_tasks,
        policies={
            "max_fanout_factor_after_rounding": MetricPolicy("lower", abs_tol=0.25),
            "max_fanout_factor_final": MetricPolicy("lower", abs_tol=0.5),
        },
        validate=t3_validate,
        artifact="T3_fanout_violation",
        description="Worst fanout factor after rounding and after the GAP stage.",
    )
)


# ---------------------------------------------------------------------------
# T4 -- Section 5: final designs deliver >= 1/4 of the demanded weight
# ---------------------------------------------------------------------------


def t4_task(task: dict) -> dict:
    kind = task["kind"]
    if kind == "random":
        problem = random_problem(
            RandomInstanceConfig(
                num_streams=task["streams"],
                num_reflectors=task["reflectors"],
                num_sinks=task["sinks"],
            ),
            rng=task["rng"],
        )
    else:
        topology, _ = generate_akamai_like_topology(
            AkamaiLikeConfig(num_regions=2, colos_per_region=3, num_streams=2),
            rng=task["rng"],
        )
        problem = topology.to_problem()
    params = DesignParameters(
        rounding=RoundingParameters.paper_defaults(),
        seed=task["seed"],
        repair_shortfall=False,
    )
    report = DesignPipeline.standard().run(problem, params).report()
    solution = report.solution
    weight_fractions = [solution.weight_satisfaction(d) for d in problem.demands]
    fourth_root_ok = []
    for demand in problem.demands:
        target_failure = 1.0 - demand.success_threshold
        achieved_failure = solution.failure_probability(demand)
        fourth_root_ok.append(achieved_failure <= target_failure**0.25 + 1e-9)
    return {
        "instance": task["instance"],
        "demands": problem.num_demands,
        "min_weight_fraction": float(np.min(weight_fractions)),
        "mean_weight_fraction": float(np.mean(weight_fractions)),
        "paper_bound": 0.25,
        "fraction_within_4th_root_failure": float(np.mean(fourth_root_ok)),
        "fraction_fully_meeting_target": float(
            np.mean([f >= 1.0 - 1e-9 for f in weight_fractions])
        ),
    }


def t4_tasks(master_seed: int, smoke: bool) -> list[dict]:
    tasks = [
        {
            "instance": "random-small",
            "kind": "random",
            "streams": 2,
            "reflectors": 8,
            "sinks": 15,
            "rng": 0,
            "seed": master_seed,
        },
        {
            "instance": "random-medium",
            "kind": "random",
            "streams": 3,
            "reflectors": 12,
            "sinks": 30,
            "rng": 1,
            "seed": master_seed,
        },
        {"instance": "akamai-like", "kind": "akamai", "rng": 2, "seed": master_seed},
    ]
    if smoke:
        return [tasks[0], tasks[2]]
    return tasks


def t4_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        if row["min_weight_fraction"] < row["paper_bound"] - 1e-9:
            failures.append(
                f"{row['instance']}: min weight fraction {row['min_weight_fraction']:.3f} "
                "below the W/4 guarantee"
            )
        if row["fraction_within_4th_root_failure"] < 1.0 - 1e-9:
            failures.append(
                f"{row['instance']}: fourth-root failure bound violated on "
                f"{1.0 - row['fraction_within_4th_root_failure']:.1%} of demands"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="t4",
        suites=("paper",),
        title="Section 5 reproduction: delivered weight vs the W/4 guarantee",
        task_fn=t4_task,
        make_tasks=t4_tasks,
        policies={
            "min_weight_fraction": MetricPolicy("higher", abs_tol=0.05),
            "mean_weight_fraction": MetricPolicy("higher", rel_tol=0.1),
            "fraction_within_4th_root_failure": MetricPolicy("higher", abs_tol=1e-9),
        },
        validate=t4_validate,
        artifact="T4_final_quality",
        description="End-to-end quality of the unrepaired paper algorithm.",
    )
)


# ---------------------------------------------------------------------------
# T5 -- Section 5.1: running time is dominated by the LP
# ---------------------------------------------------------------------------

T5_SIZES = [(1, 5, 10), (2, 8, 20), (2, 12, 40), (3, 16, 60), (3, 20, 90)]


def t5_task(task: dict) -> dict:
    streams, reflectors, sinks = task["size"]
    problem = random_problem(
        RandomInstanceConfig(
            num_streams=streams,
            num_reflectors=reflectors,
            num_sinks=sinks,
            delivery_edge_density=1.0,
            stream_edge_density=1.0,
        ),
        rng=task["rng"],
    )
    _, row = run_design(problem, DesignParameters(seed=task["seed"], retry_rounding=False))
    return {
        "size_product": streams * reflectors * sinks,
        "lp_variables": row["lp_variables"],
        "lp_constraints": row["lp_constraints"],
        "lp_nonzeros": row["lp_nonzeros"],
        "build_seconds": row["formulate_seconds"],
        "lp_seconds": row["lp_seconds"],
        "rounding_seconds": row["rounding_seconds"],
        "gap_seconds": row["gap_seconds"],
        "total_seconds": row["elapsed_seconds"],
    }


def t5_tasks(master_seed: int, smoke: bool) -> list[dict]:
    # The sweep sizes are already CI-sized; smoke keeps them so the
    # stage-dominance checks run on a meaningful largest instance.
    return [{"size": list(size), "rng": 0, "seed": master_seed} for size in T5_SIZES]


def t5_validate(record: BenchRecord) -> list[str]:
    failures = []
    rows = sorted(record.rows, key=lambda r: r["size_product"])
    if rows[-1]["lp_variables"] <= rows[0]["lp_variables"]:
        failures.append("LP size does not grow with |S||R|n")
    for row in (rows[0], rows[-1]):
        ratio = row["lp_variables"] / row["size_product"]
        if not 0.05 <= ratio <= 3.0:
            failures.append(
                f"LP variables not within a constant factor of |S||R|n (ratio {ratio:.3f})"
            )
    largest = rows[-1]
    # Stage times are tens of milliseconds and measured inside (possibly
    # core-sharing) worker processes, so the dominance checks allow a 2x noise
    # factor and are skipped entirely in the sub-100ms pure-noise regime.
    if largest["total_seconds"] >= 0.1:
        if largest["lp_seconds"] < 0.5 * largest["rounding_seconds"]:
            failures.append("LP solve does not dominate rounding on the largest instance")
        if largest["lp_seconds"] < 0.5 * largest["gap_seconds"]:
            failures.append("LP solve does not dominate the GAP stage on the largest instance")
        if largest["build_seconds"] > 2.0 * largest["lp_seconds"]:
            failures.append("sparse matrix assembly dominates the LP solve")
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="t5",
        suites=("paper",),
        title="Section 5.1 reproduction: pipeline scaling with |S|*|R|*n "
        "(build vs solve breakdown)",
        task_fn=t5_task,
        make_tasks=t5_tasks,
        policies={
            "lp_variables": MetricPolicy("equal", rel_tol=0.0),
            "lp_constraints": MetricPolicy("equal", rel_tol=0.0),
            "lp_nonzeros": MetricPolicy("equal", rel_tol=0.0),
        },
        validate=t5_validate,
        artifact="T5_scaling",
        description="LP size and per-stage wall-clock across a size sweep.",
    )
)


# ---------------------------------------------------------------------------
# T5_SPARSE -- sparse vs expression-tree LP assembly parity and speedup
# ---------------------------------------------------------------------------


def t5_sparse_task(task: dict) -> list[dict]:
    num_sinks = task["sinks"]
    regions = 5 if num_sinks >= 5 else 1
    config = AkamaiLikeConfig(
        num_regions=regions,
        colos_per_region=max(1, num_sinks // regions),
        reflectors_per_colo=1,
        num_streams=3,
        num_isps=4,
        num_sources=2,
        edge_density=0.12,
    )
    topology, _registry = generate_akamai_like_topology(config, rng=task["rng"])
    problem = topology.to_problem()

    start = time.perf_counter()
    sparse = build_sparse_formulation(problem)
    sparse_build = time.perf_counter() - start
    start = time.perf_counter()
    expr = build_formulation(problem)
    expr_build = time.perf_counter() - start

    start = time.perf_counter()
    sparse_solution = sparse.solve()
    sparse_solve = time.perf_counter() - start
    start = time.perf_counter()
    expr_solution = expr.solve()
    expr_solve = time.perf_counter() - start

    speedup = expr_build / max(sparse_build, 1e-12)
    return [
        {
            "backend": "sparse",
            "sinks": problem.num_sinks,
            "demands": problem.num_demands,
            "lp_variables": sparse.num_variables,
            "lp_constraints": sparse.num_constraints,
            "lp_nonzeros": sparse.stats.num_nonzeros,
            "build_seconds": sparse_build,
            "solve_seconds": sparse_solve,
            "objective": sparse_solution.objective,
            "is_optimal": bool(sparse_solution.is_optimal),
            "assembly_speedup": speedup,
        },
        {
            "backend": "expr",
            "sinks": problem.num_sinks,
            "demands": problem.num_demands,
            "lp_variables": expr.num_variables,
            "lp_constraints": expr.num_constraints,
            "lp_nonzeros": sum(len(c.expr.coeffs) for c in expr.model.constraints),
            "build_seconds": expr_build,
            "solve_seconds": expr_solve,
            "objective": expr_solution.objective,
            "is_optimal": bool(expr_solution.is_optimal),
        },
    ]


def t5_sparse_tasks(master_seed: int, smoke: bool) -> list[dict]:
    default_sinks = 40 if smoke else 500
    sinks = int(os.environ.get("REPRO_T5_SINKS", str(default_sinks)))
    return [{"sinks": sinks, "rng": 0, "seed": master_seed}]


def t5_sparse_metrics(rows: list[dict]) -> dict[str, float]:
    # NB: assembly_speedup is wall-clock-derived and deliberately NOT a key
    # metric -- comparing it against a baseline would gate CI on machine noise.
    by_backend = {row["backend"]: row for row in rows}
    sparse, expr = by_backend["sparse"], by_backend["expr"]
    return {
        "objective_abs_diff": abs(sparse["objective"] - expr["objective"]),
        "sparse_objective": sparse["objective"],
    }


def t5_sparse_validate(record: BenchRecord) -> list[str]:
    failures = []
    by_backend = {row["backend"]: row for row in record.rows}
    sparse, expr = by_backend["sparse"], by_backend["expr"]
    if not (sparse["is_optimal"] and expr["is_optimal"]):
        failures.append("one of the LP backends failed to reach optimality")
    for key in ("lp_variables", "lp_constraints"):
        if sparse[key] != expr[key]:
            failures.append(f"backend {key} mismatch: {sparse[key]} vs {expr[key]}")
    if abs(sparse["objective"] - expr["objective"]) > 1e-9:
        failures.append(
            f"objective parity broken: |{sparse['objective']} - {expr['objective']}| > 1e-9"
        )
    if sparse["sinks"] >= 200 and sparse["assembly_speedup"] < 5.0:
        failures.append(
            f"sparse assembly only {sparse['assembly_speedup']:.1f}x faster "
            "(>= 5x required at >= 200 sinks)"
        )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="t5_sparse",
        suites=("perf",),
        title="Sparse vs expression-tree LP assembly (akamai-like instance)",
        task_fn=t5_sparse_task,
        make_tasks=t5_sparse_tasks,
        policies={
            "sparse_objective": MetricPolicy("equal", rel_tol=1e-6, abs_tol=1e-6),
            "objective_abs_diff": MetricPolicy("lower", abs_tol=1e-9),
            "lp_variables": MetricPolicy("equal", rel_tol=0.0),
            "lp_nonzeros": MetricPolicy("equal", rel_tol=0.0),
        },
        derive_metrics=t5_sparse_metrics,
        validate=t5_sparse_validate,
        artifact="T5_sparse_vs_expr",
        description="Assembly parity + speedup of the vectorized sparse LP builder; "
        "REPRO_T5_SINKS overrides the instance size.",
    )
)


# ---------------------------------------------------------------------------
# T6 -- Sections 6.4/6.5: color constraints and ISP-outage resilience
# ---------------------------------------------------------------------------


def _survivor_fraction(problem, solution, victim: str) -> float:
    survivors = 0
    for demand in problem.demands:
        success = demand_success_probability(
            problem, demand, solution.reflectors_serving(demand), failed_isps={victim}
        )
        if success + 1e-12 >= demand.success_threshold:
            survivors += 1
    return survivors / problem.num_demands


def t6_task(task: dict) -> dict:
    seed = task["seed"]
    topology, registry = generate_akamai_like_topology(
        AkamaiLikeConfig(
            num_regions=2,
            colos_per_region=3,
            num_isps=3,
            num_streams=2,
            reflectors_per_colo=2,
        ),
        rng=task["rng"],
    )
    problem = topology.to_problem()
    base = DesignParameters(seed=seed, repair_shortfall=True)
    plain_report = DesignPipeline.standard().run(problem, base).report()
    colored_report = extended_report_from_context(
        DesignPipeline.extended().run(problem, color_constrained_parameters(base))
    )

    plain = plain_report.solution
    colored = colored_report.solution
    path_info = colored_report.path_rounding
    worst_plain = min(_survivor_fraction(problem, plain, isp) for isp in registry.names())
    worst_colored = min(
        _survivor_fraction(problem, colored, isp) for isp in registry.names()
    )
    return {
        "seed": seed,
        "demands": problem.num_demands,
        "plain_cost": plain.total_cost(),
        "colored_cost": colored.total_cost(),
        "cost_factor_vs_lp": colored.total_cost() / max(colored_report.lp_lower_bound, 1e-9),
        "paper_cost_factor_bound": 14.0,
        "entangled_violation_factor": (
            path_info.violation_factors.get("entangled", 0.0) if path_info else 0.0
        ),
        "fanout_violation_factor": (
            path_info.violation_factors.get("fanout", 0.0) if path_info else 0.0
        ),
        "paper_constraint_factor_bound": 7.0,
        "worst_outage_survivors_plain": worst_plain,
        "worst_outage_survivors_colored": worst_colored,
    }


def t6_tasks(master_seed: int, smoke: bool) -> list[dict]:
    count = 2 if smoke else 3
    return [{"seed": master_seed + k, "rng": k} for k in range(count)]


def t6_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        for key in ("entangled_violation_factor", "fanout_violation_factor"):
            if row[key] > row["paper_constraint_factor_bound"] + 1e-9:
                failures.append(
                    f"seed {row['seed']}: {key} {row[key]:.3f} exceeds the factor-7 bound"
                )
        if row["cost_factor_vs_lp"] > row["paper_cost_factor_bound"] + 1e-9:
            failures.append(
                f"seed {row['seed']}: cost factor {row['cost_factor_vs_lp']:.3f} "
                "exceeds the factor-14 bound"
            )
    plain_mean = float(np.mean([row["worst_outage_survivors_plain"] for row in record.rows]))
    colored_mean = float(
        np.mean([row["worst_outage_survivors_colored"] for row in record.rows])
    )
    if colored_mean < plain_mean - 0.05:
        failures.append(
            f"colored designs survive ISP outages worse than plain ones "
            f"({colored_mean:.3f} vs {plain_mean:.3f})"
        )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="t6",
        suites=("paper",),
        title="Sections 6.4/6.5 reproduction: color constraints and ISP-outage resilience",
        task_fn=t6_task,
        make_tasks=t6_tasks,
        policies={
            "colored_cost": MetricPolicy("lower", rel_tol=0.1),
            "cost_factor_vs_lp": MetricPolicy("lower", rel_tol=0.15),
            "worst_outage_survivors_colored": MetricPolicy("higher", abs_tol=0.1),
        },
        validate=t6_validate,
        artifact="T6_color_constraints",
        description="Path-rounding violation factors and single-ISP outage survival.",
    )
)


# ---------------------------------------------------------------------------
# T7 -- Section 4 / Appendix A: the Hoeffding-Chernoff bound
# ---------------------------------------------------------------------------


def t7_task(task: dict) -> dict:
    kind, num_vars, delta, trials = task["kind"], task["n_vars"], task["delta"], task["trials"]
    rng = np.random.default_rng(task["seed"])
    if kind == "bernoulli(0.3)":
        samples = rng.binomial(num_vars, 0.3, size=trials).astype(float)
        mu = 0.3 * num_vars
    elif kind == "uniform[0,1]":
        samples = rng.random((trials, num_vars)).sum(axis=1)
        mu = 0.5 * num_vars
    else:  # scaled bernoulli, mimicking the 1/(c log n) rounding increments
        scale = 0.2
        samples = scale * rng.binomial(num_vars, 0.4, size=trials).astype(float)
        mu = scale * 0.4 * num_vars
    return {
        "summands": kind,
        "n_vars": num_vars,
        "delta": delta,
        "trials": trials,
        "empirical_lower_tail": empirical_tail_frequency(samples, mu, delta, "lower"),
        "bound_lower_tail": chernoff_lower_tail(mu, delta),
        "empirical_upper_tail": empirical_tail_frequency(samples, mu, delta, "upper"),
        "bound_upper_tail": chernoff_upper_tail(mu, delta),
    }


def t7_tasks(master_seed: int, smoke: bool) -> list[dict]:
    trials = 4_000 if smoke else 20_000
    tasks = []
    for index, kind in enumerate(("bernoulli(0.3)", "uniform[0,1]", "scaled-bernoulli")):
        for jndex, delta in enumerate((0.25, 0.5)):
            tasks.append(
                {
                    "kind": kind,
                    "n_vars": 60,
                    "delta": delta,
                    "trials": trials,
                    "seed": master_seed * 1000 + 10 * index + jndex,
                }
            )
    return tasks


def t7_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        slack = max(0.01, 3.0 / math.sqrt(row["trials"]))
        for side in ("lower", "upper"):
            if row[f"empirical_{side}_tail"] > row[f"bound_{side}_tail"] + slack:
                failures.append(
                    f"{row['summands']} delta={row['delta']}: empirical {side} tail "
                    f"{row[f'empirical_{side}_tail']:.4f} exceeds the Chernoff bound "
                    f"{row[f'bound_{side}_tail']:.4f}"
                )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="t7",
        suites=("paper",),
        title="Appendix A reproduction: empirical tails vs Hoeffding-Chernoff bounds",
        task_fn=t7_task,
        make_tasks=t7_tasks,
        policies={
            "empirical_lower_tail": MetricPolicy("lower", abs_tol=0.02),
            "empirical_upper_tail": MetricPolicy("lower", abs_tol=0.02),
            "bound_lower_tail": MetricPolicy("equal", rel_tol=1e-9, abs_tol=1e-12),
            "bound_upper_tail": MetricPolicy("equal", rel_tol=1e-9, abs_tol=1e-12),
        },
        validate=t7_validate,
        artifact="T7_chernoff",
        description="Empirical tail frequencies for the summand kinds the rounding produces.",
    )
)


# ---------------------------------------------------------------------------
# C1 -- comparative evaluation against the baseline strategies
# ---------------------------------------------------------------------------


def c1_task(task: dict) -> list[dict]:
    config = FlashCrowdConfig(
        deployment=AkamaiLikeConfig(
            num_regions=3, colos_per_region=3, num_isps=3, num_streams=2
        )
    )
    topology, _registry = generate_flash_crowd_scenario(config, rng=task["rng"])
    problem = topology.to_problem()
    result = get_designer("spaa03").design(
        DesignRequest(
            problem=problem,
            parameters=DesignParameters(
                seed=task["seed"],
                repair_shortfall=True,
                rounding=RoundingParameters(c=16.0),
            ),
        )
    )
    report = result.report
    # Registry-driven comparison: every designer registered with
    # in_comparisons=True appears automatically; each derives its randomness
    # from the request seed, so rows stay deterministic.
    designs = {"spaa03+repair": result.solution}
    for designer in comparison_designers():
        designs[designer.name] = designer.design(
            DesignRequest(
                problem=problem, parameters=DesignParameters(seed=task["seed"])
            )
        ).solution

    def simulated_loss(problem_, solution_):
        sim = simulate_solution(
            problem_,
            solution_,
            SimulationConfig(num_packets=task["packets"], seed=task["sim_seed"]),
        )
        return sim.mean_loss

    rows = compare_designs(
        problem,
        designs,
        lower_bound=report.lp_lower_bound,
        extra_metrics={"simulated_mean_loss": simulated_loss},
    )
    for row in rows:
        row["rounding_multiplier"] = report.rounded.multiplier
    return rows


def c1_tasks(master_seed: int, smoke: bool) -> list[dict]:
    packets = 2_000 if smoke else 8_000
    return [{"rng": 0, "seed": master_seed, "sim_seed": master_seed + 3, "packets": packets}]


def c1_metrics(rows: list[dict]) -> dict[str, float]:
    by_name = {row["design"]: row for row in rows}
    spaa = by_name["spaa03+repair"]
    return {
        "spaa_total_cost": spaa["total_cost"],
        "spaa_cost_ratio": spaa["cost_ratio"],
        "spaa_fraction_meeting_threshold": spaa["fraction_meeting_threshold"],
        "spaa_simulated_mean_loss": spaa["simulated_mean_loss"],
        "greedy_total_cost": by_name["greedy"]["total_cost"],
        "single_tree_fraction_meeting_threshold": by_name["single-tree"][
            "fraction_meeting_threshold"
        ],
        "random_total_cost": by_name["random"]["total_cost"],
    }


def c1_validate(record: BenchRecord) -> list[str]:
    failures = []
    by_name = {row["design"]: row for row in record.rows}
    spaa = by_name["spaa03+repair"]
    if spaa["fraction_meeting_threshold"] < 0.9:
        failures.append("LP-rounding design misses more than 10% of quality targets")
    if spaa["cost_ratio"] > 6.0:
        failures.append(f"LP-rounding cost ratio {spaa['cost_ratio']:.2f} above 6")
    if spaa["cost_ratio"] > 2.0 * spaa["rounding_multiplier"]:
        failures.append("LP-rounding cost ratio above its own 2 c log n bound")
    if spaa["total_cost"] > by_name["random"]["total_cost"] * 1.05:
        failures.append("LP-rounding design costs more than random assignment")
    single = by_name["single-tree"]
    if single["mean_paths_per_demand"] > 1.0 + 1e-9:
        failures.append("single-tree baseline uses more than one path per demand")
    if single["fraction_meeting_threshold"] > spaa["fraction_meeting_threshold"] - 0.3:
        failures.append("single-tree baseline unexpectedly meets most quality targets")
    if spaa["simulated_mean_loss"] > single["simulated_mean_loss"] + 1e-6:
        failures.append("LP-rounding design has higher simulated loss than single-tree")
    if by_name["greedy"]["fraction_meeting_threshold"] < 0.9:
        failures.append("greedy baseline unexpectedly misses quality targets")
    if by_name["greedy"]["total_cost"] > by_name["naive-quality-first"]["total_cost"]:
        failures.append("greedy baseline unexpectedly costlier than naive-quality-first")
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="c1",
        suites=("comparison",),
        title="C1: LP-rounding design vs baselines on the flash-crowd workload",
        task_fn=c1_task,
        make_tasks=c1_tasks,
        policies={
            "spaa_total_cost": MetricPolicy("lower", rel_tol=0.1),
            "spaa_cost_ratio": MetricPolicy("lower", rel_tol=0.1),
            "spaa_fraction_meeting_threshold": MetricPolicy("higher", abs_tol=0.05),
            "spaa_simulated_mean_loss": MetricPolicy("lower", abs_tol=0.02),
            "greedy_total_cost": MetricPolicy("equal", rel_tol=0.05),
            "random_total_cost": MetricPolicy("equal", rel_tol=0.05),
        },
        derive_metrics=c1_metrics,
        validate=c1_validate,
        artifact="C1_baselines",
        columns=[
            "design",
            "total_cost",
            "cost_ratio",
            "mean_success",
            "fraction_meeting_threshold",
            "mean_paths_per_demand",
            "max_fanout_factor",
            "simulated_mean_loss",
        ],
        description="Cost/reliability comparison against greedy, naive, single-tree, random.",
    )
)


# ---------------------------------------------------------------------------
# C2 -- ablations of the design choices called out in DESIGN.md
# ---------------------------------------------------------------------------


def c2_task(task: dict) -> dict:
    problem = random_problem(
        RandomInstanceConfig(num_streams=2, num_reflectors=10, num_sinks=24),
        rng=task["rng"],
    )
    ratios, min_weights, unserved, fanouts = [], [], [], []
    for seed in task["seeds"]:
        params = DesignParameters(
            rounding=RoundingParameters(c=task["c"], seed=seed),
            extensions=ExtensionOptions(drop_cutting_plane=task["drop_cutting_plane"]),
            keep_degenerate_box=task["keep_degenerate_box"],
            retry_rounding=False,
        )
        # Routed through the strategy registry (identical to design_overlay).
        result = get_designer("spaa03").design(
            DesignRequest(problem=problem, parameters=params)
        )
        report = result.report
        solution = result.solution
        ratios.append(report.cost_ratio)
        min_weights.append(min(solution.weight_satisfaction(d) for d in problem.demands))
        unserved.append(len(solution.unserved_demands()))
        fanouts.append(solution.max_fanout_factor())
    return {
        "variant": task["variant"],
        "mean_cost_ratio": float(np.mean(ratios)),
        "min_weight_fraction": float(np.min(min_weights)),
        "mean_unserved_demands": float(np.mean(unserved)),
        "max_fanout_factor": float(np.max(fanouts)),
    }


def c2_tasks(master_seed: int, smoke: bool) -> list[dict]:
    seeds = [master_seed + k for k in range(2 if smoke else 3)]
    base = {"c": 8.0, "drop_cutting_plane": False, "keep_degenerate_box": True}
    variants = [
        ("baseline (c=8)", {}),
        ("c=2 (cheap, weak guarantee)", {"c": 2.0}),
        ("c=64 (paper constants)", {"c": 64.0}),
        ("no cutting plane (4)", {"drop_cutting_plane": True}),
        ("literal paper box rule", {"keep_degenerate_box": False}),
    ]
    return [
        {"variant": label, "rng": 5, "seeds": seeds, **{**base, **overrides}}
        for label, overrides in variants
    ]


def c2_validate(record: BenchRecord) -> list[str]:
    failures = []
    by_label = {row["variant"]: row for row in record.rows}
    if (
        by_label["c=64 (paper constants)"]["mean_cost_ratio"]
        < by_label["c=2 (cheap, weak guarantee)"]["mean_cost_ratio"] - 1e-9
    ):
        failures.append("larger multiplier c unexpectedly cheaper than small c")
    if (
        by_label["c=64 (paper constants)"]["min_weight_fraction"]
        < by_label["c=2 (cheap, weak guarantee)"]["min_weight_fraction"] - 1e-9
    ):
        failures.append("larger multiplier c unexpectedly delivers less weight")
    if (
        by_label["baseline (c=8)"]["mean_unserved_demands"]
        > by_label["literal paper box rule"]["mean_unserved_demands"] + 1e-9
    ):
        failures.append("degenerate-box handling leaves more demands unserved")
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="c2",
        suites=("comparison",),
        title="C2: ablations of multiplier, cutting plane and box rule",
        task_fn=c2_task,
        make_tasks=c2_tasks,
        policies={
            "mean_cost_ratio": MetricPolicy("lower", rel_tol=0.15),
            "min_weight_fraction": MetricPolicy("higher", abs_tol=0.1),
            "mean_unserved_demands": MetricPolicy("lower", abs_tol=0.5),
        },
        validate=c2_validate,
        artifact="C2_ablation",
        description="Rounding multiplier, cutting-plane and degenerate-box ablations.",
    )
)


# ---------------------------------------------------------------------------
# R1 -- vectorized Monte-Carlo engine vs the legacy per-demand loop
# ---------------------------------------------------------------------------

R1_CONFIGS = {
    "akamai-default": dict(),
    "akamai-large": dict(num_regions=4, colos_per_region=6, num_streams=4),
}


def r1_task(task: dict) -> dict:
    config = AkamaiLikeConfig(**R1_CONFIGS[task["instance"]])
    topology, _registry = generate_akamai_like_topology(config, rng=task["rng"])
    problem = topology.to_problem()
    solution = get_designer("greedy").design(DesignRequest(problem=problem)).solution
    packets, window = task["packets"], task["window"]

    # Both engines are timed as `timing_reps` interleaved (legacy block,
    # vectorized run) pairs, so a sustained slowdown of the machine (shared
    # CI boxes, frequency scaling) hits both sides of a pair; the row
    # reports both the peak and the median paired ratio, and validation
    # gates on both (peak for the throughput claim, a median floor so one
    # clean pair cannot carry a genuinely regressed engine).  The per-trial
    # columns report each engine's best block.
    reps = task["timing_reps"]
    rng = np.random.default_rng(task["sim_seed"])
    legacy_config = SimulationConfig(num_packets=packets, window=window)
    mc_config = MonteCarloConfig(num_packets=packets, trials=task["trials"], window=window)
    # One warm-up run per engine keeps allocator effects out of the timing.
    simulate_solution(problem, solution, legacy_config, rng=np.random.default_rng(0))
    run_monte_carlo(problem, solution, mc_config, rng=np.random.default_rng(0))
    legacy_means = []
    legacy_block_times = []
    vectorized_times = []
    report = None
    for rep in range(reps):
        start = time.perf_counter()
        for _ in range(task["legacy_trials"]):
            legacy_means.append(
                simulate_solution(problem, solution, legacy_config, rng=rng).mean_loss
            )
        legacy_block_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        rep_report = run_monte_carlo(
            problem,
            solution,
            mc_config,
            rng=np.random.default_rng(task["sim_seed"] + 1 + rep),
        )
        vectorized_times.append(time.perf_counter() - start)
        if report is None:
            report = rep_report
    paired_ratios = [
        (block / task["legacy_trials"]) / (vec / task["trials"])
        for block, vec in zip(legacy_block_times, vectorized_times)
    ]

    # Compat mode: bit-identical replay of the legacy draw order.
    compat = run_monte_carlo(
        problem,
        solution,
        MonteCarloConfig(num_packets=packets, trials=1, window=window, rng_mode="compat"),
        rng=np.random.default_rng(task["compat_seed"]),
    ).to_simulation_report(0)
    reference = simulate_solution(
        problem,
        solution,
        SimulationConfig(num_packets=packets, window=window),
        rng=np.random.default_rng(task["compat_seed"]),
    )
    compat_exact = all(
        a.demand_key == b.demand_key
        and a.loss_rate == b.loss_rate
        and a.worst_window_loss == b.worst_window_loss
        and a.duplicates_discarded == b.duplicates_discarded
        for a, b in zip(reference.demands, compat.demands)
    )

    legacy_mean = float(np.mean(legacy_means))
    legacy_se = float(np.std(legacy_means, ddof=1) / np.sqrt(len(legacy_means)))
    vec_se = float(
        np.std(report.trial_mean_loss, ddof=1) / np.sqrt(report.trials)
    )
    legacy_per_trial = min(legacy_block_times) / task["legacy_trials"]
    vectorized_per_trial = min(vectorized_times) / task["trials"]
    return {
        "instance": task["instance"],
        "demands": problem.num_demands,
        "packets": packets,
        "vectorized_trials": task["trials"],
        "legacy_trials": task["legacy_trials"] * reps,
        "legacy_mean_loss": legacy_mean,
        "vectorized_mean_loss": report.mean_loss,
        "mean_loss_z_score": (report.mean_loss - legacy_mean)
        / max(np.hypot(legacy_se, vec_se), 1e-12),
        "compat_exact": bool(compat_exact),
        "legacy_per_trial_seconds": legacy_per_trial,
        "vectorized_per_trial_seconds": vectorized_per_trial,
        # Peak paired ratio = the cleanest (least externally-disturbed)
        # measurement pair; the median shows the typical ratio under whatever
        # contention the machine had.  Shared hosts skew the ratio *down*
        # (the batched engine is memory-bandwidth-bound, the legacy loop is
        # dispatch-bound), so the peak is the right throughput claim.
        "speedup_vs_legacy": float(np.max(paired_ratios)),
        "median_speedup_vs_legacy": float(np.median(paired_ratios)),
    }


def r1_tasks(master_seed: int, smoke: bool) -> list[dict]:
    instances = ["akamai-default"] if smoke else ["akamai-default", "akamai-large"]
    return [
        {
            "instance": instance,
            "rng": index,
            "packets": 1000 if smoke else 2000,
            "window": 200,
            "trials": 100 if smoke else 400,
            "legacy_trials": 4 if smoke else 15,
            "timing_reps": 3 if smoke else 6,
            "sim_seed": master_seed * 1000 + index,
            "compat_seed": master_seed * 1000 + 500 + index,
        }
        for index, instance in enumerate(instances)
    ]


def r1_validate(record: BenchRecord) -> list[str]:
    failures = []
    # Timing thresholds are generous in smoke mode: CI boxes are noisy and
    # run scenarios in parallel.  Full runs enforce the real target on the
    # peak paired ratio plus a median floor -- the peak carries the
    # throughput claim (contention skews ratios down, the vectorized engine
    # being memory-bandwidth-bound), while the median floor ensures a
    # genuine engine regression cannot hide behind one noisy pair.
    required_peak = 2.0 if record.smoke else 20.0
    required_median = 1.5 if record.smoke else 10.0
    for row in record.rows:
        if not row["compat_exact"]:
            failures.append(
                f"{row['instance']}: compat RNG mode is not bit-identical to the legacy engine"
            )
        if abs(row["mean_loss_z_score"]) > 4.0:
            failures.append(
                f"{row['instance']}: engine means differ by z = {row['mean_loss_z_score']:.2f}"
            )
        if row["speedup_vs_legacy"] < required_peak:
            failures.append(
                f"{row['instance']}: vectorized engine only "
                f"{row['speedup_vs_legacy']:.1f}x faster than the legacy loop "
                f"(peak >= {required_peak:g}x required)"
            )
        if row["median_speedup_vs_legacy"] < required_median:
            failures.append(
                f"{row['instance']}: median paired speedup "
                f"{row['median_speedup_vs_legacy']:.1f}x below the "
                f"{required_median:g}x floor (engine regression?)"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="r1",
        title="R1: vectorized Monte-Carlo engine vs the legacy per-demand loop",
        task_fn=r1_task,
        make_tasks=r1_tasks,
        policies={
            # Both engines run fixed seeds, so their measured means are
            # deterministic; the z-score column guards statistical agreement.
            "legacy_mean_loss": MetricPolicy("equal", rel_tol=1e-6, abs_tol=1e-9),
            "vectorized_mean_loss": MetricPolicy("equal", rel_tol=1e-6, abs_tol=1e-9),
            "compat_exact": MetricPolicy("higher", rel_tol=0.0),
        },
        validate=r1_validate,
        artifact="R1_reliability_engine",
        suites=("reliability",),
        description="Throughput and statistical equivalence of the batched engine "
        "(compat mode must be bit-identical; full runs require >= 20x).",
    )
)


# ---------------------------------------------------------------------------
# R2 -- designs under the adversarial failure-scenario catalogue
# ---------------------------------------------------------------------------


def r2_task(task: dict) -> list[dict]:
    topology, _registry = generate_akamai_like_topology(
        AkamaiLikeConfig(
            num_regions=2, colos_per_region=3, num_isps=3, num_streams=2
        ),
        rng=task["rng"],
    )
    problem = topology.to_problem()
    spaa = get_designer("spaa03").design(
        DesignRequest(
            problem=problem,
            parameters=DesignParameters(
                seed=task["seed"],
                repair_shortfall=True,
                rounding=RoundingParameters(c=16.0),
            ),
        )
    )
    designs = {"spaa03+repair": spaa.solution}
    for name in ("greedy", "single-tree"):
        designs[name] = (
            get_designer(name)
            .design(
                DesignRequest(
                    problem=problem, parameters=DesignParameters(seed=task["seed"])
                )
            )
            .solution
        )
    rows = []
    for design_name, solution in designs.items():
        swept = evaluate_design(
            problem,
            solution,
            trials=task["trials"],
            num_packets=task["packets"],
            window=task["window"],
            seed=task["eval_seed"],
        )
        for scenario_name, metrics in swept.items():
            rows.append(
                {
                    "design": design_name,
                    "scenario": scenario_name,
                    "mean_loss": metrics["mean_loss"],
                    "mean_loss_ci95": metrics["mean_loss_ci95"],
                    "worst_demand_mean_loss": metrics["worst_demand_mean_loss"],
                    "mean_worst_window_loss": metrics["mean_worst_window_loss"],
                    "fraction_meeting_threshold": metrics["fraction_meeting_threshold"],
                    "failure_events": metrics["failure_events"],
                }
            )
    return rows


def r2_tasks(master_seed: int, smoke: bool) -> list[dict]:
    return [
        {
            "rng": 0,
            "seed": master_seed,
            "eval_seed": master_seed + 11,
            "trials": 20 if smoke else 60,
            "packets": 1000 if smoke else 2000,
            "window": 200,
        }
    ]


def r2_metrics(rows: list[dict]) -> dict[str, float]:
    by_key = {(row["design"], row["scenario"]): row for row in rows}
    out = {}
    for scenario in failure_scenario_names():
        key = scenario.replace("-", "_")
        out[f"spaa_{key}_mean_loss"] = by_key[("spaa03+repair", scenario)]["mean_loss"]
        out[f"spaa_{key}_meets"] = by_key[("spaa03+repair", scenario)][
            "fraction_meeting_threshold"
        ]
    out["single_tree_worst_scenario_mean_loss"] = max(
        row["mean_loss"] for row in rows if row["design"] == "single-tree"
    )
    return out


def r2_validate(record: BenchRecord) -> list[str]:
    failures = []
    by_key = {(row["design"], row["scenario"]): row for row in record.rows}
    designs = sorted({row["design"] for row in record.rows})
    scenarios = sorted({row["scenario"] for row in record.rows})
    missing = [
        f"{design}/{scenario}"
        for design in designs
        for scenario in failure_scenario_names()
        if (design, scenario) not in by_key
    ]
    if missing:
        failures.append(f"catalogue rows missing: {', '.join(missing)}")
        return failures
    for design in designs:
        baseline = by_key[(design, "baseline")]["mean_loss"]
        for scenario in scenarios:
            row = by_key[(design, scenario)]
            # Stress scenarios only add loss; bursty-links keeps the same
            # average, so allow sampling slack.
            if row["mean_loss"] < baseline - 0.005:
                failures.append(
                    f"{design}/{scenario}: stressed loss {row['mean_loss']:.4f} "
                    f"below the baseline {baseline:.4f}"
                )
        worst = max(by_key[(design, s)]["mean_loss"] for s in scenarios)
        if worst < baseline + 0.002:
            failures.append(
                f"{design}: no catalogue scenario stresses the design "
                f"(worst {worst:.4f} vs baseline {baseline:.4f})"
            )
    spaa_baseline = by_key[("spaa03+repair", "baseline")]
    if spaa_baseline["mean_loss"] > 0.02:
        failures.append(
            f"spaa03+repair baseline mean loss {spaa_baseline['mean_loss']:.4f} "
            "implausibly high (> 0.02)"
        )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="r2",
        title="R2: designs under the adversarial failure-scenario catalogue",
        task_fn=r2_task,
        make_tasks=r2_tasks,
        policies={
            "spaa_baseline_mean_loss": MetricPolicy("lower", abs_tol=0.01),
            "spaa_isp_outage_mean_loss": MetricPolicy("lower", abs_tol=0.05),
            "spaa_regional_failure_mean_loss": MetricPolicy("lower", abs_tol=0.05),
            "spaa_flash_crowd_mean_loss": MetricPolicy("lower", abs_tol=0.05),
            "spaa_bursty_links_mean_loss": MetricPolicy("lower", abs_tol=0.01),
            "spaa_baseline_meets": MetricPolicy("higher", abs_tol=0.05),
            "spaa_isp_outage_meets": MetricPolicy("higher", abs_tol=0.1),
            "spaa_regional_failure_meets": MetricPolicy("higher", abs_tol=0.1),
            "spaa_flash_crowd_meets": MetricPolicy("higher", abs_tol=0.1),
            "spaa_bursty_links_meets": MetricPolicy("higher", abs_tol=0.05),
            "single_tree_worst_scenario_mean_loss": MetricPolicy("equal", rel_tol=0.25),
        },
        derive_metrics=r2_metrics,
        validate=r2_validate,
        artifact="R2_failure_catalogue",
        columns=[
            "design",
            "scenario",
            "mean_loss",
            "mean_loss_ci95",
            "worst_demand_mean_loss",
            "mean_worst_window_loss",
            "fraction_meeting_threshold",
            "failure_events",
        ],
        suites=("reliability",),
        description="Reliability of the paper design vs baselines across the "
        "correlated-failure catalogue (Monte-Carlo engine).",
    )
)


# ---------------------------------------------------------------------------
# F1 -- Figure 1: the three-level overlay network substrate
# ---------------------------------------------------------------------------

F1_SIZES = {
    "small": {"num_regions": 2, "colos_per_region": 2, "num_isps": 2, "num_streams": 2},
    "medium": {"num_regions": 3, "colos_per_region": 4, "num_isps": 3, "num_streams": 3},
    "large": {"num_regions": 4, "colos_per_region": 6, "num_isps": 4, "num_streams": 4},
}


def f1_task(task: dict) -> dict:
    config = AkamaiLikeConfig(**task["config"])
    start = time.perf_counter()
    topology, registry = generate_akamai_like_topology(config, rng=task["rng"])
    problem = topology.to_problem()
    elapsed = time.perf_counter() - start
    # Figure-1 invariants: strictly three levels, links only forward.
    for link in topology.links():
        tail_role = topology.node(link.tail).role
        head_role = topology.node(link.head).role
        if (tail_role, head_role) not in {
            (NodeRole.SOURCE, NodeRole.REFLECTOR),
            (NodeRole.REFLECTOR, NodeRole.SINK),
        }:
            raise AssertionError(f"non-forward link {link.tail}->{link.head}")
    feasible = problem.feasibility_report() == []
    min_candidates = min(
        len(problem.candidate_reflectors(demand)) for demand in problem.demands
    )
    summary = topology.size_summary()
    return {
        "deployment": task["deployment"],
        "sources": summary["sources"],
        "reflectors": summary["reflectors"],
        "sinks": summary["sinks"],
        "links": summary["links"],
        "demands": summary["demands"],
        "isps": len(registry),
        "feasible": feasible,
        "min_candidate_reflectors": min_candidates,
        "build_seconds": elapsed,
    }


def f1_tasks(master_seed: int, smoke: bool) -> list[dict]:
    names = ["small", "medium"] if smoke else ["small", "medium", "large"]
    return [{"deployment": name, "config": F1_SIZES[name], "rng": 0} for name in names]


def f1_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        if not row["feasible"]:
            failures.append(f"{row['deployment']}: infeasible demands in generated topology")
        if row["min_candidate_reflectors"] < 2:
            failures.append(
                f"{row['deployment']}: a demand has fewer than 2 candidate reflectors"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="f1",
        suites=("figures",),
        title="Figure 1 reproduction: 3-level overlay instances",
        task_fn=f1_task,
        make_tasks=f1_tasks,
        policies={
            "sources": MetricPolicy("equal", rel_tol=0.0),
            "reflectors": MetricPolicy("equal", rel_tol=0.0),
            "sinks": MetricPolicy("equal", rel_tol=0.0),
            "links": MetricPolicy("equal", rel_tol=0.0),
            "demands": MetricPolicy("equal", rel_tol=0.0),
        },
        validate=f1_validate,
        artifact="F1_network_model",
        description="Workload-generator structural invariants and build throughput.",
    )
)


# ---------------------------------------------------------------------------
# F2 -- Figure 2: the modified-GAP conversion network
# ---------------------------------------------------------------------------

F2_SIZES = {
    "small": {"num_streams": 2, "num_reflectors": 6, "num_sinks": 10},
    "medium": {"num_streams": 3, "num_reflectors": 10, "num_sinks": 25},
    "large": {"num_streams": 4, "num_reflectors": 16, "num_sinks": 50},
}


def f2_task(task: dict) -> dict:
    problem = random_problem(RandomInstanceConfig(**task["config"]), rng=task["seed"])
    formulation = build_formulation(problem)
    fractional = formulation.fractional_solution(formulation.solve()).support()
    rounded = round_solution(
        problem, fractional, RoundingParameters(c=64.0, seed=task["seed"])
    )
    start = time.perf_counter()
    gap = build_gap_network(problem, rounded)
    built = time.perf_counter() - start
    start = time.perf_counter()
    result = solve_gap(problem, gap)
    solved = time.perf_counter() - start
    assert_feasible_flow(gap.network, gap.source, gap.sink)
    # Box invariants: intervals ordered by decreasing weight per demand.
    per_demand: dict = {}
    for box in gap.boxes:
        per_demand.setdefault(box.demand_key, []).append(box)
    for boxes in per_demand.values():
        boxes.sort(key=lambda b: b.index)
        for earlier, later in zip(boxes, boxes[1:]):
            if earlier.lower < later.lower - 1e-9:
                raise AssertionError("GAP boxes not ordered by decreasing weight")
    return {
        "instance": task["instance"],
        "demands": problem.num_demands,
        "pair_nodes": len(gap.pair_edge),
        "boxes": gap.total_demand,
        "boxes_served": result.boxes_served,
        "boxes_total": result.boxes_total,
        "flow_nodes": gap.network.num_nodes,
        "flow_edges": gap.network.num_edges,
        "build_seconds": built,
        "flow_seconds": solved,
    }


def f2_tasks(master_seed: int, smoke: bool) -> list[dict]:
    names = ["small", "medium"] if smoke else ["small", "medium", "large"]
    return [
        {"instance": name, "config": F2_SIZES[name], "seed": master_seed} for name in names
    ]


def f2_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        if row["boxes_served"] > row["boxes_total"]:
            failures.append(f"{row['instance']}: served more boxes than exist")
        if row["boxes_served"] < 0.9 * row["boxes_total"]:
            failures.append(
                f"{row['instance']}: GAP serves only "
                f"{row['boxes_served']}/{row['boxes_total']} boxes"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="f2",
        suites=("figures",),
        title="Figure 2 reproduction: GAP conversion network",
        task_fn=f2_task,
        make_tasks=f2_tasks,
        policies={
            "pair_nodes": MetricPolicy("equal", rel_tol=0.0),
            "boxes": MetricPolicy("equal", rel_tol=0.0),
            "boxes_served": MetricPolicy("higher", abs_tol=1.0),
            "flow_nodes": MetricPolicy("equal", rel_tol=0.0),
            "flow_edges": MetricPolicy("equal", rel_tol=0.0),
        },
        validate=f2_validate,
        artifact="F2_gap_network",
        description="Structure and throughput of the Figure-2 flow conversion network.",
    )
)


# ---------------------------------------------------------------------------
# F3 -- Figure 3: the integrality gap under entangled-set constraints
# ---------------------------------------------------------------------------

F3_EDGES = {
    ("s", "a"): 2.0,
    ("s", "p"): 2.0,
    ("a", "b"): 2.0,
    ("a", "q"): 1.0,
    ("p", "q"): 2.0,
    ("b", "t"): 2.0,
    ("q", "t"): 2.0,
}
F3_ENTANGLED = (("a", "b"), ("p", "q"))
F3_ENTANGLED_CAPACITY = 3.0
F3_PATHS = (
    (("s", "a"), ("a", "b"), ("b", "t")),
    (("s", "a"), ("a", "q"), ("q", "t")),
    (("s", "p"), ("p", "q"), ("q", "t")),
)


def _f3_feasible(path_flows: list[float]) -> bool:
    for edge, capacity in F3_EDGES.items():
        used = sum(flow for flow, path in zip(path_flows, F3_PATHS) if edge in path)
        if used > capacity + 1e-9:
            return False
    entangled_used = sum(
        flow
        for flow, path in zip(path_flows, F3_PATHS)
        if any(edge in path for edge in F3_ENTANGLED)
    )
    return entangled_used <= F3_ENTANGLED_CAPACITY + 1e-9


def _f3_max_flow(integral: bool) -> float:
    if integral:
        from itertools import product

        best = 0.0
        for assignment in product(range(4), repeat=len(F3_PATHS)):
            flows = [float(v) for v in assignment]
            if _f3_feasible(flows):
                best = max(best, sum(flows))
        return best
    model = LinearProgram(objective_sense=Objective.MAXIMIZE)
    path_vars = [model.add_variable(f"p{i}") for i in range(len(F3_PATHS))]
    for edge, capacity in F3_EDGES.items():
        expr = LinearExpr.sum(
            path_vars[i] for i, path in enumerate(F3_PATHS) if edge in path
        )
        if expr.coeffs:
            model.add_constraint(expr <= capacity)
    entangled_expr = LinearExpr.sum(
        path_vars[i]
        for i, path in enumerate(F3_PATHS)
        if any(edge in path for edge in F3_ENTANGLED)
    )
    model.add_constraint(entangled_expr <= F3_ENTANGLED_CAPACITY)
    model.set_objective(LinearExpr.sum(path_vars))
    solution = solve_lp(model)
    if not solution.is_optimal:
        raise AssertionError("Figure-3 LP did not reach optimality")
    return solution.objective


def _f3_toy_rows() -> list[dict]:
    fractional = _f3_max_flow(integral=False)
    integral = _f3_max_flow(integral=True)
    return [
        {"quantity": "fractional max flow", "paper": 3.5, "measured": fractional},
        {"quantity": "integral max flow", "paper": 3.0, "measured": integral},
        {
            "quantity": "entangled-set capacity",
            "paper": 3.0,
            "measured": F3_ENTANGLED_CAPACITY,
        },
    ]


def _f3_scale_row(task: dict) -> dict:
    """Measured LP-vs-OPT integrality gap on an internet-scale instance.

    The paper compares its heuristic against the LP relaxation because the
    integer optimum is intractable; with the ``milp-exact`` designer the
    *true* optimum is computable at hundreds of sinks, so this row reports
    the gap the paper could only bound: ``OPT / LP``.
    """
    from repro.workloads.internet_scale import (
        InternetScaleConfig,
        generate_internet_scale_problem,
    )

    problem, _registry = generate_internet_scale_problem(
        InternetScaleConfig(num_sinks=task["sinks"]), rng=task["rng"]
    )
    start = time.perf_counter()
    lp = get_designer("lp-bound").design(DesignRequest(problem=problem))
    lp_seconds = time.perf_counter() - start
    start = time.perf_counter()
    milp = get_designer("milp-exact").design(DesignRequest(problem=problem))
    milp_seconds = time.perf_counter() - start
    lp_bound = lp.lower_bound
    milp_cost = milp.metadata["optimal_cost"]
    return {
        "quantity": f"integrality gap @ {task['sinks']} sinks",
        "sinks": task["sinks"],
        "reflectors": problem.num_reflectors,
        "lp_bound": lp_bound,
        "milp_cost": milp_cost,
        "integrality_gap": milp_cost / max(lp_bound, 1e-9),
        "milp_status": milp.metadata["milp_status"],
        "milp_nodes": milp.metadata["node_count"],
        "symmetry_rows": milp.metadata["symmetry_rows"],
        "lp_seconds": lp_seconds,
        "milp_seconds": milp_seconds,
    }


def f3_task(task: dict) -> list[dict]:
    if task.get("kind") == "scale":
        return [_f3_scale_row(task)]
    return _f3_toy_rows()


def f3_tasks(master_seed: int, smoke: bool) -> list[dict]:
    sizes = (120,) if smoke else (120, 300, 500)
    return [{"kind": "toy"}] + [
        {"kind": "scale", "sinks": sinks, "rng": 0} for sinks in sizes
    ]


def f3_metrics(rows: list[dict]) -> dict[str, float]:
    by_quantity = {row["quantity"]: row["measured"] for row in rows if "measured" in row}
    metrics = {
        "fractional_max_flow": by_quantity["fractional max flow"],
        "integral_max_flow": by_quantity["integral max flow"],
    }
    for row in rows:
        if "integrality_gap" in row:
            metrics[f"integrality_gap_{row['sinks']}"] = row["integrality_gap"]
            metrics[f"milp_cost_{row['sinks']}"] = row["milp_cost"]
            metrics[f"lp_bound_{row['sinks']}"] = row["lp_bound"]
    return metrics


def f3_validate(record: BenchRecord) -> list[str]:
    failures = []
    if abs(record.metrics["fractional_max_flow"] - 3.5) > 1e-6:
        failures.append(
            f"fractional max flow {record.metrics['fractional_max_flow']} != 3.5"
        )
    if abs(record.metrics["integral_max_flow"] - 3.0) > 1e-9:
        failures.append(f"integral max flow {record.metrics['integral_max_flow']} != 3.0")
    scale_rows = [row for row in record.rows if "integrality_gap" in row]
    if not any(row["sinks"] >= 100 for row in scale_rows):
        failures.append("no measured integrality gap at >= 100 sinks")
    for row in scale_rows:
        if row["milp_status"] != "optimal":
            failures.append(
                f"{row['sinks']} sinks: MILP stopped {row['milp_status']!r}, "
                "so the measured gap is not the true integrality gap"
            )
        if row["integrality_gap"] < 1.0 - 1e-9:
            failures.append(
                f"{row['sinks']} sinks: integer optimum {row['milp_cost']:.3f} "
                f"below the LP bound {row['lp_bound']:.3f}"
            )
    return failures


# ---------------------------------------------------------------------------
# T8 -- sharded vs monolithic design on internet-scale instances
# ---------------------------------------------------------------------------


def t8_task(task: dict) -> dict:
    from repro.workloads.internet_scale import (
        InternetScaleConfig,
        generate_internet_scale_problem,
    )

    problem, _registry = generate_internet_scale_problem(
        InternetScaleConfig(num_sinks=task["sinks"]), rng=task["rng"]
    )
    parameters = DesignParameters(seed=task["seed"], repair_shortfall=True)

    start = time.perf_counter()
    monolithic = get_designer("spaa03").design(
        DesignRequest(problem=problem, parameters=parameters)
    )
    monolithic_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded = get_designer("sharded:spaa03").design(
        DesignRequest(
            problem=problem,
            strategy="sharded:spaa03",
            parameters=parameters,
            options={"shards": task["shards"], "jobs": task["jobs"]},
        )
    )
    sharded_seconds = time.perf_counter() - start

    return {
        "sinks": problem.num_sinks,
        "demands": problem.num_demands,
        "reflectors": problem.num_reflectors,
        "num_shards": sharded.metadata["num_shards"],
        "jobs": task["jobs"],
        "monolithic_cost": monolithic.total_cost,
        "sharded_cost": sharded.total_cost,
        "sharded_vs_monolithic_cost_ratio": sharded.total_cost
        / max(monolithic.total_cost, 1e-9),
        "monolithic_unserved": monolithic.audit.unserved_demands,
        "sharded_unserved": sharded.audit.unserved_demands,
        "monolithic_min_weight_fraction": monolithic.audit.min_weight_fraction,
        "sharded_min_weight_fraction": sharded.audit.min_weight_fraction,
        "sharded_max_fanout_factor": sharded.audit.max_fanout_factor,
        "stitch_dropped": sharded.metadata["stitch_assignments_dropped"],
        "stitch_moved": sharded.metadata["stitch_assignments_moved"],
        "stitch_unresolved_overloads": sharded.metadata["stitch_unresolved_overloads"],
        "monolithic_seconds": monolithic_seconds,
        "sharded_seconds": sharded_seconds,
        # Wall-clock-derived; deliberately NOT a comparable metric (like the
        # R1 engine speedup, it is gated by validate, not by the baseline).
        "speedup_vs_monolithic": monolithic_seconds / max(sharded_seconds, 1e-9),
    }


def t8_tasks(master_seed: int, smoke: bool) -> list[dict]:
    # One task: the monolithic side of the full run takes ~an hour at 10k
    # sinks (the GAP stage is superlinear), which is exactly the point of the
    # comparison.  The smoke tier keeps CI minutes low while still exercising
    # partition -> fan-out -> stitch end to end.
    return [
        {
            "sinks": 600 if smoke else 10_000,
            "rng": 0,
            "seed": master_seed,
            "shards": "auto",
            "jobs": "auto",
        }
    ]


def t8_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        if row["sharded_vs_monolithic_cost_ratio"] > 1.15 + 1e-9:
            failures.append(
                f"{row['sinks']} sinks: sharded design costs "
                f"{row['sharded_vs_monolithic_cost_ratio']:.3f}x the monolithic "
                "design (<= 1.15 required)"
            )
        if row["sharded_unserved"] != 0:
            failures.append(
                f"{row['sinks']} sinks: {row['sharded_unserved']} demands "
                "unserved after stitching"
            )
        if row["sharded_min_weight_fraction"] < 0.25 - 1e-9:
            failures.append(
                f"{row['sinks']} sinks: sharded min weight fraction "
                f"{row['sharded_min_weight_fraction']:.3f} below the W/4 guarantee"
            )
        if row["sharded_max_fanout_factor"] > 4.0 + 1e-9:
            failures.append(
                f"{row['sinks']} sinks: sharded max fanout factor "
                f"{row['sharded_max_fanout_factor']:.3f} above the factor-4 bound"
            )
        # The wall-clock gate only applies to the full-size run: at smoke
        # sizes the monolithic pipeline is itself fast enough that process
        # startup noise dominates the ratio.
        if not record.smoke and row["speedup_vs_monolithic"] < 4.0:
            failures.append(
                f"{row['sinks']} sinks: sharded pipeline only "
                f"{row['speedup_vs_monolithic']:.1f}x faster than monolithic "
                "(>= 4x required at full size)"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="t8",
        suites=("scale", "perf"),
        title="T8: hierarchical sharded pipeline vs monolithic design "
        "(internet-scale workload)",
        task_fn=t8_task,
        make_tasks=t8_tasks,
        policies={
            "monolithic_cost": MetricPolicy("lower", rel_tol=0.05),
            "sharded_cost": MetricPolicy("lower", rel_tol=0.05),
            "sharded_vs_monolithic_cost_ratio": MetricPolicy("lower", abs_tol=0.05),
            "monolithic_unserved": MetricPolicy("equal", rel_tol=0.0),
            "sharded_unserved": MetricPolicy("equal", rel_tol=0.0),
            "sharded_min_weight_fraction": MetricPolicy("higher", abs_tol=0.05),
            "sharded_max_fanout_factor": MetricPolicy("lower", abs_tol=0.25),
        },
        validate=t8_validate,
        artifact="T8_sharded_scale",
        columns=[
            "sinks",
            "demands",
            "num_shards",
            "monolithic_cost",
            "sharded_cost",
            "sharded_vs_monolithic_cost_ratio",
            "sharded_unserved",
            "sharded_max_fanout_factor",
            "monolithic_seconds",
            "sharded_seconds",
            "speedup_vs_monolithic",
        ],
        description="Cost parity (<= 1.15x) and wall-clock speedup (>= 4x full "
        "size) of the partition -> per-shard design -> stitch pipeline.",
    )
)


register_scenario(
    ScenarioSpec(
        scenario_id="f3",
        suites=("figures",),
        title="Figure 3 reproduction: integral 3 vs fractional 3.5, plus the "
        "measured LP-vs-OPT gap at 100-500 sinks",
        task_fn=f3_task,
        make_tasks=f3_tasks,
        policies={
            "fractional_max_flow": MetricPolicy("equal", rel_tol=1e-6, abs_tol=1e-6),
            "integral_max_flow": MetricPolicy("equal", rel_tol=1e-9, abs_tol=1e-9),
            # The MILP optimum and LP bound are deterministic for a fixed
            # instance; the loose tolerance absorbs solver-version drift.
            "integrality_gap_120": MetricPolicy("lower", rel_tol=0.02),
            "milp_cost_120": MetricPolicy("lower", rel_tol=0.02),
            "lp_bound_120": MetricPolicy("equal", rel_tol=1e-3),
        },
        derive_metrics=f3_metrics,
        validate=f3_validate,
        artifact="F3_integrality_gap",
        columns=[
            "quantity",
            "paper",
            "measured",
            "lp_bound",
            "milp_cost",
            "integrality_gap",
            "milp_status",
            "milp_nodes",
            "symmetry_rows",
            "milp_seconds",
        ],
        description="The entangled-set integrality gap motivating the Section-6 "
        "rounding, and the true Section-2 integrality gap (milp-exact vs "
        "lp-bound) measured on internet-scale instances.",
    )
)


# ---------------------------------------------------------------------------
# I1 -- incremental update vs from-scratch re-design after sink churn
# ---------------------------------------------------------------------------


def i1_task(task: dict) -> dict:
    from repro.api import design_incremental
    from repro.incremental import SinkChurnConfig, churn_stream
    from repro.workloads.internet_scale import (
        InternetScaleConfig,
        generate_internet_scale_problem,
    )

    problem, _registry = generate_internet_scale_problem(
        InternetScaleConfig(num_sinks=task["sinks"]), rng=task["rng"]
    )
    parameters = DesignParameters(seed=task["seed"])
    designer = get_designer(f"sharded:{task['inner']}")

    # The standing design is shared setup, not part of the comparison; it may
    # fan out over workers (the merged design is jobs-independent).
    standing = designer.design(
        DesignRequest(
            problem=problem,
            strategy=designer.name,
            parameters=parameters,
            options={"shards": "auto", "jobs": task["setup_jobs"]},
        )
    )

    ((_event, delta, new_problem),) = list(
        churn_stream(
            problem,
            ["sink-churn"],
            seed=task["churn_seed"],
            churn_config=SinkChurnConfig(fraction=task["churn_fraction"]),
        )
    )

    # Both timed sides run jobs=1: the comparison is work done, not worker
    # count, which keeps the speedup machine-independent and deterministic.
    start = time.perf_counter()
    incremental = design_incremental(
        standing,
        new_problem,
        parameters=parameters,
        options={"shards": "auto", "jobs": 1},
        previous_problem=problem,
        delta=delta,
    )
    incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scratch = designer.design(
        DesignRequest(
            problem=new_problem,
            strategy=designer.name,
            parameters=parameters,
            options={"shards": "auto", "jobs": 1},
        )
    )
    scratch_seconds = time.perf_counter() - start

    return {
        "sinks": problem.num_sinks,
        "demands": problem.num_demands,
        "sinks_added": delta.summary()["sinks_added"],
        "sinks_removed": delta.summary()["sinks_removed"],
        "dirty_shards": incremental.metadata.get("incremental_dirty_shards", 0),
        "num_shards": incremental.metadata.get("num_shards", 0),
        "reused_assignments": incremental.metadata.get(
            "incremental_reused_assignments", 0
        ),
        "incremental_cost": incremental.total_cost,
        "scratch_cost": scratch.total_cost,
        "incremental_vs_scratch_cost_ratio": incremental.total_cost
        / max(scratch.total_cost, 1e-9),
        "incremental_unserved": incremental.audit.unserved_demands,
        "scratch_unserved": scratch.audit.unserved_demands,
        "incremental_min_weight_fraction": incremental.audit.min_weight_fraction,
        "incremental_max_fanout_factor": incremental.audit.max_fanout_factor,
        "incremental_seconds": incremental_seconds,
        "scratch_seconds": scratch_seconds,
        # Wall-clock-derived; deliberately NOT a comparable metric (like the
        # T8 speedup, it is gated by validate, not by the baseline).
        "speedup_vs_scratch": scratch_seconds / max(incremental_seconds, 1e-9),
    }


def i1_tasks(master_seed: int, smoke: bool) -> list[dict]:
    # One task: 5% sink churn against a standing internet-scale design.  The
    # smoke tier keeps CI minutes low while exercising the whole diff ->
    # impact -> residual re-solve -> stitch path end to end.
    return [
        {
            "sinks": 600 if smoke else 10_000,
            "rng": 0,
            "seed": master_seed,
            "inner": "spaa03",
            "setup_jobs": "auto",
            "churn_seed": master_seed + 1,
            "churn_fraction": 0.05,
        }
    ]


def i1_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        if row["incremental_vs_scratch_cost_ratio"] > 1.05 + 1e-9:
            failures.append(
                f"{row['sinks']} sinks: incremental design costs "
                f"{row['incremental_vs_scratch_cost_ratio']:.3f}x the "
                "from-scratch design (<= 1.05 required)"
            )
        if row["incremental_unserved"] != 0:
            failures.append(
                f"{row['sinks']} sinks: {row['incremental_unserved']} demands "
                "unserved after the incremental update"
            )
        if row["incremental_max_fanout_factor"] > 4.0 + 1e-9:
            failures.append(
                f"{row['sinks']} sinks: incremental max fanout factor "
                f"{row['incremental_max_fanout_factor']:.3f} above the "
                "factor-4 bound"
            )
        # The wall-clock gate only applies to the full-size run: at smoke
        # sizes fixed overhead (diff, partition, audit) dominates both sides.
        if not record.smoke and row["speedup_vs_scratch"] < 10.0:
            failures.append(
                f"{row['sinks']} sinks: incremental update only "
                f"{row['speedup_vs_scratch']:.1f}x faster than from-scratch "
                "(>= 10x required at full size)"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="i1",
        suites=("scale", "perf"),
        title="I1: incremental update vs from-scratch re-design "
        "(5% sink churn, internet-scale workload)",
        task_fn=i1_task,
        make_tasks=i1_tasks,
        policies={
            "incremental_cost": MetricPolicy("lower", rel_tol=0.05),
            "scratch_cost": MetricPolicy("lower", rel_tol=0.05),
            "incremental_vs_scratch_cost_ratio": MetricPolicy("lower", abs_tol=0.05),
            "incremental_unserved": MetricPolicy("equal", rel_tol=0.0),
            "dirty_shards": MetricPolicy("equal", rel_tol=0.0),
            "incremental_min_weight_fraction": MetricPolicy("higher", abs_tol=0.05),
            "incremental_max_fanout_factor": MetricPolicy("lower", abs_tol=0.25),
        },
        validate=i1_validate,
        artifact="I1_incremental_churn",
        columns=[
            "sinks",
            "sinks_added",
            "sinks_removed",
            "dirty_shards",
            "num_shards",
            "incremental_cost",
            "scratch_cost",
            "incremental_vs_scratch_cost_ratio",
            "incremental_unserved",
            "incremental_seconds",
            "scratch_seconds",
            "speedup_vs_scratch",
        ],
        description="Cost parity (<= 1.05x) and wall-clock speedup (>= 10x full "
        "size) of the incremental engine against a from-scratch sharded run "
        "after 5% sink churn.",
    )
)


# ---------------------------------------------------------------------------
# S1 -- design-service latency: fresh vs repeat digests, session vs updates
# ---------------------------------------------------------------------------


def _s1_percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile (matches the service's /stats convention)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def _s1_comparable(document: dict) -> dict:
    """A result document minus per-request provenance (timings, cache, id)."""
    stripped = dict(document)
    for key in ("stage_seconds", "cache", "request_id"):
        stripped.pop(key, None)
    return stripped


def s1_task(task: dict) -> dict:
    import json

    from repro.api import design_incremental, result_to_dict
    from repro.core.serialization import (
        problem_from_dict,
        problem_to_dict,
        solution_digest,
        solution_from_dict,
        solution_to_dict,
    )
    from repro.incremental import diff_problems
    from repro.incremental.churn import (
        SinkChurnConfig,
        flash_crowd_delta,
        sample_sink_churn,
    )
    from repro.incremental.delta import apply_delta
    from repro.serve import ArtifactCache, DesignService, DesignSession
    from repro.workloads.internet_scale import (
        InternetScaleConfig,
        generate_internet_scale_problem,
    )

    parameters = DesignParameters(seed=task["seed"])
    sharded_options = {"shards": "auto", "jobs": 1}

    problems = []
    for index in range(task["fresh"]):
        problem, _registry = generate_internet_scale_problem(
            InternetScaleConfig(num_sinks=task["sinks"]), rng=task["rng"] + index
        )
        problems.append(problem)

    def make_request(problem):
        return DesignRequest(
            problem=problem,
            parameters=parameters,
            strategy="sharded:spaa03",
            options=dict(sharded_options),
        )

    cache = ArtifactCache()
    fresh_latencies: list[float] = []
    repeat_latencies: list[float] = []
    payload_mismatches = 0
    baselines: list[dict] = []

    with DesignService(cache=cache, workers=task["workers"]) as service:
        # Fresh leg: every problem is a new digest, so each request pays the
        # full pipeline.
        for problem in problems:
            start = time.perf_counter()
            result = service.run(make_request(problem))
            fresh_latencies.append(time.perf_counter() - start)
            baselines.append(_s1_comparable(result_to_dict(result)))

        # Repeat leg: the same digests again, served from the result cache.
        # Payloads must be bit-identical modulo per-request provenance.
        for _round in range(task["repeats"]):
            for index, problem in enumerate(problems):
                start = time.perf_counter()
                result = service.run(make_request(problem))
                repeat_latencies.append(time.perf_counter() - start)
                if _s1_comparable(result_to_dict(result)) != baselines[index]:
                    payload_mismatches += 1

        # Dedup burst: two in-flight submissions of one digest.  Clearing the
        # cache first makes the first submission recompute, so the second
        # really joins an in-flight future instead of hitting the result
        # cache.
        cache.clear()
        tickets = [service.submit(make_request(problems[0])) for _ in range(2)]
        for ticket in tickets:
            ticket.result()
        stats = service.stats()

    # Churn leg: a 5-event stream through one DesignSession (standing plan +
    # stage cache reuse, all in memory) against five independent
    # ``repro update``-equivalent calls, each paying the JSON round-trip,
    # problem diff and fresh partition a standalone CLI invocation pays.
    # Events are deliberately *small* relative to the instance (a few
    # congested metros, 1% sink churn) -- the live-churn regime the session
    # exists for, where the per-call serving overhead is what differs: the
    # re-design work itself is bit-identical on both sides by construction.
    base_problem = problems[0]
    stream = []
    current_state = base_problem
    for index, event in enumerate(task["events"]):
        rng = np.random.default_rng([task["churn_seed"], index])
        if event == "flash-crowd":
            delta = flash_crowd_delta(
                current_state, rng, hot_fraction=task["hot_fraction"]
            )
        elif event == "sink-churn":
            delta = sample_sink_churn(
                current_state, SinkChurnConfig(fraction=task["churn_fraction"]), rng
            )
        else:  # pragma: no cover - guarded by s1_tasks
            raise ValueError(f"unknown s1 churn event {event!r}")
        current_state = apply_delta(current_state, delta)
        stream.append((event, delta, current_state))

    session = DesignSession(
        base_problem,
        strategy="sharded:spaa03",
        parameters=parameters,
        options=dict(sharded_options),
        cache=cache,
        session_id="s1",
    )
    initial = session.ensure_design()

    session_start = time.perf_counter()
    for _event, delta, _new_problem in stream:
        session_result = session.apply_delta(delta)
    session_seconds = time.perf_counter() - session_start

    problem_doc = json.dumps(problem_to_dict(base_problem), sort_keys=True)
    solution_doc = json.dumps(solution_to_dict(initial.solution), sort_keys=True)
    independent_start = time.perf_counter()
    for _event, _delta, new_problem in stream:
        previous_problem = problem_from_dict(json.loads(problem_doc))
        previous_solution = solution_from_dict(
            json.loads(solution_doc), previous_problem
        )
        fresh_problem = problem_from_dict(json.loads(json.dumps(problem_to_dict(new_problem), sort_keys=True)))
        delta = diff_problems(previous_problem, fresh_problem)
        independent_result = design_incremental(
            previous_solution,
            fresh_problem,
            parameters=parameters,
            options=dict(sharded_options),
            previous_problem=previous_problem,
            delta=delta,
        )
        problem_doc = json.dumps(problem_to_dict(fresh_problem), sort_keys=True)
        solution_doc = json.dumps(
            solution_to_dict(independent_result.solution), sort_keys=True
        )
    independent_seconds = time.perf_counter() - independent_start

    session_summary = session.summary()
    return {
        "sinks": base_problem.num_sinks,
        "demands": base_problem.num_demands,
        "fresh_requests": len(fresh_latencies),
        "repeat_requests": len(repeat_latencies),
        "repeat_payload_identical": int(payload_mismatches == 0),
        "deduplicated": stats["deduplicated"],
        "cache_hits": stats["cache"]["hits"],
        "fresh_p50_seconds": _s1_percentile(fresh_latencies, 0.50),
        "fresh_p99_seconds": _s1_percentile(fresh_latencies, 0.99),
        "repeat_p50_seconds": _s1_percentile(repeat_latencies, 0.50),
        "repeat_p99_seconds": _s1_percentile(repeat_latencies, 0.99),
        "service_p50_seconds": stats["latency_p50_seconds"],
        "service_p99_seconds": stats["latency_p99_seconds"],
        # Wall-clock-derived; like the I1/T8 speedups these are gated by
        # validate (full size only), never compared against a baseline.
        "repeat_speedup": (
            _s1_percentile(fresh_latencies, 0.50)
            / max(_s1_percentile(repeat_latencies, 0.50), 1e-9)
        ),
        "churn_events": len(stream),
        "plan_reuse_events": session_summary["plan_reuses"],
        "session_seconds": session_seconds,
        "independent_seconds": independent_seconds,
        "session_speedup": independent_seconds / max(session_seconds, 1e-9),
        "session_matches_independent": int(
            solution_digest(session_result.solution)
            == solution_digest(independent_result.solution)
        ),
        "session_final_cost": session_result.total_cost,
        "session_unserved": (
            session_result.audit.unserved_demands
            if session_result.audit is not None
            else 0
        ),
    }


def s1_tasks(master_seed: int, smoke: bool) -> list[dict]:
    # One task: a mixed serving workload (3 fresh digests, each repeated 3x,
    # one dedup burst) plus a 5-event churn stream.  Internet-scale instances
    # (like I1) so the full-size wall-clock gates measure design work against
    # the O(n) canonicalization a cache hit still pays.  Churn events stay
    # small (3% hot sinks, 1% churn) -- flash crowds keep the sink set
    # stable and exercise the session's plan rebind; sink churn forces a
    # rebuild.
    return [
        {
            "sinks": 400 if smoke else 10_000,
            "rng": 100,
            "seed": master_seed,
            "fresh": 3,
            "repeats": 3,
            "workers": 2,
            "churn_seed": master_seed + 1,
            "hot_fraction": 0.03,
            "churn_fraction": 0.01,
            "events": (
                "flash-crowd",
                "sink-churn",
                "flash-crowd",
                "sink-churn",
                "flash-crowd",
            ),
        }
    ]


def s1_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        if not row["repeat_payload_identical"]:
            failures.append(
                "repeat-digest responses diverge from the fresh payload "
                "(must be bit-identical modulo timings/cache/request_id)"
            )
        if not row["session_matches_independent"]:
            failures.append(
                "session churn stream diverges from independent "
                "design_incremental calls (must be bit-identical)"
            )
        if row["session_unserved"] != 0:
            failures.append(
                f"{row['session_unserved']} demands unserved after the "
                "session churn stream"
            )
        if row["deduplicated"] < 1:
            failures.append(
                "in-flight dedup burst was not deduplicated "
                f"(deduplicated={row['deduplicated']})"
            )
        # Wall-clock gates only apply at full size: at smoke sizes fixed
        # overhead (serialization, audit) dominates both sides.
        if not record.smoke and row["repeat_speedup"] < 10.0:
            failures.append(
                f"repeat-digest requests only {row['repeat_speedup']:.1f}x "
                "faster than fresh ones (>= 10x required at full size)"
            )
        if not record.smoke and row["session_speedup"] <= 1.0:
            failures.append(
                f"session churn stream {row['session_speedup']:.2f}x vs "
                "independent updates (must beat 1.0x at full size)"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="s1",
        suites=("serve", "perf"),
        title="S1: design-service latency under a mixed fresh/repeat/churn "
        "workload",
        task_fn=s1_task,
        make_tasks=s1_tasks,
        policies={
            "sinks": MetricPolicy("equal", rel_tol=0.0),
            "demands": MetricPolicy("equal", rel_tol=0.0),
            "repeat_payload_identical": MetricPolicy("equal", rel_tol=0.0),
            "session_matches_independent": MetricPolicy("equal", rel_tol=0.0),
            "session_unserved": MetricPolicy("equal", rel_tol=0.0),
            "plan_reuse_events": MetricPolicy("higher", abs_tol=0.0),
            "session_final_cost": MetricPolicy("lower", rel_tol=0.05),
        },
        validate=s1_validate,
        artifact="S1_serving",
        columns=[
            "sinks",
            "demands",
            "fresh_requests",
            "repeat_requests",
            "fresh_p50_seconds",
            "repeat_p50_seconds",
            "repeat_speedup",
            "repeat_payload_identical",
            "deduplicated",
            "plan_reuse_events",
            "session_seconds",
            "independent_seconds",
            "session_speedup",
            "session_matches_independent",
        ],
        description="Serving-front latency percentiles for fresh vs "
        "repeat-digest requests (bit-identical payloads, >= 10x faster at "
        "full size), in-flight dedup, and a 5-event churn stream through one "
        "DesignSession against five independent update calls.",
    )
)


# ---------------------------------------------------------------------------
# R3 -- streaming million-demand reliability audit (memory-bounded folds)
# ---------------------------------------------------------------------------


def r3_task(task: dict) -> list[dict]:
    """Design one internet-scale instance, then audit it along a trial ladder.

    One row per ladder rung, each measuring the streaming fold alone: the
    path table is compiled (and the design produced) before ``tracemalloc``
    starts, so ``peak_rss_bytes`` is the audit's working set -- tile buffers,
    tile tasks, and the per-demand accumulators.  The rung results must be
    flat in the trial count: that is the memory contract of
    :func:`repro.simulation.run_streaming_monte_carlo`.
    """
    import tracemalloc

    problem, _registry = generate_internet_scale_problem(
        InternetScaleConfig(num_sinks=task["sinks"]), rng=task["rng"]
    )
    solution = (
        get_designer(task["designer"])
        .design(
            DesignRequest(
                problem=problem, parameters=DesignParameters(seed=task["seed"])
            )
        )
        .solution
    )
    node_isp = {r: problem.color(r) for r in problem.reflectors}
    table = compile_path_table(
        problem, solution, FailureSchedule(), task["packets"], node_isp
    )

    matches_batched = None
    if task["differential"]:
        # Bit-identical leg: a single-tile streaming run shares the batched
        # engine's draw order exactly (same per-tile stream, one tile).
        trials = task["trial_ladder"][0]
        single = run_streaming_monte_carlo(
            problem,
            solution,
            StreamingConfig(
                num_packets=task["packets"],
                trials=trials,
                window=task["window"],
                seed=task["eval_seed"],
                demand_tile=10**9,
                trial_tile=10**9,
            ),
            node_isp=node_isp,
            table=table,
        )
        batched = run_monte_carlo(
            problem,
            solution,
            MonteCarloConfig(
                num_packets=task["packets"],
                trials=trials,
                window=task["window"],
                max_batch_bytes=2**40,
            ),
            rng=np.random.default_rng(np.random.SeedSequence([task["eval_seed"], 0])),
        )
        # The batched report lists demands in problem order and aggregates
        # per-trial floats; align by key and compare the *exact* integer
        # sufficient statistics (loss counts and lcm-scaled worst windows are
        # recoverable bit-for-bit from the correctly-rounded trial floats).
        served = len(table.demand_keys)
        by_key = {d.demand_key: d for d in batched.demands}
        aligned = [by_key[key] for key in single.demand_keys[:served]]
        counts = np.rint(
            np.stack([d.loss for d in aligned]) * task["packets"]
        ).astype(np.int64)
        scale = single.accumulator.worst_scale
        worst = np.rint(
            np.stack([d.worst_window for d in aligned]) * scale
        ).astype(np.int64)
        duplicates = np.stack([d.duplicates for d in aligned])
        accumulator = single.accumulator
        matches_batched = bool(
            np.array_equal(accumulator.loss_sum[:served], counts.sum(axis=1))
            and np.array_equal(accumulator.loss_max[:served], counts.max(axis=1))
            and np.array_equal(accumulator.worst_sum[:served], worst.sum(axis=1))
            and np.array_equal(accumulator.worst_max[:served], worst.max(axis=1))
            and np.array_equal(
                accumulator.duplicates_sum[:served], duplicates.sum(axis=1)
            )
            and np.array_equal(
                single.meets_threshold_fraction[:served],
                np.asarray([d.meets_threshold_fraction for d in aligned]),
            )
        )

    rows = []
    for trials in task["trial_ladder"]:
        streaming_config = StreamingConfig(
            num_packets=task["packets"],
            trials=trials,
            window=task["window"],
            seed=task["eval_seed"],
            max_memory=task["max_memory"],
        )
        tracemalloc.start()
        start = time.perf_counter()
        report = run_streaming_monte_carlo(
            problem,
            solution,
            streaming_config,
            node_isp=node_isp,
            table=table,
            traces=tuple(task["traces"]),
        )
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        row = {
            "sinks": task["sinks"],
            "trials": trials,
            "packets": task["packets"],
            "demands": report.num_demands,
            "served_demands": len(table.demand_keys),
            "num_tiles": report.plan.num_tiles,
            "mean_loss": report.mean_loss,
            "max_loss": report.max_loss,
            "mean_worst_window_loss": report.mean_worst_window,
            "fraction_meeting_threshold": report.fraction_meeting_threshold,
            "peak_rss_bytes": int(peak),
            "rss_budget": task["rss_budget"],
            "matches_batched": matches_batched,
            "audit_seconds": elapsed,
        }
        for name in sorted(report.traces):
            summary = report.traces[name].summary()
            key = name.replace("-", "_")
            row[f"{key}_peak_window_loss"] = summary["peak_window_loss"]
            row[f"{key}_rebuffer_session_fraction"] = summary[
                "rebuffer_session_fraction"
            ]
        rows.append(row)
    return rows


def r3_tasks(master_seed: int, smoke: bool) -> list[dict]:
    if smoke:
        return [
            {
                "sinks": 50_000,
                "rng": master_seed * 100 + 7,
                "designer": "naive-quality-first",
                "seed": master_seed,
                "eval_seed": master_seed + 31,
                "packets": 500,
                "window": 100,
                "trial_ladder": [2, 4, 8],
                "max_memory": 64 * 2**20,
                "rss_budget": 256 * 2**20,
                "traces": ["diurnal", "metro-diurnal"],
                "differential": True,
            }
        ]
    return [
        {
            "sinks": 1_000_000,
            "rng": master_seed * 100 + 7,
            "designer": "naive-quality-first",
            "seed": master_seed,
            "eval_seed": master_seed + 31,
            "packets": 500,
            "window": 100,
            "trial_ladder": [100, 1000],
            "max_memory": 256 * 2**20,
            "rss_budget": 1536 * 2**20,
            "traces": ["diurnal", "metro-diurnal"],
            # A single-tile run over 1M x 100 trials cannot fit in RAM --
            # exactly why the streaming engine exists; the bit-identity claim
            # is carried by the smoke leg and tests/test_streaming.py.
            "differential": False,
        }
    ]


def r3_metrics(rows: list[dict]) -> dict[str, float]:
    last = rows[-1]
    peaks = [row["peak_rss_bytes"] for row in rows]
    out = {
        "mean_loss": last["mean_loss"],
        "fraction_meeting_threshold": last["fraction_meeting_threshold"],
        "rss_flatness_ratio": max(peaks) / min(peaks),
    }
    if rows[0]["matches_batched"] is not None:
        out["streaming_matches_batched"] = float(rows[0]["matches_batched"])
    return out


def r3_validate(record: BenchRecord) -> list[str]:
    failures = []
    for row in record.rows:
        label = f"{row['sinks']} sinks x {row['trials']} trials"
        if row["peak_rss_bytes"] > row["rss_budget"]:
            failures.append(
                f"{label}: audit peak {row['peak_rss_bytes']} bytes exceeds the "
                f"{row['rss_budget']}-byte budget"
            )
        if row["matches_batched"] is False:
            failures.append(
                f"{label}: single-tile streaming run diverges from the batched engine"
            )
        if not 0.0 < row["mean_loss"] < 0.2:
            failures.append(
                f"{label}: implausible mean loss {row['mean_loss']:.4f}"
            )
        if row["diurnal_peak_window_loss"] <= 0.0:
            failures.append(f"{label}: diurnal trace replay saw no windowed loss")
    peaks = [row["peak_rss_bytes"] for row in record.rows]
    if max(peaks) / min(peaks) > 1.5:
        failures.append(
            "streaming peak memory grows with the trial count "
            f"(ladder peaks: {peaks}); the fold is supposed to be flat"
        )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="r3",
        title="R3: streaming million-demand reliability audit (flat-RSS fold)",
        task_fn=r3_task,
        make_tasks=r3_tasks,
        policies={
            # Streaming results are a pure function of the seeds and the
            # effective tile grid, so the statistics are drift-gated exactly.
            "mean_loss": MetricPolicy("equal", rel_tol=1e-9, abs_tol=1e-12),
            "fraction_meeting_threshold": MetricPolicy(
                "equal", rel_tol=1e-9, abs_tol=1e-12
            ),
            "streaming_matches_batched": MetricPolicy("higher", rel_tol=0.0),
            # Allocator layout shifts move tracemalloc peaks a little.
            "rss_flatness_ratio": MetricPolicy("lower", abs_tol=0.25),
        },
        derive_metrics=r3_metrics,
        validate=r3_validate,
        artifact="R3_streaming_audit",
        columns=[
            "sinks",
            "trials",
            "packets",
            "demands",
            "served_demands",
            "num_tiles",
            "mean_loss",
            "max_loss",
            "mean_worst_window_loss",
            "fraction_meeting_threshold",
            "peak_rss_bytes",
            "matches_batched",
            "audit_seconds",
            "diurnal_peak_window_loss",
            "diurnal_rebuffer_session_fraction",
            "metro_diurnal_peak_window_loss",
            "metro_diurnal_rebuffer_session_fraction",
        ],
        suites=("reliability", "scale"),
        description="Memory-bounded streaming audit of an internet-scale design: "
        "trial-ladder peak-RSS flatness under a working-set budget, bit-identity "
        "of the single-tile run vs the batched engine, and diurnal trace replay "
        "(smoke: 50k sinks; full: 1M sinks x 1k trials).",
    )
)


# ---------------------------------------------------------------------------
# A1 -- designer vs adversary: worst-case catalogue search on the as-geo tier
# ---------------------------------------------------------------------------

#: Strategies facing the adversary, in presentation order.  The extended
#: pipeline keeps its ISP-diversity (color) constraints; the baselines are
#: exactly the comparison strategies of the paper's Section 6 discussion.
A1_DESIGNERS = ("spaa03-extended", "greedy", "single-tree")


def a1_task(task: dict) -> list[dict]:
    problem, _registry = generate_as_geo_problem(
        AsGeoConfig(num_sinks=task["sinks"], num_metros=task["metros"]),
        rng=task["rng"],
    )
    designs = {}
    costs = {}
    extended = get_designer("spaa03-extended").design(
        DesignRequest(
            problem=problem,
            parameters=color_constrained_parameters(
                DesignParameters(seed=task["seed"], repair_shortfall=True)
            ),
        )
    )
    designs["spaa03-extended"] = extended.solution
    costs["spaa03-extended"] = extended.total_cost
    for name in ("greedy", "single-tree"):
        result = get_designer(name).design(
            DesignRequest(
                problem=problem, parameters=DesignParameters(seed=task["seed"])
            )
        )
        designs[name] = result.solution
        costs[name] = result.total_cost
    rows = []
    for design_name in A1_DESIGNERS:
        solution = designs[design_name]
        start = time.perf_counter()
        # The sweep passes the solution into scenario realization, so the
        # targeted-attack primitives knock out the reflectors this specific
        # design actually leans on (assignment-path betweenness).
        swept = evaluate_design(
            problem,
            solution,
            trials=task["trials"],
            num_packets=task["packets"],
            window=task["window"],
            seed=task["eval_seed"],
        )
        sweep_seconds = time.perf_counter() - start
        attacks = {name: m for name, m in swept.items() if name != "baseline"}
        adversary_pick = max(
            attacks, key=lambda name: (attacks[name]["mean_loss"], name)
        )
        for scenario_name, metrics in swept.items():
            rows.append(
                {
                    "design": design_name,
                    "scenario": scenario_name,
                    "mean_loss": metrics["mean_loss"],
                    "mean_loss_ci95": metrics["mean_loss_ci95"],
                    "fraction_meeting_threshold": metrics[
                        "fraction_meeting_threshold"
                    ],
                    "mean_worst_window_loss": metrics["mean_worst_window_loss"],
                    "failure_events": metrics["failure_events"],
                    "design_cost": costs[design_name],
                    "adversary_pick": scenario_name == adversary_pick,
                    "sweep_seconds": sweep_seconds,
                }
            )
    return rows


def a1_tasks(master_seed: int, smoke: bool) -> list[dict]:
    return [
        {
            "sinks": 300 if smoke else 600,
            "metros": 16 if smoke else 24,
            "rng": 0,
            "seed": master_seed,
            "eval_seed": master_seed + 11,
            "trials": 20 if smoke else 50,
            "packets": 800 if smoke else 1500,
            "window": 160,
        }
    ]


def a1_metrics(rows: list[dict]) -> dict[str, float]:
    by_key = {(row["design"], row["scenario"]): row for row in rows}
    scenarios = sorted({row["scenario"] for row in rows})
    worst = {}
    out = {}
    for design in A1_DESIGNERS:
        key = design.replace("-", "_")
        worst[design] = max(
            by_key[(design, name)]["mean_loss"]
            for name in scenarios
            if name != "baseline"
        )
        out[f"{key}_adversary_worst_loss"] = worst[design]
        out[f"{key}_baseline_loss"] = by_key[(design, "baseline")]["mean_loss"]
    out["extended_vs_greedy_margin"] = worst["greedy"] - worst["spaa03-extended"]
    out["extended_vs_single_tree_margin"] = (
        worst["single-tree"] - worst["spaa03-extended"]
    )
    return out


def a1_validate(record: BenchRecord) -> list[str]:
    failures = []
    by_key = {(row["design"], row["scenario"]): row for row in record.rows}
    scenarios = sorted({row["scenario"] for row in record.rows})
    missing = [
        f"{design}/{name}"
        for design in A1_DESIGNERS
        for name in failure_scenario_names()
        if (design, name) not in by_key
    ]
    if missing:
        failures.append(f"catalogue rows missing: {', '.join(missing)}")
        return failures
    worst = {
        design: max(
            by_key[(design, name)]["mean_loss"]
            for name in scenarios
            if name != "baseline"
        )
        for design in A1_DESIGNERS
    }
    # The paper-shape claim this bench exists for: under a worst-case search
    # over the whole catalogue (including attacks targeted at each design's
    # own reflectors), the ISP-diversity extension must strictly beat both
    # baselines -- diversity is worth paying for precisely when an adversary
    # picks the failure.
    for baseline_name in ("greedy", "single-tree"):
        if worst["spaa03-extended"] >= worst[baseline_name]:
            failures.append(
                f"spaa03-extended adversarial worst-case loss "
                f"{worst['spaa03-extended']:.4f} is not strictly better than "
                f"{baseline_name} ({worst[baseline_name]:.4f})"
            )
    for design in A1_DESIGNERS:
        baseline = by_key[(design, "baseline")]["mean_loss"]
        if worst[design] < baseline + 0.01:
            failures.append(
                f"{design}: the adversary found nothing (worst {worst[design]:.4f} "
                f"vs failure-free {baseline:.4f}) -- catalogue not stressing"
            )
        if baseline > 0.05:
            failures.append(
                f"{design}: failure-free loss {baseline:.4f} implausibly high "
                "on the as-geo workload (> 0.05)"
            )
    return failures


register_scenario(
    ScenarioSpec(
        scenario_id="a1",
        title="A1: designer vs adversary on the AS/geo workload",
        task_fn=a1_task,
        make_tasks=a1_tasks,
        policies={
            "spaa03_extended_adversary_worst_loss": MetricPolicy(
                "lower", abs_tol=0.02
            ),
            "spaa03_extended_baseline_loss": MetricPolicy("lower", abs_tol=0.01),
            "greedy_adversary_worst_loss": MetricPolicy("equal", rel_tol=0.25),
            "single_tree_adversary_worst_loss": MetricPolicy("equal", rel_tol=0.25),
            "extended_vs_greedy_margin": MetricPolicy("higher", abs_tol=0.005),
            "extended_vs_single_tree_margin": MetricPolicy("higher", abs_tol=0.02),
        },
        derive_metrics=a1_metrics,
        validate=a1_validate,
        artifact="A1_designer_vs_adversary",
        columns=[
            "design",
            "scenario",
            "mean_loss",
            "mean_loss_ci95",
            "fraction_meeting_threshold",
            "mean_worst_window_loss",
            "failure_events",
            "design_cost",
            "adversary_pick",
            "sweep_seconds",
        ],
        suites=("reliability",),
        description="Worst-case search over the full scenario catalogue (built-in "
        "+ shipped DSL scenarios, incl. betweenness-targeted attacks) per design "
        "on the AS/geo workload; the ISP-diversity extension must strictly beat "
        "greedy and single-tree at their respective adversarial worst cases.",
    )
)
