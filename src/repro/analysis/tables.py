"""Plain-text and CSV table formatting.

The benchmark harness prints the rows/series each experiment produces (the
reproduction analogue of the paper's tables and figures); these helpers keep
that output aligned and machine-readable without any plotting dependency.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence


def _format_value(value: object, float_format: str) -> str:
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = ".4g",
    title: str | None = None,
) -> str:
    """Render rows (list of dicts) as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_format_value(row.get(column, ""), float_format) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(line[idx]) for line in rendered))
        for idx, column in enumerate(columns)
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(column.ljust(widths[idx]) for idx, column in enumerate(columns))
    out.write(header + "\n")
    out.write("  ".join("-" * width for width in widths) + "\n")
    for line in rendered:
        out.write("  ".join(value.ljust(widths[idx]) for idx, value in enumerate(line)) + "\n")
    return out.getvalue().rstrip("\n")


def format_csv(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = ".6g",
) -> str:
    """Render rows as CSV text (no external csv dependency needed for reading)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(
            ",".join(_format_value(row.get(column, ""), float_format) for column in columns)
        )
    return "\n".join(lines)


def summarize_series(name: str, values: Iterable[float]) -> dict:
    """Min/mean/max summary row for a numeric series (used in bench output)."""
    data = list(values)
    if not data:
        return {"series": name, "count": 0, "min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "series": name,
        "count": len(data),
        "min": min(data),
        "mean": sum(data) / len(data),
        "max": max(data),
    }
