"""Experiment orchestration: scenario registry, parallel executor, benchmarks.

The paper's guarantees are probabilistic and asymptotic, so validating them
means sweeping many seeded instances across workload families.  This module is
the substrate that runs those sweeps at hardware speed and makes the results
diffable:

* :class:`ScenarioSpec` + a process-global registry -- each benchmark
  experiment (workload family x sizes x seed block x
  :class:`~repro.core.algorithm.DesignParameters`) is declared once as a list
  of picklable *task* dicts plus a module-level task function;
* :func:`execute_tasks` -- a ``concurrent.futures`` executor that fans tasks
  out over worker processes, chunked by seed, and returns rows in task order
  so a run is deterministic given the master seed regardless of ``jobs``;
* :class:`BenchRecord` -- the versioned machine-readable result schema
  (per-row metrics, deterministic aggregates, timing aggregates, environment
  and commit metadata) serialised as ``BENCH_<ID>.json``;
* :func:`compare_records` -- baseline comparison that classifies per-metric
  drift as improvement / neutral / regression under per-metric tolerances
  (:class:`MetricPolicy`), which is what lets CI gate on benchmark output.

Scenario definitions themselves live in :mod:`repro.analysis.scenarios`; the
``repro bench`` CLI subcommand and the ``benchmarks/bench_*.py`` pytest
wrappers are both thin clients of this module.
"""

from __future__ import annotations

import concurrent.futures
import json
import math
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping, Sequence

SCHEMA_VERSION = 1

#: Row keys with this suffix are wall-clock measurements: they are aggregated
#: separately (``BenchRecord.timings``) and never compared against baselines.
TIMING_SUFFIX = "_seconds"


# ---------------------------------------------------------------------------
# Metric comparison policies
# ---------------------------------------------------------------------------

#: Allowed drift directions: "lower" (lower is better), "higher" (higher is
#: better) and "equal" (any drift beyond tolerance is a regression -- used for
#: structural quantities such as LP sizes that must not silently change).
DIRECTIONS = ("lower", "higher", "equal")

CLASS_IMPROVEMENT = "improvement"
CLASS_NEUTRAL = "neutral"
CLASS_REGRESSION = "regression"
CLASS_NEW = "new"
CLASS_MISSING = "missing"


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric is aggregated and compared against a baseline.

    ``rel_tol`` is relative to the magnitude of the baseline value and
    ``abs_tol`` is the floor below which drift is always neutral; the
    effective tolerance is ``max(abs_tol, rel_tol * |baseline|)``.  Drift
    exactly at the tolerance boundary is classified neutral.  For ``equal``
    metrics that must not silently change (LP sizes, node counts) pass
    ``rel_tol=0.0`` so only the ``abs_tol`` floor applies.
    """

    direction: str = "lower"
    rel_tol: float = 0.05
    abs_tol: float = 1e-9

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )

    def tolerance(self, baseline: float) -> float:
        return max(self.abs_tol, self.rel_tol * abs(baseline))


@dataclass(frozen=True)
class MetricDrift:
    """One metric's drift between a current record and a baseline."""

    metric: str
    classification: str
    baseline: float | None = None
    current: float | None = None
    tolerance: float = 0.0

    @property
    def delta(self) -> float | None:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    def as_row(self) -> dict:
        row: dict = {"metric": self.metric, "classification": self.classification}
        if self.baseline is not None:
            row["baseline"] = self.baseline
        if self.current is not None:
            row["current"] = self.current
        if self.delta is not None:
            row["delta"] = self.delta
            row["tolerance"] = self.tolerance
        return row


# ---------------------------------------------------------------------------
# Scenario specification and registry
# ---------------------------------------------------------------------------


@dataclass
class ScenarioSpec:
    """A registered experiment: declarative tasks + a picklable task function.

    Attributes
    ----------
    scenario_id:
        Short stable identifier (``"t5"``, ``"c1"``, ...); uppercased it names
        the JSON artifact (``BENCH_T5.json``).
    title:
        One-line human description, printed as the table title.
    task_fn:
        Module-level function ``task_dict -> row_dict | list[row_dict]``.
        It must be importable from worker processes (no lambdas/closures) and
        derive all randomness from seeds carried *inside* the task dict.
    make_tasks:
        ``(master_seed, smoke) -> list[task_dict]``.  Every task dict must be
        picklable and JSON-friendly; seeds are derived from ``master_seed`` so
        the whole scenario is reproducible from one integer.
    policies:
        Per-metric comparison policies.  Metrics named here are aggregated
        into ``BenchRecord.aggregates`` and compared by :func:`compare_records`.
    derive_metrics:
        Optional ``rows -> dict[str, float]`` computing scenario-level scalar
        key metrics (e.g. one value per baseline design) in the parent
        process; they land in ``BenchRecord.metrics`` and participate in
        comparison under the same policy names.
    validate:
        Optional ``BenchRecord -> list[str]`` returning human-readable
        threshold violations (the paper-shape checks).  Empty list = pass.
    artifact:
        Stem of the plain-text table artifact (defaults to the bench id).
    columns:
        Optional column order for the rendered table.
    suites:
        Named suite tags: ``repro bench --suite <tag>`` expands a tag to
        every scenario carrying it (e.g. ``--suite reliability``), in
        addition to accepting plain scenario ids.
    """

    scenario_id: str
    title: str
    task_fn: Callable[[dict], dict | list[dict]]
    make_tasks: Callable[[int, bool], list[dict]]
    policies: dict[str, MetricPolicy] = field(default_factory=dict)
    derive_metrics: Callable[[list[dict]], dict[str, float]] | None = None
    validate: Callable[["BenchRecord"], list[str]] | None = None
    artifact: str | None = None
    columns: Sequence[str] | None = None
    description: str = ""
    suites: tuple[str, ...] = ()

    @property
    def bench_id(self) -> str:
        return self.scenario_id.upper()

    @property
    def artifact_stem(self) -> str:
        return self.artifact or self.bench_id


_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register ``spec`` under its id (last registration wins, for reloads)."""
    _REGISTRY[spec.scenario_id] = spec
    return spec


def get_scenario(scenario_id: str) -> ScenarioSpec:
    _ensure_scenarios_loaded()
    try:
        return _REGISTRY[scenario_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {scenario_id!r} (known: {known})") from None


def scenario_ids() -> list[str]:
    _ensure_scenarios_loaded()
    return sorted(_REGISTRY)


def suite_tags() -> dict[str, list[str]]:
    """All suite tags and the scenario ids carrying each, sorted."""
    _ensure_scenarios_loaded()
    tags: dict[str, list[str]] = {}
    for sid in sorted(_REGISTRY):
        for tag in _REGISTRY[sid].suites:
            tags.setdefault(tag, []).append(sid)
    return tags


def expand_scenario_ids(requested: Iterable[str]) -> list[str]:
    """Resolve a mix of scenario ids and suite tags to scenario ids.

    Unknown names raise ``KeyError`` listing both the known ids and the known
    tags; duplicates (an id requested directly and again via a tag) are kept
    once, in first-mention order.
    """
    _ensure_scenarios_loaded()
    tags = suite_tags()
    out: list[str] = []
    for name in requested:
        if name in _REGISTRY:
            expansion = [name]
        elif name in tags:
            expansion = tags[name]
        else:
            known = ", ".join(sorted(_REGISTRY))
            known_tags = ", ".join(sorted(tags))
            raise KeyError(
                f"unknown suite {name!r} (scenario ids: {known}; suite tags: {known_tags})"
            )
        for sid in expansion:
            if sid not in out:
                out.append(sid)
    return out


def _ensure_scenarios_loaded() -> None:
    # The standard scenario catalogue registers itself on import; loading it
    # lazily avoids a circular import (scenarios -> experiments -> runner).
    import repro.analysis.scenarios  # noqa: F401


# ---------------------------------------------------------------------------
# Parallel executor
# ---------------------------------------------------------------------------


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/1 -> serial, ``"auto"`` -> CPUs."""
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs == "auto":
            return max(1, os.cpu_count() or 1)
        jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def execute_tasks(
    task_fn: Callable[[dict], dict | list[dict]],
    tasks: Sequence[dict],
    jobs: int | str | None = 1,
) -> list[dict | list[dict]]:
    """Run ``task_fn`` over ``tasks``, possibly across worker processes.

    Results come back in task order, so any deterministic ``task_fn`` yields
    output independent of ``jobs``: parallel and serial runs are bit-for-bit
    identical.  Tasks are chunked so that per-seed units amortise process
    round-trips.  With ``jobs=1`` everything runs inline (no pool, no pickle
    requirement on ``task_fn``).
    """
    return list(execute_tasks_iter(task_fn, tasks, jobs=jobs))


def execute_tasks_iter(
    task_fn: Callable[[dict], dict | list[dict]],
    tasks: Sequence[dict],
    jobs: int | str | None = 1,
) -> Iterator[dict | list[dict]]:
    """Lazy :func:`execute_tasks`: yield results in task order as they arrive.

    Same determinism contract (task-order results, ``jobs`` never changes
    them), but the caller folds each result before the next is held -- the
    streaming simulation engine consumes tile partials through this so its
    coordinator memory stays flat in the tile count.
    """
    jobs = resolve_jobs(jobs)
    tasks = list(tasks)
    if jobs == 1 or len(tasks) <= 1:
        for task in tasks:
            yield task_fn(task)
        return
    workers = min(jobs, len(tasks))
    chunksize = max(1, math.ceil(len(tasks) / (4 * workers)))
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        yield from pool.map(task_fn, tasks, chunksize=chunksize)


# ---------------------------------------------------------------------------
# BenchRecord: the versioned result schema
# ---------------------------------------------------------------------------


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(value)


def aggregate_rows(rows: Sequence[Mapping[str, object]], names: Iterable[str]) -> dict:
    """Min/mean/max/count over ``names`` columns, in row order (deterministic)."""
    out: dict[str, dict] = {}
    for name in names:
        values = [float(row[name]) for row in rows if name in row and _is_number(row[name])]
        if not values:
            continue
        out[name] = {
            "count": len(values),
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
        }
    return out


def collect_environment() -> dict:
    """Environment/commit metadata embedded in every record (best effort)."""
    env = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    for module_name in ("numpy", "scipy"):
        try:
            env[module_name] = __import__(module_name).__version__
        except Exception:  # pragma: no cover - import failure is environmental
            env[module_name] = None
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        env["git_commit"] = commit.stdout.strip() if commit.returncode == 0 else None
    except Exception:  # pragma: no cover - git missing entirely
        env["git_commit"] = None
    return env


@dataclass
class BenchRecord:
    """Machine-readable result of one scenario run (schema version 1).

    ``rows`` hold every per-task measurement (including wall-clock columns);
    ``aggregates`` summarise only the deterministic metrics named by the
    scenario's policies; ``timings`` summarise the ``*_seconds`` columns;
    ``metrics`` are scenario-level scalar key metrics.  Aggregates and metrics
    are computed from rows in task order in the parent process, so they are
    bit-for-bit identical between serial and parallel runs of the same master
    seed.
    """

    bench_id: str
    scenario_id: str
    title: str
    master_seed: int
    smoke: bool
    jobs: int
    rows: list[dict]
    aggregates: dict[str, dict]
    timings: dict[str, dict]
    metrics: dict[str, float]
    environment: dict
    created_at: str
    elapsed_seconds: float
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "bench_id": self.bench_id,
            "scenario_id": self.scenario_id,
            "title": self.title,
            "master_seed": self.master_seed,
            "smoke": self.smoke,
            "jobs": self.jobs,
            "rows": self.rows,
            "aggregates": self.aggregates,
            "timings": self.timings,
            "metrics": self.metrics,
            "environment": self.environment,
            "created_at": self.created_at,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BenchRecord":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported BenchRecord schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        return cls(
            bench_id=data["bench_id"],
            scenario_id=data["scenario_id"],
            title=data.get("title", ""),
            master_seed=data.get("master_seed", 0),
            smoke=bool(data.get("smoke", False)),
            jobs=data.get("jobs", 1),
            rows=list(data.get("rows", [])),
            aggregates=dict(data.get("aggregates", {})),
            timings=dict(data.get("timings", {})),
            metrics=dict(data.get("metrics", {})),
            environment=dict(data.get("environment", {})),
            created_at=data.get("created_at", ""),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "BenchRecord":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def metric_value(self, name: str) -> float | None:
        """Comparison value for ``name``: key metric first, else aggregate mean."""
        if name in self.metrics:
            return float(self.metrics[name])
        if name in self.aggregates:
            return float(self.aggregates[name]["mean"])
        return None

    def comparable_metrics(self) -> dict[str, float]:
        out = {name: float(value) for name, value in self.metrics.items()}
        for name, stats in self.aggregates.items():
            out.setdefault(name, float(stats["mean"]))
        return out


def run_scenario(
    spec: ScenarioSpec,
    *,
    jobs: int | str | None = 1,
    master_seed: int = 0,
    smoke: bool = False,
) -> BenchRecord:
    """Execute every task of ``spec`` and assemble its :class:`BenchRecord`."""
    jobs = resolve_jobs(jobs)
    tasks = spec.make_tasks(master_seed, smoke)
    start = time.perf_counter()
    results = execute_tasks(spec.task_fn, tasks, jobs=jobs)
    elapsed = time.perf_counter() - start
    rows: list[dict] = []
    for result in results:
        if isinstance(result, dict):
            rows.append(result)
        else:
            rows.extend(result)
    timing_names = sorted({key for row in rows for key in row if key.endswith(TIMING_SUFFIX)})
    metrics = spec.derive_metrics(rows) if spec.derive_metrics is not None else {}
    return BenchRecord(
        bench_id=spec.bench_id,
        scenario_id=spec.scenario_id,
        title=spec.title,
        master_seed=master_seed,
        smoke=smoke,
        jobs=jobs,
        rows=rows,
        aggregates=aggregate_rows(rows, spec.policies),
        timings=aggregate_rows(rows, timing_names),
        metrics={name: float(value) for name, value in metrics.items()},
        environment=collect_environment(),
        created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        elapsed_seconds=elapsed,
    )


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------


def classify_drift(policy: MetricPolicy, baseline: float, current: float) -> tuple[str, float]:
    """Classify one metric's drift; returns (classification, tolerance used)."""
    tolerance = policy.tolerance(baseline)
    delta = current - baseline
    if abs(delta) <= tolerance:
        return CLASS_NEUTRAL, tolerance
    if policy.direction == "equal":
        return CLASS_REGRESSION, tolerance
    worse = delta > 0 if policy.direction == "lower" else delta < 0
    return (CLASS_REGRESSION if worse else CLASS_IMPROVEMENT), tolerance


@dataclass
class ComparisonReport:
    """Classified drift of one record against its baseline."""

    scenario_id: str
    drifts: list[MetricDrift]

    @property
    def regressions(self) -> list[MetricDrift]:
        return [d for d in self.drifts if d.classification in (CLASS_REGRESSION, CLASS_MISSING)]

    @property
    def improvements(self) -> list[MetricDrift]:
        return [d for d in self.drifts if d.classification == CLASS_IMPROVEMENT]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def rows(self) -> list[dict]:
        return [drift.as_row() for drift in self.drifts]


def compare_records(
    current: BenchRecord,
    baseline: BenchRecord | Mapping,
    policies: Mapping[str, MetricPolicy] | None = None,
) -> ComparisonReport:
    """Compare ``current`` against ``baseline`` under per-metric policies.

    Policies default to the registered scenario's.  Metrics present in the
    baseline but absent from the current record are classified ``missing``
    (counted as a regression: a tracked quantity silently disappeared);
    metrics new in the current record are ``new`` (neutral).
    """
    if not isinstance(baseline, BenchRecord):
        baseline = BenchRecord.from_dict(baseline)
    if policies is None:
        _ensure_scenarios_loaded()
        spec = _REGISTRY.get(current.scenario_id)
        policies = spec.policies if spec is not None else {}
    if current.smoke != baseline.smoke:
        raise ValueError(
            f"cannot compare a smoke={current.smoke} run against a "
            f"smoke={baseline.smoke} baseline for scenario {current.scenario_id!r}"
        )
    current_values = current.comparable_metrics()
    baseline_values = baseline.comparable_metrics()
    drifts: list[MetricDrift] = []
    default_policy = MetricPolicy(direction="equal", rel_tol=0.0)
    for name in sorted(set(current_values) | set(baseline_values)):
        policy = policies.get(name, default_policy)
        base = baseline_values.get(name)
        cur = current_values.get(name)
        if base is None:
            drifts.append(MetricDrift(metric=name, classification=CLASS_NEW, current=cur))
        elif cur is None:
            drifts.append(MetricDrift(metric=name, classification=CLASS_MISSING, baseline=base))
        else:
            classification, tolerance = classify_drift(policy, base, cur)
            drifts.append(
                MetricDrift(
                    metric=name,
                    classification=classification,
                    baseline=base,
                    current=cur,
                    tolerance=tolerance,
                )
            )
    return ComparisonReport(scenario_id=current.scenario_id, drifts=drifts)


# ---------------------------------------------------------------------------
# Baseline suite files (several records in one JSON document)
# ---------------------------------------------------------------------------


def save_suite(records: Mapping[str, BenchRecord], path: str | Path) -> Path:
    """Write a combined baseline file mapping scenario id -> record."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench-suite",
        "records": {sid: record.to_dict() for sid, record in sorted(records.items())},
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_suite(path: str | Path) -> dict[str, BenchRecord]:
    """Read a baseline file: either a suite document or a single record."""
    data = json.loads(Path(path).read_text())
    if "records" in data:
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bench-suite schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        return {
            sid: BenchRecord.from_dict(record) for sid, record in data["records"].items()
        }
    record = BenchRecord.from_dict(data)
    return {record.scenario_id: record}


__all__ = [
    "BenchRecord",
    "ComparisonReport",
    "MetricDrift",
    "MetricPolicy",
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "aggregate_rows",
    "classify_drift",
    "collect_environment",
    "compare_records",
    "execute_tasks",
    "execute_tasks_iter",
    "expand_scenario_ids",
    "get_scenario",
    "load_suite",
    "register_scenario",
    "resolve_jobs",
    "run_scenario",
    "save_suite",
    "scenario_ids",
    "suite_tags",
]
