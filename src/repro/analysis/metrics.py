"""Cost and reliability metrics, and cross-algorithm comparisons."""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution


def cost_ratio(solution_cost: float, lower_bound: float) -> float:
    """Cost divided by a lower bound, with the degenerate cases pinned down."""
    if lower_bound <= 0:
        return float("inf") if solution_cost > 0 else 1.0
    return solution_cost / lower_bound


def cost_breakdown(solution: OverlaySolution) -> dict:
    """Reflector / stream-delivery / assignment cost components of a design."""
    return {
        "reflector_cost": solution.reflector_cost(),
        "stream_delivery_cost": solution.stream_delivery_cost(),
        "assignment_cost": solution.assignment_cost(),
        "total_cost": solution.total_cost(),
    }


def reliability_metrics(
    problem: OverlayDesignProblem, solution: OverlaySolution
) -> dict:
    """Aggregate exact-reliability metrics of a design."""
    demands = problem.demands
    if not demands:
        return {
            "min_success": 1.0,
            "mean_success": 1.0,
            "fraction_meeting_threshold": 1.0,
            "mean_paths_per_demand": 0.0,
        }
    successes = np.array([solution.success_probability(d) for d in demands])
    thresholds = np.array([d.success_threshold for d in demands])
    paths = np.array([len(solution.reflectors_serving(d)) for d in demands])
    return {
        "min_success": float(successes.min()),
        "mean_success": float(successes.mean()),
        "fraction_meeting_threshold": float(np.mean(successes + 1e-12 >= thresholds)),
        "mean_paths_per_demand": float(paths.mean()),
    }


def compare_designs(
    problem: OverlayDesignProblem,
    designs: Mapping[str, OverlaySolution],
    lower_bound: float | None = None,
    extra_metrics: Mapping[str, Callable[[OverlayDesignProblem, OverlaySolution], float]]
    | None = None,
) -> list[dict]:
    """Build one comparison row per design (the C1 benchmark's table).

    Each row contains the design's cost (and ratio to ``lower_bound`` when
    given), reliability aggregates and fanout violation, plus any
    ``extra_metrics`` (name -> callable) supplied by the caller.
    """
    rows: list[dict] = []
    for name, solution in designs.items():
        row: dict = {"design": name}
        row.update(cost_breakdown(solution))
        if lower_bound is not None:
            row["cost_ratio"] = cost_ratio(solution.total_cost(), lower_bound)
        row.update(reliability_metrics(problem, solution))
        row["max_fanout_factor"] = solution.max_fanout_factor()
        row["unserved_demands"] = len(solution.unserved_demands())
        if extra_metrics:
            for metric_name, metric in extra_metrics.items():
                row[metric_name] = metric(problem, solution)
        rows.append(row)
    return rows
