"""Analysis, auditing and experiment helpers.

* :mod:`repro.analysis.audit` -- constraint-violation audits of integral
  solutions and checks of the paper's approximation guarantees;
* :mod:`repro.analysis.metrics` -- cost/reliability metrics and cross-
  algorithm comparisons;
* :mod:`repro.analysis.tables` -- plain-text / CSV table formatting used by
  the benchmark harness and EXPERIMENTS.md;
* :mod:`repro.analysis.experiments` -- parameter sweeps and seed aggregation
  shared by the benchmarks and the ``examples/`` scripts.
"""

from repro.analysis.audit import GuaranteeCheck, SolutionAudit, audit_solution, check_paper_guarantees
from repro.analysis.metrics import (
    compare_designs,
    cost_breakdown,
    cost_ratio,
    reliability_metrics,
)
from repro.analysis.tables import format_csv, format_table
from repro.analysis.experiments import SweepResult, run_seed_sweep, run_size_sweep

__all__ = [
    "GuaranteeCheck",
    "SolutionAudit",
    "SweepResult",
    "audit_solution",
    "check_paper_guarantees",
    "compare_designs",
    "cost_breakdown",
    "cost_ratio",
    "format_csv",
    "format_table",
    "reliability_metrics",
    "run_seed_sweep",
    "run_size_sweep",
]
