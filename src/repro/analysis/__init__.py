"""Analysis, auditing and experiment helpers.

* :mod:`repro.analysis.audit` -- constraint-violation audits of integral
  solutions and checks of the paper's approximation guarantees;
* :mod:`repro.analysis.metrics` -- cost/reliability metrics and cross-
  algorithm comparisons;
* :mod:`repro.analysis.tables` -- plain-text / CSV table formatting used by
  the benchmark harness and EXPERIMENTS.md;
* :mod:`repro.analysis.experiments` -- parameter sweeps and seed aggregation
  shared by the benchmarks and the ``examples/`` scripts;
* :mod:`repro.analysis.runner` -- the experiment-orchestration subsystem:
  scenario registry, multiprocess executor, the versioned ``BenchRecord``
  result schema and the baseline drift classification CI gates on;
* :mod:`repro.analysis.scenarios` -- the registered scenario catalogue (one
  spec per paper table/figure experiment).
"""

from repro.analysis.audit import GuaranteeCheck, SolutionAudit, audit_solution, check_paper_guarantees
from repro.analysis.metrics import (
    compare_designs,
    cost_breakdown,
    cost_ratio,
    reliability_metrics,
)
from repro.analysis.tables import format_csv, format_table
from repro.analysis.experiments import SweepResult, run_seed_sweep, run_size_sweep
from repro.analysis.runner import (
    BenchRecord,
    ComparisonReport,
    MetricDrift,
    MetricPolicy,
    ScenarioSpec,
    compare_records,
    execute_tasks,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_ids,
)

__all__ = [
    "BenchRecord",
    "ComparisonReport",
    "GuaranteeCheck",
    "MetricDrift",
    "MetricPolicy",
    "ScenarioSpec",
    "SolutionAudit",
    "SweepResult",
    "audit_solution",
    "check_paper_guarantees",
    "compare_designs",
    "compare_records",
    "cost_breakdown",
    "cost_ratio",
    "execute_tasks",
    "format_csv",
    "format_table",
    "get_scenario",
    "register_scenario",
    "reliability_metrics",
    "run_scenario",
    "run_seed_sweep",
    "run_size_sweep",
    "scenario_ids",
]
