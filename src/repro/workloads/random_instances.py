"""Random problem instances with controlled feasibility.

These generators produce abstract :class:`OverlayDesignProblem` instances
directly (no topology layer), with enough structure to be *feasible by
construction*: every demand can reach several reflectors whose combined weight
exceeds the requirement, and the aggregate fanout comfortably covers the
number of demands.  They are the workhorse of the unit tests, the
hypothesis-based property tests, and the T1--T5 benchmarks, where we need many
instances across a size sweep rather than deployment realism (the Akamai-like
generator covers realism).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import OverlayDesignProblem


@dataclass
class RandomInstanceConfig:
    """Shape and parameter ranges of a random instance.

    Attributes
    ----------
    num_streams, num_reflectors, num_sinks:
        Sizes of the three levels.
    demands_per_sink:
        How many streams each sink subscribes to (capped at ``num_streams``).
    reflector_cost_range, fanout_range:
        Uniform ranges for ``r_i`` and ``F_i``.
    stream_loss_range, delivery_loss_range:
        Uniform ranges for the edge loss probabilities.
    stream_cost_range, delivery_cost_range:
        Uniform ranges for the edge costs.
    success_threshold_range:
        Uniform range for the per-demand success requirement ``Phi``.
    stream_edge_density, delivery_edge_density:
        Probability that a potential edge exists (a minimum connectivity is
        enforced so demands never end up unreachable).
    min_candidates_per_demand:
        Lower bound on the number of reflectors able to serve each demand.
    num_colors:
        When positive, reflectors are assigned round-robin to this many colors
        (ISPs) so the Section-6.4 extension can be exercised.
    """

    num_streams: int = 2
    num_reflectors: int = 6
    num_sinks: int = 10
    demands_per_sink: int = 1
    reflector_cost_range: tuple[float, float] = (5.0, 20.0)
    fanout_range: tuple[int, int] = (4, 12)
    stream_loss_range: tuple[float, float] = (0.002, 0.05)
    delivery_loss_range: tuple[float, float] = (0.005, 0.12)
    stream_cost_range: tuple[float, float] = (0.5, 2.0)
    delivery_cost_range: tuple[float, float] = (0.1, 1.0)
    success_threshold_range: tuple[float, float] = (0.95, 0.999)
    stream_edge_density: float = 0.9
    delivery_edge_density: float = 0.7
    min_candidates_per_demand: int = 3
    num_colors: int = 0

    def __post_init__(self) -> None:
        if min(self.num_streams, self.num_reflectors, self.num_sinks) <= 0:
            raise ValueError("all level sizes must be positive")
        if self.demands_per_sink <= 0:
            raise ValueError("demands_per_sink must be positive")
        if not 0.0 < self.stream_edge_density <= 1.0:
            raise ValueError("stream_edge_density must lie in (0, 1]")
        if not 0.0 < self.delivery_edge_density <= 1.0:
            raise ValueError("delivery_edge_density must lie in (0, 1]")


def random_problem(
    config: RandomInstanceConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> OverlayDesignProblem:
    """Generate a feasible random instance according to ``config``.

    ``rng`` may be a generator, a seed, or None (fresh entropy).
    """
    config = config or RandomInstanceConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    problem = OverlayDesignProblem(name="random-instance")

    streams = [f"s{i}" for i in range(config.num_streams)]
    reflectors = [f"r{i}" for i in range(config.num_reflectors)]
    sinks = [f"d{i}" for i in range(config.num_sinks)]

    for stream in streams:
        problem.add_stream(stream, bandwidth=float(rng.uniform(0.5, 4.0)))
    for index, reflector in enumerate(reflectors):
        color = f"isp{index % config.num_colors}" if config.num_colors > 0 else None
        problem.add_reflector(
            reflector,
            cost=float(rng.uniform(*config.reflector_cost_range)),
            fanout=int(rng.integers(config.fanout_range[0], config.fanout_range[1] + 1)),
            color=color,
        )
    for sink in sinks:
        problem.add_sink(sink)

    # Stream edges: ensure every stream reaches at least min_candidates reflectors.
    stream_edges: dict[str, set[str]] = {stream: set() for stream in streams}
    for stream in streams:
        for reflector in reflectors:
            if rng.random() < config.stream_edge_density:
                stream_edges[stream].add(reflector)
        needed = min(config.min_candidates_per_demand, len(reflectors))
        while len(stream_edges[stream]) < needed:
            stream_edges[stream].add(reflectors[int(rng.integers(len(reflectors)))])
        for reflector in sorted(stream_edges[stream]):
            problem.add_stream_edge(
                stream,
                reflector,
                loss_probability=float(rng.uniform(*config.stream_loss_range)),
                cost=float(rng.uniform(*config.stream_cost_range)),
            )

    # Delivery edges: ensure every sink is reachable from enough reflectors.
    delivery_edges: dict[str, set[str]] = {sink: set() for sink in sinks}
    for sink in sinks:
        for reflector in reflectors:
            if rng.random() < config.delivery_edge_density:
                delivery_edges[sink].add(reflector)
        needed = min(config.min_candidates_per_demand, len(reflectors))
        while len(delivery_edges[sink]) < needed:
            delivery_edges[sink].add(reflectors[int(rng.integers(len(reflectors)))])
        for reflector in sorted(delivery_edges[sink]):
            problem.add_delivery_edge(
                reflector,
                sink,
                loss_probability=float(rng.uniform(*config.delivery_loss_range)),
                cost=float(rng.uniform(*config.delivery_cost_range)),
            )

    # Demands: each sink subscribes to a few streams it can actually reach well.
    demands_per_sink = min(config.demands_per_sink, config.num_streams)
    for sink in sinks:
        chosen = rng.choice(config.num_streams, size=demands_per_sink, replace=False)
        for stream_index in np.atleast_1d(chosen):
            stream = streams[int(stream_index)]
            threshold = float(rng.uniform(*config.success_threshold_range))
            problem.add_demand(sink, stream, success_threshold=threshold)

    # Candidate fix-up: the stream-edge and delivery-edge sets were forced to be
    # non-empty independently, but a demand needs reflectors present in *both*.
    # Add the missing edges so every demand has at least min_candidates options.
    for demand in problem.demands:
        needed = min(config.min_candidates_per_demand, len(reflectors))
        candidates = set(problem.candidate_reflectors(demand))
        for reflector in reflectors:
            if len(candidates) >= needed:
                break
            if reflector in candidates:
                continue
            if not problem.has_stream_edge(demand.stream, reflector):
                problem.add_stream_edge(
                    demand.stream,
                    reflector,
                    loss_probability=float(rng.uniform(*config.stream_loss_range)),
                    cost=float(rng.uniform(*config.stream_cost_range)),
                )
            if not problem.has_delivery_link(reflector, demand.sink):
                problem.add_delivery_edge(
                    reflector,
                    demand.sink,
                    loss_probability=float(rng.uniform(*config.delivery_loss_range)),
                    cost=float(rng.uniform(*config.delivery_cost_range)),
                )
            candidates.add(reflector)

    # Clamp thresholds that the available reflectors cannot possibly meet
    # (regenerating the demand with a weaker requirement keeps the instance
    # feasible without biasing the structure).
    issues = problem.feasibility_report()
    if issues:
        rebuilt = OverlayDesignProblem(name=problem.name)
        for stream in streams:
            rebuilt.add_stream(stream, bandwidth=problem.stream_bandwidth(stream))
        for reflector in reflectors:
            info = problem.reflector_info(reflector)
            rebuilt.add_reflector(
                reflector, cost=info.cost, fanout=info.fanout, color=info.color
            )
        for sink in sinks:
            rebuilt.add_sink(sink)
        for edge in problem.stream_edges():
            rebuilt.add_stream_edge(
                edge.stream, edge.reflector, edge.loss_probability, edge.cost
            )
        for reflector, sink in problem.delivery_links():
            rebuilt.add_delivery_edge(
                reflector,
                sink,
                loss_probability=problem.delivery_loss(reflector, sink),
                cost=problem.delivery_cost(reflector, sink, streams[0]),
            )
        weak_keys = {issue.demand.key for issue in issues}
        for demand in problem.demands:
            if demand.key in weak_keys:
                # Ask for at most 80% of the achievable weight.
                available = sum(
                    rebuilt.edge_weight(demand, r, cap_at_demand=False)
                    for r in rebuilt.candidate_reflectors(demand)
                )
                threshold = 1.0 - float(np.exp(-0.8 * available))
                threshold = float(np.clip(threshold, 0.5, 0.999))
            else:
                threshold = demand.success_threshold
            rebuilt.add_demand(demand.sink, demand.stream, success_threshold=threshold)
        problem = rebuilt

    problem.validate()
    return problem


def small_example_problem(seed: int = 0) -> OverlayDesignProblem:
    """A tiny deterministic instance used throughout the tests and docstrings."""
    config = RandomInstanceConfig(
        num_streams=2,
        num_reflectors=5,
        num_sinks=6,
        demands_per_sink=1,
        num_colors=2,
    )
    return random_problem(config, rng=seed)
