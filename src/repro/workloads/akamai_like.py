"""Akamai-like overlay topologies.

Substitute for the real deployment data the paper defers to future work
(Section 7: "apply them to real-world network data gleaned from Akamai's
streaming network").  The generator builds a deployment with the structure
described in Sections 1.1--1.2:

* a handful of *regions* (continent-scale clusters on the unit square), each
  with its own bandwidth-price level;
* *co-location centers* scattered inside regions, each homed in one of a small
  number of ISPs;
* *entrypoints* (sources) at a few colos, *reflectors* at most colos (with
  fanout limits capturing the "50 Mbps before becoming CPU-bound" machine
  limit), and *edgeserver* sinks at every colo;
* link loss probabilities driven by distance plus jitter, link costs driven by
  the destination colo's bandwidth price;
* streams with Zipf viewership over the edge regions and per-demand quality
  thresholds.

Only aggregate shape matters for the algorithm (it consumes costs, loss
probabilities, fanouts and thresholds), so this synthetic stand-in exercises
exactly the same code paths as production measurements would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.isp import ISP, ISPRegistry
from repro.network.topology import (
    NodeRole,
    OverlayLink,
    OverlayNode,
    OverlayTopology,
    StreamSpec,
)
from repro.workloads.synthetic import (
    bandwidth_price,
    distance,
    loss_probability_from_distance,
    zipf_viewership,
)


@dataclass
class AkamaiLikeConfig:
    """Shape of the synthetic deployment.

    Attributes
    ----------
    num_regions:
        Continent-scale clusters; region index also sets the bandwidth-price
        multiplier (later regions are "farther"/pricier).
    colos_per_region:
        Co-location centers per region.
    num_isps:
        ISPs; colos are assigned to ISPs round-robin within a region.
    num_sources:
        Entrypoint nodes (one per major event origin).
    reflectors_per_colo:
        Reflector machines per colo.
    num_streams:
        Live streams to carry.
    reflector_fanout:
        Fanout bound per reflector machine.
    reflector_cost_range:
        Uniform range for per-reflector operating cost.
    quality_mix:
        Probabilities of (premium, standard, best-effort) demands.
    isp_outage_probability:
        Per-ISP outage probability recorded in the returned registry.
    edge_density:
        Probability that a given reflector->sink link is measured/available.
    """

    num_regions: int = 3
    colos_per_region: int = 4
    num_isps: int = 3
    num_sources: int = 2
    reflectors_per_colo: int = 2
    num_streams: int = 3
    reflector_fanout: int = 12
    reflector_cost_range: tuple[float, float] = (8.0, 25.0)
    quality_mix: tuple[float, float, float] = (0.2, 0.6, 0.2)
    isp_outage_probability: float = 0.02
    edge_density: float = 0.85

    def __post_init__(self) -> None:
        if min(
            self.num_regions,
            self.colos_per_region,
            self.num_isps,
            self.num_sources,
            self.reflectors_per_colo,
            self.num_streams,
        ) <= 0:
            raise ValueError("all counts must be positive")
        if abs(sum(self.quality_mix) - 1.0) > 1e-9:
            raise ValueError("quality_mix must sum to 1")


_QUALITY_THRESHOLDS = (0.999, 0.99, 0.95)


def generate_akamai_like_topology(
    config: AkamaiLikeConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[OverlayTopology, ISPRegistry]:
    """Generate a synthetic Akamai-like deployment.

    Returns the topology (convert with :meth:`OverlayTopology.to_problem`) and
    the ISP registry describing the correlated-failure model used by the
    simulation and the Section-6.4 benchmarks.
    """
    config = config or AkamaiLikeConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    topology = OverlayTopology(name="akamai-like")
    registry = ISPRegistry()
    for isp_index in range(config.num_isps):
        registry.add(ISP(f"isp{isp_index}", outage_probability=config.isp_outage_probability))

    # Regions: cluster centers spread over the unit square, with price levels.
    region_centers = [
        (float(rng.uniform(0.1, 0.9)), float(rng.uniform(0.1, 0.9)))
        for _ in range(config.num_regions)
    ]
    region_price = [1.0 + 0.4 * index for index in range(config.num_regions)]

    # Colos, reflectors and sinks.
    reflector_names: list[str] = []
    sink_names: list[str] = []
    sink_region: dict[str, int] = {}
    colo_index = 0
    for region, center in enumerate(region_centers):
        for _ in range(config.colos_per_region):
            colo_name = f"colo{colo_index}"
            isp_name = f"isp{colo_index % config.num_isps}"
            location = (
                float(np.clip(center[0] + rng.normal(scale=0.05), 0.0, 1.0)),
                float(np.clip(center[1] + rng.normal(scale=0.05), 0.0, 1.0)),
            )
            price = bandwidth_price(region_price[region], rng)
            for machine in range(config.reflectors_per_colo):
                name = f"{colo_name}-r{machine}"
                topology.add_node(
                    OverlayNode(
                        name=name,
                        role=NodeRole.REFLECTOR,
                        location=location,
                        colo=colo_name,
                        isp=isp_name,
                        capacity=config.reflector_fanout,
                        cost=float(rng.uniform(*config.reflector_cost_range)) * price,
                    )
                )
                reflector_names.append(name)
            sink_name = f"{colo_name}-edge"
            topology.add_node(
                OverlayNode(
                    name=sink_name,
                    role=NodeRole.SINK,
                    location=location,
                    colo=colo_name,
                    isp=isp_name,
                )
            )
            sink_names.append(sink_name)
            sink_region[sink_name] = region
            colo_index += 1

    # Sources: placed near distinct region centers.
    source_names: list[str] = []
    for source_index in range(config.num_sources):
        center = region_centers[source_index % config.num_regions]
        name = f"entry{source_index}"
        topology.add_node(
            OverlayNode(
                name=name,
                role=NodeRole.SOURCE,
                location=(
                    float(np.clip(center[0] + rng.normal(scale=0.03), 0.0, 1.0)),
                    float(np.clip(center[1] + rng.normal(scale=0.03), 0.0, 1.0)),
                ),
                isp=f"isp{source_index % config.num_isps}",
            )
        )
        source_names.append(name)

    # Links: every source reaches every reflector; reflectors reach sinks with
    # probability edge_density (but every sink keeps at least two candidates).
    node = topology.node
    for source in source_names:
        for reflector in reflector_names:
            dist = distance(node(source).location, node(reflector).location)
            topology.add_link(
                OverlayLink(
                    tail=source,
                    head=reflector,
                    loss_probability=loss_probability_from_distance(dist, rng),
                    cost=0.5 + 0.5 * dist,
                )
            )
    for sink in sink_names:
        connected = []
        for reflector in reflector_names:
            if rng.random() < config.edge_density:
                connected.append(reflector)
        while len(connected) < min(2, len(reflector_names)):
            candidate = reflector_names[int(rng.integers(len(reflector_names)))]
            if candidate not in connected:
                connected.append(candidate)
        for reflector in connected:
            dist = distance(node(reflector).location, node(sink).location)
            price = bandwidth_price(
                region_price[sink_region[sink]], rng, base_price=0.6, spread=0.1
            )
            topology.add_link(
                OverlayLink(
                    tail=reflector,
                    head=sink,
                    loss_probability=loss_probability_from_distance(dist, rng),
                    cost=price * (0.3 + 0.7 * dist),
                )
            )

    # Streams with Zipf viewership over the sinks.
    viewership = zipf_viewership(config.num_streams, len(sink_names), rng)
    for stream_index in range(config.num_streams):
        subscribers: dict[str, float] = {}
        count = viewership[stream_index]
        chosen = rng.choice(len(sink_names), size=count, replace=False)
        for sink_idx in np.atleast_1d(chosen):
            tier = int(rng.choice(3, p=list(config.quality_mix)))
            subscribers[sink_names[int(sink_idx)]] = _QUALITY_THRESHOLDS[tier]
        topology.add_stream(
            StreamSpec(
                name=f"stream{stream_index}",
                source=source_names[stream_index % len(source_names)],
                bandwidth=float(rng.choice([0.3, 1.0, 2.0])),
                subscribers=subscribers,
            )
        )

    return topology, registry
