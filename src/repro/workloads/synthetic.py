"""Low-level synthetic-modeling building blocks.

These functions encode the modelling assumptions shared by the Akamai-like
topology generator and the flash-crowd scenario:

* **Loss vs distance** -- long-haul Internet paths lose more packets than
  metro paths (congested peering points, more hops).  We map planar distance
  to a base loss rate and add lognormal jitter, clamped to a configurable
  range.  The absolute numbers (0.1%--15%) bracket the loss rates reported for
  the public Internet in the paper's era.
* **Bandwidth price** -- co-location bandwidth contracts differ by region;
  prices are drawn around a per-region multiplier (Section 1.2's "cost in
  dollars of sending additional bits across each link").
* **Zipf viewership** -- stream popularity is heavy-tailed; the number of edge
  regions subscribing to a stream follows a Zipf-like law, which is how we
  pick subscriber sets of realistic sizes.
"""

from __future__ import annotations

import math

import numpy as np


def distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Euclidean distance between two planar points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


#: Shared loss-model constants (also the defaults of the vectorized variant in
#: :mod:`repro.workloads.internet_scale` -- tune them here, not per workload).
BASE_LOSS = 0.002
LOSS_PER_UNIT_DISTANCE = 0.02
LOSS_JITTER_SIGMA = 0.35
MIN_LOSS = 0.0005
MAX_LOSS = 0.15


def loss_probability_from_distance(
    dist: float,
    rng: np.random.Generator,
    base_loss: float = BASE_LOSS,
    loss_per_unit_distance: float = LOSS_PER_UNIT_DISTANCE,
    jitter_sigma: float = LOSS_JITTER_SIGMA,
    min_loss: float = MIN_LOSS,
    max_loss: float = MAX_LOSS,
) -> float:
    """Map a planar distance to a per-packet loss probability with jitter.

    The mean loss grows affinely with distance; multiplicative lognormal
    jitter models path-to-path variation; the result is clamped to
    ``[min_loss, max_loss]``.
    """
    if dist < 0:
        raise ValueError(f"distance must be non-negative, got {dist}")
    mean = base_loss + loss_per_unit_distance * dist
    jitter = float(rng.lognormal(mean=0.0, sigma=jitter_sigma))
    return float(np.clip(mean * jitter, min_loss, max_loss))


def bandwidth_price(
    region_multiplier: float,
    rng: np.random.Generator,
    base_price: float = 1.0,
    spread: float = 0.25,
) -> float:
    """Per-stream bandwidth price for a colo in a region.

    ``region_multiplier`` captures systematic regional differences (e.g.
    trans-oceanic transit being pricier); ``spread`` adds per-colo variation.
    """
    if region_multiplier <= 0:
        raise ValueError("region multiplier must be positive")
    noise = 1.0 + spread * float(rng.uniform(-1.0, 1.0))
    return max(base_price * region_multiplier * noise, 1e-3)


def zipf_viewership(
    num_streams: int,
    num_regions: int,
    rng: np.random.Generator,
    exponent: float = 1.1,
    min_regions: int = 1,
) -> list[int]:
    """Number of subscribing regions per stream, Zipf-distributed by rank.

    Stream 0 is the most popular (subscribed by ~all regions), later streams
    reach geometrically fewer regions, never fewer than ``min_regions``.
    """
    if num_streams <= 0 or num_regions <= 0:
        raise ValueError("num_streams and num_regions must be positive")
    if min_regions < 1:
        raise ValueError("min_regions must be at least 1")
    counts = []
    for rank in range(1, num_streams + 1):
        expected = num_regions / rank**exponent
        jitter = float(rng.uniform(0.8, 1.2))
        counts.append(int(np.clip(round(expected * jitter), min_regions, num_regions)))
    return counts


def success_threshold_for_quality(quality: str) -> float:
    """Map a named stream-quality tier to a required success probability.

    The thresholds correspond to post-reconstruction loss budgets that keep
    the player glitch-free: premium events tolerate 0.1% loss, standard
    streams 1%, best-effort 5%.
    """
    thresholds = {"premium": 0.999, "standard": 0.99, "best-effort": 0.95}
    try:
        return thresholds[quality]
    except KeyError:
        raise ValueError(
            f"unknown quality tier {quality!r}; expected one of {sorted(thresholds)}"
        ) from None
