"""AS/geo-grounded deployments: real metro populations, ISP peering flavour.

:mod:`repro.workloads.internet_scale` scales to millions of uniform sinks on
a unit square; this module is the *realism* tier next to it.  Instances are
grounded in the actual geography the paper's deployment lives in:

* *metros* -- the world's largest metropolitan areas with their real
  populations and coordinates; sinks are allocated proportionally to
  population (Tokyo gets ~4x the edgeservers of Chicago), and link loss
  follows great-circle distance.
* *ISP peering flavour* -- a small set of backbone carriers, each with a
  regional footprint (an Asia-centric carrier peers in Asian and US metros,
  a Latin-American one in South America and Iberia...).  Every metro is
  **multi-homed in at least two carriers**, and its reflectors alternate
  between them, so each sink's local candidates already span two ISPs --
  the structural fact the paper's Section-6.4 ISP-diversity constraints
  exploit, and what makes ``spaa03-extended`` feasible on every instance.
* *naming* -- metro slugs are hyphen-free (``saopaulo``, ``newyork``), so
  node names like ``tokyo-r1``/``tokyo-s17`` let
  :func:`repro.simulation.scenarios.infer_clusters` recover metros as the
  topology clusters that regional/disaster scenarios strike.

The generator mirrors the batched construction of
:func:`~repro.workloads.internet_scale.generate_internet_scale_problem`
(vectorized loss draws, threshold downgrade to guarantee feasibility) at the
hundreds-to-thousands-of-sinks size the A1 designer-vs-adversary bench
sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.problem import OverlayDesignProblem
from repro.core.weights import threshold_to_weight
from repro.network.isp import ISP, ISPRegistry
from repro.workloads.internet_scale import _batched_loss

_QUALITY_THRESHOLDS = (0.999, 0.99, 0.95)

#: (slug, latitude, longitude, population in millions, region).  Slugs are
#: hyphen-free on purpose: ``infer_clusters`` splits node names on the first
#: ``-``, so ``saopaulo-s3`` must yield the metro, not ``"sao"``.
METROS: tuple[tuple[str, float, float, float, str], ...] = (
    ("tokyo", 35.68, 139.69, 37.4, "asia"),
    ("delhi", 28.61, 77.21, 32.9, "asia"),
    ("shanghai", 31.23, 121.47, 29.2, "asia"),
    ("dhaka", 23.81, 90.41, 23.2, "asia"),
    ("saopaulo", -23.55, -46.63, 22.6, "southamerica"),
    ("mexicocity", 19.43, -99.13, 22.3, "northamerica"),
    ("cairo", 30.04, 31.24, 22.2, "africa"),
    ("beijing", 39.90, 116.41, 21.8, "asia"),
    ("mumbai", 19.08, 72.88, 21.3, "asia"),
    ("osaka", 34.69, 135.50, 19.0, "asia"),
    ("newyork", 40.71, -74.01, 18.8, "northamerica"),
    ("karachi", 24.86, 67.01, 17.6, "asia"),
    ("chongqing", 29.56, 106.55, 16.9, "asia"),
    ("kinshasa", -4.44, 15.27, 16.3, "africa"),
    ("lagos", 6.52, 3.38, 15.9, "africa"),
    ("istanbul", 41.01, 28.98, 15.8, "europe"),
    ("buenosaires", -34.60, -58.38, 15.4, "southamerica"),
    ("kolkata", 22.57, 88.36, 15.2, "asia"),
    ("manila", 14.60, 120.98, 14.4, "asia"),
    ("guangzhou", 23.13, 113.26, 14.0, "asia"),
    ("riodejaneiro", -22.91, -43.17, 13.7, "southamerica"),
    ("moscow", 55.76, 37.62, 12.6, "europe"),
    ("losangeles", 34.05, -118.24, 12.5, "northamerica"),
    ("bogota", 4.71, -74.07, 11.3, "southamerica"),
    ("paris", 48.86, 2.35, 11.2, "europe"),
    ("lima", -12.05, -77.04, 11.2, "southamerica"),
    ("jakarta", -6.21, 106.85, 11.1, "asia"),
    ("seoul", 37.57, 126.98, 10.0, "asia"),
    ("london", 51.51, -0.13, 9.6, "europe"),
    ("chicago", 41.88, -87.63, 8.9, "northamerica"),
)

#: Backbone carriers and the regions they peer in.  Every region is covered
#: by at least two carriers, which is what guarantees multi-homing below.
CARRIERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("ntt", ("asia", "northamerica")),
    ("tata", ("asia", "europe")),
    ("pccw", ("asia",)),
    ("telia", ("europe", "northamerica")),
    ("cogent", ("northamerica", "europe")),
    ("lumen", ("northamerica", "southamerica")),
    ("orange", ("europe", "africa")),
    ("telxius", ("southamerica", "europe")),
    ("seacom", ("africa", "asia")),
)

#: Great-circle kilometres per abstract distance unit.  8000 km -- roughly a
#: transatlantic hop -- maps to 1.0, the scale the synthetic loss model's
#: per-unit-distance slope was calibrated for on the unit square.
_KM_PER_UNIT = 8000.0
_EARTH_RADIUS_KM = 6371.0


def great_circle_km(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Vectorized haversine distance in kilometres."""
    p1, l1, p2, l2 = (np.radians(np.asarray(x, dtype=np.float64)) for x in (lat1, lon1, lat2, lon2))
    h = np.sin((p2 - p1) / 2.0) ** 2 + np.cos(p1) * np.cos(p2) * np.sin((l2 - l1) / 2.0) ** 2
    return 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))


@dataclass
class AsGeoConfig:
    """Shape of an AS/geo-grounded deployment.

    ``num_metros`` takes the largest metros from :data:`METROS`;
    ``num_sinks`` edgeservers are spread over them proportionally to real
    population (every metro keeps at least one).  Reflectors per metro
    alternate between the metro's carriers, so with
    ``reflectors_per_metro >= 2`` every sink's local candidates span two
    ISPs.  The remaining knobs mirror
    :class:`~repro.workloads.internet_scale.InternetScaleConfig`.
    """

    num_sinks: int = 600
    num_metros: int = 24
    num_streams: int = 3
    num_sources: int = 3
    reflectors_per_metro: int = 3
    candidates_per_sink: int = 6
    carriers_per_metro: int = 3
    fanout_headroom: float = 2.5
    quality_mix: tuple[float, float, float] = (0.2, 0.6, 0.2)
    isp_outage_probability: float = 0.02

    def __post_init__(self) -> None:
        if min(
            self.num_sinks,
            self.num_metros,
            self.num_streams,
            self.num_sources,
            self.reflectors_per_metro,
            self.candidates_per_sink,
        ) <= 0:
            raise ValueError("all counts must be positive")
        if self.num_metros > len(METROS):
            raise ValueError(f"num_metros must be <= {len(METROS)}")
        if self.num_sinks < self.num_metros:
            raise ValueError("need at least one sink per metro")
        if self.reflectors_per_metro < 2:
            raise ValueError("reflectors_per_metro must be >= 2 (ISP diversity)")
        if self.candidates_per_sink < 2:
            raise ValueError("candidates_per_sink must be at least 2")
        if self.carriers_per_metro < 2:
            raise ValueError("carriers_per_metro must be >= 2 (multi-homing)")
        if abs(sum(self.quality_mix) - 1.0) > 1e-9:
            raise ValueError("quality_mix must sum to 1")
        if self.fanout_headroom <= 0:
            raise ValueError("fanout_headroom must be positive")


def _allocate_sinks(populations: np.ndarray, num_sinks: int) -> np.ndarray:
    """Proportional allocation with every metro >= 1 (largest remainder)."""
    share = populations / populations.sum() * (num_sinks - len(populations))
    counts = np.floor(share).astype(np.int64) + 1
    remainder = share - np.floor(share)
    shortfall = num_sinks - int(counts.sum())
    if shortfall > 0:
        for index in np.argsort(-remainder)[:shortfall]:
            counts[index] += 1
    return counts


def generate_as_geo_problem(
    config: AsGeoConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[OverlayDesignProblem, ISPRegistry]:
    """Generate an AS/geo instance and its carrier registry.

    Deterministic given ``rng``; feasible by construction (demand thresholds
    are downgraded where the measured candidate paths cannot carry the drawn
    tier, exactly as in the internet-scale generator), and feasible *under
    ISP-diversity constraints*: every sink's candidate set spans at least
    two carriers.
    """
    config = config or AsGeoConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    metros = sorted(METROS, key=lambda m: (-m[3], m[0]))[: config.num_metros]
    slugs = [m[0] for m in metros]
    lat = np.array([m[1] for m in metros])
    lon = np.array([m[2] for m in metros])
    populations = np.array([m[3] for m in metros])
    regions = [m[4] for m in metros]

    problem = OverlayDesignProblem(name=f"as-geo-{config.num_sinks}")
    registry = ISPRegistry()
    for carrier, _footprint in CARRIERS:
        registry.add(ISP(carrier, outage_probability=config.isp_outage_probability))

    # --- multi-homing: which carriers peer in each metro --------------------
    metro_carriers: list[list[str]] = []
    for index, region in enumerate(regions):
        present = [name for name, footprint in CARRIERS if region in footprint]
        # Region coverage in CARRIERS guarantees >= 2 candidates everywhere.
        keep = min(config.carriers_per_metro, len(present))
        order = rng.permutation(len(present))
        metro_carriers.append(sorted(present[i] for i in order[:keep]))

    # --- metro-to-metro distances in abstract units -------------------------
    dist_units = (
        great_circle_km(lat[:, None], lon[:, None], lat[None, :], lon[None, :])
        / _KM_PER_UNIT
    )
    metro_price = 1.0 + 0.4 * rng.random(config.num_metros)

    # --- reflectors: alternate between the metro's carriers -----------------
    num_reflectors = config.num_metros * config.reflectors_per_metro
    expected_load = 2.5 * config.num_sinks / num_reflectors
    fanout = max(2, int(math.ceil(config.fanout_headroom * expected_load)))
    reflector_cost = rng.uniform(8.0, 25.0, size=num_reflectors)
    reflector_metro = np.repeat(np.arange(config.num_metros), config.reflectors_per_metro)
    reflector_names: list[str] = []
    reflector_carrier: list[str] = []
    for metro in range(config.num_metros):
        carriers = metro_carriers[metro]
        for machine in range(config.reflectors_per_metro):
            name = f"{slugs[metro]}-r{machine}"
            reflector_names.append(name)
            reflector_carrier.append(carriers[machine % len(carriers)])
            problem.add_reflector(
                name,
                cost=float(reflector_cost[len(reflector_names) - 1] * metro_price[metro]),
                fanout=fanout,
                color=reflector_carrier[-1],
            )

    # --- sources and streams: entrypoints at the biggest metros -------------
    source_metros = np.arange(config.num_sources) % config.num_metros
    for stream_index in range(config.num_streams):
        problem.add_stream(
            f"stream{stream_index}", bandwidth=float(rng.choice([0.3, 1.0, 2.0]))
        )
    stream_loss = np.empty((config.num_streams, num_reflectors))
    for stream_index in range(config.num_streams):
        origin = int(source_metros[stream_index % config.num_sources])
        dist = dist_units[origin][reflector_metro]
        loss = _batched_loss(dist, rng)
        cost = 0.5 + 0.5 * dist
        stream_loss[stream_index] = loss
        for r_index, reflector in enumerate(reflector_names):
            problem.add_stream_edge(
                f"stream{stream_index}", reflector, float(loss[r_index]), float(cost[r_index])
            )

    # --- sinks: population-proportional allocation --------------------------
    sink_counts = _allocate_sinks(populations, config.num_sinks)
    sink_metro = np.repeat(np.arange(config.num_metros), sink_counts)
    sink_names = [
        f"{slugs[metro]}-s{index}" for index, metro in enumerate(sink_metro)
    ]
    for name in sink_names:
        problem.add_sink(name)

    stream_weights = 1.0 / np.arange(1, config.num_streams + 1) ** 1.1
    stream_weights /= stream_weights.sum()
    num_sinks = len(sink_names)
    sink_stream = rng.choice(config.num_streams, size=num_sinks, p=stream_weights)
    sink_tier = rng.choice(3, size=num_sinks, p=list(config.quality_mix))

    # --- candidate delivery edges: local first, then peering-biased remote --
    # Remote draws prefer nearby, well-peered metros: weight proportional to
    # population over (1 + distance^2), zero for the local metro.
    local = min(config.reflectors_per_metro, config.candidates_per_sink)
    n_remote = max(config.candidates_per_sink - local, 0)
    remote_weight = populations[None, :] / (1.0 + dist_units**2)
    np.fill_diagonal(remote_weight, 0.0)
    remote_weight = remote_weight / remote_weight.sum(axis=1, keepdims=True)

    candidates: list[list[int]] = []
    for s_index in range(num_sinks):
        metro = int(sink_metro[s_index])
        base = metro * config.reflectors_per_metro
        chosen = list(range(base, base + local))
        if n_remote:
            remote_metros = rng.choice(
                config.num_metros, size=n_remote, replace=False, p=remote_weight[metro]
            )
            for remote in remote_metros:
                machine = int(rng.integers(0, config.reflectors_per_metro))
                chosen.append(int(remote) * config.reflectors_per_metro + machine)
        candidates.append(chosen)

    edge_sink = np.array([s for s, chosen in enumerate(candidates) for _ in chosen])
    edge_reflector = np.array([r for chosen in candidates for r in chosen])
    edge_dist = dist_units[sink_metro[edge_sink], reflector_metro[edge_reflector]]
    # Intra-metro hops still cover real ground (last-mile + metro backbone).
    edge_dist = edge_dist + rng.uniform(0.005, 0.03, size=edge_dist.shape)
    delivery_loss = _batched_loss(edge_dist, rng)
    price = metro_price[sink_metro[edge_sink]] * (
        0.6 + 0.1 * rng.uniform(-1.0, 1.0, size=len(edge_sink))
    )
    delivery_cost = price * (0.3 + 0.7 * edge_dist)
    for index in range(len(edge_sink)):
        problem.add_delivery_edge(
            reflector_names[int(edge_reflector[index])],
            sink_names[int(edge_sink[index])],
            float(delivery_loss[index]),
            float(delivery_cost[index]),
        )

    # --- demands with feasibility-preserving threshold downgrade ------------
    edge_stream_loss = stream_loss[sink_stream[edge_sink], edge_reflector]
    path_failure = edge_stream_loss + delivery_loss - edge_stream_loss * delivery_loss
    edge_w = -np.log(np.clip(path_failure, 1e-12, 1.0))
    offsets = np.cumsum([0] + [len(chosen) for chosen in candidates])
    carrier_index = {carrier: i for i, carrier in enumerate(dict.fromkeys(reflector_carrier))}
    reflector_color = np.array([carrier_index[c] for c in reflector_carrier])
    for s_index, name in enumerate(sink_names):
        span = slice(offsets[s_index], offsets[s_index + 1])
        weights = edge_w[span]
        colors = reflector_color[edge_reflector[span]]
        # Section 6.4 admits at most one reflector per carrier on a demand, so
        # the achievable coverage is the best path per color, not the plain sum.
        per_color = np.zeros(len(carrier_index))
        np.maximum.at(per_color, colors, weights)
        threshold = None
        for tier in range(int(sink_tier[s_index]), len(_QUALITY_THRESHOLDS)):
            required = threshold_to_weight(_QUALITY_THRESHOLDS[tier])
            if float(np.minimum(per_color, required).sum()) >= 1.1 * required:
                threshold = _QUALITY_THRESHOLDS[tier]
                break
        if threshold is None:
            threshold = float(np.clip(1.0 - math.exp(-0.75 * per_color.sum()), 0.5, 0.95))
        problem.add_demand(name, f"stream{int(sink_stream[s_index])}", threshold)

    return problem, registry


__all__ = ["AsGeoConfig", "CARRIERS", "METROS", "generate_as_geo_problem", "great_circle_km"]
