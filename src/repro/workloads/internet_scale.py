"""Internet-scale Akamai-like instances (the 10k--50k sink tier).

The :mod:`repro.workloads.akamai_like` generator models a deployment at the
granularity of individual colos and builds an :class:`OverlayTopology` node by
node, which is the right fidelity for hundreds of sinks but far too slow (and
far too dense) for the "millions of users" regime the ROADMAP targets.  This
module is the scaled-up tier: it samples every random quantity as a numpy
batch and emits an :class:`~repro.core.problem.OverlayDesignProblem` directly,
with the *sparse* candidate structure real CDNs have -- each edgeserver is
measured against a handful of reflectors, mostly inside its own metro, plus a
few remote fallbacks.

Structure (matching the paper's Sections 1.1--1.2 at CDN scale):

* *metros* -- ISP/metro clusters on the unit square; every metro hosts a few
  reflector machines and a slice of the edgeserver (sink) population.  Node
  names carry the metro prefix (``metro0042-r1``, ``metro0042-s17``), which is
  what :func:`repro.simulation.scenarios.infer_clusters` and the
  ``"metro"`` partitioner of :mod:`repro.scale` recover.
* *ISPs* -- metros are homed round-robin in a small set of ISPs; reflectors
  inherit the ISP as their *color* (the Section-6.4 metadata).
* *sinks* -- one demand per sink (the paper's WLOG single-commodity sinks),
  stream chosen Zipf-style, threshold drawn from a premium/standard/
  best-effort mix and downgraded where the measured candidate paths cannot
  carry the requested tier (as a real provisioning system would).
* *candidate edges* -- each sink gets ``candidates_per_sink`` delivery edges:
  its own metro's reflectors first, the rest sampled from remote metros.
  This keeps the LP at ``O(n * candidates)`` nonzeros instead of
  ``O(n * |R|)``, and the remote candidates are exactly the cross-shard
  edges the stitch stage of :mod:`repro.scale` reconciles.

The generator is deterministic given ``rng`` and scales linearly: a 10k-sink
instance builds in about a second, 50k in a few.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.problem import OverlayDesignProblem
from repro.core.weights import threshold_to_weight
from repro.network.isp import ISP, ISPRegistry
from repro.workloads.synthetic import (
    BASE_LOSS,
    LOSS_JITTER_SIGMA,
    LOSS_PER_UNIT_DISTANCE,
    MAX_LOSS,
    MIN_LOSS,
)

_QUALITY_THRESHOLDS = (0.999, 0.99, 0.95)


@dataclass
class InternetScaleConfig:
    """Shape of the internet-scale deployment.

    Attributes
    ----------
    num_sinks:
        Edgeservers (= demands; each sink subscribes to exactly one stream).
    sinks_per_metro:
        Metro population; ``ceil(num_sinks / sinks_per_metro)`` metros are
        created.
    num_isps:
        ISPs homing the metros round-robin (reflector colors).
    num_streams, num_sources:
        Streams and entrypoint nodes; stream ``k`` originates at source
        ``k % num_sources``.
    reflectors_per_metro:
        Reflector machines per metro.
    candidates_per_sink:
        Delivery edges measured per sink (its LP candidate set); the local
        metro's reflectors come first, the rest are remote samples.
    fanout_headroom:
        Reflector fanout bounds are sized to ``headroom x`` the expected
        per-reflector load, so instances are feasible but contended.
    quality_mix:
        Probabilities of (premium, standard, best-effort) demands.
    isp_outage_probability:
        Recorded in the returned :class:`~repro.network.isp.ISPRegistry`.
    """

    num_sinks: int = 10_000
    sinks_per_metro: int = 100
    num_isps: int = 8
    num_streams: int = 3
    num_sources: int = 3
    reflectors_per_metro: int = 2
    candidates_per_sink: int = 5
    fanout_headroom: float = 2.5
    quality_mix: tuple[float, float, float] = (0.2, 0.6, 0.2)
    isp_outage_probability: float = 0.02

    def __post_init__(self) -> None:
        if min(
            self.num_sinks,
            self.sinks_per_metro,
            self.num_isps,
            self.num_streams,
            self.num_sources,
            self.reflectors_per_metro,
            self.candidates_per_sink,
        ) <= 0:
            raise ValueError("all counts must be positive")
        if self.candidates_per_sink < 2:
            raise ValueError("candidates_per_sink must be at least 2")
        if abs(sum(self.quality_mix) - 1.0) > 1e-9:
            raise ValueError("quality_mix must sum to 1")
        if self.fanout_headroom <= 0:
            raise ValueError("fanout_headroom must be positive")

    @property
    def num_metros(self) -> int:
        return max(1, math.ceil(self.num_sinks / self.sinks_per_metro))


def _batched_loss(
    dist: np.ndarray,
    rng: np.random.Generator,
    base_loss: float = BASE_LOSS,
    loss_per_unit_distance: float = LOSS_PER_UNIT_DISTANCE,
    jitter_sigma: float = LOSS_JITTER_SIGMA,
    min_loss: float = MIN_LOSS,
    max_loss: float = MAX_LOSS,
) -> np.ndarray:
    """Vectorized :func:`repro.workloads.synthetic.loss_probability_from_distance`."""
    mean = base_loss + loss_per_unit_distance * dist
    jitter = rng.lognormal(mean=0.0, sigma=jitter_sigma, size=dist.shape)
    return np.clip(mean * jitter, min_loss, max_loss)


def generate_internet_scale_problem(
    config: InternetScaleConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[OverlayDesignProblem, ISPRegistry]:
    """Generate an internet-scale instance and its ISP registry.

    Every random quantity is sampled as a numpy batch from ``rng``, so the
    instance is deterministic given the generator state and builds in time
    linear in ``num_sinks * candidates_per_sink``.  Demand thresholds are
    downgraded per sink where the candidate paths cannot carry the drawn
    quality tier, so every generated instance is feasible by construction
    (``problem.feasibility_report() == []``).
    """
    config = config or InternetScaleConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    num_metros = config.num_metros
    num_reflectors = num_metros * config.reflectors_per_metro
    problem = OverlayDesignProblem(name=f"internet-scale-{config.num_sinks}")

    registry = ISPRegistry()
    for isp_index in range(config.num_isps):
        registry.add(
            ISP(f"isp{isp_index}", outage_probability=config.isp_outage_probability)
        )

    # --- metros: locations, prices, ISP homing (all batched) ----------------
    metro_xy = rng.uniform(0.05, 0.95, size=(num_metros, 2))
    metro_price = 1.0 + 0.4 * rng.random(num_metros)
    metro_isp = np.arange(num_metros) % config.num_isps
    width = len(str(max(num_metros - 1, 1)))

    # --- reflectors ---------------------------------------------------------
    # Fanout bounds: size each reflector for `headroom x` its expected load,
    # assuming ~2.5 copies per demand spread over the whole fleet.
    expected_load = 2.5 * config.num_sinks / num_reflectors
    fanout = max(2, int(math.ceil(config.fanout_headroom * expected_load)))
    reflector_cost = rng.uniform(8.0, 25.0, size=num_reflectors)
    reflector_metro = np.repeat(np.arange(num_metros), config.reflectors_per_metro)
    reflector_names = [
        f"metro{metro:0{width}d}-r{machine}"
        for metro in range(num_metros)
        for machine in range(config.reflectors_per_metro)
    ]
    for index, name in enumerate(reflector_names):
        metro = int(reflector_metro[index])
        problem.add_reflector(
            name,
            cost=float(reflector_cost[index] * metro_price[metro]),
            fanout=fanout,
            color=f"isp{metro_isp[metro]}",
        )

    # --- sources and streams ------------------------------------------------
    source_xy = rng.uniform(0.2, 0.8, size=(config.num_sources, 2))
    for stream_index in range(config.num_streams):
        problem.add_stream(
            f"stream{stream_index}", bandwidth=float(rng.choice([0.3, 1.0, 2.0]))
        )

    # Stream edges: every stream can reach every reflector (entrypoint fanout
    # is backbone-provisioned); loss/cost follow source->metro distance.
    reflector_xy = metro_xy[reflector_metro]
    stream_loss = np.empty((config.num_streams, num_reflectors))
    for stream_index in range(config.num_streams):
        origin = source_xy[stream_index % config.num_sources]
        dist = np.hypot(
            reflector_xy[:, 0] - origin[0], reflector_xy[:, 1] - origin[1]
        )
        loss = _batched_loss(dist, rng)
        cost = 0.5 + 0.5 * dist
        stream_loss[stream_index] = loss
        stream = f"stream{stream_index}"
        for r_index, reflector in enumerate(reflector_names):
            problem.add_stream_edge(
                stream, reflector, float(loss[r_index]), float(cost[r_index])
            )

    # --- sinks and candidate delivery edges ---------------------------------
    sink_metro = np.minimum(
        np.arange(config.num_sinks) // config.sinks_per_metro, num_metros - 1
    )
    sink_names = [
        f"metro{metro:0{width}d}-s{index}"
        for index, metro in enumerate(sink_metro)
    ]
    for name in sink_names:
        problem.add_sink(name)

    # Zipf-ish stream popularity: stream k gets weight 1/(k+1)^1.1.
    stream_weights = 1.0 / np.arange(1, config.num_streams + 1) ** 1.1
    stream_weights /= stream_weights.sum()
    sink_stream = rng.choice(config.num_streams, size=config.num_sinks, p=stream_weights)
    sink_tier = rng.choice(3, size=config.num_sinks, p=list(config.quality_mix))

    # Candidate sets: the local metro's reflectors first, then remote draws
    # (with replacement; duplicates filtered per sink, a few spares drawn).
    local = min(config.reflectors_per_metro, config.candidates_per_sink)
    n_remote = max(config.candidates_per_sink - local, 2 - local)
    remote_draw = rng.integers(
        0, num_reflectors, size=(config.num_sinks, n_remote + 4)
    )
    jitter = rng.normal(scale=0.03, size=(config.num_sinks, 2))
    sink_xy = metro_xy[sink_metro] + jitter

    candidates: list[list[int]] = []
    for s_index in range(config.num_sinks):
        base = int(sink_metro[s_index]) * config.reflectors_per_metro
        chosen = list(range(base, base + local))
        want = local + n_remote
        for candidate in remote_draw[s_index]:
            if len(chosen) >= want:
                break
            candidate = int(candidate)
            if candidate not in chosen:
                chosen.append(candidate)
        candidates.append(chosen)

    edge_sink = np.array(
        [s for s, chosen in enumerate(candidates) for _ in chosen]
    )
    edge_reflector = np.array([r for chosen in candidates for r in chosen])
    dist = np.hypot(
        sink_xy[edge_sink, 0] - reflector_xy[edge_reflector, 0],
        sink_xy[edge_sink, 1] - reflector_xy[edge_reflector, 1],
    )
    delivery_loss = _batched_loss(dist, rng)
    price = metro_price[sink_metro[edge_sink]] * (
        0.6 + 0.1 * rng.uniform(-1.0, 1.0, size=len(edge_sink))
    )
    delivery_cost = price * (0.3 + 0.7 * dist)
    for index in range(len(edge_sink)):
        problem.add_delivery_edge(
            reflector_names[int(edge_reflector[index])],
            sink_names[int(edge_sink[index])],
            float(delivery_loss[index]),
            float(delivery_cost[index]),
        )

    # --- demands: drawn tier, downgraded to what the paths can carry --------
    # Uncapped per-edge weight w = -log(p_path); the demand weight must stay
    # below ~the sum of its candidates' (capped) weights for the LP to be
    # feasible, so each sink's threshold is the best tier its measured paths
    # support with 10% margin (falling back to a bespoke sub-tier threshold).
    edge_stream_loss = stream_loss[sink_stream[edge_sink], edge_reflector]
    path_failure = (
        edge_stream_loss + delivery_loss - edge_stream_loss * delivery_loss
    )
    edge_w = -np.log(np.clip(path_failure, 1e-12, 1.0))
    offsets = np.cumsum([0] + [len(chosen) for chosen in candidates])
    for s_index, name in enumerate(sink_names):
        weights = edge_w[offsets[s_index] : offsets[s_index + 1]]
        threshold = None
        for tier in range(int(sink_tier[s_index]), len(_QUALITY_THRESHOLDS)):
            required = threshold_to_weight(_QUALITY_THRESHOLDS[tier])
            if float(np.minimum(weights, required).sum()) >= 1.1 * required:
                threshold = _QUALITY_THRESHOLDS[tier]
                break
        if threshold is None:
            # Even best-effort is out of reach: require what ~3/4 of the
            # available (uncapped) weight can deliver.
            threshold = float(np.clip(1.0 - math.exp(-0.75 * weights.sum()), 0.5, 0.95))
        problem.add_demand(name, f"stream{int(sink_stream[s_index])}", threshold)

    return problem, registry


__all__ = ["InternetScaleConfig", "generate_internet_scale_problem"]
