"""The hand-built "tiny" instance with known numbers.

One stream, three reflectors, two sinks.  Small enough to check every LP
coefficient by hand, rich enough to exercise all constraint families; it is
the instance used throughout the test suite, the README quickstart and the
documentation examples, and it doubles as the parity fixture for the sparse
vs expression-tree LP builders.
"""

from __future__ import annotations

from repro.core.problem import OverlayDesignProblem


def build_tiny_problem() -> OverlayDesignProblem:
    """Hand-built 1-stream / 3-reflector / 2-sink instance with known numbers."""
    problem = OverlayDesignProblem(name="tiny")
    problem.add_stream("s")
    problem.add_reflector("r1", cost=10.0, fanout=3)
    problem.add_reflector("r2", cost=6.0, fanout=2)
    problem.add_reflector("r3", cost=4.0, fanout=2)
    problem.add_sink("d1")
    problem.add_sink("d2")
    problem.add_stream_edge("s", "r1", loss_probability=0.01, cost=1.0)
    problem.add_stream_edge("s", "r2", loss_probability=0.02, cost=0.8)
    problem.add_stream_edge("s", "r3", loss_probability=0.05, cost=0.5)
    problem.add_delivery_edge("r1", "d1", loss_probability=0.02, cost=0.6)
    problem.add_delivery_edge("r1", "d2", loss_probability=0.03, cost=0.7)
    problem.add_delivery_edge("r2", "d1", loss_probability=0.05, cost=0.4)
    problem.add_delivery_edge("r2", "d2", loss_probability=0.04, cost=0.4)
    problem.add_delivery_edge("r3", "d1", loss_probability=0.08, cost=0.2)
    problem.add_delivery_edge("r3", "d2", loss_probability=0.10, cost=0.2)
    problem.add_demand("d1", "s", success_threshold=0.995)
    problem.add_demand("d2", "s", success_threshold=0.99)
    return problem


__all__ = ["build_tiny_problem"]
