"""The MacWorld-style flash-crowd scenario.

Section 1 of the paper motivates the overlay with the January 2002 MacWorld
keynote: 50,000 simultaneous viewers, 16.5 Gbps peak, requiring hundreds of
servers spread across colos.  This generator layers a *flash-crowd event* on
top of an Akamai-like deployment: one high-bitrate premium stream subscribed
by (almost) every edge region at a strict quality threshold, plus the regular
background streams.  It is the workload of the C1 comparative benchmark and
of the ``examples/flash_crowd_event.py`` example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.isp import ISPRegistry
from repro.network.topology import NodeRole, OverlayTopology, StreamSpec
from repro.workloads.akamai_like import AkamaiLikeConfig, generate_akamai_like_topology


@dataclass
class FlashCrowdConfig:
    """Parameters of the flash-crowd scenario.

    Attributes
    ----------
    deployment:
        Configuration of the underlying Akamai-like deployment.
    event_bandwidth:
        Bitrate multiplier of the event stream (relative to a standard
        stream); 2--20 Mbps full-screen video motivates values well above 1.
    event_threshold:
        Required success probability at every subscribed edgeserver.
    subscription_fraction:
        Fraction of edge regions subscribing to the event.
    """

    deployment: AkamaiLikeConfig | None = None
    event_bandwidth: float = 4.0
    event_threshold: float = 0.999
    subscription_fraction: float = 0.95

    def __post_init__(self) -> None:
        if self.event_bandwidth <= 0:
            raise ValueError("event bandwidth must be positive")
        if not 0.0 < self.event_threshold < 1.0:
            raise ValueError("event threshold must lie in (0, 1)")
        if not 0.0 < self.subscription_fraction <= 1.0:
            raise ValueError("subscription fraction must lie in (0, 1]")


def generate_flash_crowd_scenario(
    config: FlashCrowdConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[OverlayTopology, ISPRegistry]:
    """Generate an Akamai-like deployment carrying a flash-crowd event stream."""
    config = config or FlashCrowdConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    deployment_config = config.deployment or AkamaiLikeConfig()
    topology, registry = generate_akamai_like_topology(deployment_config, rng)

    sinks = [node.name for node in topology.nodes(NodeRole.SINK)]
    sources = [node.name for node in topology.nodes(NodeRole.SOURCE)]
    num_subscribers = max(1, int(round(config.subscription_fraction * len(sinks))))
    chosen = rng.choice(len(sinks), size=num_subscribers, replace=False)
    subscribers = {sinks[int(idx)]: config.event_threshold for idx in np.atleast_1d(chosen)}

    topology.add_stream(
        StreamSpec(
            name="flash-crowd-event",
            source=sources[0],
            bandwidth=config.event_bandwidth,
            subscribers=subscribers,
        )
    )
    return topology, registry
