"""Workload and instance generators.

The paper evaluates nothing empirically (implementation is listed as future
work) but describes the deployment its algorithm targets: Akamai's live
streaming network, with entrypoints, reflectors and edgeservers spread across
co-location centers and ISPs world-wide, streams with regional viewership, and
flash-crowd events such as the January 2002 MacWorld keynote (50,000 viewers,
16.5 Gbps peak).

This subpackage synthesises such deployments so every code path of the
algorithm and of the evaluation harness can be exercised:

* :mod:`repro.workloads.random_instances` -- small random
  :class:`~repro.core.problem.OverlayDesignProblem` instances with controlled
  feasibility, used by unit/property tests and micro benchmarks;
* :mod:`repro.workloads.synthetic` -- low-level building blocks (distance-based
  loss, bandwidth price models, Zipf viewership);
* :mod:`repro.workloads.akamai_like` -- full Akamai-like topologies (colos,
  ISPs, reflectors, edge regions);
* :mod:`repro.workloads.flash_crowd` -- the MacWorld-style flash-crowd
  scenario used by the C1 benchmark and the examples;
* :mod:`repro.workloads.internet_scale` -- the vectorized 10k--50k sink tier
  with sparse metro-local candidate sets, built for the sharded pipeline of
  :mod:`repro.scale` and the T8 scaling benchmark;
* :mod:`repro.workloads.as_geo` -- AS/geo-grounded instances: real metro
  populations and coordinates, backbone carriers with regional footprints,
  every metro multi-homed in >= 2 ISPs (the A1 adversary bench's workload).
"""

from repro.workloads.akamai_like import AkamaiLikeConfig, generate_akamai_like_topology
from repro.workloads.as_geo import AsGeoConfig, generate_as_geo_problem
from repro.workloads.flash_crowd import FlashCrowdConfig, generate_flash_crowd_scenario
from repro.workloads.internet_scale import (
    InternetScaleConfig,
    generate_internet_scale_problem,
)
from repro.workloads.random_instances import (
    RandomInstanceConfig,
    random_problem,
    small_example_problem,
)
from repro.workloads.synthetic import (
    bandwidth_price,
    distance,
    loss_probability_from_distance,
    zipf_viewership,
)
from repro.workloads.tiny import build_tiny_problem

__all__ = [
    "AkamaiLikeConfig",
    "AsGeoConfig",
    "FlashCrowdConfig",
    "InternetScaleConfig",
    "RandomInstanceConfig",
    "bandwidth_price",
    "build_tiny_problem",
    "distance",
    "generate_akamai_like_topology",
    "generate_as_geo_problem",
    "generate_flash_crowd_scenario",
    "generate_internet_scale_problem",
    "loss_probability_from_distance",
    "random_problem",
    "small_example_problem",
    "zipf_viewership",
]
