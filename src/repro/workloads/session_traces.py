"""Session traces for the internet-scale workload.

The generic traces of :mod:`repro.simulation.traces` treat every demand the
same.  Real CDN load is not like that: the evening crest rolls around the
planet metro by metro.  ``metro-diurnal`` recovers each sink's metro from
its name prefix (``metro0042-s17``, the same convention
:func:`repro.simulation.scenarios.infer_clusters` and the ``"metro"``
partitioner rely on) and offsets that metro's diurnal arrival curve by a
metro-specific phase, spreading peak load across the simulated day the way
timezones do.  Sinks without a metro prefix simply get phase 0, so the trace
also works on the small synthetic workloads.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.traces import (
    LoadTrace,
    SessionActivity,
    TraceContext,
    diurnal_intensity,
    register_load_trace,
    sample_sessions,
)

# Fractional golden ratio: consecutive metro indices land maximally spread
# phases, a low-discrepancy stand-in for real timezone geography.
_GOLDEN = 0.6180339887498949


def _metro_phase_offsets(context: TraceContext) -> np.ndarray:
    """Per-demand arrival offsets (in windows) from the sink's metro index."""
    offsets = np.zeros(context.num_demands, dtype=np.int64)
    for row, (sink, _stream) in enumerate(context.demand_keys):
        prefix = sink.split("-", 1)[0]
        if prefix.startswith("metro") and prefix[len("metro") :].isdigit():
            metro = int(prefix[len("metro") :])
            offsets[row] = int((metro * _GOLDEN % 1.0) * context.num_windows)
    return offsets


def _realize_metro_diurnal(context: TraceContext) -> SessionActivity:
    intensity = diurnal_intensity(context.num_windows)
    return sample_sessions(
        context,
        intensity,
        mean_windows=context.num_windows / 6.0,
        phase_offsets=_metro_phase_offsets(context),
    )


register_load_trace(
    LoadTrace(
        name="metro-diurnal",
        description="diurnal curve phase-shifted per metro (timezone spread)",
        realize=_realize_metro_diurnal,
    )
)
