"""Command-line interface.

A small operational front-end around the library, mirroring how the paper's
system would be driven in production: generate (or load) an instance, design
the overlay, audit it, and optionally replay it through the packet simulator.

Usage (after ``pip install -e .``)::

    python -m repro.cli generate --workload akamai --seed 0 --out instance.json
    python -m repro.cli design   --list-strategies
    python -m repro.cli design   --problem instance.json --seed 7 --repair \
                                 --strategy spaa03 --out design.json
    python -m repro.cli compare  --problem instance.json --seed 7
    python -m repro.cli batch    --requests requests.jsonl --jobs 4 \
                                 --out results.jsonl
    python -m repro.cli evaluate --problem instance.json --solution design.json
    python -m repro.cli update   --problem instance.json --solution design.json \
                                 --new-problem churned.json --out updated.json
    python -m repro.cli update   --problem instance.json --solution design.json \
                                 --event sink-churn --churn-seed 3 \
                                 --delta-out delta.json
    python -m repro.cli simulate --problem instance.json --solution design.json \
                                 --packets 20000
    python -m repro.cli simulate --problem instance.json --solution design.json \
                                 --scenario all --trials 200 --jobs auto
    python -m repro.cli bench    --suite t5 --jobs 4 --out benchmarks/results
    python -m repro.cli bench    --suite reliability --jobs auto
    python -m repro.cli bench    --smoke --jobs auto \
                                 --compare-to benchmarks/results/baseline.json
    python -m repro.cli serve    --port 8080 --workers 4
    python -m repro.cli serve    --self-test
    python -m repro.cli submit   --url http://127.0.0.1:8080 \
                                 --problem instance.json --seed 7 --out result.json

``design``/``compare`` resolve strategies through the :mod:`repro.api`
registry (``--strategy``), ``compare`` iterates every registered comparison
baseline, ``batch`` fans a JSON-lines file of design-request documents
out over worker processes (:func:`repro.api.design_batch`), and ``update``
re-designs a standing solution incrementally after churn
(:func:`repro.api.design_incremental`) -- the change arrives as a new
problem JSON, a serialized delta document, or a sampled churn event.
``serve`` runs the :mod:`repro.serve` design service (content-addressed
artifact cache + async worker pool) behind a small HTTP front, and
``submit`` is its client.  The shared flags -- ``--seed``, ``--jobs``,
``--strategy``, ``--out`` -- come from common parent parsers, so they spell
and behave identically on every subcommand that accepts them.

Every subcommand prints a human-readable table; files are the JSON documents
defined in :mod:`repro.core.serialization` (problems/solutions),
the request/result documents of :mod:`repro.api.types` (batch), and the
``BENCH_<ID>.json`` records of :mod:`repro.analysis.runner` (benchmarks).

Exit codes of ``bench``: 0 success; 1 a scenario's paper-shape thresholds
failed (takes precedence if regressions were also classified); 2 usage or
incomparable baseline; 3 a classified regression against ``--compare-to``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis import audit_solution, compare_designs, format_table
from repro.api import (
    DesignRequest,
    comparison_designers,
    design_batch,
    dump_results_jsonl,
    get_designer,
    load_requests_jsonl,
    registered_designers,
)
from repro.core.algorithm import DesignParameters
from repro.core.extensions import color_constrained_parameters
from repro.core.rounding import RoundingParameters
from repro.core.serialization import (
    dump_problem,
    dump_solution,
    load_problem,
    load_solution,
)
from repro.simulation import SimulationConfig, simulate_solution
from repro.workloads import (
    AkamaiLikeConfig,
    AsGeoConfig,
    FlashCrowdConfig,
    InternetScaleConfig,
    RandomInstanceConfig,
    generate_akamai_like_topology,
    generate_as_geo_problem,
    generate_flash_crowd_scenario,
    generate_internet_scale_problem,
    random_problem,
)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.workload == "akamai":
        topology, _registry = generate_akamai_like_topology(AkamaiLikeConfig(), rng=args.seed)
        problem = topology.to_problem()
    elif args.workload == "flash-crowd":
        topology, _registry = generate_flash_crowd_scenario(FlashCrowdConfig(), rng=args.seed)
        problem = topology.to_problem()
    elif args.workload == "internet-scale":
        config = (
            InternetScaleConfig(num_sinks=args.sinks)
            if args.sinks is not None
            else InternetScaleConfig()
        )
        problem, _registry = generate_internet_scale_problem(config, rng=args.seed)
    elif args.workload == "as-geo":
        geo_config = (
            AsGeoConfig(num_sinks=args.sinks) if args.sinks is not None else AsGeoConfig()
        )
        problem, _registry = generate_as_geo_problem(geo_config, rng=args.seed)
    else:  # random
        problem = random_problem(RandomInstanceConfig(), rng=args.seed)
    dump_problem(problem, args.out)
    print(f"wrote {problem} to {args.out}")
    return 0


def _list_strategies() -> int:
    rows = [
        {
            "strategy": designer.name,
            "baseline": designer.baseline,
            "in_comparisons": designer.in_comparisons,
            "description": designer.description,
        }
        for designer in registered_designers()
    ]
    print(format_table(rows, title="registered design strategies"))
    print(
        "\nany solution-producing strategy X is also available as 'sharded:X' "
        "(hierarchical sharded pipeline; see docs/scaling.md)"
    )
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    if args.list_strategies:
        return _list_strategies()
    if args.list_backends:
        return _list_backends()
    if not args.problem:
        print(
            "error: --problem is required (unless --list-strategies/--list-backends)",
            file=sys.stderr,
        )
        return 2
    backend_error = _check_solver_backend(args.solver_backend)
    if backend_error:
        print(f"error: {backend_error}", file=sys.stderr)
        return 2
    problem = load_problem(args.problem)
    issues = problem.feasibility_report()
    if issues:
        print(f"error: {len(issues)} demands cannot be satisfied by any design:", file=sys.stderr)
        for issue in issues[:10]:
            print(
                f"  {issue.demand.key}: needs weight {issue.required_weight:.2f}, "
                f"only {issue.available_weight:.2f} available",
                file=sys.stderr,
            )
        return 2
    strategy = args.strategy
    if args.isp_diversity and strategy == "spaa03":
        strategy = "spaa03-extended"
    elif args.isp_diversity and strategy == "sharded:spaa03":
        # The sharded wrapper inherits the same upgrade: each shard then runs
        # the Section-6 extended rounding (colors are enforced within shards;
        # see docs/scaling.md for the cross-shard caveat).
        strategy = "sharded:spaa03-extended"
    try:
        designer = get_designer(strategy)
    except (KeyError, ValueError) as error:
        # KeyError: unknown strategy (or unknown sharded: inner strategy);
        # ValueError: a structurally invalid strategy such as a sharded
        # wrapper around a bound-only inner strategy.
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    sharded = strategy.startswith("sharded:")
    sharded_flags = [
        flag
        for flag, given in (
            ("--shards", args.shards is not None),
            ("--jobs", args.jobs is not None),
            ("--partitioner", args.partitioner is not None),
        )
        if given
    ]
    if not sharded and sharded_flags:
        print(
            f"error: strategy {strategy!r} ignores {', '.join(sharded_flags)} "
            "(sharded-pipeline flags); use --strategy sharded:<strategy> to "
            "shard the design",
            file=sys.stderr,
        )
        return 2
    # The baselines only read the request seed; accepting pipeline-only flags
    # for them would silently produce a design without the requested
    # constraints.  For sharded strategies the flags reach the *inner*
    # designer, so the guard looks through the wrapper.
    pipeline_flags = [
        flag
        for flag, given in (
            ("--repair", args.repair),
            ("--isp-diversity", args.isp_diversity),
            ("--multiplier", args.multiplier is not None),
        )
        if given
    ]
    guard_designer = get_designer(strategy.split(":", 1)[1]) if sharded else designer
    if guard_designer.baseline and pipeline_flags:
        print(
            f"error: strategy {strategy!r} ignores {', '.join(pipeline_flags)} "
            "(pipeline-only flags); drop them or use a pipeline strategy",
            file=sys.stderr,
        )
        return 2
    # --time-limit / --mip-gap only mean something to the MILP designer;
    # mirror the sharded-flag guard so they never silently no-op.
    milp_flags = [
        flag
        for flag, given in (
            ("--time-limit", args.time_limit is not None),
            ("--mip-gap", args.mip_gap is not None),
        )
        if given
    ]
    if guard_designer.name != "milp-exact" and milp_flags:
        print(
            f"error: strategy {strategy!r} ignores {', '.join(milp_flags)} "
            "(MILP-only flags); use --strategy milp-exact to solve the "
            "integer program exactly",
            file=sys.stderr,
        )
        return 2
    parameters = DesignParameters(
        rounding=RoundingParameters(
            c=args.multiplier if args.multiplier is not None else 8.0, seed=args.seed
        ),
        repair_shortfall=args.repair,
        solver_backend=args.solver_backend if args.solver_backend else "highs",
        seed=args.seed,
    )
    if args.isp_diversity:
        parameters = color_constrained_parameters(parameters)
    if args.out and not designer.produces_solution:
        print(
            f"error: strategy {strategy!r} produces no integral design "
            "(bound only); drop --out to print its summary",
            file=sys.stderr,
        )
        return 2
    options = {}
    milp_options = {}
    if args.time_limit is not None:
        milp_options["time_limit"] = args.time_limit
    if args.mip_gap is not None:
        milp_options["mip_gap"] = args.mip_gap
    if sharded:
        options = {
            "shards": args.shards if args.shards is not None else "auto",
            "jobs": args.jobs if args.jobs is not None else 1,
            "partitioner": args.partitioner if args.partitioner is not None else "auto",
        }
        if milp_options:
            options["inner_options"] = milp_options
    else:
        options.update(milp_options)
    try:
        result = designer.design(
            DesignRequest(
                problem=problem,
                parameters=parameters,
                strategy=strategy,
                options=options,
            )
        )
    except ValueError as error:
        # Typically: the LP (with the requested extensions) is infeasible, e.g.
        # ISP-diversity constraints on an instance without enough distinct ISPs.
        print(f"error: {error}", file=sys.stderr)
        return 2
    solution = result.solution
    if args.out:
        dump_solution(solution, args.out)
    summary = result.summary()
    rows = [{"metric": key, "value": value} for key, value in summary.items() if key != "stage_seconds"]
    print(format_table(rows, title=f"design of {problem.name}"))
    if args.out:
        print(f"\nwrote design to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    solution = load_solution(args.solution, problem)
    audit = audit_solution(problem, solution)
    rows = [{"metric": key, "value": value} for key, value in {**solution.summary(), **audit.summary()}.items()]
    print(format_table(rows, title=f"evaluation of {args.solution}"))
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.runner import resolve_jobs
    from repro.api import design_incremental
    from repro.incremental import (
        apply_delta,
        churn_stream,
        delta_from_dict,
        delta_to_dict,
        diff_problems,
    )

    sources = sum(bool(s) for s in (args.new_problem, args.delta, args.event))
    if sources != 1:
        print(
            "error: exactly one of --new-problem, --delta, --event is required",
            file=sys.stderr,
        )
        return 2
    backend_error = _check_solver_backend(args.solver_backend)
    if backend_error:
        print(f"error: {backend_error}", file=sys.stderr)
        return 2
    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    problem = load_problem(args.problem)
    solution = load_solution(args.solution, problem)

    try:
        if args.delta:
            with open(args.delta, "r", encoding="utf-8") as handle:
                delta = delta_from_dict(json.load(handle))
            new_problem = apply_delta(problem, delta)
        elif args.event:
            ((_event, delta, new_problem),) = list(
                churn_stream(problem, [args.event], seed=args.churn_seed)
            )
        else:
            new_problem = load_problem(args.new_problem)
            delta = diff_problems(problem, new_problem)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    parameters = DesignParameters(
        solver_backend=args.solver_backend if args.solver_backend else "highs",
        seed=args.seed,
    )
    try:
        result = design_incremental(
            solution,
            new_problem,
            parameters=parameters,
            strategy=args.strategy,
            options={
                "shards": args.shards,
                "jobs": jobs,
                "partitioner": args.partitioner,
                "resolve": args.resolve,
                "full_redesign_threshold": args.full_redesign_threshold,
            },
            previous_problem=problem,
            delta=delta,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2

    if args.out:
        dump_solution(result.solution, args.out)
    if args.delta_out:
        with open(args.delta_out, "w", encoding="utf-8") as handle:
            json.dump(delta_to_dict(delta), handle, indent=2, sort_keys=True)
            handle.write("\n")
    summary = result.summary()
    rows = [
        {"metric": key, "value": value}
        for key, value in summary.items()
        if key != "stage_seconds"
    ]
    print(format_table(rows, title=f"incremental update of {problem.name}"))
    if args.out:
        print(f"\nwrote updated design to {args.out}")
    if args.delta_out:
        print(f"wrote delta document to {args.delta_out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    try:
        reference = get_designer(args.strategy)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if not reference.produces_solution:
        print(
            f"error: strategy {args.strategy!r} produces no integral design "
            "(bound only); pick a solution-producing reference",
            file=sys.stderr,
        )
        return 2
    result = reference.design(
        DesignRequest(
            problem=problem,
            parameters=DesignParameters(
                rounding=RoundingParameters(c=args.multiplier, seed=args.seed),
                repair_shortfall=True,
                seed=args.seed,
            ),
        )
    )
    # Only the pipeline strategies honor repair_shortfall; labeling a baseline
    # reference "+repair" would be a lie.
    label = reference.name if reference.baseline else f"{reference.name}+repair"
    # Every registered comparison designer appears automatically; each pulls
    # its seed from the request parameters, so runs are reproducible.
    designs = {label: result.solution}
    for designer in comparison_designers():
        if designer.name == reference.name:
            continue
        designs[designer.name] = designer.design(
            DesignRequest(problem=problem, parameters=DesignParameters(seed=args.seed))
        ).solution
    # Baseline references don't solve the LP; fetch the bound separately so
    # the cost_ratio column is present for any reference strategy.
    lower_bound = result.lower_bound
    if lower_bound is None:
        lower_bound = (
            get_designer("lp-bound").design(DesignRequest(problem=problem)).lower_bound
        )
    rows = compare_designs(problem, designs, lower_bound=lower_bound)
    print(
        format_table(
            rows,
            columns=[
                "design",
                "total_cost",
                "cost_ratio",
                "mean_success",
                "fraction_meeting_threshold",
                "max_fanout_factor",
            ],
            title=f"design comparison on {problem.name}",
        )
    )
    return 0


def _simulate_scenario_task(task: dict) -> dict:
    """One (scenario, problem, solution) reliability sweep unit.

    Module-level so the parallel executor can pickle it; paths travel in the
    task dict and are re-loaded inside the worker.  Metrics come from
    :func:`repro.simulation.evaluate_design` (or its streaming variant when
    the task carries ``stream=True``), so a CLI sweep is seeded and assembled
    identically to the Designer-API and R2 sweeps.
    """
    # User DSL scenarios live only in the parent's registry; re-register them
    # in this worker process (shipped files auto-load, user files travel in
    # the task dict).
    for path in task.get("scenario_files") or ():
        from repro.simulation import register_scenario_file

        register_scenario_file(path)
    problem = load_problem(task["problem"])
    solution = load_solution(task["solution"], problem)
    if task.get("stream"):
        from repro.simulation import evaluate_design_streaming

        metrics = evaluate_design_streaming(
            problem,
            solution,
            (task["scenario"],),
            trials=task["trials"],
            num_packets=task["packets"],
            window=task["window"],
            seed=task["seed"],
            traces=tuple(task.get("traces") or ()),
            demand_tile=task.get("demand_tile"),
            trial_tile=task.get("trial_tile"),
            max_memory=task.get("max_memory"),
        )[task["scenario"]]
    else:
        from repro.simulation import evaluate_design

        metrics = evaluate_design(
            problem,
            solution,
            (task["scenario"],),
            trials=task["trials"],
            num_packets=task["packets"],
            window=task["window"],
            seed=task["seed"],
        )[task["scenario"]]
    row = {
        "scenario": task["scenario"],
        "failure_events": int(metrics["failure_events"]),
        "mean_loss": metrics["mean_loss"],
        "mean_loss_ci95": metrics["mean_loss_ci95"],
        "max_loss": metrics["max_loss"],
        "mean_worst_window_loss": metrics["mean_worst_window_loss"],
        "fraction_meeting_threshold": metrics["fraction_meeting_threshold"],
    }
    for key, value in metrics.items():
        if key.startswith("trace:"):
            row[key] = value
    return row


def _list_failure_scenarios() -> int:
    from repro.simulation import failure_scenario_names, get_failure_scenario

    rows = [
        {
            "scenario": name,
            "tags": ",".join(get_failure_scenario(name).tags) or "-",
            "description": get_failure_scenario(name).description,
        }
        for name in failure_scenario_names()
    ]
    print(format_table(rows, title="registered failure scenarios"))
    return 0


def _list_load_traces() -> int:
    from repro.simulation import get_load_trace, load_trace_names

    rows = [
        {"trace": name, "description": get_load_trace(name).description}
        for name in load_trace_names()
    ]
    print(format_table(rows, title="registered load traces"))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json as _json

    from repro.simulation import failure_scenario_names, get_failure_scenario
    from repro.simulation.dsl import (
        ScenarioValidationError,
        compiled_scenario_spec,
        load_scenario_file,
        shipped_scenario_paths,
    )

    if args.validate is not None:
        paths = [Path(p) for p in args.validate] or shipped_scenario_paths()
        failures = 0
        for path in paths:
            try:
                scenario = load_scenario_file(path)
            except OSError as error:
                print(f"FAIL {path}: cannot read: {error}", file=sys.stderr)
                failures += 1
            except ScenarioValidationError as error:
                print(f"FAIL {path}:", file=sys.stderr)
                for issue in error.issues:
                    print(f"  {issue}", file=sys.stderr)
                failures += 1
            else:
                print(f"ok   {path} -> {scenario.name}")
        if failures:
            print(f"error: {failures} of {len(paths)} scenario file(s) invalid", file=sys.stderr)
            return 2
        print(f"{len(paths)} scenario file(s) valid")
        return 0

    if args.show:
        try:
            scenario = get_failure_scenario(args.show)
        except KeyError:
            print(
                f"error: unknown scenario {args.show!r}; "
                f"known: {', '.join(failure_scenario_names())}",
                file=sys.stderr,
            )
            return 2
        record = compiled_scenario_spec(scenario.name)
        print(f"name:        {scenario.name}")
        print(f"description: {scenario.description}")
        print(f"tags:        {', '.join(scenario.tags) or '-'}")
        if record is None:
            print("source:      built-in (Python)")
        else:
            print(f"source:      {record['source']}")
            print("normalized spec:")
            print(_json.dumps(record["spec"], indent=2))
        return 0

    rows = []
    for name in failure_scenario_names():
        scenario = get_failure_scenario(name)
        record = compiled_scenario_spec(name)
        rows.append(
            {
                "scenario": name,
                "source": "built-in" if record is None else "dsl",
                "tags": ",".join(scenario.tags) or "-",
                "description": scenario.description,
            }
        )
    print(format_table(rows, title="failure-scenario catalogue"))
    print(
        "\nDSL scenarios compile from YAML/JSON documents (docs/scenarios.md); "
        "validate files with: repro scenarios --validate [FILE ...]"
    )
    return 0


def _parse_memory_size(text: str) -> int:
    """Parse a byte budget like ``512M``, ``1.5G``, ``64MiB``, or ``1048576``."""
    units = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}
    raw = text.strip().lower()
    if raw.endswith("ib"):
        raw = raw[:-2]
    elif raw.endswith("b"):
        raw = raw[:-1]
    scale = 1
    if raw and raw[-1] in units:
        scale = units[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"cannot parse memory size {text!r} (use bytes or a K/M/G/T suffix)"
        ) from None
    if value <= 0:
        raise ValueError(f"memory size must be positive, got {text!r}")
    return int(value * scale)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.runner import execute_tasks, resolve_jobs
    from repro.simulation import MonteCarloConfig, failure_scenario_names, run_monte_carlo

    if args.list_scenarios:
        return _list_failure_scenarios()
    if args.list_traces:
        return _list_load_traces()
    if not args.problem or not args.solution:
        print("error: --problem and --solution are required", file=sys.stderr)
        return 2
    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    max_memory = None
    if args.max_memory is not None:
        try:
            max_memory = _parse_memory_size(args.max_memory)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    traces = []
    for chunk in args.trace or []:
        traces.extend(t.strip() for t in chunk.split(",") if t.strip())
    if traces and not args.stream:
        print("error: --trace requires --stream", file=sys.stderr)
        return 2
    if (args.demand_tile is not None or args.trial_tile is not None) and not args.stream:
        print("error: --demand-tile/--trial-tile require --stream", file=sys.stderr)
        return 2
    if traces:
        from repro.simulation import load_trace_names

        unknown = [t for t in traces if t not in load_trace_names()]
        if unknown:
            print(
                f"error: unknown trace(s) {', '.join(unknown)}; "
                f"known: {', '.join(load_trace_names())}",
                file=sys.stderr,
            )
            return 2

    if args.scenario:
        if args.engine not in ("auto", "vectorized"):
            print(
                f"error: --engine {args.engine} cannot drive a scenario sweep "
                "(sweeps always use the vectorized engine)",
                file=sys.stderr,
            )
            return 2
        # A --scenario value that looks like a path is a DSL document: it is
        # validated, registered, and swept under its own name.
        selections: list[str] = []
        for chunk in args.scenario:
            selections.extend(s.strip() for s in chunk.split(",") if s.strip())
        names: list[str] = []
        scenario_files: list[str] = []
        for selection in selections:
            if selection.endswith((".json", ".yaml", ".yml")) or os.sep in selection:
                scenario_files.append(selection)
            else:
                names.append(selection)
        if scenario_files:
            from repro.simulation import ScenarioValidationError, register_scenario_file

            for path in scenario_files:
                try:
                    names.append(register_scenario_file(path).name)
                except OSError as error:
                    print(f"error: cannot read scenario file: {error}", file=sys.stderr)
                    return 2
                except ScenarioValidationError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 2
        if "all" in names:
            names = failure_scenario_names()
        unknown = [n for n in names if n not in failure_scenario_names()]
        if unknown:
            print(
                f"error: unknown scenario(s) {', '.join(unknown)}; "
                f"known: {', '.join(failure_scenario_names())}",
                file=sys.stderr,
            )
            return 2
        tasks = [
            {
                "scenario": name,
                "problem": args.problem,
                "solution": args.solution,
                "packets": args.packets,
                "trials": args.trials,
                "window": args.window if args.window is not None else 200,
                "seed": args.seed,
                "stream": args.stream,
                "traces": traces,
                "demand_tile": args.demand_tile,
                "trial_tile": args.trial_tile,
                "max_memory": max_memory if args.stream else None,
                "scenario_files": scenario_files,
            }
            for name in names
        ]
        rows = execute_tasks(_simulate_scenario_task, tasks, jobs=jobs)
        engine_note = "streaming, " if args.stream else ""
        print(
            format_table(
                rows,
                title=(
                    f"reliability sweep ({engine_note}{args.trials} trials x "
                    f"{args.packets} packets, jobs={jobs})"
                ),
            )
        )
        return 0

    problem = load_problem(args.problem)
    solution = load_solution(args.solution, problem)

    if args.stream:
        if args.engine not in ("auto", "vectorized"):
            print(
                f"error: --engine {args.engine} cannot be combined with --stream",
                file=sys.stderr,
            )
            return 2
        from repro.simulation import (
            StreamingConfig,
            StreamingMemoryError,
            run_streaming_monte_carlo,
        )

        config = StreamingConfig(
            num_packets=args.packets,
            trials=args.trials,
            window=args.window if args.window is not None else 200,
            seed=args.seed,
            demand_tile=args.demand_tile,
            trial_tile=args.trial_tile,
            max_memory=max_memory,
        )
        try:
            report = run_streaming_monte_carlo(
                problem, solution, config, traces=tuple(traces), jobs=jobs
            )
        except StreamingMemoryError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        rows = [
            {"metric": key, "value": value} for key, value in report.summary().items()
        ]
        print(
            format_table(
                rows,
                title=(
                    f"streaming Monte-Carlo audit ({args.trials} trials x "
                    f"{args.packets} packets, {report.plan.num_tiles} tiles, "
                    f"jobs={jobs})"
                ),
            )
        )
        for name in sorted(report.traces):
            trace_rows = [
                {"metric": key, "value": value}
                for key, value in report.traces[name].summary().items()
                if key != "trace"
            ]
            print()
            print(format_table(trace_rows, title=f"trace replay: {name}"))
        return 0

    engine = args.engine
    if engine == "auto":
        engine = "legacy" if args.trials == 1 else "vectorized"
    if engine == "legacy":
        if args.trials != 1:
            print("error: --engine legacy simulates a single trial", file=sys.stderr)
            return 2
        window_kwargs = {"window": args.window} if args.window is not None else {}
        config = SimulationConfig(num_packets=args.packets, seed=args.seed, **window_kwargs)
        sim = simulate_solution(
            problem, solution, config, rng=np.random.default_rng(args.seed)
        )
        rows = [
            {
                "demand": f"{key[0]}/{key[1]}",
                "paths": result.paths,
                "loss_rate": result.loss_rate,
                "worst_window_loss": result.worst_window_loss,
                "meets_threshold": result.meets_threshold,
            }
            for key, result in ((r.demand_key, r) for r in sim.demands)
        ]
        print(format_table(rows, title=f"packet simulation ({args.packets} packets)"))
        print(
            f"\nmean loss {sim.mean_loss:.4f}; "
            f"{sim.fraction_meeting_threshold:.0%} of demands within budget"
        )
        return 0

    batch_kwargs = {"max_batch_bytes": max_memory} if max_memory is not None else {}
    config = MonteCarloConfig(
        num_packets=args.packets,
        trials=args.trials,
        window=args.window if args.window is not None else 200,
        seed=args.seed,
        rng_mode="compat" if engine == "compat" else "batched",
        **batch_kwargs,
    )
    report = run_monte_carlo(problem, solution, config)
    rows = [
        {
            "demand": f"{d.demand_key[0]}/{d.demand_key[1]}",
            "paths": d.paths,
            "mean_loss": d.mean_loss,
            "loss_std": d.loss_std,
            "mean_worst_window": d.mean_worst_window,
            "meets_threshold": d.meets_threshold_fraction,
        }
        for d in report.demands
    ]
    print(
        format_table(
            rows,
            title=f"Monte-Carlo simulation ({args.trials} trials x {args.packets} packets)",
        )
    )
    print(
        f"\nmean loss {report.mean_loss:.4f} +- {report.mean_loss_ci_halfwidth:.4f} (95% CI); "
        f"{report.fraction_meeting_threshold:.0%} of demand-trials within budget"
    )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.analysis.runner import resolve_jobs

    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        requests = load_requests_jsonl(args.requests)
    except (OSError, ValueError) as error:
        print(f"error: cannot read requests: {error}", file=sys.stderr)
        return 2
    if not requests:
        print(f"error: no requests in {args.requests}", file=sys.stderr)
        return 2
    results = design_batch(requests, jobs=jobs)
    rows = [
        {
            "request": request.request_id or f"#{index}",
            "strategy": result.strategy,
            "total_cost": result.total_cost,
            "lower_bound": result.lower_bound,
            "unserved_demands": (
                result.audit.unserved_demands if result.audit is not None else None
            ),
        }
        for index, (request, result) in enumerate(zip(requests, results))
    ]
    print(format_table(rows, title=f"batch of {len(results)} designs (jobs={jobs})"))
    if args.out:
        path = dump_results_jsonl(results, args.out)
        print(f"\nwrote {len(results)} result documents to {path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.runner import (
        compare_records,
        expand_scenario_ids,
        get_scenario,
        load_suite,
        resolve_jobs,
        run_scenario,
        save_suite,
        scenario_ids,
        suite_tags,
    )

    known = scenario_ids()
    if args.list:
        tags = suite_tags()
        rows = [
            {
                "scenario": sid,
                "tags": ",".join(
                    tag for tag, members in sorted(tags.items()) if sid in members
                )
                or "-",
                "artifact": f"BENCH_{get_scenario(sid).bench_id}.json",
                "description": get_scenario(sid).description or get_scenario(sid).title,
            }
            for sid in known
        ]
        print(format_table(rows, title="registered benchmark scenarios"))
        return 0

    if args.suite:
        names: list[str] = []
        for chunk in args.suite:
            names.extend(s.strip() for s in chunk.split(",") if s.strip())
        try:
            requested = expand_scenario_ids(names)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
    else:
        requested = known

    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline = None
    if args.compare_to:
        try:
            baseline = load_suite(args.compare_to)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot read baseline {args.compare_to}: {error}", file=sys.stderr)
            return 2

    out_dir = Path(args.out)
    records = {}
    failures: list[str] = []
    for sid in requested:
        spec = get_scenario(sid)
        record = run_scenario(
            spec, jobs=jobs, master_seed=args.master_seed, smoke=args.smoke
        )
        records[sid] = record
        json_path = record.save(out_dir / f"BENCH_{record.bench_id}.json")
        table = format_table(record.rows, columns=spec.columns, title=record.title)
        (out_dir / f"{spec.artifact_stem}.txt").write_text(table + "\n")
        print(f"\n===== {record.bench_id} ({record.elapsed_seconds:.2f}s, jobs={jobs}) =====")
        print(table)
        print(f"wrote {json_path}")
        if not args.no_validate and spec.validate is not None:
            for failure in spec.validate(record):
                failures.append(f"{sid}: {failure}")

    if args.baseline_out:
        path = save_suite(records, args.baseline_out)
        print(f"\nwrote baseline suite ({len(records)} records) to {path}")

    exit_code = 0
    if failures:
        print("\nthreshold failures:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        exit_code = 1

    if baseline is not None:
        regressions = 0
        compared = 0
        for sid, record in records.items():
            if sid not in baseline:
                print(f"\n{sid}: no baseline record; skipping comparison")
                continue
            try:
                report = compare_records(record, baseline[sid])
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            compared += 1
            interesting = [d for d in report.drifts if d.classification != "neutral"]
            title = f"{sid}: drift vs {args.compare_to}"
            if interesting:
                print("\n" + format_table([d.as_row() for d in interesting], title=title))
            else:
                print(f"\n{title}: all metrics neutral")
            regressions += len(report.regressions)
        print(
            f"\ncompared {compared}/{len(records)} records: "
            f"{regressions} regression(s) classified"
        )
        # Threshold failures (exit 1) take precedence over regressions (3):
        # a broken paper-shape invariant is the more fundamental signal.
        if regressions and exit_code == 0:
            exit_code = 3
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.serve import DesignServer, DesignService, run_self_test
    from repro.serve.cache import DEFAULT_MAX_BYTES, ArtifactCache

    if args.self_test:
        try:
            run_self_test()
        except AssertionError as error:
            print(f"self-test FAILED: {error}", file=sys.stderr)
            return 1
        return 0

    cache = ArtifactCache(
        max_bytes=args.cache_bytes if args.cache_bytes is not None else DEFAULT_MAX_BYTES,
        spill_dir=args.spill_dir,
    )
    service = DesignService(cache=cache, workers=args.workers, max_queue=args.max_queue)
    server = DesignServer(service, host=args.host, port=args.port)
    server.start()
    print(
        f"serving on {server.url} (workers={args.workers}, "
        f"cache budget {cache.stats().max_bytes} bytes)"
    )
    print("POST /design with a design-request document; GET /stats; GET /healthz")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nstopping")
    finally:
        server.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json
    import urllib.request

    from repro.api import request_to_dict, result_from_dict

    base = args.url.rstrip("/")
    if args.stats:
        try:
            with urllib.request.urlopen(base + "/stats", timeout=args.timeout) as response:
                payload = json.load(response)
        except OSError as error:
            print(f"error: cannot reach {base}: {error}", file=sys.stderr)
            return 2
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not args.problem:
        print("error: --problem is required (unless --stats)", file=sys.stderr)
        return 2

    problem = load_problem(args.problem)
    request = DesignRequest(
        problem=problem,
        parameters=DesignParameters(seed=args.seed),
        strategy=args.strategy,
    )
    body = json.dumps(request_to_dict(request)).encode("utf-8")
    http_request = urllib.request.Request(
        base + "/design", data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(http_request, timeout=args.timeout) as response:
            document = json.load(response)
    except OSError as error:
        print(f"error: cannot reach {base}: {error}", file=sys.stderr)
        return 2

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    result = result_from_dict(document, problem)
    rows = [
        {"metric": key, "value": value}
        for key, value in result.summary().items()
        if key != "stage_seconds"
    ]
    provenance = document.get("cache") or {}
    for key in ("served_from_cache", "deduplicated", "request_digest"):
        if key in provenance:
            rows.append({"metric": f"cache.{key}", "value": provenance[key]})
    for stage, state in (provenance.get("stages") or {}).items():
        rows.append({"metric": f"cache.stage.{stage}", "value": state})
    print(format_table(rows, title=f"design of {problem.name} via {base}"))
    if args.out:
        print(f"\nwrote result document to {args.out}")
    return 0


def _seed_parent(
    help: str = "seed for the run (default: 0)",
) -> argparse.ArgumentParser:
    """Shared ``--seed`` flag: every subcommand spells and types it the same."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0, help=help)
    return parent


def _jobs_parent(
    default: str | None = "1",
    help: str = "worker processes: a number or 'auto' (default: 1)",
) -> argparse.ArgumentParser:
    """Shared ``--jobs`` flag (a number or ``'auto'``)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--jobs", default=default, help=help)
    return parent


def _strategy_parent(
    default: str | None = "spaa03",
    help: str = "registered design strategy (default: spaa03)",
) -> argparse.ArgumentParser:
    """Shared ``--strategy`` flag resolved via the :mod:`repro.api` registry."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--strategy", default=default, help=help)
    return parent


def _out_parent(
    help: str = "output path",
    required: bool = False,
    default: str | None = None,
) -> argparse.ArgumentParser:
    """Shared ``--out`` flag."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--out", required=required, default=default, help=help)
    return parent


def _solver_backend_parent() -> argparse.ArgumentParser:
    """Shared ``--solver-backend`` flag (validated against the registry)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--solver-backend",
        default=None,
        help="registered solver backend for the LP/MILP solve (see "
        "--list-backends; default: highs)",
    )
    return parent


def _check_solver_backend(name: str | None) -> str | None:
    """Return an error message when ``name`` is unknown or unavailable.

    Mirrors the sharded-flag guard: usage errors exit 2 with a message that
    names the *installed* backends, so a missing optional library (gurobipy)
    reads the same as a typo.
    """
    from repro.lp import available_backend_names

    if name is None or name in available_backend_names():
        return None
    installed = ", ".join(available_backend_names())
    return (
        f"unknown or unavailable solver backend {name!r} "
        f"(installed backends: {installed})"
    )


def _list_backends() -> int:
    from repro.lp import registered_backends

    rows = [
        {
            "backend": backend.name,
            "available": backend.available(),
            "description": backend.description,
        }
        for backend in registered_backends()
    ]
    print(format_table(rows, title="registered solver backends"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Overlay multicast network designer (SPAA'03 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate",
        help="generate a synthetic problem instance",
        parents=[
            _seed_parent("seed of the instance generator (default: 0)"),
            _out_parent("output problem JSON path", required=True),
        ],
    )
    generate.add_argument(
        "--workload",
        choices=["akamai", "flash-crowd", "random", "internet-scale", "as-geo"],
        default="akamai",
    )
    generate.add_argument(
        "--sinks",
        type=int,
        default=None,
        help="sink count for --workload internet-scale / as-geo "
        "(defaults: 10000 / 600)",
    )
    generate.set_defaults(func=_cmd_generate)

    design = sub.add_parser(
        "design",
        help="design an overlay for a problem JSON",
        parents=[
            _seed_parent(),
            _strategy_parent(
                help="registered design strategy (see --list-strategies; default: "
                "spaa03; 'sharded:<strategy>' runs the hierarchical sharded pipeline)"
            ),
            _jobs_parent(
                default=None,
                help="worker processes for per-shard designs: a number or 'auto' "
                "(sharded:<strategy> only; default: 1)",
            ),
            _out_parent("output solution JSON path"),
            _solver_backend_parent(),
        ],
    )
    design.add_argument("--problem", help="problem JSON path (required unless --list-strategies)")
    design.add_argument(
        "--multiplier",
        type=float,
        default=None,
        help="rounding multiplier c (pipeline strategies only; default 8.0)",
    )
    design.add_argument("--repair", action="store_true", help="greedy repair of weight shortfalls")
    design.add_argument(
        "--isp-diversity", action="store_true", help="enable the Section-6.4 color constraints"
    )
    design.add_argument(
        "--shards",
        default=None,
        help="shard count or 'auto' (sharded:<strategy> only; default: auto)",
    )
    design.add_argument(
        "--partitioner",
        default=None,
        choices=["auto", "metro", "isp", "hash"],
        help="how sinks are grouped into shards (sharded:<strategy> only; "
        "default: auto)",
    )
    design.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="MILP wall-clock limit in seconds (milp-exact only)",
    )
    design.add_argument(
        "--mip-gap",
        type=float,
        default=None,
        help="relative MIP gap at which the solver may stop (milp-exact only)",
    )
    design.add_argument(
        "--list-strategies",
        action="store_true",
        help="list the registered design strategies and exit",
    )
    design.add_argument(
        "--list-backends",
        action="store_true",
        help="list the registered solver backends and exit",
    )
    design.set_defaults(func=_cmd_design)

    evaluate = sub.add_parser("evaluate", help="audit a solution JSON against its problem")
    evaluate.add_argument("--problem", required=True)
    evaluate.add_argument("--solution", required=True)
    evaluate.set_defaults(func=_cmd_evaluate)

    from repro.incremental import CHURN_EVENTS

    update = sub.add_parser(
        "update",
        help="incrementally re-design a standing solution after churn "
        "(new problem JSON, delta document, or sampled churn event)",
        parents=[
            _seed_parent(),
            _strategy_parent(
                default=None,
                help="inner per-shard strategy (default: derived from the "
                "standing design, else spaa03)",
            ),
            _jobs_parent(),
            _out_parent("output solution JSON path"),
            _solver_backend_parent(),
        ],
    )
    update.add_argument("--problem", required=True, help="pre-churn problem JSON path")
    update.add_argument(
        "--solution", required=True, help="standing design solution JSON path"
    )
    update.add_argument("--new-problem", help="post-churn problem JSON path")
    update.add_argument("--delta", help="problem-delta document JSON path")
    update.add_argument(
        "--event",
        choices=list(CHURN_EVENTS),
        help="sample one churn event of this kind instead of loading a file",
    )
    update.add_argument(
        "--churn-seed", type=int, default=0, help="seed for --event sampling"
    )
    update.add_argument("--shards", default="auto")
    update.add_argument(
        "--partitioner", default="auto", choices=["auto", "metro", "isp", "hash"]
    )
    update.add_argument(
        "--resolve",
        default="residual",
        choices=["residual", "full"],
        help="re-solve dirty shards as residual subproblems (default) or whole",
    )
    update.add_argument(
        "--full-redesign-threshold",
        type=float,
        default=0.8,
        help="dirty-shard fraction above which a full redesign runs instead",
    )
    update.add_argument(
        "--delta-out", help="also write the applied delta as a JSON document"
    )
    update.set_defaults(func=_cmd_update)

    compare = sub.add_parser(
        "compare",
        help="compare a strategy against every registered comparison baseline",
        parents=[
            _seed_parent(),
            _strategy_parent(
                help="reference strategy run with repair enabled (default: spaa03)"
            ),
        ],
    )
    compare.add_argument("--problem", required=True)
    compare.add_argument("--multiplier", type=float, default=8.0)
    compare.set_defaults(func=_cmd_compare)

    batch = sub.add_parser(
        "batch",
        help="run a JSON-lines file of design requests through the parallel executor",
        parents=[_jobs_parent(), _out_parent("output results JSONL path")],
    )
    batch.add_argument(
        "--requests", required=True, help="JSONL file, one design-request document per line"
    )
    batch.set_defaults(func=_cmd_batch)

    simulate = sub.add_parser(
        "simulate",
        help="packet-level replay of a solution (single session or Monte-Carlo sweep)",
        parents=[
            _seed_parent(),
            _jobs_parent(
                help="worker processes for scenario sweeps: a number or 'auto' "
                "(default: 1)"
            ),
        ],
    )
    simulate.add_argument("--problem", help="problem JSON path")
    simulate.add_argument("--solution", help="solution JSON path")
    simulate.add_argument("--packets", type=int, default=10_000)
    simulate.add_argument(
        "--trials",
        type=int,
        default=1,
        help="Monte-Carlo trials (>1 switches to the vectorized engine)",
    )
    simulate.add_argument(
        "--window",
        type=int,
        default=None,
        help="worst-window statistic size in packets (defaults: 500 for single "
        "legacy replays, 200 for Monte-Carlo runs)",
    )
    simulate.add_argument(
        "--scenario",
        action="append",
        help="failure scenario(s) to sweep (repeatable / comma-separated; 'all' "
        "for the whole catalogue; a .json/.yaml path compiles and sweeps a "
        "scenario DSL document; see --list-scenarios and docs/scenarios.md)",
    )
    simulate.add_argument(
        "--engine",
        choices=["auto", "legacy", "vectorized", "compat"],
        default="auto",
        help="auto picks legacy for --trials 1, vectorized otherwise; compat "
        "replays the legacy draw order bit-for-bit",
    )
    simulate.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the registered failure scenarios and exit",
    )
    simulate.add_argument(
        "--stream",
        action="store_true",
        help="memory-bounded streaming engine: tile the demands x trials plane "
        "and fold exact mergeable accumulators (results independent of tiling "
        "and --jobs)",
    )
    simulate.add_argument(
        "--trace",
        action="append",
        help="replay registered load trace(s) through the streaming fold "
        "(repeatable / comma-separated; requires --stream; see --list-traces)",
    )
    simulate.add_argument(
        "--list-traces",
        action="store_true",
        help="list the registered load traces and exit",
    )
    simulate.add_argument(
        "--max-memory",
        help="working-set byte budget, e.g. 512M or 2G (streaming: shrinks the "
        "tile grid to fit; batched: caps the per-chunk trial block)",
    )
    simulate.add_argument(
        "--demand-tile",
        type=int,
        default=None,
        help="streaming tile height in demands (default: auto)",
    )
    simulate.add_argument(
        "--trial-tile",
        type=int,
        default=None,
        help="streaming tile width in trials (default: auto)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    scenarios = sub.add_parser(
        "scenarios",
        help="list, validate, and inspect the failure-scenario catalogue "
        "(built-ins + DSL files; see docs/scenarios.md)",
    )
    scenarios.add_argument(
        "--list",
        action="store_true",
        help="list the catalogue with sources and tags (the default action)",
    )
    scenarios.add_argument(
        "--validate",
        nargs="*",
        metavar="FILE",
        default=None,
        help="validate scenario DSL file(s); with no FILE, round-trips every "
        "shipped scenario file (the CI gate)",
    )
    scenarios.add_argument(
        "--show",
        metavar="NAME",
        help="print one scenario's description and, for DSL scenarios, its "
        "normalized spec",
    )
    scenarios.set_defaults(func=_cmd_scenarios)

    bench = sub.add_parser(
        "bench",
        help="run registered benchmark scenarios in parallel and emit BENCH_<ID>.json",
        parents=[
            _jobs_parent(
                help="worker processes per scenario: a number or 'auto' (default: 1)"
            ),
            _out_parent(
                "directory for BENCH_<ID>.json and table artifacts",
                default="benchmarks/results",
            ),
        ],
    )
    bench.add_argument(
        "--suite",
        action="append",
        help="scenario id(s) to run (repeatable / comma-separated; default: all)",
    )
    bench.add_argument("--master-seed", type=int, default=0)
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized seed blocks / draw counts / instance sizes",
    )
    bench.add_argument(
        "--compare-to",
        help="baseline suite (or single record) JSON; exit 3 on classified regressions",
    )
    bench.add_argument(
        "--baseline-out",
        help="also write all produced records as one baseline suite JSON",
    )
    bench.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the scenarios' paper-shape threshold checks",
    )
    bench.add_argument("--list", action="store_true", help="list registered scenarios")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run the design service (artifact cache + worker pool) over HTTP",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="listen port (0 picks an ephemeral one)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="design worker threads (default: 2)"
    )
    serve.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="artifact-cache byte budget (default: 256 MiB)",
    )
    serve.add_argument(
        "--spill-dir", help="spill evicted artifacts to this directory (default: off)"
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="bound the pending-request queue; full queue answers HTTP 429 "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--self-test",
        action="store_true",
        help="run an in-process round-trip (submit, replay, churn a session) and exit",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a design request to a running `repro serve` instance",
        parents=[
            _seed_parent("request seed (default: 0; seeded requests are cacheable)"),
            _strategy_parent(),
            _out_parent("write the full result document JSON here"),
        ],
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8080", help="server base URL"
    )
    submit.add_argument("--problem", help="problem JSON path (required unless --stats)")
    submit.add_argument(
        "--stats", action="store_true", help="print the server's /stats and exit"
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, help="HTTP timeout in seconds"
    )
    submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used both by ``python -m repro.cli`` and the tests."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
