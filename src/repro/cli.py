"""Command-line interface.

A small operational front-end around the library, mirroring how the paper's
system would be driven in production: generate (or load) an instance, design
the overlay, audit it, and optionally replay it through the packet simulator.

Usage (after ``pip install -e .``)::

    python -m repro.cli generate --workload akamai --seed 0 --out instance.json
    python -m repro.cli design   --problem instance.json --seed 7 --repair \
                                 --out design.json
    python -m repro.cli evaluate --problem instance.json --solution design.json
    python -m repro.cli simulate --problem instance.json --solution design.json \
                                 --packets 20000

Every subcommand prints a human-readable table; files are the JSON documents
defined in :mod:`repro.core.serialization`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis import audit_solution, compare_designs, format_table
from repro.baselines import (
    greedy_design,
    naive_quality_first_design,
    random_design,
    single_tree_design,
)
from repro.core.algorithm import DesignParameters, design_overlay
from repro.core.extensions import color_constrained_parameters, design_overlay_extended
from repro.core.rounding import RoundingParameters
from repro.core.serialization import (
    dump_problem,
    dump_solution,
    load_problem,
    load_solution,
)
from repro.simulation import SimulationConfig, simulate_solution
from repro.workloads import (
    AkamaiLikeConfig,
    FlashCrowdConfig,
    RandomInstanceConfig,
    generate_akamai_like_topology,
    generate_flash_crowd_scenario,
    random_problem,
)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.workload == "akamai":
        topology, _registry = generate_akamai_like_topology(AkamaiLikeConfig(), rng=args.seed)
        problem = topology.to_problem()
    elif args.workload == "flash-crowd":
        topology, _registry = generate_flash_crowd_scenario(FlashCrowdConfig(), rng=args.seed)
        problem = topology.to_problem()
    else:  # random
        problem = random_problem(RandomInstanceConfig(), rng=args.seed)
    dump_problem(problem, args.out)
    print(f"wrote {problem} to {args.out}")
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    issues = problem.feasibility_report()
    if issues:
        print(f"error: {len(issues)} demands cannot be satisfied by any design:", file=sys.stderr)
        for issue in issues[:10]:
            print(
                f"  {issue.demand.key}: needs weight {issue.required_weight:.2f}, "
                f"only {issue.available_weight:.2f} available",
                file=sys.stderr,
            )
        return 2
    parameters = DesignParameters(
        rounding=RoundingParameters(c=args.multiplier, seed=args.seed),
        repair_shortfall=args.repair,
        seed=args.seed,
    )
    try:
        if args.isp_diversity:
            report = design_overlay_extended(problem, color_constrained_parameters(parameters))
        else:
            report = design_overlay(problem, parameters)
    except ValueError as error:
        # Typically: the LP (with the requested extensions) is infeasible, e.g.
        # ISP-diversity constraints on an instance without enough distinct ISPs.
        print(f"error: {error}", file=sys.stderr)
        return 2
    solution = report.solution
    if args.out:
        dump_solution(solution, args.out)
    summary = report.summary()
    rows = [{"metric": key, "value": value} for key, value in summary.items() if key != "stage_seconds"]
    print(format_table(rows, title=f"design of {problem.name}"))
    if args.out:
        print(f"\nwrote design to {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    solution = load_solution(args.solution, problem)
    audit = audit_solution(problem, solution)
    rows = [{"metric": key, "value": value} for key, value in {**solution.summary(), **audit.summary()}.items()]
    print(format_table(rows, title=f"evaluation of {args.solution}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    report = design_overlay(
        problem,
        DesignParameters(
            rounding=RoundingParameters(c=args.multiplier, seed=args.seed),
            repair_shortfall=True,
            seed=args.seed,
        ),
    )
    designs = {
        "spaa03+repair": report.solution,
        "greedy": greedy_design(problem),
        "naive-quality-first": naive_quality_first_design(problem),
        "single-tree": single_tree_design(problem),
        "random": random_design(problem, rng=args.seed),
    }
    rows = compare_designs(problem, designs, lower_bound=report.lp_lower_bound)
    print(
        format_table(
            rows,
            columns=[
                "design",
                "total_cost",
                "cost_ratio",
                "mean_success",
                "fraction_meeting_threshold",
                "max_fanout_factor",
            ],
            title=f"design comparison on {problem.name}",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    problem = load_problem(args.problem)
    solution = load_solution(args.solution, problem)
    config = SimulationConfig(num_packets=args.packets, seed=args.seed)
    sim = simulate_solution(problem, solution, config, rng=np.random.default_rng(args.seed))
    rows = [
        {
            "demand": f"{key[0]}/{key[1]}",
            "paths": result.paths,
            "loss_rate": result.loss_rate,
            "worst_window_loss": result.worst_window_loss,
            "meets_threshold": result.meets_threshold,
        }
        for key, result in ((r.demand_key, r) for r in sim.demands)
    ]
    print(format_table(rows, title=f"packet simulation ({args.packets} packets)"))
    print(f"\nmean loss {sim.mean_loss:.4f}; {sim.fraction_meeting_threshold:.0%} of demands within budget")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Overlay multicast network designer (SPAA'03 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic problem instance")
    generate.add_argument("--workload", choices=["akamai", "flash-crowd", "random"], default="akamai")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output problem JSON path")
    generate.set_defaults(func=_cmd_generate)

    design = sub.add_parser("design", help="design an overlay for a problem JSON")
    design.add_argument("--problem", required=True)
    design.add_argument("--out", help="output solution JSON path")
    design.add_argument("--seed", type=int, default=0)
    design.add_argument("--multiplier", type=float, default=8.0, help="rounding multiplier c")
    design.add_argument("--repair", action="store_true", help="greedy repair of weight shortfalls")
    design.add_argument(
        "--isp-diversity", action="store_true", help="enable the Section-6.4 color constraints"
    )
    design.set_defaults(func=_cmd_design)

    evaluate = sub.add_parser("evaluate", help="audit a solution JSON against its problem")
    evaluate.add_argument("--problem", required=True)
    evaluate.add_argument("--solution", required=True)
    evaluate.set_defaults(func=_cmd_evaluate)

    compare = sub.add_parser("compare", help="compare the algorithm against the baselines")
    compare.add_argument("--problem", required=True)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--multiplier", type=float, default=8.0)
    compare.set_defaults(func=_cmd_compare)

    simulate = sub.add_parser("simulate", help="packet-level replay of a solution")
    simulate.add_argument("--problem", required=True)
    simulate.add_argument("--solution", required=True)
    simulate.add_argument("--packets", type=int, default=10_000)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used both by ``python -m repro.cli`` and the tests."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
