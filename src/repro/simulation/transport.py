"""Per-link loss sampling and two-hop delivery masks.

The transport layer mirrors the paper's loss model (Section 1.3): a packet
sent over the source->reflector link and then the reflector->sink link arrives
iff it survives *both* hops; copies sent through different reflectors are
independent.  A crucial detail is that the source->reflector loss draw is
**shared** by every sink served from that reflector -- if the reflector never
received packet ``t``, none of its sinks can -- which is exactly why the
analytic model multiplies path failures only across *different* reflectors.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import Demand, OverlayDesignProblem
from repro.core.solution import OverlaySolution
from repro.network.loss import BernoulliLossModel, LossModel
from repro.simulation.failures import FailureSchedule


def simulate_link_losses(
    loss_probability: float,
    num_packets: int,
    rng: np.random.Generator,
    loss_model: LossModel | None = None,
    link: tuple[str, str] | None = None,
    outage_mask: np.ndarray | None = None,
    loss_profile: np.ndarray | None = None,
) -> np.ndarray:
    """Sample the boolean *lost* mask for one link.

    ``outage_mask`` forces loss on the masked packets; ``loss_profile`` is the
    general form (per-packet forced loss probability from
    :meth:`~repro.simulation.failures.FailureSchedule.link_loss_profile`):
    entries at 1.0 force loss outright, fractional entries (congestion events)
    drop an extra draw of packets.  The congestion draw only happens when a
    fractional entry is present, so schedules without congestion consume the
    exact same random stream as before the profile existed.
    """
    model = loss_model or BernoulliLossModel()
    lost = model.sample_losses(loss_probability, num_packets, rng, link=link)
    if outage_mask is not None:
        lost = lost | np.asarray(outage_mask, dtype=bool)
    if loss_profile is not None:
        profile = np.asarray(loss_profile, dtype=np.float64)
        hard = profile >= 1.0
        if bool(np.any((profile > 0.0) & ~hard)):
            lost = lost | (rng.random(num_packets) < np.where(hard, 0.0, profile))
        lost = lost | hard
    return lost


def simulate_stream_transport(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    stream: str,
    num_packets: int,
    rng: np.random.Generator,
    loss_model: LossModel | None = None,
    failures: FailureSchedule | None = None,
    node_isp: dict[str, str | None] | None = None,
) -> dict[tuple[str, str], dict[str, np.ndarray]]:
    """Simulate one stream's delivery through the designed overlay.

    Returns, for every demand of ``stream``, a mapping
    ``reflector -> received mask`` (one boolean array per serving path).  The
    reflector-level (source->reflector) loss draw is shared across all sinks
    served by that reflector, as in the real system.
    """
    failures = failures or FailureSchedule()
    node_isp = node_isp or {}

    # Which reflectors does this stream actually use in the solution?
    used_reflectors: set[str] = set()
    for (sink, demand_stream), reflectors in solution.assignments.items():
        if demand_stream == stream:
            used_reflectors.update(reflectors)

    # Source -> reflector legs (shared by all downstream sinks).
    reflector_lost: dict[str, np.ndarray] = {}
    for reflector in sorted(used_reflectors):
        edge = problem.stream_edge(stream, reflector)
        profile = failures.link_loss_profile(stream, reflector, num_packets, node_isp)
        reflector_lost[reflector] = simulate_link_losses(
            edge.loss_probability,
            num_packets,
            rng,
            loss_model,
            link=(stream, reflector),
            loss_profile=profile,
        )

    # Reflector -> sink legs, per demand.
    results: dict[tuple[str, str], dict[str, np.ndarray]] = {}
    for demand in problem.demands:
        if demand.stream != stream:
            continue
        per_path: dict[str, np.ndarray] = {}
        for reflector in solution.reflectors_serving(demand):
            delivery_loss = problem.delivery_loss(reflector, demand.sink)
            profile = failures.link_loss_profile(
                reflector, demand.sink, num_packets, node_isp
            )
            lost_second_hop = simulate_link_losses(
                delivery_loss,
                num_packets,
                rng,
                loss_model,
                link=(reflector, demand.sink),
                loss_profile=profile,
            )
            received = ~reflector_lost[reflector] & ~lost_second_hop
            per_path[reflector] = received
        results[demand.key] = per_path
    return results


def simulate_demand_paths(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    demand: Demand,
    num_packets: int,
    rng: np.random.Generator,
    loss_model: LossModel | None = None,
    failures: FailureSchedule | None = None,
    node_isp: dict[str, str | None] | None = None,
) -> dict[str, np.ndarray]:
    """Convenience wrapper: per-path received masks for a single demand."""
    per_stream = simulate_stream_transport(
        problem,
        solution,
        demand.stream,
        num_packets,
        rng,
        loss_model=loss_model,
        failures=failures,
        node_isp=node_isp,
    )
    return per_stream.get(demand.key, {})
