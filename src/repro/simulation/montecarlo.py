"""Batched Monte-Carlo reliability engine.

:func:`simulate_solution` replays one packet session demand by demand in
Python; estimating tail reliability under correlated failures needs hundreds
of trials over every demand, which the per-demand loop cannot sustain.  This
module simulates *all demands x all trials* as numpy arrays:

* the (problem, solution) pair is compiled once into a :class:`PathTable` --
  flat arrays of first-hop links, per-path second-hop losses, forced-loss
  profiles, and boundaries grouping paths by demand;
* per-link loss matrices are *bit-packed* (one uint8 byte per 8 packets):
  Bernoulli links sample only the loss positions (geometric skip-sampling,
  :func:`~repro.network.loss.sample_bernoulli_positions`) OR-ed in as
  byte-index/bit pairs; other models pack a dense draw;
* the shared source->reflector draw is OR-broadcast onto its paths, and
  reconstruction is a bitwise-AND fold over each demand's path block (a
  packet is lost iff *every* copy lost it);
* loss counts and the worst-window statistic come from byte popcounts folded
  per window (non-byte-aligned windows unpack first;
  :func:`~repro.simulation.packets.windowed_loss_matrix` is the boolean-mask
  reference the fold is tested against).

Determinism contract
--------------------
``rng_mode="batched"`` (the default) consumes randomness in large blocks: a
run is reproducible from ``(seed, trials, num_packets, loss model, failure
schedule, max_batch_bytes)`` and produces loss statistics *statistically
equivalent* to :func:`simulate_solution` (the differential tests pin this).
``rng_mode="compat"`` replays the legacy engine's exact per-link draw order
trial by trial and is *bit-identical* to calling :func:`simulate_solution`
repeatedly with the same generator -- the anchor the batched mode is verified
against.  Worst-window statistics use windows that are cheapest when
``window`` is a multiple of 8 (byte-aligned popcount folds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution
from repro.network.loss import (
    BernoulliLossModel,
    LossModel,
    sample_bernoulli_positions,
)
from repro.simulation.engine import (
    DemandSimulationResult,
    SimulationConfig,
    SimulationReport,
    simulate_solution,
)
from repro.simulation.failures import FailureSchedule
from repro.simulation.packets import window_starts

RNG_MODES = ("batched", "compat")

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    _popcount = np.bitwise_count
else:  # pragma: no cover - exercised only on old numpy
    _POPCOUNT_TABLE = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)

    def _popcount(values: np.ndarray) -> np.ndarray:
        return _POPCOUNT_TABLE[values]


@dataclass
class MonteCarloConfig:
    """Configuration of a batched Monte-Carlo run.

    Attributes
    ----------
    num_packets:
        Packets per simulated session (one trial = one session).
    trials:
        Number of independent sessions.
    window:
        Window (in packets) of the worst-window loss statistic.  Multiples
        of 8 keep the batched engine on its byte-aligned fast path.
    loss_model:
        Per-link loss process shared by all trials.
    failures:
        Injected failure schedule, identical across trials (sample a fresh
        schedule and run separate configs to sweep failure draws).
    seed:
        Seed of the engine generator (ignored when an explicit generator is
        passed to :func:`run_monte_carlo`).
    rng_mode:
        ``"batched"`` (fast, block randomness) or ``"compat"``
        (bit-identical to the legacy engine, trial by trial).
    max_batch_bytes:
        Approximate working-set bound; trials are chunked so intermediate
        matrices stay under it.  Part of the determinism contract of the
        batched mode (chunk boundaries shift the random-block layout).
    """

    num_packets: int = 2000
    trials: int = 50
    window: int = 200
    loss_model: LossModel = field(default_factory=BernoulliLossModel)
    failures: FailureSchedule = field(default_factory=FailureSchedule)
    seed: int | None = None
    rng_mode: str = "batched"
    max_batch_bytes: int = 64 * 2**20

    def __post_init__(self) -> None:
        if self.num_packets <= 0:
            raise ValueError("num_packets must be positive")
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.rng_mode not in RNG_MODES:
            raise ValueError(f"rng_mode must be one of {RNG_MODES}, got {self.rng_mode!r}")
        if self.max_batch_bytes <= 0:
            raise ValueError("max_batch_bytes must be positive")


# ---------------------------------------------------------------------------
# Path-table compilation
# ---------------------------------------------------------------------------


@dataclass
class PathTable:
    """Flat arrays describing every delivery path of a solution.

    Paths are ordered stream-major (streams in problem order, demands in
    problem order within their stream, serving reflectors in solution order)
    and are contiguous per demand, so ``demand_path_starts`` delimit each
    demand's block of the path axis.  ``*_profiles`` carry the failure
    schedule per link: a bit-packed hard-outage mask plus piecewise-constant
    congestion segments ``(start, end, severity)``.
    """

    demand_keys: list[tuple[str, str]]
    demand_thresholds: np.ndarray
    demand_path_starts: np.ndarray
    demand_num_paths: np.ndarray
    first_hop_links: list[tuple[str, str]]
    first_hop_loss: np.ndarray
    first_hop_profiles: list[tuple[int, np.ndarray | None, list[tuple[int, int, float]]]]
    first_hop_path_rows: list[np.ndarray]
    path_links: list[tuple[str, str]]
    path_loss: np.ndarray
    path_first_hop: np.ndarray
    path_profiles: list[tuple[int, np.ndarray | None, list[tuple[int, int, float]]]]

    @property
    def num_paths(self) -> int:
        return len(self.path_links)

    @property
    def num_first_hops(self) -> int:
        return len(self.first_hop_links)


def _profile_segments(soft: np.ndarray) -> list[tuple[int, int, float]]:
    """Decompose a fractional forced-loss profile into constant runs."""
    changes = np.flatnonzero(np.diff(soft) != 0.0) + 1
    bounds = np.concatenate(([0], changes, [soft.size]))
    segments = []
    for start, end in zip(bounds[:-1], bounds[1:]):
        value = float(soft[start])
        if value > 0.0:
            segments.append((int(start), int(end), value))
    return segments


def _split_profile(
    profile: np.ndarray | None,
) -> tuple[np.ndarray | None, list[tuple[int, int, float]]]:
    """Split a forced-loss profile into a packed hard mask + soft segments."""
    if profile is None:
        return None, []
    hard = profile >= 1.0
    soft = np.where(hard, 0.0, profile)
    packed_hard = np.packbits(hard, bitorder="little") if hard.any() else None
    return packed_hard, _profile_segments(soft)


def compile_path_table(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    failures: FailureSchedule,
    num_packets: int,
    node_isp: dict[str, str | None],
) -> PathTable:
    """Flatten (problem, solution, failures) into the engine's array form."""
    demand_keys: list[tuple[str, str]] = []
    thresholds: list[float] = []
    starts: list[int] = []
    num_paths: list[int] = []
    first_hop_index: dict[tuple[str, str], int] = {}
    first_hop_links: list[tuple[str, str]] = []
    first_hop_loss: list[float] = []
    path_links: list[tuple[str, str]] = []
    path_loss: list[float] = []
    path_first_hop: list[int] = []

    for stream in problem.streams:
        for demand in problem.demands:
            if demand.stream != stream:
                continue
            serving = solution.reflectors_serving(demand)
            if not serving:
                continue
            demand_keys.append(demand.key)
            thresholds.append(demand.success_threshold)
            starts.append(len(path_links))
            num_paths.append(len(serving))
            for reflector in serving:
                link = (stream, reflector)
                if link not in first_hop_index:
                    first_hop_index[link] = len(first_hop_links)
                    first_hop_links.append(link)
                    first_hop_loss.append(problem.stream_edge(stream, reflector).loss_probability)
                path_links.append((reflector, demand.sink))
                path_loss.append(problem.delivery_loss(reflector, demand.sink))
                path_first_hop.append(first_hop_index[link])

    def profiles(links: list[tuple[str, str]]):
        out = []
        for row, (tail, head) in enumerate(links):
            hard, segments = _split_profile(
                failures.link_loss_profile(tail, head, num_packets, node_isp)
            )
            if hard is not None or segments:
                out.append((row, hard, segments))
        return out

    path_first_hop_array = np.asarray(path_first_hop, dtype=np.intp)
    return PathTable(
        demand_keys=demand_keys,
        demand_thresholds=np.asarray(thresholds, dtype=np.float64),
        demand_path_starts=np.asarray(starts, dtype=np.intp),
        demand_num_paths=np.asarray(num_paths, dtype=np.int64),
        first_hop_links=first_hop_links,
        first_hop_loss=np.asarray(first_hop_loss, dtype=np.float64),
        first_hop_profiles=profiles(first_hop_links),
        first_hop_path_rows=[
            np.flatnonzero(path_first_hop_array == index)
            for index in range(len(first_hop_links))
        ],
        path_links=path_links,
        path_loss=np.asarray(path_loss, dtype=np.float64),
        path_first_hop=path_first_hop_array,
        path_profiles=profiles(path_links),
    )


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class DemandReliability:
    """Per-demand Monte-Carlo outcome: one entry per trial."""

    demand_key: tuple[str, str]
    threshold: float
    paths: int
    loss: np.ndarray
    worst_window: np.ndarray
    duplicates: np.ndarray

    @property
    def mean_loss(self) -> float:
        return float(self.loss.mean())

    @property
    def loss_std(self) -> float:
        return float(self.loss.std(ddof=1)) if self.loss.size > 1 else 0.0

    @property
    def mean_worst_window(self) -> float:
        return float(self.worst_window.mean())

    @property
    def meets_threshold_fraction(self) -> float:
        budget = (1.0 - self.threshold) + 1e-12
        return float(np.mean(self.loss <= budget))


@dataclass
class MonteCarloReport:
    """Aggregate + per-demand results of a batched Monte-Carlo run."""

    num_packets: int
    trials: int
    window: int
    rng_mode: str
    demands: list[DemandReliability]

    @property
    def loss_matrix(self) -> np.ndarray:
        """Per-demand, per-trial loss rates: shape ``(demands, trials)``."""
        if not self.demands:
            return np.zeros((0, self.trials))
        return np.stack([d.loss for d in self.demands])

    @property
    def trial_mean_loss(self) -> np.ndarray:
        """Mean loss across demands, per trial."""
        matrix = self.loss_matrix
        if matrix.size == 0:
            return np.zeros(self.trials)
        return matrix.mean(axis=0)

    @property
    def mean_loss(self) -> float:
        matrix = self.loss_matrix
        return float(matrix.mean()) if matrix.size else 0.0

    @property
    def max_loss(self) -> float:
        matrix = self.loss_matrix
        return float(matrix.max()) if matrix.size else 0.0

    @property
    def mean_loss_ci_halfwidth(self) -> float:
        """95% CI half-width of the session mean loss (across trials)."""
        means = self.trial_mean_loss
        if means.size <= 1:
            return 0.0
        return float(1.96 * means.std(ddof=1) / np.sqrt(means.size))

    @property
    def fraction_meeting_threshold(self) -> float:
        if not self.demands:
            return 1.0
        return float(np.mean([d.meets_threshold_fraction for d in self.demands]))

    @property
    def mean_worst_window(self) -> float:
        if not self.demands:
            return 0.0
        return float(np.mean([d.mean_worst_window for d in self.demands]))

    def result_for(self, demand_key: tuple[str, str]) -> DemandReliability:
        for result in self.demands:
            if result.demand_key == demand_key:
                return result
        raise KeyError(f"no Monte-Carlo result for demand {demand_key}")

    def to_simulation_report(self, trial: int = 0) -> SimulationReport:
        """Project one trial onto the legacy :class:`SimulationReport` shape."""
        if not 0 <= trial < self.trials:
            raise IndexError(f"trial {trial} outside [0, {self.trials})")
        rows = [
            DemandSimulationResult(
                demand_key=d.demand_key,
                threshold=d.threshold,
                paths=d.paths,
                loss_rate=float(d.loss[trial]),
                worst_window_loss=float(d.worst_window[trial]),
                duplicates_discarded=int(d.duplicates[trial]),
            )
            for d in self.demands
        ]
        return SimulationReport(num_packets=self.num_packets, demands=rows)

    def summary(self) -> dict:
        return {
            "num_packets": self.num_packets,
            "trials": self.trials,
            "num_demands": len(self.demands),
            "mean_loss": self.mean_loss,
            "mean_loss_ci95": self.mean_loss_ci_halfwidth,
            "max_loss": self.max_loss,
            "mean_worst_window_loss": self.mean_worst_window,
            "fraction_meeting_threshold": self.fraction_meeting_threshold,
        }


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


def estimate_trial_bytes(table: PathTable, loss_model: LossModel, num_packets: int) -> float:
    """Approximate working-set bytes one trial of ``table`` needs.

    Shared between the batched engine's trial chunking and the streaming
    engine's tile-fit checks, so both enforce the same working-set bound.
    """
    from repro.network.loss import _SPARSE_SAMPLING_THRESHOLD, _gap_budget

    num_bytes = (num_packets + 7) // 8
    rows = table.num_first_hops + 2 * table.num_paths + len(table.demand_keys)
    per_trial = float(rows * (num_bytes * 3 + 96))
    if type(loss_model) is BernoulliLossModel:
        # Per-row sampling footprint mirrors sample_packed_loss_matrix: lossy
        # rows (p >= the sparse threshold) draw dense float64 uniforms, the
        # rest draw ~gap-budget float32 exponentials plus position arrays.
        for p in np.concatenate([table.first_hop_loss, table.path_loss]):
            if p >= _SPARSE_SAMPLING_THRESHOLD:
                per_trial += num_packets * 10
            elif p > 0.0:
                per_trial += _gap_budget(num_packets * float(p)) * 5
    else:
        # Dense models materialize (rows, chunk, packets) draws before packing.
        per_trial = float(rows * num_packets * 20)
    return per_trial


def _chunk_trials(table: PathTable, config: MonteCarloConfig) -> list[int]:
    """Deterministic trial chunking under the working-set bound."""
    per_trial = estimate_trial_bytes(table, config.loss_model, config.num_packets)
    chunk = int(np.clip(config.max_batch_bytes // max(int(per_trial), 1), 1, config.trials))
    sizes = [chunk] * (config.trials // chunk)
    if config.trials % chunk:
        sizes.append(config.trials % chunk)
    return sizes


def slice_path_table(table: PathTable, start: int, stop: int) -> PathTable:
    """The sub-table covering demand rows ``[start, stop)`` of ``table``.

    Path rows stay in table order (they are contiguous per demand); first
    hops are restricted to the referenced subset with their relative order
    preserved, so running the engine on the slice consumes randomness exactly
    as a table compiled for those demands alone would.
    """
    if not 0 <= start <= stop <= len(table.demand_keys):
        raise IndexError(f"demand slice [{start}, {stop}) outside [0, {len(table.demand_keys)})")
    if start == stop:
        path_lo = path_hi = 0
    else:
        path_lo = int(table.demand_path_starts[start])
        path_hi = int(table.demand_path_starts[stop - 1] + table.demand_num_paths[stop - 1])
    path_first_hop = table.path_first_hop[path_lo:path_hi]
    used = np.unique(path_first_hop)
    remap = np.full(table.num_first_hops, -1, dtype=np.intp)
    remap[used] = np.arange(used.size, dtype=np.intp)
    new_first_hop = remap[path_first_hop]
    used_set = set(int(row) for row in used)
    return PathTable(
        demand_keys=table.demand_keys[start:stop],
        demand_thresholds=table.demand_thresholds[start:stop],
        demand_path_starts=table.demand_path_starts[start:stop] - path_lo,
        demand_num_paths=table.demand_num_paths[start:stop],
        first_hop_links=[table.first_hop_links[int(row)] for row in used],
        first_hop_loss=table.first_hop_loss[used],
        first_hop_profiles=[
            (int(remap[row]), hard, segments)
            for row, hard, segments in table.first_hop_profiles
            if row in used_set
        ],
        first_hop_path_rows=[
            np.flatnonzero(new_first_hop == index) for index in range(used.size)
        ],
        path_links=table.path_links[path_lo:path_hi],
        path_loss=table.path_loss[path_lo:path_hi],
        path_first_hop=new_first_hop,
        path_profiles=[
            (row - path_lo, hard, segments)
            for row, hard, segments in table.path_profiles
            if path_lo <= row < path_hi
        ],
    )


def _apply_packed_profiles(
    packed: np.ndarray,
    profiles: list[tuple[int, np.ndarray | None, list[tuple[int, int, float]]]],
    rng: np.random.Generator,
) -> None:
    """Overlay forced-loss profiles onto a packed ``(rows, trials, bytes)`` mask."""
    trials, num_bytes = packed.shape[1], packed.shape[2]
    for row, hard, segments in profiles:
        if segments:
            index_parts = []
            bit_parts = []
            for start, end, severity in segments:
                trial_idx, positions = sample_bernoulli_positions(
                    severity, trials, end - start, rng
                )
                positions = positions + start
                index_parts.append(trial_idx * num_bytes + (positions >> 3))
                bit_parts.append(np.left_shift(1, positions & 7))
            counts = np.bincount(
                np.concatenate(index_parts),
                weights=np.concatenate(bit_parts),
                minlength=trials * num_bytes,
            )
            packed[row] |= counts.astype(np.uint8).reshape(trials, num_bytes)
        if hard is not None:
            packed[row] |= hard[None, :]


def _window_counts_packed(
    all_lost: np.ndarray, num_packets: int, window: int
) -> np.ndarray:
    """Per-window lost-packet counts from a packed ``(..., bytes)`` mask."""
    num_windows = -(-num_packets // window)
    if window % 8 == 0:
        window_bytes = window // 8
        byte_pop = _popcount(all_lost)
        pad = num_windows * window_bytes - byte_pop.shape[-1]
        if pad:
            byte_pop = np.concatenate(
                [byte_pop, np.zeros((*byte_pop.shape[:-1], pad), dtype=np.uint8)],
                axis=-1,
            )
        folded = byte_pop.reshape(*byte_pop.shape[:-1], num_windows, window_bytes)
        return folded.sum(axis=-1, dtype=np.int64)
    dense = np.unpackbits(all_lost, axis=-1, count=num_packets, bitorder="little")
    pad = num_windows * window - num_packets
    if pad:
        dense = np.concatenate(
            [dense, np.zeros((*dense.shape[:-1], pad), dtype=np.uint8)], axis=-1
        )
    folded = dense.reshape(*dense.shape[:-1], num_windows, window)
    return folded.sum(axis=-1, dtype=np.int64)


def path_count_groups(table: PathTable) -> list[tuple[int, np.ndarray]]:
    """Demand rows grouped by path count (reconstruction-fold batches)."""
    return [
        (int(count), np.flatnonzero(table.demand_num_paths == count))
        for count in np.unique(table.demand_num_paths)
    ]


def simulate_trial_block(
    table: PathTable,
    loss_model: LossModel,
    chunk: int,
    num_packets: int,
    window: int,
    count_groups: list[tuple[int, np.ndarray]],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One block of ``chunk`` trials over every demand of ``table``.

    The integer core of the batched engine, shared with the streaming tiles:
    returns ``(window_counts, loss_count, duplicates)`` as int64 arrays of
    shapes ``(served, chunk, windows)``, ``(served, chunk)``, ``(served,
    chunk)``.  Consumes randomness from ``rng`` in a fixed order (first-hop
    draws, first-hop profiles, path draws, path profiles).
    """
    served = len(table.demand_keys)
    starts = table.demand_path_starts
    fh_packed = loss_model.sample_packed_loss_matrix(
        table.first_hop_loss, chunk, num_packets, rng, links=table.first_hop_links
    )
    _apply_packed_profiles(fh_packed, table.first_hop_profiles, rng)
    lost = loss_model.sample_packed_loss_matrix(
        table.path_loss, chunk, num_packets, rng, links=table.path_links
    )
    _apply_packed_profiles(lost, table.path_profiles, rng)
    # A path loses a packet iff either hop lost it; the shared first-hop
    # draw is broadcast to every path served by that reflector.
    for index, rows in enumerate(table.first_hop_path_rows):
        lost[rows] |= fh_packed[index]
    # Per-path received counts feed the duplicate (redundancy) statistic.
    path_received = num_packets - _popcount(lost).sum(axis=2, dtype=np.int64)
    # Reconstruction: a packet survives iff any copy arrived, i.e. it is
    # lost iff every path of its demand lost it -- a bitwise-AND fold.
    all_lost = np.empty((served, chunk, lost.shape[2]), dtype=np.uint8)
    for count, rows in count_groups:
        fold = lost[starts[rows]]
        for offset in range(1, count):
            fold &= lost[starts[rows] + offset]
        all_lost[rows] = fold
    window_counts = _window_counts_packed(all_lost, num_packets, window)
    loss_count = window_counts.sum(axis=2)
    copies = np.add.reduceat(path_received, starts, axis=0)
    duplicates = copies - (num_packets - loss_count)
    return window_counts, loss_count, duplicates


def run_monte_carlo(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    config: MonteCarloConfig | None = None,
    rng: np.random.Generator | None = None,
    node_isp: dict[str, str | None] | None = None,
    table: PathTable | None = None,
) -> MonteCarloReport:
    """Run the batched Monte-Carlo simulation of ``solution`` on ``problem``.

    ``node_isp`` maps node names to ISP names for ISP-outage events; it
    defaults to the reflector colors recorded in the problem, exactly like
    :func:`simulate_solution`.

    ``table`` supplies a pre-compiled :class:`PathTable` (e.g. from the
    serving cache) and must come from :func:`compile_path_table` over the
    *same* ``(problem, solution, config.failures, config.num_packets,
    node_isp)`` -- the table is a pure function of those inputs, so a valid
    supplied table only skips the compile pass.  Ignored in ``compat`` mode,
    which replays the legacy per-packet path.
    """
    config = config or MonteCarloConfig()
    if node_isp is None:
        node_isp = {r: problem.color(r) for r in problem.reflectors}
    config.failures.validate_for_session(config.num_packets)
    if rng is None:
        rng = np.random.default_rng(config.seed)
    if config.rng_mode == "compat":
        return _run_compat(problem, solution, config, rng, node_isp)

    if table is None:
        table = compile_path_table(
            problem, solution, config.failures, config.num_packets, node_isp
        )
    num_packets = config.num_packets
    served = len(table.demand_keys)
    wsizes = np.diff(np.append(window_starts(num_packets, config.window), num_packets))
    # Demands grouped by path count: the reconstruction fold runs once per
    # distinct count on a fancy-indexed block instead of once per demand.
    count_groups = path_count_groups(table)
    loss_chunks: list[np.ndarray] = []
    worst_chunks: list[np.ndarray] = []
    dup_chunks: list[np.ndarray] = []

    for chunk in _chunk_trials(table, config) if served else []:
        window_counts, loss_count, duplicates = simulate_trial_block(
            table, config.loss_model, chunk, num_packets, config.window, count_groups, rng
        )
        loss_chunks.append(loss_count / num_packets)
        worst_chunks.append((window_counts / wsizes).max(axis=2))
        dup_chunks.append(duplicates)

    if served:
        loss = np.concatenate(loss_chunks, axis=1)
        worst = np.concatenate(worst_chunks, axis=1)
        duplicates = np.concatenate(dup_chunks, axis=1)
    else:
        loss = worst = duplicates = np.zeros((0, config.trials))
    by_key = {key: row for row, key in enumerate(table.demand_keys)}

    demands: list[DemandReliability] = []
    for demand in problem.demands:
        row = by_key.get(demand.key)
        if row is None:
            demands.append(
                DemandReliability(
                    demand_key=demand.key,
                    threshold=demand.success_threshold,
                    paths=0,
                    loss=np.ones(config.trials),
                    worst_window=np.ones(config.trials),
                    duplicates=np.zeros(config.trials, dtype=np.int64),
                )
            )
            continue
        demands.append(
            DemandReliability(
                demand_key=demand.key,
                threshold=demand.success_threshold,
                paths=int(table.demand_num_paths[row]),
                loss=loss[row],
                worst_window=worst[row],
                duplicates=duplicates[row].astype(np.int64),
            )
        )
    return MonteCarloReport(
        num_packets=num_packets,
        trials=config.trials,
        window=config.window,
        rng_mode=config.rng_mode,
        demands=demands,
    )


def _run_compat(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    config: MonteCarloConfig,
    rng: np.random.Generator,
    node_isp: dict[str, str | None],
) -> MonteCarloReport:
    """Trial-by-trial replay through the legacy engine (bit-identical anchor).

    Trial ``t`` consumes exactly the draws that the ``t+1``-th call of
    :func:`simulate_solution` on the same generator would, so a compat run
    with ``trials=n`` equals ``n`` consecutive legacy runs, number for number.
    """
    legacy = SimulationConfig(
        num_packets=config.num_packets,
        loss_model=config.loss_model,
        failures=config.failures,
        window=config.window,
    )
    per_demand: dict[tuple[str, str], list[DemandSimulationResult]] = {}
    for _ in range(config.trials):
        report = simulate_solution(problem, solution, legacy, rng=rng, node_isp=node_isp)
        for result in report.demands:
            per_demand.setdefault(result.demand_key, []).append(result)
    demands = [
        DemandReliability(
            demand_key=demand.key,
            threshold=demand.success_threshold,
            paths=per_demand[demand.key][0].paths,
            loss=np.asarray([r.loss_rate for r in per_demand[demand.key]]),
            worst_window=np.asarray(
                [r.worst_window_loss for r in per_demand[demand.key]]
            ),
            duplicates=np.asarray(
                [r.duplicates_discarded for r in per_demand[demand.key]], dtype=np.int64
            ),
        )
        for demand in problem.demands
    ]
    return MonteCarloReport(
        num_packets=config.num_packets,
        trials=config.trials,
        window=config.window,
        rng_mode=config.rng_mode,
        demands=demands,
    )
