"""Packet-level streaming simulation.

The paper evaluates designs analytically (loss probabilities combine by the
rules of Section 1.3).  A deployed system, however, is judged by the *measured
post-reconstruction loss* at each edgeserver: the fraction of packets that no
reflector path delivered in time.  This subpackage simulates exactly that
process, packet by packet, for any :class:`repro.core.OverlaySolution`:

* :mod:`repro.simulation.packets` -- packet-session bookkeeping;
* :mod:`repro.simulation.transport` -- per-link loss sampling and two-hop
  delivery masks (vectorised with numpy);
* :mod:`repro.simulation.reconstruction` -- the edgeserver's duplicate
  suppression / hole filling (a packet survives if *any* copy arrives);
* :mod:`repro.simulation.failures` -- injected events (ISP outages, reflector
  crashes) over packet-index windows;
* :mod:`repro.simulation.engine` -- the driver producing per-demand loss
  statistics and threshold verdicts.

The engine is the empirical cross-check for the analytic reliability claims
(tests compare simulated loss with the exact formula) and the workhorse of
the C1/T6 benchmarks and the failure-resilience example.
"""

from repro.simulation.engine import SimulationConfig, SimulationReport, simulate_solution
from repro.simulation.failures import FailureEvent, FailureSchedule
from repro.simulation.packets import StreamSession
from repro.simulation.reconstruction import post_reconstruction_loss, reconstruct
from repro.simulation.transport import simulate_demand_paths, simulate_link_losses

__all__ = [
    "FailureEvent",
    "FailureSchedule",
    "SimulationConfig",
    "SimulationReport",
    "StreamSession",
    "post_reconstruction_loss",
    "reconstruct",
    "simulate_demand_paths",
    "simulate_link_losses",
    "simulate_solution",
]
