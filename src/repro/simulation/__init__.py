"""Packet-level streaming simulation.

The paper evaluates designs analytically (loss probabilities combine by the
rules of Section 1.3).  A deployed system, however, is judged by the *measured
post-reconstruction loss* at each edgeserver: the fraction of packets that no
reflector path delivered in time.  This subpackage simulates exactly that
process for any :class:`repro.core.OverlaySolution`:

* :mod:`repro.simulation.packets` -- packet-session bookkeeping and windowed
  loss statistics (vectorized ``reduceat`` folds);
* :mod:`repro.simulation.transport` -- per-link loss sampling and two-hop
  delivery masks (vectorised with numpy);
* :mod:`repro.simulation.reconstruction` -- the edgeserver's duplicate
  suppression / hole filling (a packet survives if *any* copy arrives);
* :mod:`repro.simulation.failures` -- injected events (ISP outages, node and
  regional failures, congestion) plus correlated failure samplers;
* :mod:`repro.simulation.engine` -- the legacy per-demand driver
  (:func:`simulate_solution`), one session at a time;
* :mod:`repro.simulation.montecarlo` -- the batched Monte-Carlo engine
  (:func:`run_monte_carlo`): all demands x all trials as numpy arrays, with a
  bit-compatible ``rng_mode="compat"`` anchored to the legacy engine;
* :mod:`repro.simulation.streaming` -- the memory-bounded streaming audit
  (:func:`run_streaming_monte_carlo`): tiles the demands x trials plane,
  folds exact mergeable accumulators per tile, flat RSS in the trial count;
* :mod:`repro.simulation.traces` -- diurnal :class:`LoadTrace` catalogue
  (arrival/departure processes) for trace-driven replay through the
  streaming fold;
* :mod:`repro.simulation.scenarios` -- the registered failure-scenario
  catalogue (:func:`evaluate_design` sweeps a design across it;
  :func:`evaluate_design_streaming` is the memory-bounded variant);
* :mod:`repro.simulation.dsl` -- the composable scenario DSL: YAML/JSON
  documents compiled into catalogue entries (the shipped ``*.json`` files
  under ``repro/simulation/scenarios/`` auto-register on first catalogue
  access; see ``docs/scenarios.md``).

The engines are the empirical cross-check for the analytic reliability claims
and the workhorse of the C1/T6/R1/R2 benchmarks; see ``docs/simulation.md``
for the design and the RNG/determinism contract.
"""

from repro.simulation.dsl import (
    ScenarioValidationError,
    SpecIssue,
    compile_scenario,
    load_scenario_file,
    normalize_scenario_spec,
    register_scenario_file,
    shipped_scenario_paths,
)
from repro.simulation.engine import SimulationConfig, SimulationReport, simulate_solution
from repro.simulation.failures import (
    FailureEvent,
    FailureSchedule,
    sample_flash_crowd_congestion,
    sample_isp_outage_schedule,
    sample_regional_outage_schedule,
)
from repro.simulation.montecarlo import (
    DemandReliability,
    MonteCarloConfig,
    MonteCarloReport,
    PathTable,
    compile_path_table,
    run_monte_carlo,
    slice_path_table,
)
from repro.simulation.packets import StreamSession
from repro.simulation.reconstruction import post_reconstruction_loss, reconstruct
from repro.simulation.scenarios import (
    FailureScenario,
    ScenarioContext,
    ScenarioRealization,
    evaluate_design,
    evaluate_design_streaming,
    failure_scenario_names,
    get_failure_scenario,
    realize_scenario,
    reflector_betweenness,
    register_failure_scenario,
    scenario_stream_key,
    top_betweenness_reflectors,
)
from repro.simulation.streaming import (
    StreamingAccumulator,
    StreamingConfig,
    StreamingMemoryError,
    StreamingReport,
    TraceReport,
    run_streaming_monte_carlo,
)
from repro.simulation.traces import (
    LoadTrace,
    SessionActivity,
    get_load_trace,
    load_trace_names,
    register_load_trace,
)
from repro.simulation.transport import simulate_demand_paths, simulate_link_losses

__all__ = [
    "DemandReliability",
    "FailureEvent",
    "FailureScenario",
    "FailureSchedule",
    "LoadTrace",
    "MonteCarloConfig",
    "MonteCarloReport",
    "PathTable",
    "ScenarioContext",
    "ScenarioRealization",
    "ScenarioValidationError",
    "SessionActivity",
    "SimulationConfig",
    "SimulationReport",
    "StreamSession",
    "StreamingAccumulator",
    "StreamingConfig",
    "StreamingMemoryError",
    "StreamingReport",
    "SpecIssue",
    "TraceReport",
    "compile_path_table",
    "compile_scenario",
    "evaluate_design",
    "evaluate_design_streaming",
    "failure_scenario_names",
    "get_failure_scenario",
    "get_load_trace",
    "load_scenario_file",
    "load_trace_names",
    "normalize_scenario_spec",
    "post_reconstruction_loss",
    "realize_scenario",
    "reconstruct",
    "reflector_betweenness",
    "register_failure_scenario",
    "register_load_trace",
    "register_scenario_file",
    "run_monte_carlo",
    "scenario_stream_key",
    "shipped_scenario_paths",
    "top_betweenness_reflectors",
    "run_streaming_monte_carlo",
    "sample_flash_crowd_congestion",
    "sample_isp_outage_schedule",
    "sample_regional_outage_schedule",
    "simulate_demand_paths",
    "simulate_link_losses",
    "simulate_solution",
    "slice_path_table",
]
