"""Diurnal load traces: arrival/departure processes over demand-sessions.

The paper's object of study is *live streaming*: demands are viewers that
join and leave, and the quantity that matters operationally is not only the
whole-session loss rate but what happens inside the windows a viewer is
actually watching -- a loss burst at peak hour hits the full diurnal crest
of the audience, the same burst at 4am almost nobody.

A :class:`LoadTrace` turns the static demand set of an
:class:`~repro.core.problem.OverlayDesignProblem` into *sessions*: for every
demand it realizes an ``(arrival, departure)`` pair in worst-window units
over one simulated day.  The realization is sampled once per run from its
own ``SeedSequence``-derived stream, *independent of the tile grid*, so the
streaming engine's trace replay is as tiling-immune as the loss fold itself.

Traces are registered by name (the catalogue mirrors
:mod:`repro.simulation.scenarios`); ``repro simulate --stream --trace NAME``
and :class:`repro.api.EvaluationSpec` resolve them here.  Workload-specific
traces (e.g. the metro-timezone-aware ``metro-diurnal`` of
:mod:`repro.workloads.session_traces`) register themselves on import and are
pulled in lazily by :func:`load_trace_names`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SessionActivity:
    """Realized sessions: per-demand active window ranges.

    ``arrival`` is the first active window, ``departure`` the first inactive
    one (exclusive); every demand is active for at least one window.
    """

    arrival: np.ndarray
    departure: np.ndarray
    num_windows: int

    def __post_init__(self) -> None:
        arrival = np.asarray(self.arrival, dtype=np.int64)
        departure = np.asarray(self.departure, dtype=np.int64)
        object.__setattr__(self, "arrival", arrival)
        object.__setattr__(self, "departure", departure)
        if arrival.shape != departure.shape:
            raise ValueError("arrival and departure must have the same shape")
        if arrival.size:
            if arrival.min() < 0 or departure.max() > self.num_windows:
                raise ValueError("session windows outside [0, num_windows)")
            if np.any(departure <= arrival):
                raise ValueError("every session must span at least one window")

    @property
    def num_demands(self) -> int:
        return int(self.arrival.size)

    def active_mask(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Boolean ``(demands, windows)`` activity for demand rows [start, stop)."""
        stop = self.num_demands if stop is None else stop
        windows = np.arange(self.num_windows, dtype=np.int64)
        return (windows >= self.arrival[start:stop, None]) & (
            windows < self.departure[start:stop, None]
        )

    def active_counts(self) -> np.ndarray:
        """Number of active demands per window (exact, O(D + W))."""
        delta = np.zeros(self.num_windows + 1, dtype=np.int64)
        np.add.at(delta, self.arrival, 1)
        np.add.at(delta, self.departure, -1)
        return np.cumsum(delta[:-1])


@dataclass(frozen=True)
class TraceContext:
    """Everything a trace realization may condition on."""

    demand_keys: Sequence[tuple[str, str]]
    num_windows: int
    rng: np.random.Generator

    @property
    def num_demands(self) -> int:
        return len(self.demand_keys)


@dataclass(frozen=True)
class LoadTrace:
    """A named arrival/departure process over the demand set."""

    name: str
    description: str
    realize: Callable[[TraceContext], SessionActivity]


def sample_sessions(
    context: TraceContext,
    intensity: np.ndarray,
    mean_windows: float,
    phase_offsets: np.ndarray | None = None,
) -> SessionActivity:
    """Sample sessions from an arrival-intensity curve.

    Arrivals are categorical over ``intensity`` (any nonnegative curve over
    the windows of the day); session lengths are geometric with mean
    ``mean_windows``; sessions truncate at the end of the day.
    ``phase_offsets`` (per-demand, in windows) rotate each demand's arrival
    around the day -- how the metro-timezone trace spreads the crest.
    """
    num_windows = context.num_windows
    num_demands = context.num_demands
    weights = np.asarray(intensity, dtype=np.float64)
    if weights.shape != (num_windows,) or weights.min() < 0 or weights.sum() <= 0:
        raise ValueError("intensity must be a nonnegative curve over the day's windows")
    arrival = context.rng.choice(num_windows, size=num_demands, p=weights / weights.sum())
    arrival = arrival.astype(np.int64)
    if phase_offsets is not None:
        arrival = (arrival + np.asarray(phase_offsets, dtype=np.int64)) % num_windows
    mean_windows = max(float(mean_windows), 1.0)
    lengths = context.rng.geometric(p=min(1.0, 1.0 / mean_windows), size=num_demands)
    departure = np.minimum(arrival + np.maximum(lengths.astype(np.int64), 1), num_windows)
    return SessionActivity(arrival=arrival, departure=departure, num_windows=num_windows)


def diurnal_intensity(
    num_windows: int, peak_phase: float = 0.75, amplitude: float = 0.85
) -> np.ndarray:
    """One-day sinusoidal load curve peaking at ``peak_phase`` of the day."""
    phase = np.arange(num_windows, dtype=np.float64) / max(num_windows, 1)
    return 1.0 + amplitude * np.cos(2.0 * np.pi * (phase - peak_phase))


def flash_crowd_intensity(num_windows: int) -> np.ndarray:
    """A quiet diurnal base plus a sharp synchronized join spike.

    The "everyone tunes in for the event" curve: most arrivals land inside a
    narrow Gaussian spike at 60% of the day (the paper's MacWorld-2002
    motivation).  Shared by the ``flash-crowd`` load trace and the scenario
    DSL's ``traffic-overlay`` primitive, so both stress the same audience
    shape.
    """
    phase = np.arange(num_windows, dtype=np.float64) / max(num_windows, 1)
    base = 0.25 * diurnal_intensity(num_windows)
    spike = 6.0 * np.exp(-0.5 * ((phase - 0.6) / 0.03) ** 2)
    return base + spike


# --------------------------------------------------------------- the registry

LOAD_TRACES: dict[str, LoadTrace] = {}


def register_load_trace(trace: LoadTrace) -> LoadTrace:
    if trace.name in LOAD_TRACES:
        raise ValueError(f"load trace {trace.name!r} already registered")
    LOAD_TRACES[trace.name] = trace
    return trace


def _ensure_workload_traces() -> None:
    # Lazy: repro.workloads imports this module, so the workload-specific
    # traces register via a deferred import instead of a cycle.
    import repro.workloads.session_traces  # noqa: F401


def get_load_trace(name: str) -> LoadTrace:
    _ensure_workload_traces()
    try:
        return LOAD_TRACES[name]
    except KeyError:
        known = ", ".join(sorted(LOAD_TRACES))
        raise KeyError(f"unknown load trace {name!r} (known: {known})") from None


def load_trace_names() -> list[str]:
    _ensure_workload_traces()
    return sorted(LOAD_TRACES)


def _realize_diurnal(context: TraceContext) -> SessionActivity:
    intensity = diurnal_intensity(context.num_windows)
    return sample_sessions(context, intensity, mean_windows=context.num_windows / 6.0)


def _realize_flash_crowd(context: TraceContext) -> SessionActivity:
    intensity = flash_crowd_intensity(context.num_windows)
    return sample_sessions(context, intensity, mean_windows=context.num_windows / 10.0)


register_load_trace(
    LoadTrace(
        name="diurnal",
        description="sinusoidal one-day load curve, evening peak, long sessions",
        realize=_realize_diurnal,
    )
)
register_load_trace(
    LoadTrace(
        name="flash-crowd",
        description="quiet diurnal base plus a sharp synchronized join spike",
        realize=_realize_flash_crowd,
    )
)
