"""Memory-bounded streaming reliability audit (the million-demand tier).

The batched engine of :mod:`repro.simulation.montecarlo` materialises all
``demands x trials`` statistics in RAM, which caps end-to-end audits well
below the internet-scale instances the design pipeline can now produce.
This module tiles the ``(demands x trials)`` plane and folds statistics
tile by tile through mergeable accumulators, so peak memory is one tile's
working set plus per-demand sufficient statistics -- *flat in the trial
count*:

* the compiled :class:`~repro.simulation.montecarlo.PathTable` is sliced
  per demand tile (:func:`~repro.simulation.montecarlo.slice_path_table`)
  and each tile runs the engine's shared integer kernel
  (:func:`~repro.simulation.montecarlo.simulate_trial_block`);
* every tile draws from its own ``SeedSequence([seed, tile])`` stream, so
  tiles are self-contained: execution order, ``--jobs``, and appending more
  trials never shift another tile's random-block layout (the batched mode's
  documented ``max_batch_bytes`` caveat does not apply here);
* accumulators hold *exact integer sufficient statistics* (lost-packet
  counts, threshold hits, duplicate counts, worst-window numerators over a
  common denominator), so ``merge`` is integer addition/maximum -- exact,
  associative, commutative -- and results are bit-identical no matter how
  tiles are scheduled;
* tiles fan out over :func:`repro.analysis.runner.execute_tasks`, the same
  deterministic executor the bench scenarios use.

Worst-window statistics are folded as *scaled integers*: with window sizes
``b_w`` and ``L = lcm(b_w)``, the worst-window numerator
``max_w(count_w * L / b_w)`` is an exact int64, and because correctly
rounded float division is monotone, ``float(worst_scaled / L)`` reproduces
the batched engine's ``max_w(count_w / b_w)`` bit for bit.

Trace-driven replay (:mod:`repro.simulation.traces`) rides the same fold:
a :class:`~repro.simulation.traces.LoadTrace` realizes per-demand session
windows once per run (independent of the tile grid), and each tile also
folds per-window active/lost/rebuffer counters restricted to the windows a
demand-session is live.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution
from repro.network.loss import BernoulliLossModel, LossModel
from repro.simulation.failures import FailureSchedule
from repro.simulation.montecarlo import (
    PathTable,
    compile_path_table,
    path_count_groups,
    simulate_trial_block,
    slice_path_table,
)
from repro.simulation.packets import window_starts
from repro.simulation.traces import (
    LoadTrace,
    SessionActivity,
    TraceContext,
    get_load_trace,
)

DEFAULT_DEMAND_TILE = 1024
DEFAULT_TRIAL_TILE = 32

# Trace session streams live far above any realistic tile index, so the
# per-tile ``SeedSequence([seed, tile])`` family and the per-trace
# ``SeedSequence([seed, _TRACE_STREAM_BASE + i])`` family never collide.
_TRACE_STREAM_BASE = 2**48


class StreamingMemoryError(ValueError):
    """The working-set bound cannot be met by any tile shape."""


@dataclass
class StreamingConfig:
    """Configuration of a streaming Monte-Carlo audit.

    ``demand_tile``/``trial_tile`` fix the tile grid (defaults
    ``1024 x 32``); results are a pure function of ``(seed, num_packets,
    window, loss model, failures, effective tile grid)`` -- never of
    ``jobs`` or scheduling order.  ``max_memory`` bounds one tile's
    estimated working set: the grid is shrunk deterministically (trial tile
    first, then demand tile) until it fits, and a
    :class:`StreamingMemoryError` is raised when even a single demand row
    at one trial cannot fit.  ``rebuffer_loss`` is the per-window loss
    fraction at or above which an active session counts a rebuffer event.
    """

    num_packets: int = 2000
    trials: int = 50
    window: int = 200
    loss_model: LossModel = field(default_factory=BernoulliLossModel)
    failures: FailureSchedule = field(default_factory=FailureSchedule)
    seed: int = 0
    demand_tile: int | None = None
    trial_tile: int | None = None
    max_memory: int | None = None
    loss_bins: int = 32
    rebuffer_loss: float = 0.1

    def __post_init__(self) -> None:
        if self.num_packets <= 0:
            raise ValueError("num_packets must be positive")
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        for name in ("demand_tile", "trial_tile", "max_memory"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        if self.loss_bins <= 0:
            raise ValueError("loss_bins must be positive")
        if not 0.0 < self.rebuffer_loss <= 1.0:
            raise ValueError("rebuffer_loss must lie in (0, 1]")


# ---------------------------------------------------------------------------
# Exact helpers shared by tiles and the coordinator
# ---------------------------------------------------------------------------


def window_sizes(num_packets: int, window: int) -> np.ndarray:
    """Per-window packet counts (the last window may be a short tail)."""
    return np.diff(np.append(window_starts(num_packets, window), num_packets)).astype(np.int64)


def worst_window_scale(num_packets: int, window: int) -> tuple[int, np.ndarray]:
    """``(L, weights)`` with ``L = lcm(window sizes)`` and ``weights = L / b_w``.

    ``max_w(count_w * weights_w)`` is the worst-window statistic as an exact
    integer numerator over the common denominator ``L``.
    """
    sizes = window_sizes(num_packets, window)
    scale = math.lcm(*(int(size) for size in np.unique(sizes)))
    return scale, (scale // sizes).astype(np.int64)


def threshold_budget_counts(thresholds: np.ndarray, num_packets: int) -> np.ndarray:
    """Largest lost-packet count per demand that still meets its threshold.

    Matches the batched report's float semantics exactly: ``count <=
    budget_counts[d]`` iff ``float(count / num_packets) <= (1 - threshold) +
    1e-12`` (correctly rounded division is monotone in ``count``).
    """
    thresholds = np.asarray(thresholds, dtype=np.float64)
    budget = (1.0 - thresholds) + 1e-12
    counts = np.clip(np.floor(budget * num_packets).astype(np.int64), 0, num_packets)
    for _ in range(4):
        over = (counts > 0) & ((counts / num_packets) > budget)
        counts[over] -= 1
        under = (counts < num_packets) & (((counts + 1) / num_packets) <= budget)
        counts[under] += 1
        if not (over.any() or under.any()):
            break
    return counts


def _loss_bin_indices(loss_count: np.ndarray, num_packets: int, bins: int) -> np.ndarray:
    """Exact integer bin of each loss count (uniform bins over [0, 1])."""
    return np.minimum(loss_count * bins // num_packets, bins - 1)


# ---------------------------------------------------------------------------
# Accumulators
# ---------------------------------------------------------------------------


@dataclass
class StreamingAccumulator:
    """Mergeable exact sufficient statistics of a streaming audit.

    All fields are int64; :meth:`merge` is elementwise addition (and maximum
    for the ``*_max`` fields), which is exact, associative and commutative --
    the reason tile order and ``--jobs`` can never change a result.
    """

    num_packets: int
    window: int
    worst_scale: int
    loss_bins: int
    trial_counts: np.ndarray
    loss_sum: np.ndarray
    loss_max: np.ndarray
    meets: np.ndarray
    duplicates_sum: np.ndarray
    worst_sum: np.ndarray
    worst_max: np.ndarray
    loss_histogram: np.ndarray
    trial_loss_sum: np.ndarray

    @classmethod
    def zeros(
        cls, num_demands: int, trials: int, num_packets: int, window: int, loss_bins: int
    ) -> StreamingAccumulator:
        scale, _ = worst_window_scale(num_packets, window)
        shape = (num_demands,)
        return cls(
            num_packets=num_packets,
            window=window,
            worst_scale=scale,
            loss_bins=loss_bins,
            trial_counts=np.zeros(shape, dtype=np.int64),
            loss_sum=np.zeros(shape, dtype=np.int64),
            loss_max=np.zeros(shape, dtype=np.int64),
            meets=np.zeros(shape, dtype=np.int64),
            duplicates_sum=np.zeros(shape, dtype=np.int64),
            worst_sum=np.zeros(shape, dtype=np.int64),
            worst_max=np.zeros(shape, dtype=np.int64),
            loss_histogram=np.zeros(loss_bins, dtype=np.int64),
            trial_loss_sum=np.zeros(trials, dtype=np.int64),
        )

    @property
    def num_demands(self) -> int:
        return int(self.loss_sum.size)

    def _check_compatible(self, other: StreamingAccumulator) -> None:
        if (
            self.num_packets != other.num_packets
            or self.window != other.window
            or self.worst_scale != other.worst_scale
            or self.loss_bins != other.loss_bins
            or self.loss_sum.shape != other.loss_sum.shape
            or self.trial_loss_sum.shape != other.trial_loss_sum.shape
        ):
            raise ValueError("cannot merge accumulators with different shapes/metadata")

    def merge(self, other: StreamingAccumulator) -> StreamingAccumulator:
        """Fold ``other`` into ``self`` (exact; any merge order agrees)."""
        self._check_compatible(other)
        self.trial_counts += other.trial_counts
        self.loss_sum += other.loss_sum
        np.maximum(self.loss_max, other.loss_max, out=self.loss_max)
        self.meets += other.meets
        self.duplicates_sum += other.duplicates_sum
        self.worst_sum += other.worst_sum
        np.maximum(self.worst_max, other.worst_max, out=self.worst_max)
        self.loss_histogram += other.loss_histogram
        self.trial_loss_sum += other.trial_loss_sum
        return self

    def fold_partial(self, partial: dict) -> None:
        """Fold one tile's partial (demand rows ``[d0, d1)``, trials at t0)."""
        d0, d1 = partial["d0"], partial["d1"]
        t0 = partial["t0"]
        chunk = partial["chunk"]
        self.trial_counts[d0:d1] += chunk
        self.loss_sum[d0:d1] += partial["loss_sum"]
        np.maximum(self.loss_max[d0:d1], partial["loss_max"], out=self.loss_max[d0:d1])
        self.meets[d0:d1] += partial["meets"]
        self.duplicates_sum[d0:d1] += partial["duplicates_sum"]
        self.worst_sum[d0:d1] += partial["worst_sum"]
        np.maximum(self.worst_max[d0:d1], partial["worst_max"], out=self.worst_max[d0:d1])
        self.loss_histogram += partial["loss_histogram"]
        self.trial_loss_sum[t0 : t0 + chunk] += partial["trial_loss_sum"]


@dataclass
class TraceAccumulator:
    """Mergeable per-window trace-replay counters (exact int64)."""

    trace_name: str
    num_windows: int
    active_cells: np.ndarray
    lost_packets: np.ndarray
    rebuffer_cells: np.ndarray
    rebuffer_sessions: int

    @classmethod
    def zeros(cls, trace_name: str, num_windows: int) -> TraceAccumulator:
        return cls(
            trace_name=trace_name,
            num_windows=num_windows,
            active_cells=np.zeros(num_windows, dtype=np.int64),
            lost_packets=np.zeros(num_windows, dtype=np.int64),
            rebuffer_cells=np.zeros(num_windows, dtype=np.int64),
            rebuffer_sessions=0,
        )

    def merge(self, other: TraceAccumulator) -> TraceAccumulator:
        if self.trace_name != other.trace_name or self.num_windows != other.num_windows:
            raise ValueError("cannot merge trace accumulators for different traces")
        self.active_cells += other.active_cells
        self.lost_packets += other.lost_packets
        self.rebuffer_cells += other.rebuffer_cells
        self.rebuffer_sessions += other.rebuffer_sessions
        return self

    def fold_partial(self, partial: dict) -> None:
        self.active_cells += partial["active_cells"]
        self.lost_packets += partial["lost_packets"]
        self.rebuffer_cells += partial["rebuffer_cells"]
        self.rebuffer_sessions += int(partial["rebuffer_sessions"])


# ---------------------------------------------------------------------------
# Tile planning
# ---------------------------------------------------------------------------


def _per_demand_trial_bytes(
    table: PathTable, loss_model: LossModel, num_packets: int
) -> np.ndarray:
    """Approximate per-trial working-set bytes attributable to each demand.

    Mirrors :func:`repro.simulation.montecarlo.estimate_trial_bytes`, with
    shared first-hop rows conservatively attributed to every path using
    them, so summing over a demand tile upper-bounds the tile's estimate.
    """
    from repro.network.loss import _SPARSE_SAMPLING_THRESHOLD, _gap_budget

    counts = table.demand_num_paths.astype(np.float64)
    if type(loss_model) is not BernoulliLossModel:
        return (1.0 + 3.0 * counts) * (num_packets * 20.0)
    num_bytes = (num_packets + 7) // 8
    per = (1.0 + 3.0 * counts) * (num_bytes * 3 + 96)

    def sampling(p: np.ndarray) -> np.ndarray:
        p = np.asarray(p, dtype=np.float64)
        budget = _gap_budget(num_packets * np.where(p > 0.0, p, 0.0)) * 5.0
        out = np.where(p >= _SPARSE_SAMPLING_THRESHOLD, float(num_packets * 10), budget)
        return np.where(p > 0.0, out, 0.0)

    if table.num_paths:
        path_cost = sampling(table.path_loss) + sampling(
            table.first_hop_loss[table.path_first_hop]
        )
        per += np.add.reduceat(path_cost, table.demand_path_starts)
    return per


def resolve_tiling(table: PathTable, config: StreamingConfig) -> tuple[int, int]:
    """Effective ``(demand_tile, trial_tile)`` under the working-set bound.

    Deterministic: starts from the configured (or default) tile shape and
    halves the trial tile, then the demand tile, until the worst tile's
    estimated working set fits ``max_memory``.  Raises
    :class:`StreamingMemoryError` when even one demand row at one trial
    cannot fit.
    """
    served = len(table.demand_keys)
    demand_tile = max(1, min(config.demand_tile or DEFAULT_DEMAND_TILE, max(served, 1)))
    trial_tile = max(1, min(config.trial_tile or DEFAULT_TRIAL_TILE, config.trials))
    if config.max_memory is None or not served:
        return demand_tile, trial_tile
    per_demand = _per_demand_trial_bytes(table, config.loss_model, config.num_packets)
    while True:
        starts = np.arange(0, served, demand_tile)
        worst_tile = float(np.add.reduceat(per_demand, starts).max())
        if worst_tile * trial_tile <= config.max_memory:
            return demand_tile, trial_tile
        if trial_tile > 1:
            trial_tile = max(1, trial_tile // 2)
        elif demand_tile > 1:
            demand_tile = max(1, demand_tile // 2)
        else:
            row = int(np.argmax(per_demand))
            raise StreamingMemoryError(
                f"a single demand row cannot fit the working-set bound: demand "
                f"{table.demand_keys[row]} needs ~{int(per_demand[row])} bytes for "
                f"one trial, max_memory={config.max_memory}; raise --max-memory "
                f"(or shrink --packets)"
            )


@dataclass(frozen=True)
class TilePlan:
    """The fixed tile grid of one run (part of the determinism contract)."""

    demand_tile: int
    trial_tile: int
    demand_ranges: tuple[tuple[int, int], ...]
    trial_offsets: tuple[tuple[int, int], ...]

    @property
    def num_tiles(self) -> int:
        return len(self.demand_ranges) * len(self.trial_offsets)


def plan_tiles(table: PathTable, config: StreamingConfig) -> TilePlan:
    """Tile the ``(served demands x trials)`` plane for ``config``."""
    demand_tile, trial_tile = resolve_tiling(table, config)
    served = len(table.demand_keys)
    demand_ranges = tuple(
        (start, min(start + demand_tile, served)) for start in range(0, served, demand_tile)
    )
    trial_offsets = tuple(
        (start, min(start + trial_tile, config.trials) - start)
        for start in range(0, config.trials, trial_tile)
    )
    return TilePlan(
        demand_tile=demand_tile,
        trial_tile=trial_tile,
        demand_ranges=demand_ranges,
        trial_offsets=trial_offsets,
    )


# ---------------------------------------------------------------------------
# The tile worker
# ---------------------------------------------------------------------------


def _streaming_tile_task(task: dict) -> dict:
    """Simulate one tile and reduce it to its exact partial statistics.

    Module-level and pure in ``task`` so :func:`execute_tasks` can run it
    in worker processes; the tile's generator derives from
    ``SeedSequence([seed, tile])``, nothing else.
    """
    table: PathTable = task["table"]
    chunk: int = task["chunk"]
    num_packets: int = task["num_packets"]
    bins: int = task["loss_bins"]
    weights: np.ndarray = task["worst_weights"]
    rng = np.random.default_rng(np.random.SeedSequence([task["seed"], task["tile"]]))
    window_counts, loss_count, duplicates = simulate_trial_block(
        table,
        task["loss_model"],
        chunk,
        num_packets,
        task["window"],
        path_count_groups(table),
        rng,
    )
    worst_scaled = (window_counts * weights).max(axis=2)
    budget = task["budget_counts"]
    partial = {
        "tile": task["tile"],
        "d0": task["d0"],
        "d1": task["d1"],
        "t0": task["t0"],
        "chunk": chunk,
        "loss_sum": loss_count.sum(axis=1),
        "loss_max": loss_count.max(axis=1),
        "meets": (loss_count <= budget[:, None]).sum(axis=1),
        "duplicates_sum": duplicates.sum(axis=1),
        "worst_sum": worst_scaled.sum(axis=1),
        "worst_max": worst_scaled.max(axis=1),
        "loss_histogram": np.bincount(
            _loss_bin_indices(loss_count, num_packets, bins).ravel(), minlength=bins
        ).astype(np.int64),
        "trial_loss_sum": loss_count.sum(axis=0),
    }
    traces = []
    for arrival, departure, rebuffer_min in task["traces"]:
        windows = np.arange(window_counts.shape[2], dtype=np.int64)
        mask = (windows >= arrival[:, None]) & (windows < departure[:, None])
        active = mask[:, None, :]
        rebuffering = (window_counts >= rebuffer_min) & active
        traces.append(
            {
                "active_cells": mask.sum(axis=0, dtype=np.int64) * chunk,
                "lost_packets": np.where(active, window_counts, 0).sum(
                    axis=(0, 1), dtype=np.int64
                ),
                "rebuffer_cells": rebuffering.sum(axis=(0, 1), dtype=np.int64),
                "rebuffer_sessions": int(rebuffering.any(axis=2).sum()),
            }
        )
    partial["traces"] = traces
    return partial


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class TraceReport:
    """Per-window trace-replay outcome of one streaming run."""

    trace_name: str
    description: str
    trials: int
    num_demands: int
    window_sizes: np.ndarray
    rebuffer_min: np.ndarray
    activity: SessionActivity
    accumulator: TraceAccumulator

    @property
    def num_windows(self) -> int:
        return self.accumulator.num_windows

    @property
    def active_sessions(self) -> np.ndarray:
        """Mean active demand-sessions per window (across trials)."""
        return self.accumulator.active_cells / max(self.trials, 1)

    @property
    def window_loss_rate(self) -> np.ndarray:
        """Loss rate inside each window, over active sessions only."""
        packets = self.accumulator.active_cells * self.window_sizes
        return np.divide(
            self.accumulator.lost_packets,
            packets,
            out=np.zeros(self.num_windows, dtype=np.float64),
            where=packets > 0,
        )

    @property
    def rebuffer_fraction(self) -> np.ndarray:
        """Fraction of active sessions rebuffering, per window."""
        return np.divide(
            self.accumulator.rebuffer_cells,
            self.accumulator.active_cells,
            out=np.zeros(self.num_windows, dtype=np.float64),
            where=self.accumulator.active_cells > 0,
        )

    @property
    def rebuffer_session_fraction(self) -> float:
        """Fraction of demand-sessions hitting >= 1 rebuffer while active."""
        cells = self.num_demands * self.trials
        return self.accumulator.rebuffer_sessions / cells if cells else 0.0

    def rows(self) -> list[dict]:
        return [
            {
                "window": w,
                "active_sessions": float(self.active_sessions[w]),
                "loss_rate": float(self.window_loss_rate[w]),
                "rebuffer_fraction": float(self.rebuffer_fraction[w]),
            }
            for w in range(self.num_windows)
        ]

    def summary(self) -> dict:
        loss = self.window_loss_rate
        return {
            "trace": self.trace_name,
            "num_windows": self.num_windows,
            "peak_active_sessions": float(self.active_sessions.max(initial=0.0)),
            "peak_window_loss": float(loss.max(initial=0.0)),
            "mean_window_loss": float(loss.mean()) if loss.size else 0.0,
            "rebuffer_session_fraction": self.rebuffer_session_fraction,
            "total_rebuffer_events": int(self.accumulator.rebuffer_cells.sum()),
        }


@dataclass
class StreamingReport:
    """Aggregate + per-demand results of a streaming Monte-Carlo audit.

    ``demand_keys`` lists served demands first (table order), then unserved
    demands (which count as total loss, exactly like the batched report).
    Per-demand floats derive lazily from the accumulator's exact integers;
    ``worst_window_max`` is bit-identical to the batched engine's per-trial
    maxima (see the module docstring).
    """

    num_packets: int
    trials: int
    window: int
    seed: int
    plan: TilePlan
    demand_keys: list[tuple[str, str]]
    thresholds: np.ndarray
    paths: np.ndarray
    accumulator: StreamingAccumulator
    traces: dict[str, TraceReport]

    @property
    def num_demands(self) -> int:
        return len(self.demand_keys)

    @property
    def mean_loss_per_demand(self) -> np.ndarray:
        return self.accumulator.loss_sum / (self.trials * self.num_packets)

    @property
    def max_loss_per_demand(self) -> np.ndarray:
        return self.accumulator.loss_max / self.num_packets

    @property
    def meets_threshold_fraction(self) -> np.ndarray:
        return self.accumulator.meets / self.trials

    @property
    def mean_worst_window_per_demand(self) -> np.ndarray:
        return self.accumulator.worst_sum / (self.trials * self.accumulator.worst_scale)

    @property
    def worst_window_max(self) -> np.ndarray:
        return self.accumulator.worst_max / self.accumulator.worst_scale

    @property
    def mean_loss(self) -> float:
        cells = self.num_demands * self.trials * self.num_packets
        return float(self.accumulator.loss_sum.sum()) / cells if cells else 0.0

    @property
    def max_loss(self) -> float:
        if not self.num_demands:
            return 0.0
        return float(self.accumulator.loss_max.max()) / self.num_packets

    @property
    def fraction_meeting_threshold(self) -> float:
        cells = self.num_demands * self.trials
        return float(self.accumulator.meets.sum()) / cells if cells else 1.0

    @property
    def mean_worst_window(self) -> float:
        cells = self.num_demands * self.trials * self.accumulator.worst_scale
        return float(self.accumulator.worst_sum.sum()) / cells if cells else 0.0

    @property
    def trial_mean_loss(self) -> np.ndarray:
        cells = self.num_demands * self.num_packets
        if not cells:
            return np.zeros(self.trials)
        return self.accumulator.trial_loss_sum / cells

    @property
    def mean_loss_ci_halfwidth(self) -> float:
        means = self.trial_mean_loss
        if means.size <= 1:
            return 0.0
        return float(1.96 * means.std(ddof=1) / np.sqrt(means.size))

    @property
    def loss_bin_edges(self) -> np.ndarray:
        return np.arange(self.accumulator.loss_bins + 1) / self.accumulator.loss_bins

    def demand_index(self, demand_key: tuple[str, str]) -> int:
        try:
            return self.demand_keys.index(demand_key)
        except ValueError:
            raise KeyError(f"no streaming result for demand {demand_key}") from None

    def summary(self) -> dict:
        return {
            "num_packets": self.num_packets,
            "trials": self.trials,
            "num_demands": self.num_demands,
            "mean_loss": self.mean_loss,
            "mean_loss_ci95": self.mean_loss_ci_halfwidth,
            "max_loss": self.max_loss,
            "mean_worst_window_loss": self.mean_worst_window,
            "fraction_meeting_threshold": self.fraction_meeting_threshold,
            "num_tiles": self.plan.num_tiles,
            "demand_tile": self.plan.demand_tile,
            "trial_tile": self.plan.trial_tile,
        }


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


def _resolve_traces(traces: Sequence[LoadTrace | str]) -> list[LoadTrace]:
    resolved = []
    for trace in traces:
        resolved.append(get_load_trace(trace) if isinstance(trace, str) else trace)
    return resolved


def _build_tile_tasks(
    table: PathTable,
    config: StreamingConfig,
    plan: TilePlan,
    budget_counts: np.ndarray,
    worst_weights: np.ndarray,
    activities: list[SessionActivity],
    rebuffer_min: np.ndarray,
) -> list[dict]:
    """All tile tasks, row-major over (demand tile, trial tile).

    The tile index -- the only thing a tile's random stream depends on -- is
    ``demand_tile_index * num_trial_tiles + trial_tile_index``.
    """
    tasks: list[dict] = []
    num_trial_tiles = len(plan.trial_offsets)
    for di, (d0, d1) in enumerate(plan.demand_ranges):
        subtable = slice_path_table(table, d0, d1)
        tile_traces = [
            (activity.arrival[d0:d1], activity.departure[d0:d1], rebuffer_min)
            for activity in activities
        ]
        for ti, (t0, chunk) in enumerate(plan.trial_offsets):
            tasks.append(
                {
                    "tile": di * num_trial_tiles + ti,
                    "seed": config.seed,
                    "d0": d0,
                    "d1": d1,
                    "t0": t0,
                    "chunk": chunk,
                    "table": subtable,
                    "loss_model": config.loss_model,
                    "num_packets": config.num_packets,
                    "window": config.window,
                    "budget_counts": budget_counts[d0:d1],
                    "worst_weights": worst_weights,
                    "loss_bins": config.loss_bins,
                    "traces": tile_traces,
                }
            )
    return tasks


def _fold_unserved(
    accumulator: StreamingAccumulator,
    trace_accumulators: list[TraceAccumulator],
    activities: list[SessionActivity],
    rebuffer_min: np.ndarray,
    wsizes: np.ndarray,
    budget_counts: np.ndarray,
    served: int,
    trials: int,
) -> None:
    """Analytic fold of unserved demands (total loss in every trial/window)."""
    num = accumulator.num_demands - served
    if num <= 0:
        return
    num_packets = accumulator.num_packets
    scale = accumulator.worst_scale
    rows = slice(served, None)
    accumulator.trial_counts[rows] += trials
    accumulator.loss_sum[rows] += trials * num_packets
    np.maximum(accumulator.loss_max[rows], num_packets, out=accumulator.loss_max[rows])
    # count == num_packets meets iff the budget allows total loss.
    accumulator.meets[rows] += np.where(budget_counts[rows] >= num_packets, trials, 0)
    accumulator.worst_sum[rows] += trials * scale
    np.maximum(accumulator.worst_max[rows], scale, out=accumulator.worst_max[rows])
    top_bin = int(_loss_bin_indices(np.asarray([num_packets]), num_packets, accumulator.loss_bins)[0])
    accumulator.loss_histogram[top_bin] += num * trials
    accumulator.trial_loss_sum += num * num_packets
    for trace_acc, activity in zip(trace_accumulators, activities):
        delta = np.zeros(trace_acc.num_windows + 1, dtype=np.int64)
        np.add.at(delta, activity.arrival[served:], 1)
        np.add.at(delta, activity.departure[served:], -1)
        active = np.cumsum(delta[:-1])
        trace_acc.active_cells += active * trials
        trace_acc.lost_packets += active * trials * wsizes
        # Total loss in a window always reaches the rebuffer bar.
        trace_acc.rebuffer_cells += active * trials
        trace_acc.rebuffer_sessions += num * trials


def run_streaming_monte_carlo(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    config: StreamingConfig | None = None,
    *,
    node_isp: dict[str, str | None] | None = None,
    table: PathTable | None = None,
    traces: Sequence[LoadTrace | str] = (),
    jobs: int | str | None = 1,
) -> StreamingReport:
    """Audit ``solution`` with the memory-bounded streaming fold.

    ``traces`` names :class:`~repro.simulation.traces.LoadTrace` entries (or
    passes instances) to replay through the same fold; each gets its own
    :class:`TraceReport` in the result.  ``jobs`` fans tiles out over
    :func:`repro.analysis.runner.execute_tasks_iter` and never changes
    results.
    """
    from repro.analysis.runner import execute_tasks_iter

    config = config or StreamingConfig()
    if node_isp is None:
        node_isp = {r: problem.color(r) for r in problem.reflectors}
    config.failures.validate_for_session(config.num_packets)
    if table is None:
        table = compile_path_table(
            problem, solution, config.failures, config.num_packets, node_isp
        )
    load_traces = _resolve_traces(traces)
    served = len(table.demand_keys)
    wsizes = window_sizes(config.num_packets, config.window)
    scale, worst_weights = worst_window_scale(config.num_packets, config.window)
    rebuffer_min = np.maximum(np.ceil(config.rebuffer_loss * wsizes).astype(np.int64), 1)

    by_key = {key: row for row, key in enumerate(table.demand_keys)}
    unserved = [demand for demand in problem.demands if demand.key not in by_key]
    demand_keys = list(table.demand_keys) + [demand.key for demand in unserved]
    thresholds = np.concatenate(
        [
            table.demand_thresholds,
            np.asarray([demand.success_threshold for demand in unserved], dtype=np.float64),
        ]
    )
    paths = np.concatenate(
        [table.demand_num_paths, np.zeros(len(unserved), dtype=np.int64)]
    ).astype(np.int64)
    budget_counts = threshold_budget_counts(thresholds, config.num_packets)

    # Session activity is realized once per trace over the *full* demand
    # order, from its own stream -- independent of the tile grid.
    activities = [
        trace.realize(
            TraceContext(
                demand_keys=demand_keys,
                num_windows=int(wsizes.size),
                rng=np.random.default_rng(
                    np.random.SeedSequence([config.seed, _TRACE_STREAM_BASE + index])
                ),
            )
        )
        for index, trace in enumerate(load_traces)
    ]
    for trace, activity in zip(load_traces, activities):
        if activity.num_demands != len(demand_keys) or activity.num_windows != wsizes.size:
            raise ValueError(f"trace {trace.name!r} realized the wrong activity shape")

    plan = plan_tiles(table, config)
    accumulator = StreamingAccumulator.zeros(
        len(demand_keys), config.trials, config.num_packets, config.window, config.loss_bins
    )
    trace_accumulators = [
        TraceAccumulator.zeros(trace.name, int(wsizes.size)) for trace in load_traces
    ]
    if served:
        tasks = _build_tile_tasks(
            table, config, plan, budget_counts, worst_weights, activities, rebuffer_min
        )
        # Lazy, task-ordered consumption: each tile's partial is folded and
        # released before the next is held, keeping coordinator memory flat
        # in the tile count (execute_tasks would materialize every partial).
        for partial in execute_tasks_iter(_streaming_tile_task, tasks, jobs=jobs):
            accumulator.fold_partial(partial)
            for trace_acc, trace_partial in zip(trace_accumulators, partial["traces"]):
                trace_acc.fold_partial(trace_partial)
    _fold_unserved(
        accumulator,
        trace_accumulators,
        activities,
        rebuffer_min,
        wsizes,
        budget_counts,
        served,
        config.trials,
    )
    trace_reports = {
        trace.name: TraceReport(
            trace_name=trace.name,
            description=trace.description,
            trials=config.trials,
            num_demands=len(demand_keys),
            window_sizes=wsizes,
            rebuffer_min=rebuffer_min,
            activity=activity,
            accumulator=trace_acc,
        )
        for trace, activity, trace_acc in zip(load_traces, activities, trace_accumulators)
    }
    return StreamingReport(
        num_packets=config.num_packets,
        trials=config.trials,
        window=config.window,
        seed=config.seed,
        plan=plan,
        demand_keys=demand_keys,
        thresholds=thresholds,
        paths=paths,
        accumulator=accumulator,
        traces=trace_reports,
    )
