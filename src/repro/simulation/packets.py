"""Packet-session bookkeeping for the streaming simulation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StreamSession:
    """One simulated delivery session of a stream.

    Attributes
    ----------
    stream:
        Stream (commodity) name.
    num_packets:
        Number of packets simulated.  At typical live bitrates a packet is a
        few milliseconds of media, so 10,000 packets is on the order of half a
        minute of playback -- enough for the loss-rate estimate to stabilise.
    """

    stream: str
    num_packets: int

    def __post_init__(self) -> None:
        if self.num_packets <= 0:
            raise ValueError(f"num_packets must be positive, got {self.num_packets}")


def loss_rate(received: np.ndarray) -> float:
    """Fraction of packets lost given a boolean *received* mask."""
    received = np.asarray(received, dtype=bool)
    if received.size == 0:
        return 1.0
    return float(1.0 - received.mean())


def window_starts(num_packets: int, window: int) -> np.ndarray:
    """Start indices of the consecutive windows covering ``num_packets``."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    return np.arange(0, num_packets, window)


def window_loss_rates(received: np.ndarray, window: int) -> np.ndarray:
    """Loss rate per consecutive window of ``window`` packets.

    Mirrors the 5-minute-bucket accounting of bandwidth contracts
    (Section 1.2) and lets callers inspect worst-case intervals (e.g. during
    an injected ISP outage) rather than only the session average.  The last
    window may be shorter; rates are exact (integer counts over the window
    size), computed in one ``reduceat`` pass rather than a Python loop.
    """
    received = np.asarray(received, dtype=bool)
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if received.size == 0:
        return np.empty(0)
    starts = window_starts(received.size, window)
    counts = np.add.reduceat(received, starts, dtype=np.int64)
    sizes = np.diff(np.append(starts, received.size))
    return 1.0 - counts / sizes


def windowed_loss_matrix(lost: np.ndarray, window: int) -> np.ndarray:
    """Per-window loss rates for a batched ``(..., num_packets)`` lost mask.

    The packet axis is folded into windows with a single ``reduceat`` over
    the last axis, yielding a ``(..., num_windows)`` float matrix whose
    maximum along the last axis is the worst-window loss statistic.  This is
    the boolean-mask counterpart of the Monte-Carlo engine's byte-popcount
    window fold and the reference the engine is tested against.
    """
    lost = np.asarray(lost, dtype=bool)
    starts = window_starts(lost.shape[-1], window)
    counts = np.add.reduceat(lost, starts, axis=-1, dtype=np.int64)
    sizes = np.diff(np.append(starts, lost.shape[-1]))
    return counts / sizes
