"""Packet-session bookkeeping for the streaming simulation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StreamSession:
    """One simulated delivery session of a stream.

    Attributes
    ----------
    stream:
        Stream (commodity) name.
    num_packets:
        Number of packets simulated.  At typical live bitrates a packet is a
        few milliseconds of media, so 10,000 packets is on the order of half a
        minute of playback -- enough for the loss-rate estimate to stabilise.
    """

    stream: str
    num_packets: int

    def __post_init__(self) -> None:
        if self.num_packets <= 0:
            raise ValueError(f"num_packets must be positive, got {self.num_packets}")


def loss_rate(received: np.ndarray) -> float:
    """Fraction of packets lost given a boolean *received* mask."""
    received = np.asarray(received, dtype=bool)
    if received.size == 0:
        return 1.0
    return float(1.0 - received.mean())


def window_loss_rates(received: np.ndarray, window: int) -> np.ndarray:
    """Loss rate per consecutive window of ``window`` packets.

    Mirrors the 5-minute-bucket accounting of bandwidth contracts
    (Section 1.2) and lets callers inspect worst-case intervals (e.g. during
    an injected ISP outage) rather than only the session average.
    """
    received = np.asarray(received, dtype=bool)
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if received.size == 0:
        return np.empty(0)
    num_windows = int(np.ceil(received.size / window))
    rates = np.empty(num_windows)
    for index in range(num_windows):
        chunk = received[index * window : (index + 1) * window]
        rates[index] = 1.0 - chunk.mean()
    return rates
