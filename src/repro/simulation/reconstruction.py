"""Edgeserver stream reconstruction.

The paper (Section 1.1): "An edgeserver receives one or more identical copies
of the stream, each from a different reflector, and reconstructs a cleaner
copy of the stream ...  if the k-th packet is missing in one copy of the
stream, the edgeserver waits for that packet to arrive in one of the other
identical copies of the stream and uses it to fill the hole."

In simulation terms: a packet survives reconstruction iff *any* copy of it was
received.  These helpers operate on boolean "received" masks, one per
reflector path.
"""

from __future__ import annotations

import numpy as np


def reconstruct(copies: list[np.ndarray] | np.ndarray) -> np.ndarray:
    """Combine per-path received masks into the reconstructed received mask.

    Parameters
    ----------
    copies:
        Either a list of 1-D boolean arrays (one per path) or a 2-D boolean
        array of shape ``(num_paths, num_packets)``.  An empty list yields an
        all-``False`` mask of length zero (nothing received).
    """
    if isinstance(copies, np.ndarray):
        if copies.ndim == 1:
            return copies.astype(bool)
        if copies.ndim != 2:
            raise ValueError("copies array must be 1-D or 2-D")
        if copies.shape[0] == 0:
            return np.zeros(copies.shape[1], dtype=bool)
        return copies.astype(bool).any(axis=0)
    if not copies:
        return np.zeros(0, dtype=bool)
    lengths = {len(copy) for copy in copies}
    if len(lengths) != 1:
        raise ValueError(f"all copies must have the same length, got lengths {sorted(lengths)}")
    stacked = np.vstack([np.asarray(copy, dtype=bool) for copy in copies])
    return stacked.any(axis=0)


def post_reconstruction_loss(copies: list[np.ndarray] | np.ndarray) -> float:
    """Fraction of packets missing from *every* copy (the paper's quality metric)."""
    received = reconstruct(copies)
    if received.size == 0:
        return 1.0
    return float(1.0 - received.mean())


def duplicates_discarded(copies: list[np.ndarray] | np.ndarray) -> int:
    """Number of redundant packet copies the edgeserver throws away.

    A measure of the bandwidth overhead of redundancy: every packet received
    more than once contributes its extra copies.
    """
    if isinstance(copies, np.ndarray):
        stacked = copies.astype(bool) if copies.ndim == 2 else copies.astype(bool)[None, :]
    elif copies:
        stacked = np.vstack([np.asarray(copy, dtype=bool) for copy in copies])
    else:
        return 0
    per_packet = stacked.sum(axis=0)
    return int(np.maximum(per_packet - 1, 0).sum())
