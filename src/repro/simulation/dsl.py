"""The composable scenario DSL: failure scenarios as data, not code.

A scenario file (YAML or JSON) composes *primitives* -- parameterized
building blocks over the correlated-failure samplers of
:mod:`repro.simulation.failures`, the load-curve shapes of
:mod:`repro.simulation.traces`, and a design-aware ``targeted-attack`` --
into one named :class:`~repro.simulation.scenarios.FailureScenario` that
registers into the ordinary catalogue.  Everything that sweeps the catalogue
(``repro simulate --scenario``, :class:`repro.api.EvaluationSpec`, the R2/A1
benches) picks compiled scenarios up unchanged.

Schema (version 1)
------------------
::

    version: 1                     # required, must be 1
    name: metro-quake              # required, [a-z0-9][a-z0-9-]*, not a built-in
    description: "..."             # required
    tags: [correlated, disaster]   # optional
    loss: bernoulli                # or gilbert-elliott (default bernoulli)
    primitives:                    # required, non-empty list
      - kind: multi-metro-disaster
        num_metros: 2
      - kind: congestion-wave
        severity: 0.4

Primitive kinds and their parameters (all optional, shown with defaults):

``isp-outage``
    ISP-wide outages with a common shock.  ``outage_probability`` (0.25),
    ``shock_probability`` (0.3), ``shock_outage_probability`` (0.8),
    ``duration_fraction`` (0.3).
``regional-outage``
    Independent topology-cluster blackouts.  ``outage_probability`` (0.5),
    ``duration_fraction`` (0.25), ``max_regions`` (1).
``multi-metro-disaster``
    A *correlated* disaster: ``num_metros`` (2) clusters go dark over one
    shared window of ``duration_fraction`` (0.3) of the session.
``congestion-wave``
    Flash-crowd congestion waves.  ``severity`` (0.35), ``surge_fraction``
    (0.4), ``num_waves`` (2), ``target`` (``hot-sinks`` | ``all-sinks``).
``traffic-overlay``
    Converts a load curve from :mod:`repro.simulation.traces` into
    congestion on the hot edge during the curve's peak segments.
    ``profile`` (``diurnal`` | ``flash-crowd``), ``severity`` (0.3),
    ``peak_fraction`` (0.25).
``targeted-attack``
    Crashes the ``top_k`` (2) highest-betweenness reflectors of the design
    under test over one shared window of ``duration_fraction`` (0.4); with
    no design in the context it falls back to the static candidate-count
    proxy (see
    :func:`~repro.simulation.scenarios.reflector_betweenness`).

Composition semantics
---------------------
The realized schedule is the union of every primitive's events, and it is
**order-insensitive**: permuting the ``primitives`` list never changes the
realization.  Each primitive draws from its own RNG stream keyed by
``(base, digest(normalized primitive), occurrence)`` -- ``base`` is a single
draw from the scenario context's generator, the digest covers the
primitive's kind and normalized parameters, and ``occurrence`` counts
earlier primitives with the *same* digest (so duplicated primitives get
independent streams while remaining permutation-safe).  Events are then
sorted canonically, and overlapping congestion combines commutatively
(``1 - prod(1 - severity)``) inside the engine, so metrics are a pure
function of the primitive *multiset*.

Validation reports **named errors**: every problem is a
:class:`SpecIssue` with a stable ``code`` (``missing-field``,
``bad-type``, ``bad-value``, ``unknown-field``, ``unknown-primitive``,
``reserved-name``, ``bad-version``) and a path into the document, and
:class:`ScenarioValidationError` carries the full list -- authoring errors
surface all at once, not one per run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from importlib import resources
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.network.loss import BernoulliLossModel, GilbertElliottLossModel, LossModel
from repro.simulation.failures import (
    FailureEvent,
    FailureSchedule,
    _sample_window,
    sample_flash_crowd_congestion,
    sample_isp_outage_schedule,
    sample_regional_outage_schedule,
)
from repro.simulation.scenarios import (
    _COMPAT_STREAM_KEYS,
    FailureScenario,
    ScenarioContext,
    ScenarioRealization,
    register_failure_scenario,
    top_betweenness_reflectors,
)
from repro.simulation.traces import diurnal_intensity, flash_crowd_intensity

SCHEMA_VERSION = 1

_LOSS_MODELS: dict[str, Callable[[], LossModel]] = {
    "bernoulli": BernoulliLossModel,
    "gilbert-elliott": GilbertElliottLossModel,
}


# ---------------------------------------------------------------------------
# Validation: named errors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpecIssue:
    """One named validation problem: a stable code, a document path, a message."""

    code: str
    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message} [{self.code}]"


class ScenarioValidationError(ValueError):
    """A scenario document failed schema validation.

    ``issues`` holds every problem found (validation does not stop at the
    first), ``source`` names the file (or ``"<memory>"`` for dicts).
    """

    def __init__(self, source: str, issues: Sequence[SpecIssue]):
        self.source = source
        self.issues = list(issues)
        detail = "; ".join(str(issue) for issue in self.issues)
        super().__init__(f"invalid scenario {source}: {detail}")


def _expect_mapping(value: Any, path: str, issues: list[SpecIssue]) -> bool:
    if isinstance(value, Mapping):
        return True
    issues.append(SpecIssue("bad-type", path, f"expected a mapping, got {type(value).__name__}"))
    return False


def _check_float(
    value: Any,
    path: str,
    issues: list[SpecIssue],
    *,
    lo: float,
    hi: float,
    lo_open: bool = False,
    hi_open: bool = False,
) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        issues.append(SpecIssue("bad-type", path, f"expected a number, got {type(value).__name__}"))
        return None
    value = float(value)
    low_ok = value > lo if lo_open else value >= lo
    high_ok = value < hi if hi_open else value <= hi
    if not (low_ok and high_ok):
        left = "(" if lo_open else "["
        right = ")" if hi_open else "]"
        issues.append(
            SpecIssue("bad-value", path, f"must lie in {left}{lo}, {hi}{right}, got {value}")
        )
        return None
    return value


def _check_int(value: Any, path: str, issues: list[SpecIssue], *, lo: int) -> int | None:
    if isinstance(value, bool) or not isinstance(value, int):
        issues.append(
            SpecIssue("bad-type", path, f"expected an integer, got {type(value).__name__}")
        )
        return None
    if value < lo:
        issues.append(SpecIssue("bad-value", path, f"must be >= {lo}, got {value}"))
        return None
    return value


def _check_choice(
    value: Any, path: str, issues: list[SpecIssue], *, choices: Sequence[str]
) -> str | None:
    if not isinstance(value, str):
        issues.append(SpecIssue("bad-type", path, f"expected a string, got {type(value).__name__}"))
        return None
    if value not in choices:
        issues.append(
            SpecIssue("bad-value", path, f"must be one of {', '.join(choices)}; got {value!r}")
        )
        return None
    return value


#: Per-kind parameter validators: name -> (default, checker(value, path, issues)).
_PRIMITIVE_PARAMS: dict[str, dict[str, tuple[Any, Callable[..., Any]]]] = {
    "isp-outage": {
        "outage_probability": (0.25, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0)),
        "shock_probability": (0.3, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0)),
        "shock_outage_probability": (0.8, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0)),
        "duration_fraction": (0.3, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0, lo_open=True)),
    },
    "regional-outage": {
        "outage_probability": (0.5, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0)),
        "duration_fraction": (0.25, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0, lo_open=True)),
        "max_regions": (1, lambda v, p, i: _check_int(v, p, i, lo=1)),
    },
    "multi-metro-disaster": {
        "num_metros": (2, lambda v, p, i: _check_int(v, p, i, lo=1)),
        "duration_fraction": (0.3, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0, lo_open=True)),
    },
    "congestion-wave": {
        "severity": (0.35, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0, lo_open=True, hi_open=True)),
        "surge_fraction": (0.4, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0, lo_open=True)),
        "num_waves": (2, lambda v, p, i: _check_int(v, p, i, lo=1)),
        "target": ("hot-sinks", lambda v, p, i: _check_choice(v, p, i, choices=("hot-sinks", "all-sinks"))),
    },
    "traffic-overlay": {
        "profile": ("diurnal", lambda v, p, i: _check_choice(v, p, i, choices=("diurnal", "flash-crowd"))),
        "severity": (0.3, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0, lo_open=True, hi_open=True)),
        "peak_fraction": (0.25, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0, lo_open=True, hi_open=True)),
    },
    "targeted-attack": {
        "top_k": (2, lambda v, p, i: _check_int(v, p, i, lo=1)),
        "duration_fraction": (0.4, lambda v, p, i: _check_float(v, p, i, lo=0.0, hi=1.0, lo_open=True)),
    },
}

PRIMITIVE_KINDS = tuple(sorted(_PRIMITIVE_PARAMS))

_TOP_LEVEL_FIELDS = ("version", "name", "description", "tags", "loss", "primitives")


def _normalize_primitive(
    raw: Any, path: str, issues: list[SpecIssue]
) -> dict[str, Any] | None:
    if not _expect_mapping(raw, path, issues):
        return None
    kind = raw.get("kind")
    if kind is None:
        issues.append(SpecIssue("missing-field", f"{path}.kind", "primitive needs a 'kind'"))
        return None
    if not isinstance(kind, str) or kind not in _PRIMITIVE_PARAMS:
        issues.append(
            SpecIssue(
                "unknown-primitive",
                f"{path}.kind",
                f"unknown primitive kind {kind!r} (known: {', '.join(PRIMITIVE_KINDS)})",
            )
        )
        return None
    params = _PRIMITIVE_PARAMS[kind]
    normalized: dict[str, Any] = {"kind": kind}
    ok = True
    for name, (default, checker) in params.items():
        if name in raw:
            value = checker(raw[name], f"{path}.{name}", issues)
            if value is None:
                ok = False
                continue
            normalized[name] = value
        else:
            normalized[name] = default
    for name in raw:
        if name != "kind" and name not in params:
            issues.append(
                SpecIssue(
                    "unknown-field",
                    f"{path}.{name}",
                    f"primitive {kind!r} takes {', '.join(params)}; {name!r} is not one of them",
                )
            )
            ok = False
    return normalized if ok else None


def normalize_scenario_spec(data: Any, *, source: str = "<memory>") -> dict[str, Any]:
    """Validate ``data`` against schema v1 and return the normalized document.

    Normalization fills every optional field with its default, so two
    documents that differ only in spelled-out defaults normalize (and
    therefore seed their RNG streams) identically.  Raises
    :class:`ScenarioValidationError` listing *all* problems found.
    """
    issues: list[SpecIssue] = []
    if not _expect_mapping(data, "$", issues):
        raise ScenarioValidationError(source, issues)

    version = data.get("version")
    if version is None:
        issues.append(SpecIssue("missing-field", "$.version", "scenario needs 'version: 1'"))
    elif version != SCHEMA_VERSION:
        issues.append(
            SpecIssue(
                "bad-version",
                "$.version",
                f"unsupported schema version {version!r} (this build reads {SCHEMA_VERSION})",
            )
        )

    name = data.get("name")
    if name is None:
        issues.append(SpecIssue("missing-field", "$.name", "scenario needs a 'name'"))
        name = ""
    elif not isinstance(name, str):
        issues.append(SpecIssue("bad-type", "$.name", "name must be a string"))
        name = ""
    else:
        if not name or not all(c.islower() or c.isdigit() or c == "-" for c in name) or (
            name[0] == "-" or name[-1] == "-"
        ):
            issues.append(
                SpecIssue(
                    "bad-value",
                    "$.name",
                    f"name must match [a-z0-9][a-z0-9-]*[a-z0-9] (got {name!r})",
                )
            )
        if name in _COMPAT_STREAM_KEYS:
            issues.append(
                SpecIssue(
                    "reserved-name",
                    "$.name",
                    f"{name!r} is a built-in scenario and cannot be redefined",
                )
            )

    description = data.get("description")
    if description is None:
        issues.append(SpecIssue("missing-field", "$.description", "scenario needs a 'description'"))
        description = ""
    elif not isinstance(description, str):
        issues.append(SpecIssue("bad-type", "$.description", "description must be a string"))
        description = ""

    tags = data.get("tags", [])
    if not isinstance(tags, (list, tuple)) or not all(isinstance(t, str) for t in tags):
        issues.append(SpecIssue("bad-type", "$.tags", "tags must be a list of strings"))
        tags = []

    loss = data.get("loss", "bernoulli")
    if loss not in _LOSS_MODELS:
        issues.append(
            SpecIssue(
                "bad-value",
                "$.loss",
                f"loss must be one of {', '.join(sorted(_LOSS_MODELS))}; got {loss!r}",
            )
        )
        loss = "bernoulli"

    raw_primitives = data.get("primitives")
    primitives: list[dict[str, Any]] = []
    if raw_primitives is None:
        issues.append(
            SpecIssue("missing-field", "$.primitives", "scenario needs a 'primitives' list")
        )
    elif not isinstance(raw_primitives, (list, tuple)):
        issues.append(SpecIssue("bad-type", "$.primitives", "primitives must be a list"))
    elif not raw_primitives:
        issues.append(
            SpecIssue("bad-value", "$.primitives", "primitives must not be empty")
        )
    else:
        for index, raw in enumerate(raw_primitives):
            normalized = _normalize_primitive(raw, f"$.primitives[{index}]", issues)
            if normalized is not None:
                primitives.append(normalized)

    for field_name in data:
        if field_name not in _TOP_LEVEL_FIELDS:
            issues.append(
                SpecIssue(
                    "unknown-field",
                    f"$.{field_name}",
                    f"scenario fields are {', '.join(_TOP_LEVEL_FIELDS)}",
                )
            )

    if issues:
        raise ScenarioValidationError(source, issues)
    return {
        "version": SCHEMA_VERSION,
        "name": name,
        "description": description,
        "tags": list(tags),
        "loss": loss,
        "primitives": primitives,
    }


# ---------------------------------------------------------------------------
# Primitive realizers
# ---------------------------------------------------------------------------


def _primitive_digest(primitive: Mapping[str, Any]) -> int:
    """Stable 64-bit digest of a normalized primitive (kind + parameters)."""
    canonical = json.dumps(primitive, sort_keys=True, separators=(",", ":"))
    return int.from_bytes(hashlib.sha256(canonical.encode("utf-8")).digest()[:8], "big")


def _realize_isp_outage(
    params: Mapping[str, Any], context: ScenarioContext, rng: np.random.Generator
) -> list[FailureEvent]:
    isps = sorted({isp for isp in context.node_isp.values() if isp is not None})
    schedule = sample_isp_outage_schedule(
        isps,
        context.num_packets,
        rng,
        outage_probability=params["outage_probability"],
        shock_probability=params["shock_probability"],
        shock_outage_probability=params["shock_outage_probability"],
        duration_fraction=params["duration_fraction"],
    )
    return list(schedule.events)


def _realize_regional_outage(
    params: Mapping[str, Any], context: ScenarioContext, rng: np.random.Generator
) -> list[FailureEvent]:
    schedule = sample_regional_outage_schedule(
        context.clusters,
        context.num_packets,
        rng,
        outage_probability=params["outage_probability"],
        duration_fraction=params["duration_fraction"],
        max_regions=params["max_regions"],
    )
    return list(schedule.events)


def _realize_multi_metro_disaster(
    params: Mapping[str, Any], context: ScenarioContext, rng: np.random.Generator
) -> list[FailureEvent]:
    # Unlike regional-outage's independent strikes, a disaster takes several
    # metros down over ONE shared window -- the correlated event the paper's
    # ISP-diversity constraints are supposed to survive.
    names = sorted(context.clusters)
    count = min(params["num_metros"], len(names))
    if count == 0:
        return []
    chosen = rng.choice(len(names), size=count, replace=False)
    start, end = _sample_window(context.num_packets, rng, params["duration_fraction"])
    events = []
    for index in sorted(int(i) for i in chosen):
        for node in context.clusters[names[index]]:
            events.append(FailureEvent("node_outage", node, start, end))
    return events


def _realize_congestion_wave(
    params: Mapping[str, Any], context: ScenarioContext, rng: np.random.Generator
) -> list[FailureEvent]:
    if params["target"] == "all-sinks":
        sinks: Sequence[str] = sorted(context.problem.sinks)
    else:
        sinks = context.hot_sinks
    schedule = sample_flash_crowd_congestion(
        sinks,
        context.num_packets,
        rng,
        severity=params["severity"],
        surge_fraction=params["surge_fraction"],
        num_waves=params["num_waves"],
    )
    return list(schedule.events)


def _realize_traffic_overlay(
    params: Mapping[str, Any], context: ScenarioContext, rng: np.random.Generator
) -> list[FailureEvent]:
    # Map a load curve onto congestion: during the curve's top
    # ``peak_fraction`` segments the hot edge drops extra packets, scaled by
    # how far above the threshold the audience sits.
    num_packets = context.num_packets
    buckets = max(1, min(48, num_packets))
    if params["profile"] == "flash-crowd":
        curve = flash_crowd_intensity(buckets)
    else:
        curve = diurnal_intensity(buckets)
    threshold = float(np.quantile(curve, 1.0 - params["peak_fraction"]))
    peak = curve >= threshold
    peak_max = float(curve.max()) or 1.0
    events: list[FailureEvent] = []
    bucket = 0
    while bucket < buckets:
        if not peak[bucket]:
            bucket += 1
            continue
        run_start = bucket
        while bucket < buckets and peak[bucket]:
            bucket += 1
        start = run_start * num_packets // buckets
        end = bucket * num_packets // buckets
        scale = float(curve[run_start:bucket].mean()) / peak_max
        for sink in context.hot_sinks:
            severity = params["severity"] * scale * float(rng.uniform(0.85, 1.15))
            severity = float(np.clip(severity, 0.01, 0.99))
            events.append(FailureEvent("link_congestion", sink, start, end, severity=severity))
    return events


def _realize_targeted_attack(
    params: Mapping[str, Any], context: ScenarioContext, rng: np.random.Generator
) -> list[FailureEvent]:
    targets = top_betweenness_reflectors(context.problem, context.solution, params["top_k"])
    if not targets:
        return []
    start, end = _sample_window(context.num_packets, rng, params["duration_fraction"])
    return [FailureEvent("reflector_crash", reflector, start, end) for reflector in targets]


_REALIZERS: dict[str, Callable[..., list[FailureEvent]]] = {
    "isp-outage": _realize_isp_outage,
    "regional-outage": _realize_regional_outage,
    "multi-metro-disaster": _realize_multi_metro_disaster,
    "congestion-wave": _realize_congestion_wave,
    "traffic-overlay": _realize_traffic_overlay,
    "targeted-attack": _realize_targeted_attack,
}


def _event_sort_key(event: FailureEvent) -> tuple[str, str, int, int, float]:
    return (event.kind, event.target, event.start, event.end, event.severity)


# ---------------------------------------------------------------------------
# Compilation and registration
# ---------------------------------------------------------------------------

#: Normalized spec + source of every scenario compiled this process, for
#: ``repro scenarios --show`` and round-trip tests.
_COMPILED_SPECS: dict[str, dict[str, Any]] = {}


def compiled_scenario_spec(name: str) -> dict[str, Any] | None:
    """The normalized spec of a DSL-compiled scenario, or ``None`` (built-in)."""
    record = _COMPILED_SPECS.get(name)
    return None if record is None else json.loads(json.dumps(record))


def compile_scenario(data: Any, *, source: str = "<memory>") -> FailureScenario:
    """Validate ``data`` and compile it to a registrable :class:`FailureScenario`.

    The realize closure draws one base integer from the context's generator,
    then gives every primitive an independent stream keyed by its normalized
    digest and occurrence index, making the realization order-insensitive
    (see the module docstring).
    """
    spec = normalize_scenario_spec(data, source=source)
    loss_factory = _LOSS_MODELS[spec["loss"]]
    primitives: list[dict[str, Any]] = spec["primitives"]

    def realize(context: ScenarioContext) -> ScenarioRealization:
        base = int(context.rng.integers(0, 2**63))
        occurrence: dict[int, int] = {}
        events: list[FailureEvent] = []
        for primitive in primitives:
            digest = _primitive_digest(primitive)
            occ = occurrence.get(digest, 0)
            occurrence[digest] = occ + 1
            prim_rng = np.random.default_rng([base, digest, occ])
            events.extend(_REALIZERS[primitive["kind"]](primitive, context, prim_rng))
        events.sort(key=_event_sort_key)
        return ScenarioRealization(loss_factory(), FailureSchedule(events))

    scenario = FailureScenario(
        name=spec["name"],
        description=spec["description"],
        realize=realize,
        tags=tuple(spec["tags"]),
    )
    _COMPILED_SPECS[spec["name"]] = {"source": source, "spec": spec}
    return scenario


# ---------------------------------------------------------------------------
# File loading
# ---------------------------------------------------------------------------


def load_scenario_data(path: str | Path) -> Any:
    """Parse a scenario document from ``path`` (JSON, or YAML if installed)."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise ScenarioValidationError(
                str(path),
                [
                    SpecIssue(
                        "yaml-unavailable",
                        "$",
                        "PyYAML is not installed; write the scenario as JSON instead",
                    )
                ],
            ) from None
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioValidationError(
                str(path), [SpecIssue("parse-error", "$", f"YAML parse error: {exc}")]
            ) from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioValidationError(
            str(path), [SpecIssue("parse-error", "$", f"JSON parse error: {exc}")]
        ) from None


def load_scenario_file(path: str | Path) -> FailureScenario:
    """Parse + validate + compile one scenario file (without registering it)."""
    return compile_scenario(load_scenario_data(path), source=str(path))


def register_scenario_file(path: str | Path) -> FailureScenario:
    """Compile ``path`` and register the result into the catalogue."""
    return register_failure_scenario(load_scenario_file(path))


def register_scenario_files(paths: Iterable[str | Path]) -> list[FailureScenario]:
    return [register_scenario_file(path) for path in paths]


def shipped_scenario_paths() -> list[Path]:
    """The scenario files shipped inside ``repro.simulation.scenarios``."""
    package = resources.files("repro.simulation.scenarios")
    paths = [Path(str(entry)) for entry in package.iterdir() if entry.name.endswith(".json")]
    return sorted(paths, key=lambda p: p.name)


def register_shipped_scenarios() -> list[FailureScenario]:
    """Compile and register every shipped scenario file (idempotent)."""
    return register_scenario_files(shipped_scenario_paths())
