"""The adversarial failure-scenario catalogue.

The paper's argument is that LP-designed overlays keep streaming quality
under *correlated* failures -- ISP-wide outages, regional events, congested
edge regions -- not just under independent per-link loss.  This module makes
those stress models first-class: each is a registered
:class:`FailureScenario` that, given a problem instance and a seeded
generator, realizes a concrete ``(loss model, failure schedule)`` pair for
the Monte-Carlo engine.  The catalogue is what ``repro simulate --scenario``,
``repro bench --suite reliability`` (the R2 benchmark) and the Designer API's
``DesignRequest.evaluation`` field all sweep.

Built-in scenarios
------------------
``baseline``
    Independent Bernoulli loss at the measured link rates; no failures.
``isp-outage``
    Correlated ISP-wide outages with a common shock
    (:func:`~repro.simulation.failures.sample_isp_outage_schedule`).
``regional-failure``
    A topology cluster (colo/region, inferred from node naming) goes dark
    (:func:`~repro.simulation.failures.sample_regional_outage_schedule`).
``flash-crowd``
    Congestion waves on the most-subscribed edge sinks
    (:func:`~repro.simulation.failures.sample_flash_crowd_congestion`).
``bursty-links``
    Gilbert-Elliott bursty loss at the same average link rates.

Beyond the five built-ins, this package directory ships a library of
*composable* scenario files (``*.json``) compiled by
:mod:`repro.simulation.dsl` and auto-registered on first catalogue access --
see ``docs/scenarios.md`` for the schema and the authoring guide.

RNG stream keying
-----------------
Each scenario's failure draw and engine stream derive from a *stable
per-name key* (:func:`scenario_stream_key`), never from the scenario's
position in the registry: registering new scenarios (the whole point of the
DSL) must not silently re-seed -- and therefore re-value -- the metrics of
existing ones.  The five built-ins keep their historical positional keys
0..4 through a pinned compat mapping, so their ``evaluate_design`` metrics
are bit-identical to every release since the catalogue landed; any other
name maps to a digest of the name itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution
from repro.network.loss import BernoulliLossModel, GilbertElliottLossModel, LossModel
from repro.simulation.failures import (
    FailureSchedule,
    sample_flash_crowd_congestion,
    sample_isp_outage_schedule,
    sample_regional_outage_schedule,
)
from repro.simulation.montecarlo import (
    MonteCarloConfig,
    PathTable,
    run_monte_carlo,
)

#: Serving-cache hook signature for :func:`evaluate_design`: maps the exact
#: ``compile_path_table`` inputs (plus the scenario name, a convenient cache
#: key component) to a compiled table.
TableProvider = Callable[
    [
        str,
        OverlayDesignProblem,
        OverlaySolution,
        FailureSchedule,
        int,
        Mapping[str, str | None],
    ],
    PathTable,
]


@dataclass(frozen=True)
class ScenarioContext:
    """Everything a scenario needs to realize itself for one instance.

    ``solution`` is the design under test, when the caller has one; it is
    ``None`` for design-independent sweeps.  Scenarios that need it (the
    ``targeted-attack`` DSL primitive) must degrade gracefully -- attacking
    the statically most-loaded reflectors -- rather than fail.
    """

    problem: OverlayDesignProblem
    num_packets: int
    rng: np.random.Generator
    node_isp: Mapping[str, str | None]
    clusters: Mapping[str, Sequence[str]]
    hot_sinks: Sequence[str]
    solution: OverlaySolution | None = None


@dataclass(frozen=True)
class ScenarioRealization:
    """A concrete stress model: the loss process plus injected failures."""

    loss_model: LossModel
    failures: FailureSchedule


@dataclass(frozen=True)
class FailureScenario:
    """A registered, named stress model.

    ``realize`` maps a :class:`ScenarioContext` to a
    :class:`ScenarioRealization`; all randomness must come from the context's
    generator so a sweep is reproducible from one seed.
    """

    name: str
    description: str
    realize: Callable[[ScenarioContext], ScenarioRealization]
    tags: tuple[str, ...] = field(default=())


_REGISTRY: dict[str, FailureScenario] = {}

#: Historical positional stream keys for the scenarios that predate
#: :func:`scenario_stream_key`.  Frozen forever: changing a value here
#: changes published metrics.
_COMPAT_STREAM_KEYS: dict[str, int] = {
    "baseline": 0,
    "isp-outage": 1,
    "regional-failure": 2,
    "flash-crowd": 3,
    "bursty-links": 4,
}


def scenario_stream_key(name: str) -> int:
    """Stable RNG stream key for ``name``.

    Built-ins keep their historical positional keys (0..4); every other name
    hashes to ``5 + sha256(name)[:8]``, so the key depends only on the name --
    never on what else is registered or in what order.  Both
    :func:`evaluate_design` and :func:`evaluate_design_streaming` seed their
    per-scenario failure/engine streams from this key.
    """
    compat = _COMPAT_STREAM_KEYS.get(name)
    if compat is not None:
        return compat
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return 5 + int.from_bytes(digest[:8], "big")


def register_failure_scenario(scenario: FailureScenario) -> FailureScenario:
    """Register ``scenario`` under its name (last registration wins)."""
    _REGISTRY[scenario.name] = scenario
    return scenario


_shipped_loaded = False


def _ensure_shipped_scenarios() -> None:
    """Auto-register the scenario files shipped inside this package.

    Deferred (and imported lazily) so ``repro.simulation.scenarios`` stays
    importable without :mod:`repro.simulation.dsl`, and the dsl module can in
    turn import this one without a cycle.
    """
    global _shipped_loaded
    if _shipped_loaded:
        return
    _shipped_loaded = True
    from repro.simulation.dsl import register_shipped_scenarios

    register_shipped_scenarios()


def get_failure_scenario(name: str) -> FailureScenario:
    _ensure_shipped_scenarios()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown failure scenario {name!r} (known: {known})") from None


def failure_scenario_names() -> list[str]:
    """All registered scenario names, in registration order."""
    _ensure_shipped_scenarios()
    return list(_REGISTRY)


# ---------------------------------------------------------------------------
# Context inference helpers
# ---------------------------------------------------------------------------


def infer_clusters(problem: OverlayDesignProblem) -> dict[str, list[str]]:
    """Group reflectors and sinks into topology clusters by name prefix.

    The workload generators name machines ``<colo>-<machine>`` (e.g.
    ``colo3-r1``, ``colo3-edge``), so the prefix before the first ``-``
    recovers the co-location cluster.  Nodes without a prefix become
    singleton clusters, which degrades regional failures to single-node
    outages on unstructured instances -- still a valid stress model.
    """
    clusters: dict[str, list[str]] = {}
    for name in [*problem.reflectors, *problem.sinks]:
        prefix = name.split("-", 1)[0]
        clusters.setdefault(prefix, []).append(name)
    return clusters


def hot_sinks(problem: OverlayDesignProblem, fraction: float = 0.3) -> list[str]:
    """The most-subscribed sinks (demand count, ties by name) -- the flash crowd."""
    counts: dict[str, int] = {}
    for demand in problem.demands:
        counts[demand.sink] = counts.get(demand.sink, 0) + 1
    ranked = sorted(counts, key=lambda sink: (-counts[sink], sink))
    keep = max(1, int(round(fraction * len(ranked)))) if ranked else 0
    return ranked[:keep]


def reflector_betweenness(
    problem: OverlayDesignProblem, solution: OverlaySolution | None
) -> dict[str, int]:
    """Demand paths carried per reflector -- overlay betweenness centrality.

    In the paper's 3-level overlay every source->sink path transits exactly
    one reflector, so a reflector's betweenness is simply the number of
    demand assignments routed through it.  Without a solution, falls back to
    a static proxy -- how many demands list the reflector as a candidate --
    enough for an adversary to pick plausibly central targets before a
    design exists.
    """
    counts: dict[str, int] = dict.fromkeys(problem.reflectors, 0)
    if solution is not None:
        for reflectors in solution.assignments.values():
            for reflector in reflectors:
                if reflector in counts:
                    counts[reflector] += 1
        return counts
    for demand in problem.demands:
        for reflector in problem.candidate_reflectors(demand):
            if reflector in counts:
                counts[reflector] += 1
    return counts


def top_betweenness_reflectors(
    problem: OverlayDesignProblem,
    solution: OverlaySolution | None,
    top_k: int,
) -> list[str]:
    """The ``top_k`` highest-betweenness reflectors (count desc, name asc)."""
    counts = reflector_betweenness(problem, solution)
    ranked = sorted(counts, key=lambda name: (-counts[name], name))
    return ranked[: max(0, top_k)]


def build_context(
    problem: OverlayDesignProblem,
    num_packets: int,
    rng: np.random.Generator,
    node_isp: Mapping[str, str | None] | None = None,
    clusters: Mapping[str, Sequence[str]] | None = None,
    solution: OverlaySolution | None = None,
) -> ScenarioContext:
    """Assemble a :class:`ScenarioContext`, inferring what the caller omits."""
    if node_isp is None:
        node_isp = {r: problem.color(r) for r in problem.reflectors}
    if clusters is None:
        clusters = infer_clusters(problem)
    return ScenarioContext(
        problem=problem,
        num_packets=num_packets,
        rng=rng,
        node_isp=node_isp,
        clusters=clusters,
        hot_sinks=hot_sinks(problem),
        solution=solution,
    )


def realize_scenario(
    name: str,
    problem: OverlayDesignProblem,
    num_packets: int,
    rng: np.random.Generator,
    node_isp: Mapping[str, str | None] | None = None,
    clusters: Mapping[str, Sequence[str]] | None = None,
    solution: OverlaySolution | None = None,
) -> ScenarioRealization:
    """Realize one registered scenario for ``problem`` (one failure draw)."""
    scenario = get_failure_scenario(name)
    context = build_context(problem, num_packets, rng, node_isp, clusters, solution)
    return scenario.realize(context)


# ---------------------------------------------------------------------------
# Built-in catalogue
# ---------------------------------------------------------------------------


def _baseline(context: ScenarioContext) -> ScenarioRealization:
    return ScenarioRealization(BernoulliLossModel(), FailureSchedule())


def _isp_outage(context: ScenarioContext) -> ScenarioRealization:
    isps = sorted({isp for isp in context.node_isp.values() if isp is not None})
    schedule = sample_isp_outage_schedule(isps, context.num_packets, context.rng)
    return ScenarioRealization(BernoulliLossModel(), schedule)


def _regional_failure(context: ScenarioContext) -> ScenarioRealization:
    schedule = sample_regional_outage_schedule(
        context.clusters, context.num_packets, context.rng, outage_probability=0.75
    )
    return ScenarioRealization(BernoulliLossModel(), schedule)


def _flash_crowd(context: ScenarioContext) -> ScenarioRealization:
    schedule = sample_flash_crowd_congestion(
        context.hot_sinks, context.num_packets, context.rng
    )
    return ScenarioRealization(BernoulliLossModel(), schedule)


def _bursty_links(context: ScenarioContext) -> ScenarioRealization:
    return ScenarioRealization(GilbertElliottLossModel(), FailureSchedule())


register_failure_scenario(
    FailureScenario(
        name="baseline",
        description="independent Bernoulli loss at measured link rates, no failures",
        realize=_baseline,
    )
)
register_failure_scenario(
    FailureScenario(
        name="isp-outage",
        description="correlated ISP-wide outages with a common shock (Section 6.4 events)",
        realize=_isp_outage,
        tags=("correlated",),
    )
)
register_failure_scenario(
    FailureScenario(
        name="regional-failure",
        description="a topology cluster (colo/region) goes dark for part of the session",
        realize=_regional_failure,
        tags=("correlated",),
    )
)
register_failure_scenario(
    FailureScenario(
        name="flash-crowd",
        description="congestion waves on the most-subscribed edge sinks",
        realize=_flash_crowd,
        tags=("congestion",),
    )
)
register_failure_scenario(
    FailureScenario(
        name="bursty-links",
        description="Gilbert-Elliott bursty loss at the same average link rates",
        realize=_bursty_links,
    )
)


# ---------------------------------------------------------------------------
# Catalogue sweeps
# ---------------------------------------------------------------------------


def resolve_scenario_names(scenarios: Iterable[str] | str | None) -> list[str]:
    """Normalize a scenario selection: ``None``/``"all"`` -> full catalogue."""
    if scenarios is None or scenarios == "all":
        return failure_scenario_names()
    if isinstance(scenarios, str):
        scenarios = [scenarios]
    names = list(scenarios)
    for name in names:
        get_failure_scenario(name)  # raises with the known list
    return names


def evaluate_design(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    scenarios: Iterable[str] | str | None = None,
    *,
    trials: int = 30,
    num_packets: int = 2000,
    window: int = 200,
    seed: int = 0,
    node_isp: Mapping[str, str | None] | None = None,
    table_provider: "TableProvider | None" = None,
) -> dict[str, dict[str, float]]:
    """Sweep ``solution`` across the failure catalogue.

    Returns ``{scenario name: reliability metrics}``; every scenario gets an
    independent, seed-derived generator for both the failure draw and the
    Monte-Carlo run, so the sweep is reproducible from ``seed`` and
    insensitive to the order or subset of scenarios requested.

    ``table_provider`` is the serving cache's hook: called per scenario with
    the exact :func:`~repro.simulation.montecarlo.compile_path_table` inputs
    ``(scenario_name, problem, solution, failures, num_packets, node_isp)``,
    it returns a compiled :class:`~repro.simulation.montecarlo.PathTable`
    (compiling and memoising as it sees fit).  The table is a pure function
    of those inputs, so caching changes compile time only, never metrics.
    """
    names = resolve_scenario_names(scenarios)
    isp_map = dict(node_isp) if node_isp is not None else None
    results: dict[str, dict[str, float]] = {}
    for name in names:
        key = scenario_stream_key(name)
        realization = realize_scenario(
            name,
            problem,
            num_packets,
            np.random.default_rng([seed, key, 0]),
            node_isp=isp_map,
            solution=solution,
        )
        config = MonteCarloConfig(
            num_packets=num_packets,
            trials=trials,
            window=window,
            loss_model=realization.loss_model,
            failures=realization.failures,
        )
        table = None
        if table_provider is not None:
            effective_isp = (
                isp_map
                if isp_map is not None
                else {r: problem.color(r) for r in problem.reflectors}
            )
            table = table_provider(
                name, problem, solution, realization.failures, num_packets,
                effective_isp,
            )
        report = run_monte_carlo(
            problem,
            solution,
            config,
            rng=np.random.default_rng([seed, key, 1]),
            node_isp=isp_map,
            table=table,
        )
        summary = report.summary()
        summary["failure_events"] = float(len(realization.failures))
        summary["worst_demand_mean_loss"] = float(
            max((d.mean_loss for d in report.demands), default=0.0)
        )
        results[name] = {key: float(value) for key, value in summary.items()}
    return results


def evaluate_design_streaming(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    scenarios: Iterable[str] | str | None = None,
    *,
    trials: int = 30,
    num_packets: int = 2000,
    window: int = 200,
    seed: int = 0,
    traces: Sequence[str] = (),
    demand_tile: int | None = None,
    trial_tile: int | None = None,
    max_memory: int | None = None,
    rebuffer_loss: float = 0.1,
    jobs: int | str | None = 1,
    node_isp: Mapping[str, str | None] | None = None,
) -> dict[str, dict[str, float]]:
    """Memory-bounded catalogue sweep (the streaming counterpart of
    :func:`evaluate_design`).

    Per scenario, the failure draw consumes the same ``[seed, key, 0]``
    stream as :func:`evaluate_design` (``key`` from
    :func:`scenario_stream_key`), and the streaming engine's integer
    seed derives from ``[seed, key, 1]`` -- so the sweep is reproducible
    from ``seed`` and insensitive to scenario order/subset, and ``jobs``
    never changes metrics.  ``traces`` adds per-window loss/rebuffering
    metrics (flattened as ``"trace:<name>:<metric>"``) replayed through the
    same fold.
    """
    from repro.simulation.streaming import StreamingConfig, run_streaming_monte_carlo

    names = resolve_scenario_names(scenarios)
    isp_map = dict(node_isp) if node_isp is not None else None
    results: dict[str, dict[str, float]] = {}
    for name in names:
        key = scenario_stream_key(name)
        realization = realize_scenario(
            name,
            problem,
            num_packets,
            np.random.default_rng([seed, key, 0]),
            node_isp=isp_map,
            solution=solution,
        )
        engine_seed = int(
            np.random.SeedSequence([seed, key, 1]).generate_state(1, dtype=np.uint64)[0]
        )
        config = StreamingConfig(
            num_packets=num_packets,
            trials=trials,
            window=window,
            loss_model=realization.loss_model,
            failures=realization.failures,
            seed=engine_seed,
            demand_tile=demand_tile,
            trial_tile=trial_tile,
            max_memory=max_memory,
            rebuffer_loss=rebuffer_loss,
        )
        report = run_streaming_monte_carlo(
            problem, solution, config, node_isp=isp_map, traces=traces, jobs=jobs
        )
        summary = report.summary()
        summary["failure_events"] = float(len(realization.failures))
        summary["worst_demand_mean_loss"] = float(
            report.mean_loss_per_demand.max(initial=0.0)
        )
        row = {key: float(value) for key, value in summary.items()}
        for trace_name, trace_report in report.traces.items():
            for key, value in trace_report.summary().items():
                if isinstance(value, (int, float)):
                    row[f"trace:{trace_name}:{key}"] = float(value)
        results[name] = row
    return results
