"""Simulation driver: run a design through packet-level transport and report.

:func:`simulate_solution` is the single entry point used by the examples and
the C1/T6 benchmarks.  For every demand it reports the measured
post-reconstruction loss, whether the demand's quality threshold was met, the
worst windowed loss rate (to expose outage windows that a session average
would hide), and redundancy overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution
from repro.network.loss import BernoulliLossModel, LossModel
from repro.simulation.failures import FailureSchedule
from repro.simulation.packets import window_loss_rates
from repro.simulation.reconstruction import duplicates_discarded, reconstruct
from repro.simulation.transport import simulate_stream_transport


@dataclass
class SimulationConfig:
    """Configuration of a simulation run.

    Attributes
    ----------
    num_packets:
        Packets per stream session.
    loss_model:
        Per-link loss process (defaults to the paper's independent Bernoulli
        model).
    failures:
        Injected outage schedule.
    window:
        Window (in packets) for the worst-window loss statistic.
    seed:
        RNG seed (ignored if an explicit generator is passed to
        :func:`simulate_solution`).
    """

    num_packets: int = 5000
    loss_model: LossModel = field(default_factory=BernoulliLossModel)
    failures: FailureSchedule = field(default_factory=FailureSchedule)
    window: int = 500
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.num_packets <= 0:
            raise ValueError("num_packets must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")


@dataclass
class DemandSimulationResult:
    """Per-demand outcome of a simulation run."""

    demand_key: tuple[str, str]
    threshold: float
    paths: int
    loss_rate: float
    worst_window_loss: float
    duplicates_discarded: int

    @property
    def success_rate(self) -> float:
        return 1.0 - self.loss_rate

    @property
    def meets_threshold(self) -> bool:
        """Whether the measured loss stays within the demand's loss budget."""
        return self.loss_rate <= (1.0 - self.threshold) + 1e-12


@dataclass
class SimulationReport:
    """Aggregate + per-demand results of a simulation run."""

    num_packets: int
    demands: list[DemandSimulationResult]

    @property
    def mean_loss(self) -> float:
        return float(np.mean([d.loss_rate for d in self.demands])) if self.demands else 0.0

    @property
    def max_loss(self) -> float:
        return float(np.max([d.loss_rate for d in self.demands])) if self.demands else 0.0

    @property
    def fraction_meeting_threshold(self) -> float:
        if not self.demands:
            return 1.0
        return float(np.mean([d.meets_threshold for d in self.demands]))

    def result_for(self, demand_key: tuple[str, str]) -> DemandSimulationResult:
        for result in self.demands:
            if result.demand_key == demand_key:
                return result
        raise KeyError(f"no simulation result for demand {demand_key}")

    def summary(self) -> dict:
        return {
            "num_packets": self.num_packets,
            "num_demands": len(self.demands),
            "mean_loss": self.mean_loss,
            "max_loss": self.max_loss,
            "fraction_meeting_threshold": self.fraction_meeting_threshold,
        }


def simulate_solution(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    config: SimulationConfig | None = None,
    rng: np.random.Generator | None = None,
    node_isp: dict[str, str | None] | None = None,
) -> SimulationReport:
    """Run the packet-level simulation of ``solution`` on ``problem``.

    ``node_isp`` maps node names (streams/sources, reflectors, sinks) to ISP
    names and is only needed when the failure schedule contains ISP outages;
    when omitted it defaults to the reflector colors recorded in the problem.
    """
    config = config or SimulationConfig()
    if rng is None:
        rng = np.random.default_rng(config.seed)
    if node_isp is None:
        node_isp = {r: problem.color(r) for r in problem.reflectors}
    # Reject events that could never fire in this session (silent no-ops).
    config.failures.validate_for_session(config.num_packets)

    # Simulate stream by stream so the source->reflector draws are shared.
    per_demand_paths: dict[tuple[str, str], dict[str, np.ndarray]] = {}
    for stream in problem.streams:
        stream_results = simulate_stream_transport(
            problem,
            solution,
            stream,
            config.num_packets,
            rng,
            loss_model=config.loss_model,
            failures=config.failures,
            node_isp=node_isp,
        )
        per_demand_paths.update(stream_results)

    results: list[DemandSimulationResult] = []
    for demand in problem.demands:
        paths = per_demand_paths.get(demand.key, {})
        copies = list(paths.values())
        if copies:
            received = reconstruct(copies)
            loss_rate = float(1.0 - received.mean())
            worst_window = float(np.max(window_loss_rates(received, config.window)))
            discarded = duplicates_discarded(copies)
        else:
            loss_rate = 1.0
            worst_window = 1.0
            discarded = 0
        results.append(
            DemandSimulationResult(
                demand_key=demand.key,
                threshold=demand.success_threshold,
                paths=len(copies),
                loss_rate=loss_rate,
                worst_window_loss=worst_window,
                duplicates_discarded=discarded,
            )
        )
    return SimulationReport(num_packets=config.num_packets, demands=results)
