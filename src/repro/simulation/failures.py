"""Failure injection for the streaming simulation.

Failures are expressed over *packet-index windows* (the simulation's notion of
time): during ``[start, end)`` the affected component forwards nothing (or, for
congestion events, drops an extra ``severity`` fraction of packets).

Four kinds of events reproduce the catastrophic scenarios the paper describes
(Section 1, Section 6.4):

* ``isp_outage`` -- every link whose tail or head node is homed in the ISP is
  dead for the window (WorldCom-style total outage, or a peering dispute
  isolating the ISP);
* ``reflector_crash`` -- a single reflector machine stops forwarding (server
  failure / colo power event);
* ``node_outage`` -- any named node (reflector *or* sink *or* source) goes
  dark; regional failures are modelled as one ``node_outage`` per member of a
  topology cluster;
* ``link_congestion`` -- links *into* the target node drop an extra
  ``severity`` fraction of packets (flash-crowd overload of an edge region).

Besides the event containers this module hosts the *correlated failure
samplers* used by the scenario catalogue
(:mod:`repro.simulation.scenarios`): ISP-wide outages with a common shock,
regional/topology-cluster failures, and flash-crowd congestion waves.  All
randomness flows through an explicit ``numpy`` generator, so a sampled
schedule is reproducible from one seed (the golden regression tests pin
exact outage masks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

#: Event kinds that force total loss on matching links during their window.
OUTAGE_KINDS = ("isp_outage", "reflector_crash", "node_outage")
#: Event kinds with fractional severity (extra loss, not total).
CONGESTION_KINDS = ("link_congestion",)
KINDS = OUTAGE_KINDS + CONGESTION_KINDS


@dataclass(frozen=True)
class FailureEvent:
    """A component failure over a packet-index window.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    target:
        ISP name (``isp_outage``), reflector name (``reflector_crash``),
        node name (``node_outage``), or the head node whose incoming links
        are congested (``link_congestion``).
    start, end:
        Packet-index window ``[start, end)`` during which the component is
        down (or congested).
    severity:
        Fraction of packets additionally lost during the window.  Must be
        1.0 for outage kinds; strictly inside ``(0, 1)`` for
        ``link_congestion`` -- a "congestion" event that drops everything is
        almost always a mistake (use ``node_outage`` for a blackout), so the
        outage-shaped default is rejected rather than silently applied.
    """

    kind: str
    target: str
    start: int
    end: int
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r} (known: {KINDS})")
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid window [{self.start}, {self.end})")
        if self.kind in OUTAGE_KINDS:
            if self.severity != 1.0:
                raise ValueError(
                    f"{self.kind} events are total outages (severity must be 1.0)"
                )
        elif not 0.0 < self.severity < 1.0:
            raise ValueError(
                f"{self.kind} severity must lie strictly inside (0, 1), got "
                f"{self.severity}; model a total loss with a node_outage event"
            )

    def window_mask(self, num_packets: int) -> np.ndarray:
        """Boolean mask of packets falling inside the outage window.

        Events that outlast the session are truncated at ``num_packets``;
        events that start at or after ``num_packets`` contribute nothing
        (:meth:`FailureSchedule.validate_for_session` rejects those up front
        so they can never become a silent no-op).
        """
        mask = np.zeros(num_packets, dtype=bool)
        mask[min(self.start, num_packets) : min(self.end, num_packets)] = True
        return mask

    def matches_link(
        self,
        tail: str,
        head: str,
        node_isp: Mapping[str, str | None],
    ) -> bool:
        """Whether this event affects the link ``tail -> head``."""
        if self.kind == "isp_outage":
            return node_isp.get(tail) == self.target or node_isp.get(head) == self.target
        if self.kind in ("reflector_crash", "node_outage"):
            return self.target in (tail, head)
        # link_congestion: receiver-side overload hits incoming links only.
        return head == self.target


@dataclass
class FailureSchedule:
    """A collection of failure events applied to a simulation run."""

    events: list[FailureEvent] = field(default_factory=list)

    def add(self, event: FailureEvent) -> None:
        self.events.append(event)

    def extend(self, events: Iterable[FailureEvent]) -> None:
        for event in events:
            self.add(event)

    def __len__(self) -> int:
        return len(self.events)

    def has_congestion(self) -> bool:
        """Whether any event carries fractional (non-outage) severity."""
        return any(event.kind in CONGESTION_KINDS for event in self.events)

    def validate_for_session(self, num_packets: int) -> None:
        """Reject events that could silently never fire in a session.

        An event whose window starts at or after ``num_packets`` would be a
        silent no-op (the failure the caller configured never happens); this
        raises instead of letting the run quietly measure the wrong scenario.
        Events that merely *end* after ``num_packets`` are fine -- they are
        truncated at the session boundary and still apply to every packet
        from ``start`` on (golden tests pin this truncation).
        """
        for event in self.events:
            if event.start >= num_packets:
                raise ValueError(
                    f"failure event {event.kind}/{event.target} window "
                    f"[{event.start}, {event.end}) starts at or after the "
                    f"session end ({num_packets} packets): it would silently "
                    "never fire"
                )

    def link_outage_mask(
        self,
        tail: str,
        head: str,
        num_packets: int,
        node_isp: Mapping[str, str | None] | None = None,
    ) -> np.ndarray:
        """Packets for which the link ``tail -> head`` is forced down.

        Only total-outage events contribute; congestion events carry
        fractional severity and are exposed via :meth:`link_loss_profile`.
        """
        mask = np.zeros(num_packets, dtype=bool)
        node_isp = node_isp or {}
        for event in self.events:
            if event.kind in OUTAGE_KINDS and event.matches_link(tail, head, node_isp):
                mask |= event.window_mask(num_packets)
        return mask

    def link_loss_profile(
        self,
        tail: str,
        head: str,
        num_packets: int,
        node_isp: Mapping[str, str | None] | None = None,
    ) -> np.ndarray | None:
        """Forced per-packet loss probability for the link, or ``None``.

        Outage events force loss 1.0; overlapping congestion events combine
        independently (``1 - prod(1 - severity)``).  Returns ``None`` when no
        event touches the link, so callers can skip the overlay entirely.
        """
        node_isp = node_isp or {}
        profile: np.ndarray | None = None
        for event in self.events:
            if not event.matches_link(tail, head, node_isp):
                continue
            if profile is None:
                profile = np.zeros(num_packets, dtype=np.float64)
            window = event.window_mask(num_packets)
            if event.kind in OUTAGE_KINDS:
                profile[window] = 1.0
            else:
                profile[window] = 1.0 - (1.0 - profile[window]) * (1.0 - event.severity)
        return profile

    @staticmethod
    def single_isp_outage(isp: str, num_packets: int, fraction: float = 0.3) -> "FailureSchedule":
        """Convenience schedule: one ISP down for a ``fraction`` of the session."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must lie in (0, 1]")
        span = int(round(fraction * num_packets))
        start = (num_packets - span) // 2
        return FailureSchedule([FailureEvent("isp_outage", isp, start, start + span)])


# ---------------------------------------------------------------------------
# Correlated failure samplers (the scenario catalogue's raw material)
# ---------------------------------------------------------------------------


def _sample_window(
    num_packets: int, rng: np.random.Generator, duration_fraction: float
) -> tuple[int, int]:
    """One outage window: duration jittered around the requested fraction."""
    span = duration_fraction * float(rng.uniform(0.6, 1.4)) * num_packets
    span = int(np.clip(round(span), 1, num_packets))
    start = int(rng.integers(0, num_packets - span + 1))
    return start, start + span


def sample_isp_outage_schedule(
    isp_names: Sequence[str],
    num_packets: int,
    rng: np.random.Generator,
    *,
    outage_probability: float = 0.25,
    shock_probability: float = 0.3,
    shock_outage_probability: float = 0.8,
    duration_fraction: float = 0.3,
) -> FailureSchedule:
    """Correlated ISP-wide outages (the paper's WorldCom / C&W events).

    A *common shock* (a routing catastrophe, a peering dispute) occurs with
    ``shock_probability``; under the shock each ISP fails independently with
    ``shock_outage_probability``, otherwise with the background
    ``outage_probability``.  This induces positive correlation between ISP
    failures while keeping every marginal easy to reason about.  Each failed
    ISP gets one outage window covering roughly ``duration_fraction`` of the
    session.
    """
    if not 0.0 <= outage_probability <= 1.0:
        raise ValueError(f"outage_probability must lie in [0, 1], got {outage_probability}")
    schedule = FailureSchedule()
    shock = bool(rng.random() < shock_probability)
    per_isp = shock_outage_probability if shock else outage_probability
    for isp in isp_names:
        if rng.random() < per_isp:
            start, end = _sample_window(num_packets, rng, duration_fraction)
            schedule.add(FailureEvent("isp_outage", isp, start, end))
    return schedule


def sample_regional_outage_schedule(
    clusters: Mapping[str, Sequence[str]],
    num_packets: int,
    rng: np.random.Generator,
    *,
    outage_probability: float = 0.5,
    duration_fraction: float = 0.25,
    max_regions: int = 1,
) -> FailureSchedule:
    """Topology-cluster failures: whole regions (colos) go dark together.

    ``clusters`` maps cluster name -> member node names (reflectors and
    sinks).  Up to ``max_regions`` clusters are struck, each with probability
    ``outage_probability``; a struck cluster emits one ``node_outage`` event
    per member over a shared window, which is exactly how a regional power or
    fiber event presents to the overlay.
    """
    schedule = FailureSchedule()
    if not clusters:
        return schedule
    names = sorted(clusters)
    order = rng.permutation(len(names))
    struck = 0
    for index in order:
        if struck >= max_regions:
            break
        if rng.random() >= outage_probability:
            continue
        struck += 1
        start, end = _sample_window(num_packets, rng, duration_fraction)
        for node in clusters[names[index]]:
            schedule.add(FailureEvent("node_outage", node, start, end))
    return schedule


def sample_flash_crowd_congestion(
    hot_sinks: Sequence[str],
    num_packets: int,
    rng: np.random.Generator,
    *,
    severity: float = 0.35,
    surge_fraction: float = 0.4,
    num_waves: int = 2,
) -> FailureSchedule:
    """Flash-crowd demand surge: congestion waves on the hot edge region.

    During each wave every link into a hot sink drops an extra ``severity``
    fraction of packets (jittered per sink) -- the last-mile congestion a
    sudden audience spike produces (the paper's MacWorld-2002 motivation).
    """
    if not 0.0 < severity < 1.0:
        raise ValueError(f"severity must lie in (0, 1), got {severity}")
    schedule = FailureSchedule()
    for _ in range(max(1, num_waves)):
        start, end = _sample_window(num_packets, rng, surge_fraction / max(1, num_waves))
        for sink in hot_sinks:
            jitter = float(np.clip(severity * rng.uniform(0.7, 1.3), 0.01, 0.99))
            schedule.add(FailureEvent("link_congestion", sink, start, end, severity=jitter))
    return schedule
