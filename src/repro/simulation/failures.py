"""Failure injection for the streaming simulation.

Failures are expressed over *packet-index windows* (the simulation's notion of
time): during ``[start, end)`` the affected component forwards nothing.

Two kinds of events reproduce the catastrophic scenarios the paper describes
(Section 1, Section 6.4):

* ``isp_outage`` -- every link whose tail or head node is homed in the ISP is
  dead for the window (WorldCom-style total outage, or a peering dispute
  isolating the ISP);
* ``reflector_crash`` -- a single reflector machine stops forwarding (server
  failure / colo power event).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class FailureEvent:
    """A component outage over a packet-index window.

    Attributes
    ----------
    kind:
        ``"isp_outage"`` or ``"reflector_crash"``.
    target:
        ISP name or reflector name, respectively.
    start, end:
        Packet-index window ``[start, end)`` during which the component is down.
    """

    kind: str
    target: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.kind not in ("isp_outage", "reflector_crash"):
            raise ValueError(f"unknown failure kind {self.kind!r}")
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid window [{self.start}, {self.end})")

    def window_mask(self, num_packets: int) -> np.ndarray:
        """Boolean mask of packets falling inside the outage window."""
        mask = np.zeros(num_packets, dtype=bool)
        mask[min(self.start, num_packets) : min(self.end, num_packets)] = True
        return mask


@dataclass
class FailureSchedule:
    """A collection of failure events applied to a simulation run."""

    events: list[FailureEvent] = field(default_factory=list)

    def add(self, event: FailureEvent) -> None:
        self.events.append(event)

    def extend(self, events: Iterable[FailureEvent]) -> None:
        for event in events:
            self.add(event)

    def __len__(self) -> int:
        return len(self.events)

    def link_outage_mask(
        self,
        tail: str,
        head: str,
        num_packets: int,
        node_isp: dict[str, str | None] | None = None,
    ) -> np.ndarray:
        """Packets for which the link ``tail -> head`` is forced down.

        ``node_isp`` maps node names to ISP names; reflector crashes match the
        link's tail or head by name directly.
        """
        mask = np.zeros(num_packets, dtype=bool)
        node_isp = node_isp or {}
        for event in self.events:
            if event.kind == "reflector_crash":
                if event.target in (tail, head):
                    mask |= event.window_mask(num_packets)
            else:  # isp_outage
                if node_isp.get(tail) == event.target or node_isp.get(head) == event.target:
                    mask |= event.window_mask(num_packets)
        return mask

    @staticmethod
    def single_isp_outage(isp: str, num_packets: int, fraction: float = 0.3) -> "FailureSchedule":
        """Convenience schedule: one ISP down for a ``fraction`` of the session."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must lie in (0, 1]")
        span = int(round(fraction * num_packets))
        start = (num_packets - span) // 2
        return FailureSchedule([FailureEvent("isp_outage", isp, start, start + span)])
