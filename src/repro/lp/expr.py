"""Variables, linear expressions and constraints for the LP modeling layer.

The design mirrors (a tiny subset of) familiar modeling libraries: a
:class:`Variable` is a handle into a :class:`repro.lp.model.LinearProgram`;
arithmetic on variables produces :class:`LinearExpr` objects; comparing an
expression to a number (or another expression) produces a :class:`Constraint`
that can be added to the model.

Expressions are stored as ``{variable_index: coefficient}`` dictionaries plus
a constant term; this keeps model construction O(number of nonzeros), which
matters because the Section-2 LP has ``O(|S|·|R|·|D|)`` variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from numbers import Real
from typing import Iterable, Mapping


class Sense(Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Variable:
    """Handle to a decision variable inside a :class:`LinearProgram`.

    Do not instantiate directly; use :meth:`LinearProgram.add_variable`.
    """

    __slots__ = ("index", "name", "lower", "upper")

    def __init__(self, index: int, name: str, lower: float, upper: float) -> None:
        self.index = index
        self.name = name
        self.lower = lower
        self.upper = upper

    # Arithmetic ------------------------------------------------------------
    def _as_expr(self) -> "LinearExpr":
        return LinearExpr({self.index: 1.0})

    def __add__(self, other: "Variable | LinearExpr | Real") -> "LinearExpr":
        return self._as_expr() + other

    __radd__ = __add__

    def __sub__(self, other: "Variable | LinearExpr | Real") -> "LinearExpr":
        return self._as_expr() - other

    def __rsub__(self, other: "Variable | LinearExpr | Real") -> "LinearExpr":
        return (-1.0 * self._as_expr()) + other

    def __mul__(self, scalar: Real) -> "LinearExpr":
        return self._as_expr() * scalar

    __rmul__ = __mul__

    def __neg__(self) -> "LinearExpr":
        return self._as_expr() * -1.0

    # Comparisons build constraints ------------------------------------------
    def __le__(self, other) -> "Constraint":
        return self._as_expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self._as_expr() >= other

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinearExpr:
    """An affine expression ``sum_i coeff_i * x_i + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[int, float] | None = None, constant: float = 0.0) -> None:
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    # Construction helpers ----------------------------------------------------
    @staticmethod
    def sum(terms: Iterable["Variable | LinearExpr | Real"]) -> "LinearExpr":
        """Sum an iterable of variables/expressions/constants efficiently."""
        out = LinearExpr()
        for term in terms:
            out += term
        return out

    @staticmethod
    def weighted_sum(pairs: Iterable[tuple[float, "Variable"]]) -> "LinearExpr":
        """Build ``sum coeff * var`` from (coeff, var) pairs without temporaries."""
        coeffs: dict[int, float] = {}
        for coeff, var in pairs:
            coeffs[var.index] = coeffs.get(var.index, 0.0) + float(coeff)
        return LinearExpr(coeffs)

    def copy(self) -> "LinearExpr":
        return LinearExpr(self.coeffs, self.constant)

    # Arithmetic --------------------------------------------------------------
    def __iadd__(self, other: "Variable | LinearExpr | Real") -> "LinearExpr":
        if isinstance(other, Variable):
            self.coeffs[other.index] = self.coeffs.get(other.index, 0.0) + 1.0
        elif isinstance(other, LinearExpr):
            for idx, coeff in other.coeffs.items():
                self.coeffs[idx] = self.coeffs.get(idx, 0.0) + coeff
            self.constant += other.constant
        elif isinstance(other, Real):
            self.constant += float(other)
        else:  # pragma: no cover - defensive
            return NotImplemented
        return self

    def __add__(self, other: "Variable | LinearExpr | Real") -> "LinearExpr":
        out = self.copy()
        out += other
        return out

    __radd__ = __add__

    def __sub__(self, other: "Variable | LinearExpr | Real") -> "LinearExpr":
        if isinstance(other, Variable):
            other = other._as_expr()
        if isinstance(other, LinearExpr):
            return self + (other * -1.0)
        if isinstance(other, Real):
            return self + (-float(other))
        return NotImplemented

    def __rsub__(self, other: "Variable | LinearExpr | Real") -> "LinearExpr":
        return (self * -1.0) + other

    def __mul__(self, scalar: Real) -> "LinearExpr":
        if not isinstance(scalar, Real):
            return NotImplemented
        return LinearExpr(
            {idx: coeff * float(scalar) for idx, coeff in self.coeffs.items()},
            self.constant * float(scalar),
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinearExpr":
        return self * -1.0

    # Comparisons -> constraints ----------------------------------------------
    def _make_constraint(self, other, sense: Sense) -> "Constraint":
        if isinstance(other, (Variable, LinearExpr)):
            diff = self - other
        elif isinstance(other, Real):
            diff = self - float(other)
        else:  # pragma: no cover - defensive
            raise TypeError(f"cannot compare LinearExpr with {type(other)!r}")
        rhs = -diff.constant
        return Constraint(LinearExpr(diff.coeffs), sense, rhs)

    def __le__(self, other) -> "Constraint":
        return self._make_constraint(other, Sense.LE)

    def __ge__(self, other) -> "Constraint":
        return self._make_constraint(other, Sense.GE)

    def equals(self, other) -> "Constraint":
        """Build an equality constraint (named method; ``==`` is kept for identity)."""
        return self._make_constraint(other, Sense.EQ)

    # Evaluation ----------------------------------------------------------------
    def value(self, assignment: Mapping[int, float] | list[float]) -> float:
        """Evaluate the expression under a variable assignment (index -> value)."""
        total = self.constant
        for idx, coeff in self.coeffs.items():
            total += coeff * assignment[idx]
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinearExpr({terms} + {self.constant:g})"


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) rhs``.

    The expression's constant term has already been folded into ``rhs`` by the
    comparison operators, so ``expr.constant`` is always zero here.
    """

    expr: LinearExpr
    sense: Sense
    rhs: float
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def violation(self, assignment: Mapping[int, float] | list[float]) -> float:
        """Amount by which the constraint is violated (0 when satisfied)."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)
