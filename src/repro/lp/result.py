"""Solution containers for the LP substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.lp.expr import Variable


class LPStatus(Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class LPSolution:
    """Result of solving a :class:`repro.lp.LinearProgram`.

    Attributes
    ----------
    status:
        Solver outcome.
    objective:
        Objective value in the model's own direction (already un-negated for
        maximization models); ``nan`` unless ``status`` is ``OPTIMAL``.
    values:
        Array of variable values indexed by variable index; empty on failure.
    message:
        Backend diagnostic string.
    """

    status: LPStatus
    objective: float
    values: np.ndarray = field(default_factory=lambda: np.empty(0))
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    def value(self, var: Variable) -> float:
        """Value of a single variable."""
        return float(self.values[var.index])

    def value_map(self, variables: dict) -> dict:
        """Map an arbitrary-keyed dict of variables to their solved values.

        Convenience for formulation code that keeps variables in dictionaries
        keyed by (stream, reflector, sink) tuples.
        """
        return {key: self.value(var) for key, var in variables.items()}
