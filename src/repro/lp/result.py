"""Solution containers for the LP substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.lp.expr import Variable


class LPStatus(Enum):
    """Outcome of an LP / MILP solve.

    ``FEASIBLE`` is MIP-specific: the solver hit a time or gap limit holding
    an incumbent that is feasible but not proven optimal.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class LPSolution:
    """Result of solving a :class:`repro.lp.LinearProgram`.

    Attributes
    ----------
    status:
        Solver outcome.
    objective:
        Objective value in the model's own direction (already un-negated for
        maximization models); ``nan`` unless ``status`` is ``OPTIMAL``.
    values:
        Array of variable values indexed by variable index; empty on failure.
    message:
        Backend diagnostic string.
    backend:
        Name of the solver backend that produced this solution.
    mip_gap:
        Relative gap between incumbent and dual bound (MIP solves only).
    mip_dual_bound:
        Best proven bound on the optimum, in the model's own direction
        (MIP solves only).
    mip_node_count:
        Branch-and-bound nodes explored (MIP solves only).
    """

    status: LPStatus
    objective: float
    values: np.ndarray = field(default_factory=lambda: np.empty(0))
    message: str = ""
    backend: str = "highs"
    mip_gap: float | None = None
    mip_dual_bound: float | None = None
    mip_node_count: int | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    @property
    def has_solution(self) -> bool:
        """True when ``values`` holds a usable incumbent (optimal or feasible)."""
        return self.status in (LPStatus.OPTIMAL, LPStatus.FEASIBLE)

    def value(self, var: Variable) -> float:
        """Value of a single variable."""
        return float(self.values[var.index])

    def value_map(self, variables: dict) -> dict:
        """Map an arbitrary-keyed dict of variables to their solved values.

        Convenience for formulation code that keeps variables in dictionaries
        keyed by (stream, reflector, sink) tuples.
        """
        return {key: self.value(var) for key, var in variables.items()}
