"""The :class:`LinearProgram` model container.

A model owns its variables and constraints and knows how to compile itself
into the sparse-matrix form consumed by :func:`scipy.optimize.linprog`
(see :mod:`repro.lp.solver`).  Construction cost is linear in the number of
constraint nonzeros, which keeps building the ``O(|S|·|R|·|D|)``-variable
Section-2 LP fast even for thousands of (stream, sink) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

import numpy as np
from scipy import sparse

from repro.lp.expr import Constraint, LinearExpr, Sense, Variable


class Objective(Enum):
    """Optimization direction."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


@dataclass
class CompiledLP:
    """Matrix form of a model, ready for scipy's ``linprog``.

    ``A_ub x <= b_ub`` and ``A_eq x == b_eq``; ``c`` is always a minimization
    objective (maximization models are negated during compilation and the
    objective value is flipped back by the solver wrapper).
    """

    c: np.ndarray
    A_ub: sparse.csr_matrix | None
    b_ub: np.ndarray | None
    A_eq: sparse.csr_matrix | None
    b_eq: np.ndarray | None
    bounds: list[tuple[float, float | None]]
    objective_sign: float
    objective_constant: float


class LinearProgram:
    """A linear program: variables, linear constraints, and a linear objective."""

    def __init__(self, name: str = "lp", objective_sense: Objective = Objective.MINIMIZE) -> None:
        self.name = name
        self.objective_sense = objective_sense
        self._variables: list[Variable] = []
        self._var_names: dict[str, int] = {}
        self._constraints: list[Constraint] = []
        self._objective = LinearExpr()

    # ------------------------------------------------------------- variables
    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def variables(self) -> list[Variable]:
        return list(self._variables)

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def add_variable(
        self,
        name: str | None = None,
        lower: float = 0.0,
        upper: float | None = None,
    ) -> Variable:
        """Add a continuous variable with the given bounds and return its handle.

        Variable names must be unique; anonymous variables get ``x{i}`` names.
        """
        index = len(self._variables)
        if name is None:
            name = f"x{index}"
        if name in self._var_names:
            raise ValueError(f"variable name {name!r} already used")
        if upper is not None and upper < lower:
            raise ValueError(f"variable {name!r}: upper bound {upper} < lower bound {lower}")
        var = Variable(index, name, lower, float("inf") if upper is None else upper)
        self._variables.append(var)
        self._var_names[name] = index
        return var

    def variable_by_name(self, name: str) -> Variable:
        """Look a variable up by name (KeyError if absent)."""
        return self._variables[self._var_names[name]]

    # ----------------------------------------------------------- constraints
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint built with ``<=`` / ``>=`` / ``.equals`` and return it."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint; build one by comparing "
                "a LinearExpr with a bound (e.g. expr <= 1.0)"
            )
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{len(self._constraints)}"
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add_constraint(constraint)

    # ------------------------------------------------------------- objective
    def set_objective(self, expr: LinearExpr | Variable, sense: Objective | None = None) -> None:
        """Set the objective expression (and optionally its direction)."""
        if isinstance(expr, Variable):
            expr = expr + 0.0
        self._objective = expr.copy()
        if sense is not None:
            self.objective_sense = sense

    @property
    def objective(self) -> LinearExpr:
        return self._objective.copy()

    def objective_value(self, assignment) -> float:
        """Evaluate the objective under an assignment (list or dict by index)."""
        return self._objective.value(assignment)

    # -------------------------------------------------------------- compiling
    def compile(self) -> CompiledLP:
        """Compile to the sparse matrix form used by scipy's HiGHS backend."""
        num_vars = self.num_variables
        sign = 1.0 if self.objective_sense is Objective.MINIMIZE else -1.0

        c = np.zeros(num_vars)
        for idx, coeff in self._objective.coeffs.items():
            c[idx] = sign * coeff

        ub_rows: list[int] = []
        ub_cols: list[int] = []
        ub_vals: list[float] = []
        b_ub: list[float] = []
        eq_rows: list[int] = []
        eq_cols: list[int] = []
        eq_vals: list[float] = []
        b_eq: list[float] = []

        for constraint in self._constraints:
            if constraint.sense is Sense.EQ:
                row = len(b_eq)
                for idx, coeff in constraint.expr.coeffs.items():
                    eq_rows.append(row)
                    eq_cols.append(idx)
                    eq_vals.append(coeff)
                b_eq.append(constraint.rhs)
            else:
                row = len(b_ub)
                flip = 1.0 if constraint.sense is Sense.LE else -1.0
                for idx, coeff in constraint.expr.coeffs.items():
                    ub_rows.append(row)
                    ub_cols.append(idx)
                    ub_vals.append(flip * coeff)
                b_ub.append(flip * constraint.rhs)

        A_ub = (
            sparse.csr_matrix(
                (ub_vals, (ub_rows, ub_cols)), shape=(len(b_ub), num_vars)
            )
            if b_ub
            else None
        )
        A_eq = (
            sparse.csr_matrix(
                (eq_vals, (eq_rows, eq_cols)), shape=(len(b_eq), num_vars)
            )
            if b_eq
            else None
        )
        bounds = [
            (var.lower, None if var.upper == float("inf") else var.upper)
            for var in self._variables
        ]
        return CompiledLP(
            c=c,
            A_ub=A_ub,
            b_ub=np.asarray(b_ub) if b_ub else None,
            A_eq=A_eq,
            b_eq=np.asarray(b_eq) if b_eq else None,
            bounds=bounds,
            objective_sign=sign,
            objective_constant=self._objective.constant,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"LinearProgram(name={self.name!r}, vars={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )
