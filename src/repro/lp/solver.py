"""Solve :class:`repro.lp.LinearProgram` models through registered backends.

The paper's algorithm only needs an optimal *fractional* solution of the
Section-2 relaxation; HiGHS (bundled with scipy) is more than adequate for
that and remains the default.  Exact integer solves go through the same
entry points by picking the ``"highs-mip"`` (or optional ``"gurobi"``)
backend -- see :mod:`repro.lp.backends`.  Keeping every backend behind
:func:`solve_lp` / :func:`solve_compiled` means the rest of the code never
touches solver libraries directly.

Failure semantics: infeasible and unbounded outcomes are *returned* as
:class:`LPSolution` values (they are legitimate answers about the model);
solver malfunctions -- unknown status codes, numerical failure, a missing
optional backend -- *raise* :class:`~repro.lp.backends.SolverError`
carrying the backend's own diagnostic message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.lp.backends import SolveOptions, get_backend
from repro.lp.model import CompiledLP, LinearProgram
from repro.lp.result import LPSolution, LPStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lp.sparse import LPBuildStats


def solve_lp(
    model: LinearProgram,
    backend: str = "highs",
    *,
    options: SolveOptions | None = None,
) -> LPSolution:
    """Solve ``model`` and return an :class:`LPSolution`.

    Parameters
    ----------
    model:
        The linear program to solve.
    backend:
        Registered backend name (``"highs"`` by default; ``"highs-mip"`` or
        ``"gurobi"`` for integer programs).
    options:
        Backend-independent :class:`~repro.lp.backends.SolveOptions`
        (integrality, time limit, MIP gap, warm start).
    """
    if model.num_variables == 0:
        return LPSolution(status=LPStatus.OPTIMAL, objective=0.0, values=np.empty(0))
    return solve_compiled(model.compile(), backend=backend, options=options)


def solve_compiled(
    compiled: CompiledLP,
    backend: str = "highs",
    *,
    options: SolveOptions | None = None,
    stats: "LPBuildStats | None" = None,
) -> LPSolution:
    """Solve an already-compiled matrix-form LP through a registered backend.

    Both build paths converge here: the expression-tree layer compiles via
    :meth:`repro.lp.model.LinearProgram.compile`, the vectorized layer via
    :meth:`repro.lp.sparse.SparseLPBuilder.build`.

    When ``stats`` (the :class:`~repro.lp.sparse.LPBuildStats` of the build)
    is supplied, infeasible / unbounded outcomes name the constraint family
    row counts in their message, so failures point at the paper's constraint
    families instead of anonymous matrix rows.
    """
    resolved = get_backend(backend)
    solution = resolved.solve(compiled, options or SolveOptions())
    if (
        stats is not None
        and solution.status in (LPStatus.INFEASIBLE, LPStatus.UNBOUNDED)
        and stats.blocks
    ):
        families = ", ".join(f"{block.name}: {block.rows} rows" for block in stats.blocks)
        solution.message = (
            f"{solution.message} [constraint families: {families}]"
            if solution.message
            else f"[constraint families: {families}]"
        )
    return solution
