"""Solve :class:`repro.lp.LinearProgram` models with scipy's HiGHS backend.

The paper's algorithm only needs an optimal *fractional* solution of the
Section-2 relaxation; HiGHS (bundled with scipy) is more than adequate for
the instance sizes a pure-Python reproduction targets, and keeping the
backend behind :func:`solve_lp` means the rest of the code never touches
scipy directly.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.lp.model import CompiledLP, LinearProgram
from repro.lp.result import LPSolution, LPStatus

#: scipy.optimize.linprog status codes -> our enum.
_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ERROR,  # iteration limit
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.ERROR,
}


def solve_lp(model: LinearProgram, method: str = "highs") -> LPSolution:
    """Solve ``model`` and return an :class:`LPSolution`.

    Parameters
    ----------
    model:
        The linear program to solve.
    method:
        scipy ``linprog`` method name; ``"highs"`` (dual simplex / IPM chosen
        automatically) is the default and the only one exercised by the tests.
    """
    if model.num_variables == 0:
        return LPSolution(status=LPStatus.OPTIMAL, objective=0.0, values=np.empty(0))
    return solve_compiled(model.compile(), method=method)


def solve_compiled(compiled: CompiledLP, method: str = "highs") -> LPSolution:
    """Solve an already-compiled matrix-form LP.

    Both build paths converge here: the expression-tree layer compiles via
    :meth:`repro.lp.model.LinearProgram.compile`, the vectorized layer via
    :meth:`repro.lp.sparse.SparseLPBuilder.build`.
    """
    if len(compiled.c) == 0:
        return LPSolution(status=LPStatus.OPTIMAL, objective=0.0, values=np.empty(0))

    result = linprog(
        c=compiled.c,
        A_ub=compiled.A_ub,
        b_ub=compiled.b_ub,
        A_eq=compiled.A_eq,
        b_eq=compiled.b_eq,
        bounds=compiled.bounds,
        method=method,
    )
    status = _STATUS_MAP.get(result.status, LPStatus.ERROR)
    if status is not LPStatus.OPTIMAL:
        return LPSolution(
            status=status,
            objective=float("nan"),
            values=np.empty(0),
            message=str(result.message),
        )
    # scipy always minimizes compiled.c @ x; undo the sign flip for
    # maximization models and re-add the constant term.
    objective = compiled.objective_sign * float(result.fun) + compiled.objective_constant
    return LPSolution(
        status=status,
        objective=objective,
        values=np.asarray(result.x, dtype=float),
        message=str(result.message),
    )
