"""Registered solver backends for compiled LP / MILP models.

The LP substrate historically rode a single hardwired scipy/HiGHS path in
:mod:`repro.lp.solver`.  This module generalizes that path into a small
backend registry (the pyomo ``SolverFactory`` pattern): every backend is a
named object implementing :class:`SolverBackend`, and the solver wrapper
dispatches by name so callers pick a backend per solve without the rest of
the code ever touching solver libraries directly.

Three backends ship:

``"highs"``
    The default: :func:`scipy.optimize.linprog` (HiGHS dual simplex / IPM).
    Pure LP -- requesting integrality raises :class:`SolverError`.
``"highs-mip"``
    :func:`scipy.optimize.milp` (HiGHS branch-and-cut) over the same
    :class:`~repro.lp.model.CompiledLP` blocks.  Solves mixed-integer
    programs exactly and surfaces MIP diagnostics (gap, dual bound, node
    count); also solves pure LPs, making it a drop-in exact backend.
``"gurobi"``
    Optional: present only when ``gurobipy`` is importable.  Registered
    unconditionally so docs and error messages can name it, but
    :meth:`~SolverBackend.available` reports False and solving raises a
    :class:`SolverError` explaining the absence.  Honors warm starts.

All backends accept the same :class:`SolveOptions`; fields a backend cannot
honor are either rejected (integrality on ``"highs"``) or documented as
advisory (warm starts are honored only by ``"gurobi"``; HiGHS backends
accept and ignore them, so default results are unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from repro.lp.model import CompiledLP
from repro.lp.result import LPSolution, LPStatus


class SolverError(RuntimeError):
    """A solver failed or was misused (unknown backend, unsupported option,
    backend-reported error status).

    Attributes
    ----------
    message:
        Human-readable description; includes the backend's own diagnostic
        (``result.message``) when one exists.
    backend:
        Name of the backend that raised, when known.
    status_code:
        The backend's raw status code, when one exists.
    """

    def __init__(
        self,
        message: str,
        *,
        backend: str | None = None,
        status_code: int | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.backend = backend
        self.status_code = status_code


@dataclass(frozen=True)
class SolveOptions:
    """Backend-independent solve options.

    Attributes
    ----------
    integrality:
        Per-variable integrality flags (1 = integer, 0 = continuous), as
        accepted by :func:`scipy.optimize.milp`; ``None`` means a pure LP.
        The ``"highs"`` LP backend rejects non-trivial integrality.
    time_limit:
        Wall-clock limit in seconds for MIP solves.  Hitting the limit with
        an incumbent yields ``LPStatus.FEASIBLE`` rather than an error.
    mip_gap:
        Relative MIP gap at which the solver may stop early (e.g. ``1e-4``).
    warm_start:
        Candidate variable vector used as a starting point.  Advisory: only
        backends that support MIP starts honor it (``"gurobi"``); the HiGHS
        backends accept and ignore it, so passing one never changes the
        default backend's results.
    """

    integrality: np.ndarray | None = None
    time_limit: float | None = None
    mip_gap: float | None = None
    warm_start: np.ndarray | None = None

    @property
    def is_mip(self) -> bool:
        return self.integrality is not None and bool(np.any(self.integrality))


@runtime_checkable
class SolverBackend(Protocol):
    """The backend interface: a named ``solve(compiled, options)`` object."""

    name: str
    description: str

    def available(self) -> bool:
        """Whether the backend's solver library is importable right now."""
        ...  # pragma: no cover - protocol body

    def solve(self, compiled: CompiledLP, options: SolveOptions) -> LPSolution:
        """Solve a compiled model, returning an :class:`LPSolution`."""
        ...  # pragma: no cover - protocol body


#: Registration-ordered backend registry (insertion order = presentation order).
_BACKENDS: dict[str, SolverBackend] = {}


def register_backend(cls: Callable[[], SolverBackend]) -> Callable[[], SolverBackend]:
    """Class decorator registering an instance under ``cls().name``.

    Last registration wins, so reloads and test doubles work.
    """
    instance = cls()
    _BACKENDS[instance.name] = instance
    return cls


def backend_names() -> list[str]:
    """All registered backend names, in registration order."""
    return list(_BACKENDS)


def available_backend_names() -> list[str]:
    """Names of backends whose solver library is importable right now."""
    return [name for name, backend in _BACKENDS.items() if backend.available()]


def registered_backends() -> list[SolverBackend]:
    """All registered backends, in registration order."""
    return list(_BACKENDS.values())


def get_backend(name: str) -> SolverBackend:
    """Resolve a backend by name.

    Raises :class:`SolverError` for unknown names; the message names the
    installed (available) backends so callers can surface it directly.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        installed = ", ".join(available_backend_names())
        raise SolverError(
            f"unknown solver backend {name!r} (installed backends: {installed})",
            backend=name,
        ) from None


def _empty_solution() -> LPSolution:
    return LPSolution(status=LPStatus.OPTIMAL, objective=0.0, values=np.empty(0))


def _finish(compiled: CompiledLP, fun: float) -> float:
    # scipy always minimizes compiled.c @ x; undo the sign flip for
    # maximization models and re-add the constant term.
    return compiled.objective_sign * float(fun) + compiled.objective_constant


@register_backend
class HighsLPBackend:
    """scipy ``linprog`` (HiGHS): the default pure-LP backend."""

    name = "highs"
    description = "scipy.optimize.linprog (HiGHS) -- LP only, the default"

    #: scipy.optimize.linprog status codes -> our enum.  Unknown codes are
    #: NOT silently mapped to ERROR; they raise SolverError (see solve()).
    _STATUS_MAP = {
        0: LPStatus.OPTIMAL,
        1: LPStatus.ERROR,  # iteration limit
        2: LPStatus.INFEASIBLE,
        3: LPStatus.UNBOUNDED,
        4: LPStatus.ERROR,
    }

    def available(self) -> bool:
        return True

    def solve(self, compiled: CompiledLP, options: SolveOptions) -> LPSolution:
        if options.is_mip:
            raise SolverError(
                "backend 'highs' solves pure LPs only; use 'highs-mip' or "
                "'gurobi' for integrality constraints",
                backend=self.name,
            )
        if len(compiled.c) == 0:
            return _empty_solution()
        solver_options = {}
        if options.time_limit is not None:
            solver_options["time_limit"] = float(options.time_limit)
        result = linprog(
            c=compiled.c,
            A_ub=compiled.A_ub,
            b_ub=compiled.b_ub,
            A_eq=compiled.A_eq,
            b_eq=compiled.b_eq,
            bounds=compiled.bounds,
            method="highs",
            options=solver_options or None,
        )
        if result.status not in self._STATUS_MAP:
            raise SolverError(
                f"linprog returned unknown status {result.status}: {result.message}",
                backend=self.name,
                status_code=int(result.status),
            )
        status = self._STATUS_MAP[result.status]
        if status is LPStatus.ERROR:
            raise SolverError(
                f"linprog failed (status {result.status}): {result.message}",
                backend=self.name,
                status_code=int(result.status),
            )
        if status is not LPStatus.OPTIMAL:
            return LPSolution(
                status=status,
                objective=float("nan"),
                values=np.empty(0),
                message=str(result.message),
                backend=self.name,
            )
        return LPSolution(
            status=status,
            objective=_finish(compiled, result.fun),
            values=np.asarray(result.x, dtype=float),
            message=str(result.message),
            backend=self.name,
        )


def _compiled_to_milp_args(compiled: CompiledLP) -> tuple[list[LinearConstraint], Bounds]:
    constraints = []
    if compiled.A_ub is not None:
        constraints.append(LinearConstraint(compiled.A_ub, -np.inf, compiled.b_ub))
    if compiled.A_eq is not None:
        constraints.append(LinearConstraint(compiled.A_eq, compiled.b_eq, compiled.b_eq))
    lowers = np.array([lo for lo, _ in compiled.bounds], dtype=float)
    uppers = np.array(
        [np.inf if hi is None else hi for _, hi in compiled.bounds], dtype=float
    )
    return constraints, Bounds(lowers, uppers)


@register_backend
class HighsMIPBackend:
    """scipy ``milp`` (HiGHS branch-and-cut): the exact-at-scale backend."""

    name = "highs-mip"
    description = "scipy.optimize.milp (HiGHS branch-and-cut) -- exact MILP"

    #: scipy.optimize.milp status codes -> our enum.  Code 1 (time/iteration
    #: limit) maps to FEASIBLE when an incumbent exists, ERROR otherwise.
    _STATUS_MAP = {
        0: LPStatus.OPTIMAL,
        1: LPStatus.FEASIBLE,
        2: LPStatus.INFEASIBLE,
        3: LPStatus.UNBOUNDED,
        4: LPStatus.ERROR,
    }

    def available(self) -> bool:
        return True

    def solve(self, compiled: CompiledLP, options: SolveOptions) -> LPSolution:
        if len(compiled.c) == 0:
            return _empty_solution()
        constraints, bounds = _compiled_to_milp_args(compiled)
        integrality = options.integrality
        if integrality is None:
            integrality = np.zeros(len(compiled.c), dtype=np.int8)
        solver_options = {}
        if options.time_limit is not None:
            solver_options["time_limit"] = float(options.time_limit)
        if options.mip_gap is not None:
            solver_options["mip_rel_gap"] = float(options.mip_gap)
        result = milp(
            compiled.c,
            constraints=constraints,
            bounds=bounds,
            integrality=integrality,
            options=solver_options or None,
        )
        if result.status not in self._STATUS_MAP:
            raise SolverError(
                f"milp returned unknown status {result.status}: {result.message}",
                backend=self.name,
                status_code=int(result.status),
            )
        status = self._STATUS_MAP[result.status]
        if status is LPStatus.FEASIBLE and result.x is None:
            # Hit the limit before finding any incumbent.
            raise SolverError(
                f"milp stopped without an incumbent (status {result.status}): "
                f"{result.message}",
                backend=self.name,
                status_code=int(result.status),
            )
        if status is LPStatus.ERROR:
            raise SolverError(
                f"milp failed (status {result.status}): {result.message}",
                backend=self.name,
                status_code=int(result.status),
            )
        if status in (LPStatus.INFEASIBLE, LPStatus.UNBOUNDED):
            return LPSolution(
                status=status,
                objective=float("nan"),
                values=np.empty(0),
                message=str(result.message),
                backend=self.name,
            )
        mip_gap = getattr(result, "mip_gap", None)
        dual_bound = getattr(result, "mip_dual_bound", None)
        node_count = getattr(result, "mip_node_count", None)
        return LPSolution(
            status=status,
            objective=_finish(compiled, result.fun),
            values=np.asarray(result.x, dtype=float),
            message=str(result.message),
            backend=self.name,
            mip_gap=None if mip_gap is None else float(mip_gap),
            mip_dual_bound=(
                None if dual_bound is None else _finish(compiled, dual_bound)
            ),
            mip_node_count=None if node_count is None else int(node_count),
        )


@register_backend
class GurobiBackend:
    """Optional ``gurobipy`` backend; gracefully absent when not installed.

    The only backend that honors :attr:`SolveOptions.warm_start` (via MIP
    starts).  Registered even when ``gurobipy`` is missing so registry
    listings and error messages can name it; solving without the library
    raises a :class:`SolverError` that says how to enable it.
    """

    name = "gurobi"
    description = "gurobipy (optional) -- MILP with warm starts; absent unless installed"

    def available(self) -> bool:
        try:
            import gurobipy  # noqa: F401
        except ImportError:
            return False
        return True

    def solve(self, compiled: CompiledLP, options: SolveOptions) -> LPSolution:
        try:
            import gurobipy as gp
        except ImportError:
            raise SolverError(
                "backend 'gurobi' requires the optional 'gurobipy' package "
                "(pip install gurobipy); installed backends: "
                + ", ".join(available_backend_names()),
                backend=self.name,
            ) from None
        if len(compiled.c) == 0:
            return _empty_solution()
        model = gp.Model("repro")
        model.Params.OutputFlag = 0
        if options.time_limit is not None:
            model.Params.TimeLimit = float(options.time_limit)
        if options.mip_gap is not None:
            model.Params.MIPGap = float(options.mip_gap)
        n = len(compiled.c)
        integrality = options.integrality
        if integrality is None:
            integrality = np.zeros(n, dtype=np.int8)
        lowers = np.array([lo for lo, _ in compiled.bounds], dtype=float)
        uppers = np.array(
            [gp.GRB.INFINITY if hi is None else hi for _, hi in compiled.bounds],
            dtype=float,
        )
        vtypes = np.where(
            np.asarray(integrality) > 0, gp.GRB.INTEGER, gp.GRB.CONTINUOUS
        ).tolist()
        x = model.addMVar(n, lb=lowers, ub=uppers, obj=compiled.c, vtype=vtypes)
        if compiled.A_ub is not None:
            model.addConstr(compiled.A_ub @ x <= compiled.b_ub)
        if compiled.A_eq is not None:
            model.addConstr(compiled.A_eq @ x == compiled.b_eq)
        if options.warm_start is not None and len(options.warm_start) == n:
            x.Start = np.asarray(options.warm_start, dtype=float)
        model.optimize()
        code = int(model.Status)
        status_map = {
            gp.GRB.OPTIMAL: LPStatus.OPTIMAL,
            gp.GRB.INFEASIBLE: LPStatus.INFEASIBLE,
            gp.GRB.UNBOUNDED: LPStatus.UNBOUNDED,
            gp.GRB.INF_OR_UNBD: LPStatus.INFEASIBLE,
            gp.GRB.TIME_LIMIT: LPStatus.FEASIBLE,
        }
        if code not in status_map:
            raise SolverError(
                f"gurobi returned unknown status {code}",
                backend=self.name,
                status_code=code,
            )
        status = status_map[code]
        if status is LPStatus.FEASIBLE and model.SolCount == 0:
            raise SolverError(
                f"gurobi stopped without an incumbent (status {code})",
                backend=self.name,
                status_code=code,
            )
        if status in (LPStatus.INFEASIBLE, LPStatus.UNBOUNDED):
            return LPSolution(
                status=status,
                objective=float("nan"),
                values=np.empty(0),
                message=f"gurobi status {code}",
                backend=self.name,
            )
        gap = model.MIPGap if bool(np.any(integrality)) else None
        return LPSolution(
            status=status,
            objective=_finish(compiled, model.ObjVal),
            values=np.asarray(x.X, dtype=float),
            message=f"gurobi status {code}",
            backend=self.name,
            mip_gap=None if gap is None else float(gap),
            mip_dual_bound=(
                _finish(compiled, model.ObjBound) if bool(np.any(integrality)) else None
            ),
            mip_node_count=int(model.NodeCount) if bool(np.any(integrality)) else None,
        )


__all__ = [
    "SolveOptions",
    "SolverBackend",
    "SolverError",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "register_backend",
    "registered_backends",
]
