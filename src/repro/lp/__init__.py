"""Linear-programming substrate.

The SPAA'03 overlay-design algorithm begins by solving the LP relaxation of
the integer program of Section 2.  This subpackage provides a small,
self-contained LP *modeling* layer (variables, linear expressions, linear
constraints, objective) and a solver backend that compiles the model to the
sparse matrix form expected by :func:`scipy.optimize.linprog` (HiGHS).

The modeling layer exists so that the formulation code in
:mod:`repro.core.formulation` reads like the paper's IP, and so that the
Section 6 extensions can add constraints without touching matrix assembly.

Public API
----------
``LinearProgram``  -- model container (variables, constraints, objective).
``Variable``       -- decision variable handle; supports arithmetic.
``LinearExpr``     -- affine expression over variables.
``Constraint``     -- linear constraint (<=, >=, ==).
``solve_lp``       -- solve a model, returning an ``LPSolution``.
``LPSolution``     -- status, objective value, per-variable values.
``LPStatus``       -- enum of solver outcomes.
"""

from repro.lp.expr import Constraint, LinearExpr, Sense, Variable
from repro.lp.model import LinearProgram, Objective
from repro.lp.result import LPSolution, LPStatus
from repro.lp.solver import solve_lp

__all__ = [
    "Constraint",
    "LinearExpr",
    "LinearProgram",
    "LPSolution",
    "LPStatus",
    "Objective",
    "Sense",
    "Variable",
    "solve_lp",
]
