"""Linear-programming substrate.

The SPAA'03 overlay-design algorithm begins by solving the LP relaxation of
the integer program of Section 2.  This subpackage provides a small,
self-contained LP *modeling* layer (variables, linear expressions, linear
constraints, objective) and a solver backend that compiles the model to the
sparse matrix form expected by :func:`scipy.optimize.linprog` (HiGHS).

Two build paths share one solver backend:

* the *expression-tree* layer (:mod:`repro.lp.expr` / :mod:`repro.lp.model`)
  builds one Python object per variable and constraint so the formulation
  code in :mod:`repro.core.formulation` reads like the paper's IP -- this is
  the teaching / compatibility surface;
* the *vectorized sparse* layer (:mod:`repro.lp.sparse`) assembles the same
  matrices as batched numpy blocks, which is what the production pipeline
  uses (``O(|S|·|R|·|D|)`` variables are assembled in a handful of array
  operations instead of millions of dict updates).

Both compile to the same :class:`~repro.lp.model.CompiledLP` structure and
are solved by :func:`solve_compiled`, which dispatches to a *registered
solver backend* (:mod:`repro.lp.backends`): ``"highs"`` (scipy ``linprog``,
the LP default), ``"highs-mip"`` (scipy ``milp``, exact MILP), and an
optional ``"gurobi"`` backend that is gracefully absent unless ``gurobipy``
is installed.

Public API
----------
``LinearProgram``    -- model container (variables, constraints, objective).
``Variable``         -- decision variable handle; supports arithmetic.
``LinearExpr``       -- affine expression over variables.
``Constraint``       -- linear constraint (<=, >=, ==).
``SparseLPBuilder``  -- vectorized batched-block model builder.
``VariableArena``    -- vectorized variable-index allocator.
``LPBuildStats``     -- timing/size report of a sparse assembly.
``solve_lp``         -- solve a ``LinearProgram``, returning an ``LPSolution``.
``solve_compiled``   -- solve an already-compiled matrix-form LP.
``LPSolution``       -- status, objective value, per-variable values.
``LPStatus``         -- enum of solver outcomes.
``SolverBackend``    -- backend protocol (``name`` + ``solve``).
``SolveOptions``     -- backend-independent options (integrality, limits).
``SolverError``      -- typed solver failure (unknown backend, bad status).
``register_backend`` -- decorator adding a backend to the registry.
``get_backend``      -- resolve a backend by name.
``backend_names``    -- all registered backend names.
``available_backend_names`` -- names whose solver library is importable.
"""

from repro.lp.backends import (
    SolveOptions,
    SolverBackend,
    SolverError,
    available_backend_names,
    backend_names,
    get_backend,
    register_backend,
    registered_backends,
)
from repro.lp.expr import Constraint, LinearExpr, Sense, Variable
from repro.lp.model import CompiledLP, LinearProgram, Objective
from repro.lp.result import LPSolution, LPStatus
from repro.lp.sparse import BlockStats, LPBuildStats, SparseLPBuilder, VariableArena
from repro.lp.solver import solve_compiled, solve_lp

__all__ = [
    "BlockStats",
    "CompiledLP",
    "Constraint",
    "LinearExpr",
    "LinearProgram",
    "LPBuildStats",
    "LPSolution",
    "LPStatus",
    "Objective",
    "Sense",
    "SolveOptions",
    "SolverBackend",
    "SolverError",
    "SparseLPBuilder",
    "Variable",
    "VariableArena",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "register_backend",
    "registered_backends",
    "solve_lp",
    "solve_compiled",
]
