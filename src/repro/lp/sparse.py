"""Vectorized sparse LP assembly: variable arena + batched constraint blocks.

The expression-tree layer in :mod:`repro.lp.model` builds one Python object
per variable and per constraint, which is the right teaching surface for the
Section-2 IP but dominates the pipeline's runtime on large instances (the
Section-2 LP has ``O(|S|·|R|·|D|)`` variables).  This module is the fast
path: models are assembled as flat numpy arrays and handed to scipy's HiGHS
backend as :class:`~repro.lp.model.CompiledLP` matrices without ever
materializing per-variable or per-constraint objects.

Two pieces:

``VariableArena``
    A vectorized variable registry.  Variables are allocated in *blocks*
    (``add_block(count, lower, upper)`` returns an index array), so a
    formulation allocates its ``z``, ``y`` and ``x`` variables with three
    calls instead of ``O(|S|·|R|·|D|)`` ones.

``SparseLPBuilder``
    A batched constraint-block API on top of the arena.  Each call to
    :meth:`SparseLPBuilder.add_block` contributes a whole *family* of
    constraints (e.g. every ``x <= y`` row at once) as parallel
    ``(rows, cols, values, rhs)`` arrays; :meth:`SparseLPBuilder.build`
    concatenates the blocks into CSR matrices and reports an
    :class:`LPBuildStats` describing what was built and how long it took.

The produced :class:`~repro.lp.model.CompiledLP` is exactly the structure the
expression path compiles to, so both paths share
:func:`repro.lp.solver.solve_compiled` and solve identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.lp.expr import Sense
from repro.lp.model import CompiledLP, Objective


@dataclass(frozen=True)
class BlockStats:
    """Size of one constraint block: family name, row count, nonzero count."""

    name: str
    rows: int
    nonzeros: int
    sense: Sense


@dataclass
class LPBuildStats:
    """Timing / size report of one sparse LP assembly.

    Benchmarks (T5) record these so matrix-assembly cost can be tracked over
    time separately from solver cost.

    Attributes
    ----------
    name:
        Model name (usually ``"<problem>-lp"``).
    num_variables:
        Columns of the compiled matrices.
    num_inequality_rows, num_equality_rows:
        Rows of ``A_ub`` / ``A_eq`` respectively.
    num_nonzeros:
        Total structural nonzeros across both matrices.
    build_seconds:
        Wall-clock time from builder construction to the end of
        :meth:`SparseLPBuilder.build` (i.e. block assembly + CSR compile).
    compile_seconds:
        The portion of ``build_seconds`` spent concatenating blocks and
        building the CSR matrices.
    blocks:
        Per-family :class:`BlockStats`, in the order the blocks were added.
    backend:
        Identifier of the build path (``"sparse"`` here; the compatibility
        layer reports ``"expr"``).
    """

    name: str
    num_variables: int
    num_inequality_rows: int
    num_equality_rows: int
    num_nonzeros: int
    build_seconds: float
    compile_seconds: float
    blocks: list[BlockStats] = field(default_factory=list)
    backend: str = "sparse"

    @property
    def num_constraints(self) -> int:
        return self.num_inequality_rows + self.num_equality_rows

    def as_dict(self) -> dict:
        """Flat dict form used by the benchmark tables."""
        return {
            "lp_variables": self.num_variables,
            "lp_constraints": self.num_constraints,
            "lp_nonzeros": self.num_nonzeros,
            "build_seconds": self.build_seconds,
            "backend": self.backend,
        }


class VariableArena:
    """Vectorized variable registry: indices are handed out in blocks."""

    def __init__(self) -> None:
        self._count = 0
        self._lowers: list[np.ndarray] = []
        self._uppers: list[np.ndarray] = []
        self._blocks: list[tuple[str, int, int]] = []

    @property
    def size(self) -> int:
        return self._count

    @property
    def blocks(self) -> list[tuple[str, int, int]]:
        """``(name, start, count)`` of every allocated block."""
        return list(self._blocks)

    def add_block(
        self,
        count: int,
        lower: float | np.ndarray = 0.0,
        upper: float | np.ndarray = 1.0,
        name: str = "",
    ) -> np.ndarray:
        """Allocate ``count`` variables and return their index array.

        ``lower`` / ``upper`` may be scalars or arrays of length ``count``;
        use ``np.inf`` for unbounded-above variables.
        """
        if count < 0:
            raise ValueError(f"variable block size must be non-negative, got {count}")
        lowers = np.broadcast_to(np.asarray(lower, dtype=float), (count,)).copy()
        uppers = np.broadcast_to(np.asarray(upper, dtype=float), (count,)).copy()
        if np.any(uppers < lowers):
            raise ValueError(f"variable block {name!r}: some upper bound < lower bound")
        start = self._count
        self._count += count
        self._lowers.append(lowers)
        self._uppers.append(uppers)
        self._blocks.append((name or f"block{len(self._blocks)}", start, count))
        return np.arange(start, start + count, dtype=np.int64)

    def bounds_array(self) -> np.ndarray:
        """``(n, 2)`` array of [lower, upper] bounds (``np.inf`` = unbounded)."""
        if not self._lowers:
            return np.empty((0, 2))
        return np.column_stack(
            [np.concatenate(self._lowers), np.concatenate(self._uppers)]
        )


@dataclass
class _Block:
    name: str
    sense: Sense
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    rhs: np.ndarray


class SparseLPBuilder:
    """Assemble a minimization/maximization LP as batched sparse blocks.

    Typical use::

        builder = SparseLPBuilder(name="my-lp")
        x = builder.add_variables(1000, lower=0.0, upper=1.0, name="x")
        builder.add_objective_terms(x, costs)            # vector of len(x)
        builder.add_block("cover", rows, x[cols], vals, rhs, Sense.GE)
        compiled, stats = builder.build()
        solution = solve_compiled(compiled)

    ``rows`` in :meth:`add_block` are *local* to the block (``0 .. len(rhs)-1``);
    the builder assigns global row offsets at :meth:`build` time, which is what
    lets independent constraint families be emitted in any order.
    """

    def __init__(self, name: str = "lp", objective_sense: Objective = Objective.MINIMIZE) -> None:
        self.name = name
        self.objective_sense = objective_sense
        self.arena = VariableArena()
        self._objective_cols: list[np.ndarray] = []
        self._objective_vals: list[np.ndarray] = []
        self._objective_constant = 0.0
        self._blocks: list[_Block] = []
        self._start_time = time.perf_counter()

    # ------------------------------------------------------------- variables
    @property
    def num_variables(self) -> int:
        return self.arena.size

    def add_variables(
        self,
        count: int,
        lower: float | np.ndarray = 0.0,
        upper: float | np.ndarray = 1.0,
        name: str = "",
    ) -> np.ndarray:
        """Allocate a block of variables (see :meth:`VariableArena.add_block`)."""
        return self.arena.add_block(count, lower=lower, upper=upper, name=name)

    # ------------------------------------------------------------- objective
    def add_objective_terms(self, cols: np.ndarray, coeffs: np.ndarray) -> None:
        """Accumulate ``sum coeffs[i] * x[cols[i]]`` into the objective."""
        cols = np.asarray(cols, dtype=np.int64)
        coeffs = np.asarray(coeffs, dtype=float)
        if cols.shape != coeffs.shape:
            raise ValueError(
                f"objective cols/coeffs length mismatch: {cols.shape} vs {coeffs.shape}"
            )
        self._objective_cols.append(cols)
        self._objective_vals.append(coeffs)

    def add_objective_constant(self, constant: float) -> None:
        self._objective_constant += float(constant)

    # ----------------------------------------------------------- constraints
    def add_block(
        self,
        name: str,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        rhs: np.ndarray,
        sense: Sense = Sense.LE,
    ) -> None:
        """Add a family of constraints as parallel coordinate arrays.

        Parameters
        ----------
        name:
            Family label, kept in :class:`LPBuildStats` (e.g. ``"(2) x<=y"``).
        rows:
            Local row index of each nonzero, in ``[0, len(rhs))``.
        cols:
            Global variable index of each nonzero (from :meth:`add_variables`).
        values:
            Coefficient of each nonzero.
        rhs:
            Right-hand side per row; its length defines the number of rows.
        sense:
            One shared sense for the whole block (GE blocks are negated into
            ``A_ub x <= b_ub`` form at build time).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=float)
        rhs = np.atleast_1d(np.asarray(rhs, dtype=float))
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError(
                f"block {name!r}: rows/cols/values must have equal length "
                f"({rows.shape}, {cols.shape}, {values.shape})"
            )
        if rhs.size == 0:
            return
        if rows.size and (rows.min() < 0 or rows.max() >= rhs.size):
            raise ValueError(
                f"block {name!r}: row indices must lie in [0, {rhs.size}), "
                f"got [{rows.min()}, {rows.max()}]"
            )
        if cols.size and (cols.min() < 0 or cols.max() >= self.arena.size):
            raise ValueError(
                f"block {name!r}: column indices must reference allocated variables"
            )
        self._blocks.append(_Block(name, sense, rows, cols, values, rhs))

    # ---------------------------------------------------------------- build
    def build(self) -> tuple[CompiledLP, LPBuildStats]:
        """Concatenate all blocks into a :class:`CompiledLP` plus its stats."""
        compile_start = time.perf_counter()
        num_vars = self.arena.size
        sign = 1.0 if self.objective_sense is Objective.MINIMIZE else -1.0

        c = np.zeros(num_vars)
        for cols, vals in zip(self._objective_cols, self._objective_vals):
            np.add.at(c, cols, vals)
        c *= sign

        ub_blocks = [b for b in self._blocks if b.sense in (Sense.LE, Sense.GE)]
        eq_blocks = [b for b in self._blocks if b.sense is Sense.EQ]

        A_ub, b_ub = self._stack(ub_blocks, num_vars, flip_ge=True)
        A_eq, b_eq = self._stack(eq_blocks, num_vars, flip_ge=False)

        bounds = self.arena.bounds_array()
        compiled = CompiledLP(
            c=c,
            A_ub=A_ub,
            b_ub=b_ub,
            A_eq=A_eq,
            b_eq=b_eq,
            bounds=bounds,
            objective_sign=sign,
            objective_constant=self._objective_constant,
        )
        end = time.perf_counter()
        stats = LPBuildStats(
            name=self.name,
            num_variables=num_vars,
            num_inequality_rows=0 if b_ub is None else int(b_ub.size),
            num_equality_rows=0 if b_eq is None else int(b_eq.size),
            num_nonzeros=sum(int(b.values.size) for b in self._blocks),
            build_seconds=end - self._start_time,
            compile_seconds=end - compile_start,
            blocks=[
                BlockStats(b.name, int(b.rhs.size), int(b.values.size), b.sense)
                for b in self._blocks
            ],
        )
        return compiled, stats

    @staticmethod
    def _stack(
        blocks: list[_Block], num_vars: int, flip_ge: bool
    ) -> tuple[sparse.csr_matrix | None, np.ndarray | None]:
        if not blocks:
            return None, None
        offset = 0
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        vals_parts: list[np.ndarray] = []
        rhs_parts: list[np.ndarray] = []
        for block in blocks:
            flip = -1.0 if (flip_ge and block.sense is Sense.GE) else 1.0
            rows_parts.append(block.rows + offset)
            cols_parts.append(block.cols)
            vals_parts.append(block.values * flip if flip < 0 else block.values)
            rhs_parts.append(block.rhs * flip if flip < 0 else block.rhs)
            offset += block.rhs.size
        matrix = sparse.csr_matrix(
            (
                np.concatenate(vals_parts),
                (np.concatenate(rows_parts), np.concatenate(cols_parts)),
            ),
            shape=(offset, num_vars),
        )
        return matrix, np.concatenate(rhs_parts)


__all__ = [
    "BlockStats",
    "LPBuildStats",
    "SparseLPBuilder",
    "VariableArena",
]
