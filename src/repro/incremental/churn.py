"""Churn-event adapters: failure-catalogue events as ``ProblemDelta`` streams.

Live churn arrives as *events* -- a flash crowd congests an edge region, an
ISP or a colo goes dark, sinks join and leave -- while the incremental
engine consumes *deltas*.  This module is the bridge: it reuses the failure
catalogue's samplers (:mod:`repro.simulation.failures`) and cluster/hot-sink
inference (:mod:`repro.simulation.scenarios`) to turn each event class into
a :class:`~repro.incremental.delta.ProblemDelta` against a concrete problem
state.

Churn is modelled as *geographically correlated*, matching how it presents
in a real CDN: a sink join/leave process concentrates in a few metros, a
flash crowd hits the hot edge region, an outage takes out one cluster or
ISP.  (That correlation is also what makes incremental re-design pay off:
localized churn dirties few shards of the metro partition.)

Every adapter ends with a feasibility guard: churn that degrades links or
raises thresholds can push a demand past what its candidate set can deliver
at all, and the designers reject infeasible instances outright.  The guard
downgrades such demands' thresholds to 90% of their post-churn achievable
weight -- the real-world reading is that a session's quality target is
renegotiated when the network can no longer meet it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.core.problem import OverlayDesignProblem
from repro.core.weights import success_from_weight
from repro.incremental.delta import (
    DeliveryEdgeSpec,
    ProblemDelta,
    SinkAttachment,
    apply_delta,
    sink_attachment,
)
from repro.simulation.failures import (
    FailureSchedule,
    sample_flash_crowd_congestion,
    sample_isp_outage_schedule,
    sample_regional_outage_schedule,
)
from repro.simulation.scenarios import hot_sinks, infer_clusters

#: Combined loss cap: a "dead" link keeps an edge in the problem (so the
#: change stays non-structural) but contributes almost no weight.
MAX_LOSS = 0.98


@dataclass(frozen=True)
class SinkChurnConfig:
    """Knobs of the metro-localized sink join/leave process."""

    fraction: float = 0.05
    join_fraction: float = 0.5
    metros: int = 2
    loss_jitter: float = 0.25


def _combine_loss(old: float, severity: float) -> float:
    """Stack an extra loss fraction onto a link's base loss, capped."""
    return min(MAX_LOSS, 1.0 - (1.0 - old) * (1.0 - severity))


def _delivery_specs_by_sink(
    problem: OverlayDesignProblem,
) -> dict[str, list[tuple[str, DeliveryEdgeSpec]]]:
    overrides = problem.delivery_stream_cost_overrides()
    capacities = problem.arc_capacities()
    by_sink: dict[str, list[tuple[str, DeliveryEdgeSpec]]] = {}
    for reflector, sink, loss, base_cost in problem.delivery_link_data():
        key = (reflector, sink)
        by_sink.setdefault(sink, []).append(
            (
                reflector,
                DeliveryEdgeSpec(
                    loss_probability=loss,
                    cost=base_cost,
                    stream_costs=tuple(sorted((overrides.get(key) or {}).items())),
                    capacity=capacities.get(key),
                ),
            )
        )
    return by_sink


def ensure_feasible(
    problem: OverlayDesignProblem, delta: ProblemDelta
) -> ProblemDelta:
    """Downgrade thresholds in ``delta`` until the post-churn problem is feasible.

    Applies the delta, asks the problem for its feasibility report, and for
    every demand whose requirement now exceeds its available weight rewrites
    the delta to target 90% of what *is* available (demands with no usable
    candidates at all are dropped).  Idempotent on already-feasible deltas.
    """
    candidate = apply_delta(problem, delta)
    issues = candidate.feasibility_report()
    if not issues:
        return delta

    demands_changed = dict(delta.demands_changed)
    sinks_added = dict(delta.sinks_added)
    old_thresholds = {d.key: d.success_threshold for d in problem.demands}
    for issue in issues:
        key = issue.demand.key
        sink, stream = key
        achievable = 0.9 * issue.available_weight
        new_threshold = success_from_weight(achievable) if achievable > 0 else None
        if sink in sinks_added:
            attachment = sinks_added[sink]
            demands = tuple(
                sorted(
                    (entry_stream, new_threshold)
                    if entry_stream == stream
                    else (entry_stream, threshold)
                    for entry_stream, threshold in attachment.demands
                    if entry_stream != stream or new_threshold is not None
                )
            )
            sinks_added[sink] = SinkAttachment(
                delivery=attachment.delivery, demands=demands
            )
        else:
            old = demands_changed.get(key, (old_thresholds.get(key), None))[0]
            demands_changed[key] = (old, new_threshold)
    return ProblemDelta(
        sinks_added=sinks_added,
        sinks_removed=dict(delta.sinks_removed),
        delivery_changed=dict(delta.delivery_changed),
        stream_edges_changed=dict(delta.stream_edges_changed),
        demands_changed=demands_changed,
        structural=delta.structural,
    )


# ---------------------------------------------------------------------------
# Sink join/leave process
# ---------------------------------------------------------------------------


def sample_sink_churn(
    problem: OverlayDesignProblem,
    config: SinkChurnConfig | None = None,
    rng: np.random.Generator | int | None = None,
) -> ProblemDelta:
    """A metro-localized sink join/leave delta.

    ``fraction`` of the problem's sinks churn (at least one), split into
    joins and leaves by ``join_fraction``, all drawn from ``metros`` randomly
    chosen topology clusters (name-prefix groups, the same convention the
    metro partitioner uses).  A joining sink clones a template neighbour's
    attachment with its delivery losses jittered by up to ``loss_jitter``
    multiplicatively, so joins inherit realistic local connectivity without
    being byte-copies.
    """
    config = config or SinkChurnConfig()
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    sink_clusters: dict[str, list[str]] = {}
    for sink in problem.sinks:
        sink_clusters.setdefault(sink.split("-", 1)[0], []).append(sink)
    labels = sorted(sink_clusters)
    chosen = list(
        rng.choice(labels, size=min(config.metros, len(labels)), replace=False)
    )
    pool = sorted(sink for label in chosen for sink in sink_clusters[label])

    total = max(1, round(config.fraction * problem.num_sinks))
    joins = round(config.join_fraction * total)
    leaves = min(total - joins, max(0, len(pool) - 1))

    leaving = sorted(
        rng.choice(pool, size=leaves, replace=False)
    ) if leaves else []
    survivors = [sink for sink in pool if sink not in set(leaving)]

    delivery_by_sink = _delivery_specs_by_sink(problem)
    existing = set(problem.sinks)
    sinks_added: dict[str, SinkAttachment] = {}
    demands_by_sink: dict[str, list] = {}
    for demand in problem.demands:
        demands_by_sink.setdefault(demand.sink, []).append(demand)
    for index in range(joins):
        template = str(rng.choice(survivors or pool))
        cluster = template.split("-", 1)[0]
        name = f"{cluster}-join{index}"
        while name in existing:
            name = f"{name}x"
        existing.add(name)
        delivery = []
        for reflector, spec in delivery_by_sink.get(template, []):
            factor = float(rng.uniform(1.0 - config.loss_jitter, 1.0 + config.loss_jitter))
            delivery.append(
                (
                    reflector,
                    DeliveryEdgeSpec(
                        loss_probability=min(0.95, spec.loss_probability * factor),
                        cost=spec.cost,
                        stream_costs=spec.stream_costs,
                        capacity=spec.capacity,
                    ),
                )
            )
        demands = tuple(
            sorted(
                (demand.stream, demand.success_threshold)
                for demand in demands_by_sink.get(template, [])
            )
        )
        sinks_added[name] = SinkAttachment(
            delivery=tuple(sorted(delivery)), demands=demands
        )

    sinks_removed = {sink: sink_attachment(problem, sink) for sink in leaving}
    delta = ProblemDelta(sinks_added=sinks_added, sinks_removed=sinks_removed)
    return ensure_feasible(problem, delta)


# ---------------------------------------------------------------------------
# Failure-catalogue events -> deltas
# ---------------------------------------------------------------------------


def delta_from_failure_schedule(
    problem: OverlayDesignProblem,
    schedule: FailureSchedule,
    node_isp: Mapping[str, str | None] | None = None,
) -> ProblemDelta:
    """Project a failure schedule onto the problem's measured link state.

    Congestion events stack extra loss onto the target's incoming links;
    outage events (reflector crash, node outage, ISP outage) push the dead
    component's delivery links to :data:`MAX_LOSS`; a node outage targeting
    a *sink* removes the sink (its session is gone, not degraded).  The
    resulting delta stays within the incremental model -- no structural
    changes -- and is feasibility-guarded by the calling adapter.
    """
    if node_isp is None:
        node_isp = {r: problem.color(r) for r in problem.reflectors}
    reflectors = set(problem.reflectors)
    sinks = set(problem.sinks)

    # Per delivery link, the total extra loss fraction to stack.
    extra: dict[tuple[str, str], float] = {}
    removed_sinks: list[str] = []

    def hit_reflector(reflector: str, severity: float) -> None:
        for r, s in problem.delivery_links():
            if r == reflector:
                key = (r, s)
                extra[key] = 1.0 - (1.0 - extra.get(key, 0.0)) * (1.0 - severity)

    for event in schedule.events:
        if event.kind == "link_congestion":
            target = event.target
            if target in sinks:
                for r, s in problem.delivery_links():
                    if s == target:
                        key = (r, s)
                        extra[key] = 1.0 - (1.0 - extra.get(key, 0.0)) * (
                            1.0 - event.severity
                        )
            elif target in reflectors:
                hit_reflector(target, event.severity)
        elif event.kind in ("reflector_crash", "node_outage"):
            if event.target in reflectors:
                hit_reflector(event.target, 1.0)
            elif event.target in sinks:
                removed_sinks.append(event.target)
        elif event.kind == "isp_outage":
            for reflector in sorted(reflectors):
                if node_isp.get(reflector) == event.target:
                    hit_reflector(reflector, 1.0)

    removed = set(removed_sinks)
    specs = {
        (r, s): spec
        for s, entries in _delivery_specs_by_sink(problem).items()
        for r, spec in entries
    }
    delivery_changed = {}
    for key, severity in sorted(extra.items()):
        if key[1] in removed:
            continue
        before = specs[key]
        after = DeliveryEdgeSpec(
            loss_probability=_combine_loss(before.loss_probability, severity),
            cost=before.cost,
            stream_costs=before.stream_costs,
            capacity=before.capacity,
        )
        if after != before:
            delivery_changed[key] = (before, after)
    return ProblemDelta(
        sinks_removed={sink: sink_attachment(problem, sink) for sink in sorted(removed)},
        delivery_changed=delivery_changed,
    )


def flash_crowd_delta(
    problem: OverlayDesignProblem,
    rng: np.random.Generator | int | None = None,
    *,
    hot_fraction: float = 0.3,
    threshold_boost: float = 0.5,
) -> ProblemDelta:
    """A flash crowd: congestion on the hot edge region plus raised stakes.

    Samples the catalogue's flash-crowd congestion waves over the
    most-subscribed sinks and stacks their severities onto those sinks'
    delivery links; on top, every hot sink's demand thresholds move up by
    ``threshold_boost`` of their headroom (a surge makes the content matter
    more).  Feasibility-guarded.
    """
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    hot = hot_sinks(problem, hot_fraction)
    schedule = sample_flash_crowd_congestion(hot, 1000, rng)
    base = delta_from_failure_schedule(problem, schedule)

    demands_changed: dict[tuple[str, str], tuple[float | None, float | None]] = {}
    hot_set = set(hot)
    for demand in problem.demands:
        if demand.sink not in hot_set:
            continue
        old = demand.success_threshold
        new = min(0.999, old + threshold_boost * (1.0 - old))
        if new != old:
            demands_changed[demand.key] = (old, new)
    delta = ProblemDelta(
        delivery_changed=dict(base.delivery_changed),
        demands_changed=demands_changed,
    )
    return ensure_feasible(problem, delta)


def outage_delta(
    problem: OverlayDesignProblem,
    rng: np.random.Generator | int | None = None,
    *,
    kind: str = "regional",
) -> ProblemDelta:
    """An outage event: a topology cluster or an ISP goes dark.

    ``kind="regional"`` draws the catalogue's regional-outage schedule over
    the inferred name-prefix clusters; ``kind="isp"`` draws correlated
    ISP-wide outages over the reflector colors.  Dead reflectors' delivery
    links degrade to :data:`MAX_LOSS`; sinks inside a dark cluster leave.
    Feasibility-guarded.
    """
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    if kind == "regional":
        schedule = sample_regional_outage_schedule(
            infer_clusters(problem), 1000, rng, outage_probability=1.0
        )
    elif kind == "isp":
        isps = sorted(
            {
                str(problem.color(r))
                for r in problem.reflectors
                if problem.color(r) is not None
            }
        )
        schedule = sample_isp_outage_schedule(
            isps, 1000, rng, outage_probability=0.5, shock_probability=1.0
        )
    else:
        raise ValueError(f"kind must be 'regional' or 'isp', got {kind!r}")
    delta = delta_from_failure_schedule(problem, schedule)
    return ensure_feasible(problem, delta)


# ---------------------------------------------------------------------------
# Churn scripts: sequences of deltas
# ---------------------------------------------------------------------------

#: Event names understood by :func:`churn_stream`.
CHURN_EVENTS = ("identity", "sink-churn", "flash-crowd", "regional-outage", "isp-outage")


def churn_stream(
    problem: OverlayDesignProblem,
    script: Iterable[str],
    seed: int = 0,
    churn_config: SinkChurnConfig | None = None,
) -> Iterator[tuple[str, ProblemDelta, OverlayDesignProblem]]:
    """Realize a churn script as a stream of ``(event, delta, new_problem)``.

    Each step's delta is sampled against the *current* problem state (a
    seed-derived generator per step, so the stream is reproducible from
    ``seed`` alone) and applied before the next step.  This is the input
    shape ``design_incremental`` consumes in a rolling-update loop.
    """
    current = problem
    for index, event in enumerate(script):
        rng = np.random.default_rng([seed, index])
        if event == "identity":
            delta = ProblemDelta()
        elif event == "sink-churn":
            delta = sample_sink_churn(current, churn_config, rng)
        elif event == "flash-crowd":
            delta = flash_crowd_delta(current, rng)
        elif event == "regional-outage":
            delta = outage_delta(current, rng, kind="regional")
        elif event == "isp-outage":
            delta = outage_delta(current, rng, kind="isp")
        else:
            known = ", ".join(CHURN_EVENTS)
            raise ValueError(f"unknown churn event {event!r} (known: {known})")
        current = apply_delta(current, delta) if not delta.is_empty else current
        yield event, delta, current


__all__ = [
    "CHURN_EVENTS",
    "MAX_LOSS",
    "SinkChurnConfig",
    "churn_stream",
    "delta_from_failure_schedule",
    "ensure_feasible",
    "flash_crowd_delta",
    "outage_delta",
    "sample_sink_churn",
]
