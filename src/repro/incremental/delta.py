"""Structural diffs between two overlay design problems.

Live streaming churns: sinks join and leave mid-session, measured link loss
and transit cost drift, and demand thresholds move when a flash crowd raises
the stakes on a region.  The paper's answer is to re-run the designer "as
often as needed" (Section 1.3); :mod:`repro.incremental` makes that cheap by
re-solving only what a change touches.  This module defines the change
itself: a :class:`ProblemDelta` is a self-contained, invertible description
of how one :class:`~repro.core.problem.OverlayDesignProblem` became another.

The delta model is deliberately scoped to the churn the engine can absorb
incrementally:

* **sinks added / removed** -- each carries its full attachment (delivery
  edges and demands), so removals are invertible and additions are
  self-contained;
* **delivery-edge changes** -- loss/cost/capacity drift on existing
  reflector->sink links, including edges appearing or disappearing on
  surviving sinks;
* **stream-edge changes** -- loss/cost drift on origin->reflector links;
* **demand changes** -- demands added, removed, or re-thresholded on
  surviving sinks (threshold moves are the "demand weight changes" of the
  delta model: ``W = -log(1 - threshold)``).

Anything else -- streams or reflectors appearing/disappearing, reflector
cost/fanout/color/capacity changes, stream bandwidth changes -- is recorded
as a *structural* change: the delta still describes it (as a reason string),
but :func:`apply_delta` refuses it and the engine falls back to a full
redesign.  See ``docs/incremental.md`` for the rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.problem import OverlayDesignProblem
from repro.core.serialization import check_document

#: Version written into every delta document; bump on breaking changes.
DELTA_FORMAT_VERSION = 1

DemandKey = tuple[str, str]
LinkKey = tuple[str, str]


@dataclass(frozen=True)
class DeliveryEdgeSpec:
    """The full data of one reflector->sink delivery edge."""

    loss_probability: float
    cost: float
    stream_costs: tuple[tuple[str, float], ...] = ()
    capacity: float | None = None

    def stream_costs_dict(self) -> dict[str, float] | None:
        return dict(self.stream_costs) or None


@dataclass(frozen=True)
class StreamEdgeSpec:
    """The data of one stream->reflector edge."""

    loss_probability: float
    cost: float


@dataclass(frozen=True)
class SinkAttachment:
    """Everything needed to (re)attach a sink: its edges and its demands."""

    delivery: tuple[tuple[str, DeliveryEdgeSpec], ...] = ()
    demands: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class ProblemDelta:
    """An invertible structural diff between two problem states.

    All mappings are keyed on names (sinks, ``(reflector, sink)`` links,
    ``(stream, reflector)`` edges, ``(sink, stream)`` demands); changed
    entries carry ``(old, new)`` pairs where ``None`` means absent, which is
    what makes :func:`invert` a pure swap.
    """

    sinks_added: Mapping[str, SinkAttachment] = field(default_factory=dict)
    sinks_removed: Mapping[str, SinkAttachment] = field(default_factory=dict)
    delivery_changed: Mapping[
        LinkKey, tuple[DeliveryEdgeSpec | None, DeliveryEdgeSpec | None]
    ] = field(default_factory=dict)
    stream_edges_changed: Mapping[
        LinkKey, tuple[StreamEdgeSpec | None, StreamEdgeSpec | None]
    ] = field(default_factory=dict)
    demands_changed: Mapping[DemandKey, tuple[float | None, float | None]] = field(
        default_factory=dict
    )
    structural: tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (
            self.sinks_added
            or self.sinks_removed
            or self.delivery_changed
            or self.stream_edges_changed
            or self.demands_changed
            or self.structural
        )

    @property
    def requires_full_redesign(self) -> bool:
        """True when the change falls outside the incremental delta model."""
        return bool(self.structural)

    def summary(self) -> dict[str, int]:
        """Entry counts per change class (for metadata and logging)."""
        return {
            "sinks_added": len(self.sinks_added),
            "sinks_removed": len(self.sinks_removed),
            "delivery_changed": len(self.delivery_changed),
            "stream_edges_changed": len(self.stream_edges_changed),
            "demands_changed": len(self.demands_changed),
            "structural": len(self.structural),
        }


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


def _delivery_specs(problem: OverlayDesignProblem) -> dict[LinkKey, DeliveryEdgeSpec]:
    overrides = problem.delivery_stream_cost_overrides()
    capacities = problem.arc_capacities()
    specs: dict[LinkKey, DeliveryEdgeSpec] = {}
    for reflector, sink, loss, base_cost in problem.delivery_link_data():
        key = (reflector, sink)
        specs[key] = DeliveryEdgeSpec(
            loss_probability=loss,
            cost=base_cost,
            stream_costs=tuple(sorted((overrides.get(key) or {}).items())),
            capacity=capacities.get(key),
        )
    return specs


def _stream_specs(problem: OverlayDesignProblem) -> dict[LinkKey, StreamEdgeSpec]:
    return {
        (edge.stream, edge.reflector): StreamEdgeSpec(edge.loss_probability, edge.cost)
        for edge in problem.stream_edges()
    }


def _demand_thresholds(problem: OverlayDesignProblem) -> dict[DemandKey, float]:
    return {demand.key: demand.success_threshold for demand in problem.demands}


def sink_attachment(
    problem: OverlayDesignProblem,
    sink: str,
    delivery_specs: Mapping[LinkKey, DeliveryEdgeSpec] | None = None,
) -> SinkAttachment:
    """Capture ``sink``'s full attachment (edges + demands) from ``problem``."""
    if delivery_specs is None:
        delivery_specs = _delivery_specs(problem)
    delivery = tuple(
        sorted(
            (reflector, spec)
            for (reflector, edge_sink), spec in delivery_specs.items()
            if edge_sink == sink
        )
    )
    demands = tuple(
        sorted(
            (demand.stream, demand.success_threshold)
            for demand in problem.demands
            if demand.sink == sink
        )
    )
    return SinkAttachment(delivery=delivery, demands=demands)


def diff_problems(
    old: OverlayDesignProblem, new: OverlayDesignProblem
) -> ProblemDelta:
    """Diff two problem states into a :class:`ProblemDelta`.

    The diff is content-based: entity insertion order and the problems'
    ``name`` fields are ignored.  Changes outside the delta model land in
    ``structural`` (making ``requires_full_redesign`` true) rather than
    failing, so callers can always diff first and decide second.
    """
    structural: list[str] = []

    old_streams, new_streams = set(old.streams), set(new.streams)
    for stream in sorted(new_streams - old_streams):
        structural.append(f"stream added: {stream}")
    for stream in sorted(old_streams - new_streams):
        structural.append(f"stream removed: {stream}")
    for stream in sorted(old_streams & new_streams):
        if old.stream_bandwidth(stream) != new.stream_bandwidth(stream):
            structural.append(f"stream bandwidth changed: {stream}")

    old_reflectors, new_reflectors = set(old.reflectors), set(new.reflectors)
    for reflector in sorted(new_reflectors - old_reflectors):
        structural.append(f"reflector added: {reflector}")
    for reflector in sorted(old_reflectors - new_reflectors):
        structural.append(f"reflector removed: {reflector}")
    for reflector in sorted(old_reflectors & new_reflectors):
        if old.reflector_info(reflector) != new.reflector_info(reflector):
            structural.append(f"reflector attributes changed: {reflector}")

    old_sinks, new_sinks = set(old.sinks), set(new.sinks)
    old_delivery = _delivery_specs(old)
    new_delivery = _delivery_specs(new)
    sinks_added = {
        sink: sink_attachment(new, sink, new_delivery)
        for sink in sorted(new_sinks - old_sinks)
    }
    sinks_removed = {
        sink: sink_attachment(old, sink, old_delivery)
        for sink in sorted(old_sinks - new_sinks)
    }
    surviving = old_sinks & new_sinks

    delivery_changed: dict[LinkKey, tuple[DeliveryEdgeSpec | None, DeliveryEdgeSpec | None]] = {}
    for key in sorted(set(old_delivery) | set(new_delivery)):
        _reflector, sink = key
        if sink not in surviving:
            continue  # carried by the sink attachment instead
        before, after = old_delivery.get(key), new_delivery.get(key)
        if before != after:
            delivery_changed[key] = (before, after)

    old_edges, new_edges = _stream_specs(old), _stream_specs(new)
    stream_edges_changed: dict[LinkKey, tuple[StreamEdgeSpec | None, StreamEdgeSpec | None]] = {}
    for key in sorted(set(old_edges) | set(new_edges)):
        stream, reflector = key
        if stream not in (old_streams & new_streams) or reflector not in (
            old_reflectors & new_reflectors
        ):
            continue  # already a structural change
        before, after = old_edges.get(key), new_edges.get(key)
        if before != after:
            stream_edges_changed[key] = (before, after)

    old_demands, new_demands = _demand_thresholds(old), _demand_thresholds(new)
    demands_changed: dict[DemandKey, tuple[float | None, float | None]] = {}
    for key in sorted(set(old_demands) | set(new_demands)):
        sink, _stream = key
        if sink not in surviving:
            continue  # carried by the sink attachment instead
        before, after = old_demands.get(key), new_demands.get(key)
        if before != after:
            demands_changed[key] = (before, after)

    return ProblemDelta(
        sinks_added=sinks_added,
        sinks_removed=sinks_removed,
        delivery_changed=delivery_changed,
        stream_edges_changed=stream_edges_changed,
        demands_changed=demands_changed,
        structural=tuple(structural),
    )


def invert_delta(delta: ProblemDelta) -> ProblemDelta:
    """The delta taking the *new* state back to the *old* one.

    ``diff(a, b)`` inverted equals ``diff(b, a)``; applying a delta and then
    its inverse is a content-exact round trip (checked by the property
    suite via :func:`repro.core.serialization.problem_digest`).
    """
    return ProblemDelta(
        sinks_added=dict(delta.sinks_removed),
        sinks_removed=dict(delta.sinks_added),
        delivery_changed={
            key: (after, before)
            for key, (before, after) in delta.delivery_changed.items()
        },
        stream_edges_changed={
            key: (after, before)
            for key, (before, after) in delta.stream_edges_changed.items()
        },
        demands_changed={
            key: (after, before)
            for key, (before, after) in delta.demands_changed.items()
        },
        structural=delta.structural,
    )


# ---------------------------------------------------------------------------
# Applying
# ---------------------------------------------------------------------------


def apply_delta(
    problem: OverlayDesignProblem, delta: ProblemDelta, name: str | None = None
) -> OverlayDesignProblem:
    """Apply ``delta`` to ``problem``, producing the new problem state.

    Raises ``ValueError`` when the delta records structural changes (those
    require rebuilding the problem at the source) or when a changed entry's
    *old* side disagrees with ``problem`` (a stale delta).  The result is
    rebuilt in canonical sorted order, so applying a delta and then its
    inverse reproduces the original problem content-exactly.
    """
    if delta.requires_full_redesign:
        raise ValueError(
            "delta records structural changes and cannot be applied "
            f"incrementally: {'; '.join(delta.structural)}"
        )

    sinks = set(problem.sinks)
    for sink in delta.sinks_added:
        if sink in sinks:
            raise ValueError(f"delta adds sink {sink!r} which already exists")
    for sink in delta.sinks_removed:
        if sink not in sinks:
            raise ValueError(f"delta removes sink {sink!r} which does not exist")
    sinks = (sinks - set(delta.sinks_removed)) | set(delta.sinks_added)

    delivery = _delivery_specs(problem)
    for sink, attachment in delta.sinks_removed.items():
        for reflector, _spec in attachment.delivery:
            delivery.pop((reflector, sink), None)
    for sink, attachment in delta.sinks_added.items():
        for reflector, spec in attachment.delivery:
            delivery[(reflector, sink)] = spec
    for key, (before, after) in delta.delivery_changed.items():
        if delivery.get(key) != before:
            raise ValueError(f"stale delta: delivery edge {key} is not {before}")
        if after is None:
            delivery.pop(key, None)
        else:
            delivery[key] = after

    stream_edges = _stream_specs(problem)
    for key, (before, after) in delta.stream_edges_changed.items():
        if stream_edges.get(key) != before:
            raise ValueError(f"stale delta: stream edge {key} is not {before}")
        if after is None:
            stream_edges.pop(key, None)
        else:
            stream_edges[key] = after

    demands = _demand_thresholds(problem)
    for sink, attachment in delta.sinks_removed.items():
        for stream, _threshold in attachment.demands:
            demands.pop((sink, stream), None)
    for sink, attachment in delta.sinks_added.items():
        for stream, threshold in attachment.demands:
            demands[(sink, stream)] = threshold
    for key, (before, after) in delta.demands_changed.items():
        if demands.get(key) != before:
            raise ValueError(f"stale delta: demand {key} threshold is not {before}")
        if after is None:
            demands.pop(key, None)
        else:
            demands[key] = after

    result = OverlayDesignProblem(name=name or problem.name)
    for stream in sorted(problem.streams):
        result.add_stream(stream, bandwidth=problem.stream_bandwidth(stream))
    for reflector in sorted(problem.reflectors):
        info = problem.reflector_info(reflector)
        result.add_reflector(
            reflector,
            cost=info.cost,
            fanout=info.fanout,
            color=info.color,
            capacity=info.capacity,
        )
    for sink in sorted(sinks):
        result.add_sink(sink)
    for (stream, reflector), spec in sorted(stream_edges.items()):
        result.add_stream_edge(stream, reflector, spec.loss_probability, spec.cost)
    for (reflector, sink), spec in sorted(delivery.items()):
        result.add_delivery_edge(
            reflector,
            sink,
            loss_probability=spec.loss_probability,
            cost=spec.cost,
            stream_costs=spec.stream_costs_dict(),
            capacity=spec.capacity,
        )
    for (sink, stream), threshold in sorted(demands.items()):
        result.add_demand(sink, stream, success_threshold=threshold)
    return result


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _spec_to_dict(spec: DeliveryEdgeSpec | None) -> dict[str, Any] | None:
    if spec is None:
        return None
    return {
        "loss_probability": spec.loss_probability,
        "cost": spec.cost,
        "stream_costs": {stream: cost for stream, cost in spec.stream_costs},
        "capacity": spec.capacity,
    }


def _spec_from_dict(data: dict[str, Any] | None) -> DeliveryEdgeSpec | None:
    if data is None:
        return None
    return DeliveryEdgeSpec(
        loss_probability=data["loss_probability"],
        cost=data["cost"],
        stream_costs=tuple(sorted((data.get("stream_costs") or {}).items())),
        capacity=data.get("capacity"),
    )


def _stream_spec_to_dict(spec: StreamEdgeSpec | None) -> dict[str, Any] | None:
    if spec is None:
        return None
    return {"loss_probability": spec.loss_probability, "cost": spec.cost}


def _stream_spec_from_dict(data: dict[str, Any] | None) -> StreamEdgeSpec | None:
    if data is None:
        return None
    return StreamEdgeSpec(loss_probability=data["loss_probability"], cost=data["cost"])


def _attachment_to_dict(attachment: SinkAttachment) -> dict[str, Any]:
    return {
        "delivery": [
            {"reflector": reflector, **_spec_to_dict(spec)}
            for reflector, spec in attachment.delivery
        ],
        "demands": [
            {"stream": stream, "success_threshold": threshold}
            for stream, threshold in attachment.demands
        ],
    }


def _attachment_from_dict(data: dict[str, Any]) -> SinkAttachment:
    delivery = tuple(
        sorted(
            (
                entry["reflector"],
                DeliveryEdgeSpec(
                    loss_probability=entry["loss_probability"],
                    cost=entry["cost"],
                    stream_costs=tuple(sorted((entry.get("stream_costs") or {}).items())),
                    capacity=entry.get("capacity"),
                ),
            )
            for entry in data.get("delivery", [])
        )
    )
    demands = tuple(
        sorted(
            (entry["stream"], entry["success_threshold"])
            for entry in data.get("demands", [])
        )
    )
    return SinkAttachment(delivery=delivery, demands=demands)


def delta_to_dict(delta: ProblemDelta) -> dict[str, Any]:
    """Encode a delta as a versioned JSON-compatible document."""
    return {
        "format_version": DELTA_FORMAT_VERSION,
        "kind": "problem-delta",
        "sinks_added": {
            sink: _attachment_to_dict(attachment)
            for sink, attachment in sorted(delta.sinks_added.items())
        },
        "sinks_removed": {
            sink: _attachment_to_dict(attachment)
            for sink, attachment in sorted(delta.sinks_removed.items())
        },
        "delivery_changed": [
            {
                "reflector": reflector,
                "sink": sink,
                "old": _spec_to_dict(before),
                "new": _spec_to_dict(after),
            }
            for (reflector, sink), (before, after) in sorted(
                delta.delivery_changed.items()
            )
        ],
        "stream_edges_changed": [
            {
                "stream": stream,
                "reflector": reflector,
                "old": _stream_spec_to_dict(before),
                "new": _stream_spec_to_dict(after),
            }
            for (stream, reflector), (before, after) in sorted(
                delta.stream_edges_changed.items()
            )
        ],
        "demands_changed": [
            {"sink": sink, "stream": stream, "old": before, "new": after}
            for (sink, stream), (before, after) in sorted(delta.demands_changed.items())
        ],
        "structural": list(delta.structural),
    }


def delta_from_dict(data: dict[str, Any]) -> ProblemDelta:
    """Decode a delta from a :func:`delta_to_dict` document."""
    check_document(data, "problem-delta", version=DELTA_FORMAT_VERSION)
    return ProblemDelta(
        sinks_added={
            sink: _attachment_from_dict(entry)
            for sink, entry in data.get("sinks_added", {}).items()
        },
        sinks_removed={
            sink: _attachment_from_dict(entry)
            for sink, entry in data.get("sinks_removed", {}).items()
        },
        delivery_changed={
            (entry["reflector"], entry["sink"]): (
                _spec_from_dict(entry.get("old")),
                _spec_from_dict(entry.get("new")),
            )
            for entry in data.get("delivery_changed", [])
        },
        stream_edges_changed={
            (entry["stream"], entry["reflector"]): (
                _stream_spec_from_dict(entry.get("old")),
                _stream_spec_from_dict(entry.get("new")),
            )
            for entry in data.get("stream_edges_changed", [])
        },
        demands_changed={
            (entry["sink"], entry["stream"]): (entry.get("old"), entry.get("new"))
            for entry in data.get("demands_changed", [])
        },
        structural=tuple(data.get("structural", [])),
    )


__all__ = [
    "DELTA_FORMAT_VERSION",
    "DeliveryEdgeSpec",
    "ProblemDelta",
    "SinkAttachment",
    "StreamEdgeSpec",
    "apply_delta",
    "delta_from_dict",
    "delta_to_dict",
    "diff_problems",
    "invert_delta",
    "sink_attachment",
]
