"""The incremental re-design engine: warm-started re-solve of dirty shards.

:func:`design_incremental` turns a standing design plus a changed problem
into an updated design without paying for a from-scratch run.  It follows
the fix-integral-variables-and-re-solve idiom of iterative LP rounding: the
assignments of demands the change cannot touch are *fixed* (carried over
verbatim), and only the dirty shards of the :mod:`repro.scale` partition go
back through the Formulate/Solve/Round stages -- either whole
(``resolve="full"``) or as a *residual* subproblem of just the affected
demands against the fanout budget the kept assignments leave behind
(``resolve="residual"``, the default).  The re-solved pieces are then
spliced into the standing design by the regular stitch stage, whose fanout
rebalance + global repair pass is exactly the cross-shard audit/repair the
splice needs, and the merged design is re-audited against the full problem.

Determinism matches the sharded pipeline: the partition is a pure function
of the new problem, per-shard seeds derive from the request seed and the
shard *index* (so a dirty shard re-solved incrementally sees the same seed a
from-scratch sharded run would give it), the batch executor preserves shard
order, and the stitch draws no randomness -- hence bit-identical results
across ``jobs`` settings.

Fallbacks to a full redesign (the result's ``incremental_fallback`` metadata
records which): structural deltas (streams/reflectors changed -- outside the
delta model), and dirty-shard fractions above ``full_redesign_threshold``
(re-solving almost everything incrementally costs more than starting over).
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.analysis.audit import audit_solution
from repro.api.batch import design_batch
from repro.api.registry import RegisteredDesigner, get_designer
from repro.api.types import (
    DesignRequest,
    DesignResult,
    parameters_from_dict,
    parameters_to_dict,
)
from repro.core.algorithm import DesignParameters
from repro.core.problem import OverlayDesignProblem
from repro.core.solution import OverlaySolution
from repro.incremental.delta import ProblemDelta, diff_problems
from repro.incremental.impact import analyze_impact
from repro.scale.partition import (
    PartitionPlan,
    build_partition,
    extract_shard_problem,
)
from repro.scale.pipeline import SHARDED_PREFIX, shard_seed
from repro.scale.stitch import stitch_assignments

#: Strategy-name prefix stamped on incremental results.
INCREMENTAL_PREFIX = "incremental:"

_OPTION_DEFAULTS = {
    "shards": "auto",
    "jobs": 1,
    "partitioner": "auto",
    "stitch_repair": True,
    "inner_options": {},
    "resolve": "residual",
    "full_redesign_threshold": 0.8,
}


def _normalize_options(options: Mapping | None) -> dict:
    options = dict(options or {})
    unknown = sorted(set(options) - set(_OPTION_DEFAULTS))
    if unknown:
        raise ValueError(
            f"unknown option(s) {unknown} for design_incremental "
            f"(accepted: {sorted(_OPTION_DEFAULTS)})"
        )
    merged = {**_OPTION_DEFAULTS, **options}
    if merged["resolve"] not in ("residual", "full"):
        raise ValueError(
            f"resolve must be 'residual' or 'full', got {merged['resolve']!r}"
        )
    return merged


def _standing_solution(previous: DesignResult | OverlaySolution) -> OverlaySolution:
    if isinstance(previous, DesignResult):
        return previous.solution
    return previous


def _inner_strategy(
    previous: DesignResult | OverlaySolution, strategy: str | None
) -> RegisteredDesigner:
    """Resolve the inner (per-shard) strategy, defaulting from the standing result."""
    name = strategy
    if name is None and isinstance(previous, DesignResult):
        name = previous.strategy
    if name is None:
        name = "spaa03"
    for prefix in (INCREMENTAL_PREFIX, SHARDED_PREFIX):
        if name.startswith(prefix):
            name = name[len(prefix):]
    inner = get_designer(name)
    if not inner.produces_solution:
        raise ValueError(
            f"inner strategy {name!r} produces no integral design (bound only), "
            "so there is nothing to re-solve incrementally"
        )
    return inner


def _full_redesign(
    new_problem: OverlayDesignProblem,
    parameters: DesignParameters,
    inner: RegisteredDesigner,
    options: dict,
    reason: str,
    extra_seconds: dict[str, float],
    delta: ProblemDelta,
    request_id: str | None,
) -> DesignResult:
    """Fall back to the from-scratch sharded pipeline (documented escape hatch)."""
    designer = get_designer(f"{SHARDED_PREFIX}{inner.name}")
    result = designer.design(
        DesignRequest(
            problem=new_problem,
            parameters=parameters,
            strategy=designer.name,
            options={
                "shards": options["shards"],
                "jobs": options["jobs"],
                "partitioner": options["partitioner"],
                "stitch_repair": options["stitch_repair"],
                "inner_options": dict(options["inner_options"]),
            },
            request_id=request_id,
        )
    )
    result.strategy = f"{INCREMENTAL_PREFIX}{inner.name}"
    result.stage_seconds = {**extra_seconds, **result.stage_seconds}
    result.metadata = {
        **result.metadata,
        "incremental_fallback": reason,
        **{f"delta_{k}": v for k, v in delta.summary().items()},
    }
    return result


def _shard_request(
    problem: OverlayDesignProblem,
    inner: RegisteredDesigner,
    base_parameters: dict,
    seed: int | None,
    shard_index: int,
    inner_options: dict,
    request_id: str,
) -> DesignRequest:
    parameters = dict(base_parameters)
    parameters["rounding"] = dict(parameters["rounding"])
    parameters["rounding"]["seed"] = shard_seed(seed, shard_index)
    return DesignRequest(
        problem=problem,
        parameters=parameters_from_dict(parameters),
        strategy=inner.name,
        options=dict(inner_options),
        request_id=request_id,
    )


def design_incremental(
    previous: DesignResult | OverlaySolution,
    new_problem: OverlayDesignProblem,
    parameters: DesignParameters | None = None,
    strategy: str | None = None,
    options: Mapping | None = None,
    previous_problem: OverlayDesignProblem | None = None,
    delta: ProblemDelta | None = None,
    plan: PartitionPlan | None = None,
) -> DesignResult:
    """Update a standing design for a changed problem, re-solving only churn.

    Parameters
    ----------
    previous:
        The standing design: a :class:`DesignResult` (its strategy seeds the
        default inner strategy) or a bare :class:`OverlaySolution`.
    new_problem:
        The post-churn problem state.
    parameters:
        Design parameters for the re-solved shards (``parameters.seed`` is
        the base of the per-shard seed derivation, exactly as in the sharded
        pipeline).  Defaults to :class:`DesignParameters()`.
    strategy:
        Inner per-shard strategy name; defaults to the standing result's
        strategy with any ``sharded:``/``incremental:`` prefix stripped,
        else ``"spaa03"``.
    options:
        ``shards``/``jobs``/``partitioner``/``stitch_repair``/
        ``inner_options`` as in the sharded pipeline, plus ``resolve``
        (``"residual"`` fixes unaffected in-shard assignments and re-solves
        only the affected demands; ``"full"`` re-solves whole dirty shards)
        and ``full_redesign_threshold`` (dirty-shard fraction above which
        the engine falls back to a from-scratch sharded run).
    previous_problem:
        The pre-churn problem; defaults to the standing solution's problem.
    delta:
        A precomputed :class:`ProblemDelta` (e.g. from a churn adapter);
        computed via :func:`diff_problems` when omitted.
    plan:
        A partition plan already bound to ``new_problem`` (e.g. the standing
        plan of a :class:`repro.serve.DesignSession` rebound via
        :func:`repro.scale.partition.rebind_partition`).  Skips the per-call
        partition pass; must match the ``partitioner``/``shards`` options.
        The partition is a pure function of those inputs, so a valid
        supplied plan cannot change the design.

    An empty delta returns the standing design bit-identically (same
    assignments, rebound to ``new_problem``).  The result's metadata carries
    the impact analysis (`incremental_*`), the delta summary (`delta_*`) and
    the stitch report (`stitch_*`).
    """
    opts = _normalize_options(options)
    parameters = parameters if parameters is not None else DesignParameters()
    inner = _inner_strategy(previous, strategy)
    standing = _standing_solution(previous)
    if previous_problem is None:
        previous_problem = standing.problem
    request_id = previous.request_id if isinstance(previous, DesignResult) else None

    start = time.perf_counter()
    if delta is None:
        delta = diff_problems(previous_problem, new_problem)
    diff_seconds = time.perf_counter() - start

    if delta.requires_full_redesign:
        return _full_redesign(
            new_problem,
            parameters,
            inner,
            opts,
            reason="structural-delta",
            extra_seconds={"diff": diff_seconds},
            delta=delta,
            request_id=request_id,
        )

    standing_assignments = {
        key: sorted(reflectors)
        for key, reflectors in standing.assignments.items()
        if reflectors
    }

    if delta.is_empty:
        solution = OverlaySolution.from_assignments(
            new_problem, standing_assignments, metadata=dict(standing.metadata)
        )
        solution.metadata["algorithm"] = f"{INCREMENTAL_PREFIX}{inner.name}"
        start = time.perf_counter()
        audit = audit_solution(new_problem, solution)
        audit_seconds = time.perf_counter() - start
        return DesignResult(
            strategy=f"{INCREMENTAL_PREFIX}{inner.name}",
            solution=solution,
            lower_bound=None,
            stage_seconds={"diff": diff_seconds, "audit": audit_seconds},
            audit=audit,
            metadata={
                "inner_strategy": inner.name,
                "incremental_identity": True,
                **{f"delta_{k}": v for k, v in delta.summary().items()},
            },
            request_id=request_id,
        )

    # Lazy plan: shard subproblems are extracted only when touched, and only
    # dirty shards re-solved whole touch theirs -- clean shards carry their
    # standing assignments as plain maps and residual re-solves extract their
    # own subproblem directly from ``new_problem``.  This keeps the update
    # cost proportional to the churn instead of the instance size.
    start = time.perf_counter()
    if plan is None:
        plan = build_partition(
            new_problem,
            partitioner=opts["partitioner"],
            shards=opts["shards"],
            materialize=False,
        )
    partition_seconds = time.perf_counter() - start

    # Demands the standing design never served must be re-solved too: there
    # is no assignment to carry over, whatever the delta says.
    new_keys = {demand.key for demand in new_problem.demands}
    extra = {key for key in new_keys if key not in standing_assignments}
    # Departing sinks strand build amortization: a reflector that loses a
    # third or more of its standing load may no longer be worth building at all,
    # so the demands still riding it re-solve too.  (Computed over the
    # standing solution; removing *more* sinks can only grow the per-
    # reflector removed load, so the rule stays monotone in the delta.)
    if delta.sinks_removed:
        removed_sinks = set(delta.sinks_removed)
        standing_load: dict[str, int] = {}
        removed_load: dict[str, int] = {}
        for (key_sink, _stream), reflectors in standing_assignments.items():
            for reflector in reflectors:
                standing_load[reflector] = standing_load.get(reflector, 0) + 1
                if key_sink in removed_sinks:
                    removed_load[reflector] = removed_load.get(reflector, 0) + 1
        stranded_reflectors = {
            reflector
            for reflector, lost in removed_load.items()
            if 3 * lost >= standing_load[reflector]
        }
        if stranded_reflectors:
            extra.update(
                key
                for key, reflectors in standing_assignments.items()
                if key in new_keys
                and any(r in stranded_reflectors for r in reflectors)
            )
    impact = analyze_impact(delta, new_problem, plan, extra_affected=extra)

    if impact.dirty_fraction > opts["full_redesign_threshold"]:
        return _full_redesign(
            new_problem,
            parameters,
            inner,
            opts,
            reason="dirty-fraction",
            extra_seconds={"diff": diff_seconds, "partition": partition_seconds},
            delta=delta,
            request_id=request_id,
        )

    base_parameters = parameters_to_dict(parameters)
    affected = impact.affected_demands
    dirty = set(impact.dirty_shards)

    # Builds and stream deliveries the carried assignments already pay for
    # are sunk: residual subproblems see them at zero cost, so the warm-
    # started re-solve prefers consolidating onto standing reflectors over
    # paying for fresh ones it does not need.
    carried_builds: set[str] = set()
    carried_deliveries: set[tuple[str, str]] = set()
    if opts["resolve"] == "residual":
        for (sink, stream), reflectors in standing_assignments.items():
            if (sink, stream) in affected or (sink, stream) not in new_keys:
                continue
            for reflector in reflectors:
                carried_builds.add(reflector)
                carried_deliveries.add((stream, reflector))

    start = time.perf_counter()
    requests: list[DesignRequest] = []
    # Per dirty shard: the fixed (carried) assignments merged back after the
    # batch, or None for a whole-shard re-solve.
    carried: list[dict | None] = []
    slots: list[int] = []
    shard_assignments: list[dict[tuple[str, str], list[str]] | None] = [
        None
    ] * plan.num_shards
    for index, shard in enumerate(plan.shards):
        if shard.shard_id not in dirty:
            shard_assignments[index] = {
                key: standing_assignments[key]
                for key in shard.demand_keys
                if key in standing_assignments
            }
            continue
        affected_in_shard = [key for key in shard.demand_keys if key in affected]
        fixed_keys = [
            key
            for key in shard.demand_keys
            if key not in affected and key in standing_assignments
        ]
        if opts["resolve"] == "residual" and fixed_keys:
            fixed = {key: standing_assignments[key] for key in fixed_keys}
            fixed_load: dict[str, int] = {}
            for reflectors in fixed.values():
                for reflector in reflectors:
                    fixed_load[reflector] = fixed_load.get(reflector, 0) + 1
            overrides = {
                reflector: max(1, new_problem.fanout(reflector) - load)
                for reflector, load in fixed_load.items()
            }
            residual = extract_shard_problem(
                new_problem,
                sinks=sorted({sink for sink, _stream in affected_in_shard}),
                name=f"{new_problem.name}/{shard.shard_id}/residual",
                demand_keys=set(affected_in_shard),
                fanout_overrides=overrides,
                reflector_cost_overrides=dict.fromkeys(carried_builds, 0.0),
                stream_edge_cost_overrides=dict.fromkeys(carried_deliveries, 0.0),
            )
            requests.append(
                _shard_request(
                    residual,
                    inner,
                    base_parameters,
                    parameters.rounding.seed,
                    index,
                    opts["inner_options"],
                    request_id=shard.shard_id,
                )
            )
            carried.append(fixed)
        else:
            requests.append(
                _shard_request(
                    shard.problem,
                    inner,
                    base_parameters,
                    parameters.rounding.seed,
                    index,
                    opts["inner_options"],
                    request_id=shard.shard_id,
                )
            )
            carried.append(None)
        slots.append(index)

    results = design_batch(requests, jobs=opts["jobs"])
    for slot, kept, result in zip(slots, carried, results):
        assignments = {
            key: sorted(reflectors)
            for key, reflectors in result.solution.assignments.items()
        }
        if kept is not None:
            assignments.update(kept)
        shard_assignments[slot] = assignments
    design_seconds = time.perf_counter() - start

    start = time.perf_counter()
    solution, stitch_report = stitch_assignments(
        new_problem,
        plan,
        shard_assignments,
        repair=opts["stitch_repair"],
        fanout_slack=parameters.repair_fanout_slack,
    )
    stitch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    audit = audit_solution(new_problem, solution)
    audit_seconds = time.perf_counter() - start

    solution.metadata["algorithm"] = f"{INCREMENTAL_PREFIX}{inner.name}"
    metadata = {
        "inner_strategy": inner.name,
        "partitioner": plan.partitioner,
        "jobs": str(opts["jobs"]),
        "resolve": opts["resolve"],
        "incremental_reused_assignments": sum(
            1 for key in standing_assignments if key not in affected
        ),
        **impact.as_metadata(),
        **{f"delta_{k}": v for k, v in delta.summary().items()},
        **stitch_report.as_metadata(),
    }
    return DesignResult(
        strategy=f"{INCREMENTAL_PREFIX}{inner.name}",
        solution=solution,
        lower_bound=None,
        stage_seconds={
            "diff": diff_seconds,
            "partition": partition_seconds,
            "design_shards": design_seconds,
            "stitch": stitch_seconds,
            "audit": audit_seconds,
        },
        audit=audit,
        metadata=metadata,
        request_id=request_id,
    )


__all__ = ["INCREMENTAL_PREFIX", "design_incremental"]
