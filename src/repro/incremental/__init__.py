"""Incremental re-design for live churn.

The paper's designs serve *live* streaming: sinks join and leave, measured
link losses drift, flash crowds and outages hit mid-session.  Re-running the
full designer on every change works ("reasonably fast so it can be rerun as
often as needed", Section 1.3) but wastes almost all of its work when the
change is local.  This subpackage re-solves only what changed:

* :mod:`repro.incremental.delta` -- :class:`ProblemDelta`, an invertible
  structural diff between two problem states, with JSON serialization;
* :mod:`repro.incremental.impact` -- the delta's blast radius: affected
  demands and the dirty shards of the :mod:`repro.scale` partition;
* :mod:`repro.incremental.engine` -- :func:`design_incremental`, the
  warm-started re-solve (fix unaffected assignments, re-run dirty shards,
  splice via the stitch stage's audit/repair pass);
* :mod:`repro.incremental.churn` -- adapters turning failure-catalogue
  events and a sink join/leave process into delta streams.

Entry points: ``repro.api.design_incremental`` and the ``repro update`` CLI
subcommand.  See ``docs/incremental.md`` for the delta model, the
dirty-shard rule, the determinism contract, and the full-redesign fallback.
"""

from repro.incremental.churn import (
    CHURN_EVENTS,
    SinkChurnConfig,
    churn_stream,
    delta_from_failure_schedule,
    ensure_feasible,
    flash_crowd_delta,
    outage_delta,
    sample_sink_churn,
)
from repro.incremental.delta import (
    DELTA_FORMAT_VERSION,
    DeliveryEdgeSpec,
    ProblemDelta,
    SinkAttachment,
    StreamEdgeSpec,
    apply_delta,
    delta_from_dict,
    delta_to_dict,
    diff_problems,
    invert_delta,
    sink_attachment,
)
from repro.incremental.engine import INCREMENTAL_PREFIX, design_incremental
from repro.incremental.impact import (
    ImpactReport,
    affected_demand_keys,
    analyze_impact,
)

__all__ = [
    "CHURN_EVENTS",
    "DELTA_FORMAT_VERSION",
    "DeliveryEdgeSpec",
    "INCREMENTAL_PREFIX",
    "ImpactReport",
    "ProblemDelta",
    "SinkAttachment",
    "SinkChurnConfig",
    "StreamEdgeSpec",
    "affected_demand_keys",
    "analyze_impact",
    "apply_delta",
    "churn_stream",
    "delta_from_dict",
    "delta_from_failure_schedule",
    "delta_to_dict",
    "design_incremental",
    "diff_problems",
    "ensure_feasible",
    "flash_crowd_delta",
    "invert_delta",
    "outage_delta",
    "sample_sink_churn",
    "sink_attachment",
]
