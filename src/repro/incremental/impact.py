"""Mapping a :class:`ProblemDelta` onto the shard partition: dirty shards.

The sharded pipeline (:mod:`repro.scale`) partitions demands by sink, so a
delta's blast radius is naturally expressed in demand keys: a shard is
*dirty* exactly when it contains at least one affected demand, and every
other shard's standing assignments remain valid verbatim (its demands'
candidate sets, edge weights and thresholds are untouched by the delta).

The affected-demand rule is deliberately conservative and **monotone**: each
delta entry contributes a set of demand keys that depends only on that entry
and the new problem, and the total is the union -- so a superset delta can
never mark fewer demands (or fewer shards) than a subset.  The property
suite pins this.

Per-entry contributions (all evaluated against the *new* problem):

* sink added -> every demand of that sink (they must be served from scratch);
* sink removed -> nothing (capacity is freed, no standing demand changes);
* delivery edge changed on ``(reflector, sink)`` -> every demand of that
  sink (its candidate weights/costs moved, or a candidate appeared or
  disappeared);
* stream edge changed on ``(stream, reflector)`` -> every demand of that
  stream whose sink has a delivery edge from that reflector;
* demand added / re-thresholded -> that demand; demand removed -> nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import OverlayDesignProblem
from repro.incremental.delta import DemandKey, ProblemDelta
from repro.scale.partition import PartitionPlan


@dataclass(frozen=True)
class ImpactReport:
    """Which demands a delta touches and which shards must be re-solved."""

    affected_demands: frozenset[DemandKey] = frozenset()
    dirty_shards: tuple[str, ...] = ()
    clean_shards: tuple[str, ...] = ()
    num_shards: int = 0

    @property
    def dirty_fraction(self) -> float:
        if self.num_shards == 0:
            return 0.0
        return len(self.dirty_shards) / self.num_shards

    def as_metadata(self) -> dict:
        """JSON-scalar view for ``DesignResult.metadata``."""
        return {
            "incremental_affected_demands": len(self.affected_demands),
            "incremental_dirty_shards": len(self.dirty_shards),
            "incremental_clean_shards": len(self.clean_shards),
            "incremental_dirty_fraction": self.dirty_fraction,
        }


def affected_demand_keys(
    delta: ProblemDelta, new_problem: OverlayDesignProblem
) -> frozenset[DemandKey]:
    """Demand keys of ``new_problem`` whose designs the delta may invalidate."""
    demands_by_sink: dict[str, list[DemandKey]] = {}
    for demand in new_problem.demands:
        demands_by_sink.setdefault(demand.sink, []).append(demand.key)
    demand_keys = {demand.key for demand in new_problem.demands}
    sinks_by_reflector: dict[str, set[str]] = {}
    for reflector, sink in new_problem.delivery_links():
        sinks_by_reflector.setdefault(reflector, set()).add(sink)

    affected: set[DemandKey] = set()
    for sink in delta.sinks_added:
        affected.update(demands_by_sink.get(sink, []))
    for (_reflector, sink) in delta.delivery_changed:
        affected.update(demands_by_sink.get(sink, []))
    for (stream, reflector) in delta.stream_edges_changed:
        for sink in sinks_by_reflector.get(reflector, ()):
            key = (sink, stream)
            if key in demand_keys:
                affected.add(key)
    for key in delta.demands_changed:
        if key in demand_keys:
            affected.add(key)
    return frozenset(affected)


def analyze_impact(
    delta: ProblemDelta,
    new_problem: OverlayDesignProblem,
    plan: PartitionPlan,
    extra_affected: frozenset[DemandKey] | set[DemandKey] = frozenset(),
) -> ImpactReport:
    """Project a delta onto a partition plan of the *new* problem.

    ``extra_affected`` lets the engine force demands dirty for reasons
    outside the delta model -- e.g. demands the standing solution never
    served (so there is nothing to carry over).
    """
    affected = frozenset(affected_demand_keys(delta, new_problem) | set(extra_affected))
    dirty: list[str] = []
    clean: list[str] = []
    for shard in plan.shards:
        if any(key in affected for key in shard.demand_keys):
            dirty.append(shard.shard_id)
        else:
            clean.append(shard.shard_id)
    return ImpactReport(
        affected_demands=affected,
        dirty_shards=tuple(dirty),
        clean_shards=tuple(clean),
        num_shards=plan.num_shards,
    )


__all__ = ["ImpactReport", "affected_demand_keys", "analyze_impact"]
