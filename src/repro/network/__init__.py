"""Overlay network substrate: topology, loss models, exact reliability.

This subpackage models the *physical* layer the design algorithm sits on top
of: entrypoints, reflectors and edgeservers placed in co-location centers,
grouped by ISP, connected by lossy Internet paths (Figure 1 of the paper and
the deployment described in Sections 1.1--1.2).

It provides:

* :mod:`repro.network.isp` -- ISPs with outage behaviour (the catastrophic
  failures motivating the Section 6.4 color constraints);
* :mod:`repro.network.topology` -- node / link / topology containers and the
  conversion to an :class:`repro.core.problem.OverlayDesignProblem`;
* :mod:`repro.network.loss` -- link-loss models (independent Bernoulli, the
  paper's base model; Gilbert--Elliott bursty loss; ISP-correlated outages)
  used by the packet simulation;
* :mod:`repro.network.reliability` -- exact reliability computation for
  three-level designs and scenario-based (ISP outage) reliability.
"""

from repro.network.isp import ISP, ISPRegistry
from repro.network.loss import (
    BernoulliLossModel,
    GilbertElliottLossModel,
    IspOutageLossModel,
    LossModel,
)
from repro.network.reliability import (
    delivery_success_probability,
    demand_success_probability,
    isp_outage_success_probability,
    solution_reliability_summary,
)
from repro.network.topology import NodeRole, OverlayLink, OverlayNode, OverlayTopology

__all__ = [
    "ISP",
    "ISPRegistry",
    "BernoulliLossModel",
    "GilbertElliottLossModel",
    "IspOutageLossModel",
    "LossModel",
    "NodeRole",
    "OverlayLink",
    "OverlayNode",
    "OverlayTopology",
    "delivery_success_probability",
    "demand_success_probability",
    "isp_outage_success_probability",
    "solution_reliability_summary",
]
