"""ISPs and their failure behaviour.

The paper motivates the color constraints (Section 6.4) with catastrophic,
ISP-wide events: "on 10/3/2002 the WorldCom network experienced a total outage
for nine hours", "in June 2001 Cable and Wireless abruptly stopped peering
with PSINet".  To evaluate the value of ISP diversity we model ISPs as
entities that are either *up* or *down*; when an ISP is down every reflector
(and every link endpoint) homed in it stops forwarding packets.

:class:`ISPRegistry` tracks the ISPs of a deployment and can sample outage
scenarios for the simulation and the T6 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True)
class ISP:
    """An Internet service provider hosting part of the overlay.

    Attributes
    ----------
    name:
        Identifier (also used as the reflector *color* in the design problem).
    outage_probability:
        Probability that the ISP suffers a total outage during the period of
        interest (e.g. the duration of a live event).
    """

    name: str
    outage_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.outage_probability <= 1.0:
            raise ValueError(
                f"outage probability must lie in [0, 1], got {self.outage_probability}"
            )


@dataclass
class ISPRegistry:
    """A collection of ISPs with helpers to sample correlated outage scenarios."""

    isps: dict[str, ISP] = field(default_factory=dict)

    def add(self, isp: ISP) -> None:
        if isp.name in self.isps:
            raise ValueError(f"ISP {isp.name!r} already registered")
        self.isps[isp.name] = isp

    def add_many(self, isps: Iterable[ISP]) -> None:
        for isp in isps:
            self.add(isp)

    def get(self, name: str) -> ISP:
        try:
            return self.isps[name]
        except KeyError:
            raise KeyError(f"unknown ISP {name!r}") from None

    def names(self) -> list[str]:
        return list(self.isps)

    def __len__(self) -> int:
        return len(self.isps)

    def __iter__(self) -> Iterator[ISP]:
        return iter(self.isps.values())

    def __contains__(self, name: str) -> bool:
        return name in self.isps

    # ------------------------------------------------------------ scenarios
    def sample_outages(self, rng: np.random.Generator) -> set[str]:
        """Sample the set of ISPs that are down (independent per-ISP outages)."""
        return {
            isp.name for isp in self.isps.values() if rng.random() < isp.outage_probability
        }

    def single_outage_scenarios(self) -> list[set[str]]:
        """All scenarios in which exactly one ISP is down (plus the no-outage one).

        Used by the exact scenario-based reliability analysis: single-ISP
        failures are the events the color constraints are designed to survive.
        """
        scenarios: list[set[str]] = [set()]
        scenarios.extend({name} for name in self.isps)
        return scenarios

    def outage_probability_of_scenario(self, down: set[str]) -> float:
        """Probability of an exact outage scenario (independent ISP outages)."""
        probability = 1.0
        for isp in self.isps.values():
            if isp.name in down:
                probability *= isp.outage_probability
            else:
                probability *= 1.0 - isp.outage_probability
        return probability

    def sample_outage_schedule(
        self,
        num_packets: int,
        rng: np.random.Generator,
        **sampler_options,
    ) -> "FailureSchedule":
        """Sample a correlated ISP-outage schedule for a simulated session.

        Thin bridge to
        :func:`repro.simulation.failures.sample_isp_outage_schedule` (the
        common-shock model) over this registry's ISPs; keyword options are
        forwarded to the sampler.
        """
        from repro.simulation.failures import sample_isp_outage_schedule

        return sample_isp_outage_schedule(
            self.names(), num_packets, rng, **sampler_options
        )
