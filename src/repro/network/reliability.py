"""Exact reliability computation for three-level overlay designs.

The paper observes (Section 1.5) that in a three-tiered network the paths
serving a sink only recombine at the last level, so the exact delivery
probability can be computed in polynomial time: if the design serves a demand
through reflectors ``A`` with per-path failure ``q_i = p_ki + p_ij - p_ki p_ij``,
the failure probability is ``prod_{i in A} q_i`` (independent links).

This module exposes that computation for :class:`repro.core.OverlaySolution`
objects, plus a *scenario-based* variant that conditions on a set of failed
ISPs -- the quantity the Section 6.4 color constraints are designed to keep
high -- and an expectation over independent ISP outages.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.problem import Demand, OverlayDesignProblem
from repro.core.solution import OverlaySolution
from repro.network.isp import ISPRegistry


def delivery_success_probability(path_failures: Iterable[float]) -> float:
    """Success probability of delivery along independent two-hop paths."""
    failure = 1.0
    for q in path_failures:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"path failure probability must lie in [0, 1], got {q}")
        failure *= q
    return 1.0 - failure


def demand_success_probability(
    problem: OverlayDesignProblem,
    demand: Demand,
    serving_reflectors: Iterable[str],
    failed_isps: set[str] | None = None,
    reflector_isp: Mapping[str, str | None] | None = None,
) -> float:
    """Exact success probability of a demand under an (optional) ISP outage.

    Reflectors homed in a failed ISP contribute nothing (their paths are
    removed); ``reflector_isp`` defaults to the problem's color assignment.
    """
    failed_isps = failed_isps or set()
    if reflector_isp is None:
        reflector_isp = {r: problem.color(r) for r in problem.reflectors}
    failures = []
    for reflector in serving_reflectors:
        if reflector_isp.get(reflector) in failed_isps:
            continue
        failures.append(problem.path_failure(demand, reflector))
    if not failures:
        return 0.0
    return delivery_success_probability(failures)


def isp_outage_success_probability(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    demand: Demand,
    registry: ISPRegistry,
) -> float:
    """Expected success probability over independent ISP outages.

    Enumerates outage scenarios exactly when there are at most 12 ISPs
    (2^12 = 4096 scenarios); beyond that it restricts to the no-outage and
    single-outage scenarios, which dominate the probability mass when outage
    probabilities are small (the regime the paper describes).
    """
    serving = solution.reflectors_serving(demand)
    isp_names = registry.names()
    if not isp_names:
        return demand_success_probability(problem, demand, serving)

    if len(isp_names) <= 12:
        scenarios = _all_subsets(isp_names)
    else:
        scenarios = [set()] + [{name} for name in isp_names]

    total_probability = 0.0
    expected_success = 0.0
    for down in scenarios:
        scenario_probability = registry.outage_probability_of_scenario(down)
        success = demand_success_probability(problem, demand, serving, failed_isps=down)
        total_probability += scenario_probability
        expected_success += scenario_probability * success
    # Normalise in the truncated-enumeration case so the result is a proper
    # conditional expectation over the enumerated scenarios.
    if total_probability <= 0:
        return 0.0
    return expected_success / total_probability


def solution_reliability_summary(
    problem: OverlayDesignProblem,
    solution: OverlaySolution,
    registry: ISPRegistry | None = None,
) -> dict:
    """Per-design reliability aggregates used by examples and the C1/T6 benches."""
    demands = problem.demands
    baseline = [solution.success_probability(d) for d in demands]
    summary = {
        "min_success": min(baseline) if baseline else 1.0,
        "mean_success": sum(baseline) / len(baseline) if baseline else 1.0,
        "demands_meeting_threshold": sum(
            1
            for demand, success in zip(demands, baseline)
            if success + 1e-12 >= demand.success_threshold
        ),
        "num_demands": len(demands),
    }
    if registry is not None and len(registry) > 0:
        with_outages = [
            isp_outage_success_probability(problem, solution, demand, registry)
            for demand in demands
        ]
        worst_single_outage = []
        for demand in demands:
            serving = solution.reflectors_serving(demand)
            worst = min(
                (
                    demand_success_probability(problem, demand, serving, failed_isps={name})
                    for name in registry.names()
                ),
                default=0.0,
            )
            worst_single_outage.append(worst)
        summary.update(
            {
                "mean_success_with_outages": sum(with_outages) / len(with_outages),
                "min_success_worst_single_outage": (
                    min(worst_single_outage) if worst_single_outage else 0.0
                ),
                "mean_success_worst_single_outage": (
                    sum(worst_single_outage) / len(worst_single_outage)
                    if worst_single_outage
                    else 0.0
                ),
            }
        )
    return summary


def _all_subsets(names: list[str]) -> list[set[str]]:
    subsets: list[set[str]] = []
    for mask in range(1 << len(names)):
        subsets.append({names[i] for i in range(len(names)) if mask >> i & 1})
    return subsets
