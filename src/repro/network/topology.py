"""Overlay topology: nodes, links, and the conversion to a design problem.

An :class:`OverlayTopology` is the Figure-1 object: a tripartite digraph of
entrypoints (sources), reflectors and edgeservers (sinks) with per-link loss
probabilities and bandwidth costs.  It carries more information than the
abstract :class:`repro.core.problem.OverlayDesignProblem` (geographic
coordinates, colo and ISP membership), which is what the workload generators
and the packet-level simulation need; :meth:`OverlayTopology.to_problem`
projects it down to the algorithm's input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from repro.core.problem import OverlayDesignProblem


class NodeRole(Enum):
    """Role of a node in the three-level overlay."""

    SOURCE = "source"
    REFLECTOR = "reflector"
    SINK = "sink"


@dataclass(frozen=True)
class OverlayNode:
    """A machine (or cluster) participating in the overlay.

    Attributes
    ----------
    name:
        Unique identifier.
    role:
        Source (entrypoint), reflector, or sink (edgeserver).
    location:
        Planar coordinates used by the synthetic generators to derive loss
        probabilities and costs from distance.
    colo:
        Co-location center identifier (several nodes share one colo).
    isp:
        ISP homing the node; used as the reflector *color*.
    capacity:
        For reflectors: fanout bound (maximum simultaneous outgoing streams).
    cost:
        For reflectors: cost of operating the node (the ``r_i`` of the IP).
    """

    name: str
    role: NodeRole
    location: tuple[float, float] = (0.0, 0.0)
    colo: str | None = None
    isp: str | None = None
    capacity: int = 1
    cost: float = 0.0


@dataclass(frozen=True)
class OverlayLink:
    """A directed overlay link with measured loss probability and unit cost."""

    tail: str
    head: str
    loss_probability: float
    cost: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss probability must lie in [0, 1], got {self.loss_probability}"
            )
        if self.cost < 0:
            raise ValueError(f"link cost must be non-negative, got {self.cost}")


@dataclass
class StreamSpec:
    """A live stream: its entrypoint, bitrate, and designated sink set.

    ``subscribers`` maps sink name -> required success probability (the
    paper's per-(sink, stream) loss threshold ``Phi``).
    """

    name: str
    source: str
    bandwidth: float = 1.0
    subscribers: dict[str, float] = field(default_factory=dict)


class OverlayTopology:
    """Container for nodes, links and streams of an overlay deployment."""

    def __init__(self, name: str = "overlay") -> None:
        self.name = name
        self._nodes: dict[str, OverlayNode] = {}
        self._links: dict[tuple[str, str], OverlayLink] = {}
        self._streams: dict[str, StreamSpec] = {}

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: OverlayNode) -> None:
        if node.name in self._nodes:
            raise ValueError(f"node {node.name!r} already exists")
        self._nodes[node.name] = node

    def add_nodes(self, nodes: Iterable[OverlayNode]) -> None:
        for node in nodes:
            self.add_node(node)

    def node(self, name: str) -> OverlayNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def nodes(self, role: NodeRole | None = None) -> list[OverlayNode]:
        if role is None:
            return list(self._nodes.values())
        return [node for node in self._nodes.values() if node.role is role]

    @property
    def sources(self) -> list[OverlayNode]:
        return self.nodes(NodeRole.SOURCE)

    @property
    def reflectors(self) -> list[OverlayNode]:
        return self.nodes(NodeRole.REFLECTOR)

    @property
    def sinks(self) -> list[OverlayNode]:
        return self.nodes(NodeRole.SINK)

    # ------------------------------------------------------------------ links
    def add_link(self, link: OverlayLink) -> None:
        key = (link.tail, link.head)
        if key in self._links:
            raise ValueError(f"link {key} already exists")
        if link.tail not in self._nodes or link.head not in self._nodes:
            raise KeyError(f"link {key} references unknown nodes")
        tail_role = self._nodes[link.tail].role
        head_role = self._nodes[link.head].role
        valid = (tail_role, head_role) in {
            (NodeRole.SOURCE, NodeRole.REFLECTOR),
            (NodeRole.REFLECTOR, NodeRole.SINK),
        }
        if not valid:
            raise ValueError(
                f"links must go source->reflector or reflector->sink, got "
                f"{tail_role.value}->{head_role.value}"
            )
        self._links[key] = link

    def add_links(self, links: Iterable[OverlayLink]) -> None:
        for link in links:
            self.add_link(link)

    def link(self, tail: str, head: str) -> OverlayLink:
        try:
            return self._links[(tail, head)]
        except KeyError:
            raise KeyError(f"no link {tail!r} -> {head!r}") from None

    def has_link(self, tail: str, head: str) -> bool:
        return (tail, head) in self._links

    def links(self) -> list[OverlayLink]:
        return list(self._links.values())

    def out_links(self, tail: str) -> list[OverlayLink]:
        return [link for (t, _h), link in self._links.items() if t == tail]

    def in_links(self, head: str) -> list[OverlayLink]:
        return [link for (_t, h), link in self._links.items() if h == head]

    # ---------------------------------------------------------------- streams
    def add_stream(self, stream: StreamSpec) -> None:
        if stream.name in self._streams:
            raise ValueError(f"stream {stream.name!r} already exists")
        source = self.node(stream.source)
        if source.role is not NodeRole.SOURCE:
            raise ValueError(f"stream source {stream.source!r} is not a SOURCE node")
        for sink_name, threshold in stream.subscribers.items():
            sink = self.node(sink_name)
            if sink.role is not NodeRole.SINK:
                raise ValueError(f"stream subscriber {sink_name!r} is not a SINK node")
            if not 0.0 < threshold < 1.0:
                raise ValueError(
                    f"subscriber threshold must lie in (0, 1), got {threshold}"
                )
        self._streams[stream.name] = stream

    def streams(self) -> list[StreamSpec]:
        return list(self._streams.values())

    def stream(self, name: str) -> StreamSpec:
        try:
            return self._streams[name]
        except KeyError:
            raise KeyError(f"unknown stream {name!r}") from None

    # ---------------------------------------------------------------- summary
    def size_summary(self) -> dict:
        return {
            "sources": len(self.sources),
            "reflectors": len(self.reflectors),
            "sinks": len(self.sinks),
            "links": len(self._links),
            "streams": len(self._streams),
            "demands": sum(len(s.subscribers) for s in self._streams.values()),
        }

    # --------------------------------------------------------------- convert
    def to_problem(self, name: str | None = None) -> OverlayDesignProblem:
        """Project the topology to the algorithm's abstract design problem.

        Streams become commodities; each stream's source->reflector links
        become stream edges (cost scaled by the stream bandwidth, which is how
        the bandwidth contracts of Section 1.2 charge higher-bitrate streams);
        reflector->sink links become delivery edges; subscribers become
        demands; ISPs become reflector colors.
        """
        problem = OverlayDesignProblem(name=name or f"{self.name}-problem")
        for stream in self._streams.values():
            problem.add_stream(stream.name, bandwidth=stream.bandwidth)
        for reflector in self.reflectors:
            problem.add_reflector(
                reflector.name,
                cost=reflector.cost,
                fanout=reflector.capacity,
                color=reflector.isp,
            )
        for sink in self.sinks:
            problem.add_sink(sink.name)

        for stream in self._streams.values():
            for link in self.out_links(stream.source):
                problem.add_stream_edge(
                    stream.name,
                    link.head,
                    loss_probability=link.loss_probability,
                    cost=link.cost * stream.bandwidth,
                )

        stream_bandwidth = {s.name: s.bandwidth for s in self._streams.values()}
        for link in self.links():
            if self._nodes[link.tail].role is NodeRole.REFLECTOR:
                problem.add_delivery_edge(
                    link.tail,
                    link.head,
                    loss_probability=link.loss_probability,
                    cost=link.cost,
                    stream_costs={
                        name: link.cost * bandwidth
                        for name, bandwidth in stream_bandwidth.items()
                    },
                )

        for stream in self._streams.values():
            for sink_name, threshold in stream.subscribers.items():
                problem.add_demand(sink_name, stream.name, success_threshold=threshold)
        return problem

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        summary = self.size_summary()
        return (
            f"OverlayTopology(name={self.name!r}, sources={summary['sources']}, "
            f"reflectors={summary['reflectors']}, sinks={summary['sinks']}, "
            f"links={summary['links']})"
        )
