"""Link-loss models for the packet-level simulation.

The paper's analytical model (Section 1.3) is *independent Bernoulli loss*:
every packet traversing a link is lost with the link's measured probability,
independently across links.  :class:`BernoulliLossModel` implements exactly
that and is what the analytic/simulated cross-validation tests rely on.

Two richer models exercise the extensions:

* :class:`GilbertElliottLossModel` -- two-state bursty loss (good/bad channel),
  the classic model of correlated *in-link* loss.  The paper explicitly allows
  losses on a single link to be correlated ("we don't assume that loss of
  packets on individual links are uncorrelated"); this model lets the
  simulation show that the design quality degrades gracefully under bursts of
  the same average rate.
* :class:`IspOutageLossModel` -- wraps another model and forces loss 1.0 on
  links whose tail or head is homed in a failed ISP, implementing the
  catastrophic events of Sections 1.2 / 6.4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: Below this loss probability the batched Bernoulli sampler uses geometric
#: skip-sampling (drawing only the loss *positions*); above it a dense
#: comparison draw is cheaper per generated value.
_SPARSE_SAMPLING_THRESHOLD = 0.45


def _gap_budget(mean_losses: float) -> float:
    """Gap draws budgeted per chain: mean + ~2 sigma + slack.

    Shared by the bucket planner, the position sampler and the packed bucket
    fill -- tuning the headroom in one place keeps the planner's "no row
    overdraws more than ~40%" invariant and the samplers' top-up frequency
    in sync (and the engine's memory estimate in
    :func:`repro.simulation.montecarlo._chunk_trials` mirrors it).
    """
    return mean_losses + 2.0 * np.sqrt(mean_losses + 1.0) + 8.0


def _budget_buckets(
    probabilities: np.ndarray, sparse_rows: list[int], num_packets: int
) -> list[np.ndarray]:
    """Group sparse-sampled rows into buckets of similar gap budgets.

    The batched 3D draw sizes its gap budget by the bucket's largest loss
    probability, so rows are bucketed (by probability order) such that no row
    overdraws more than ~40% relative to its own need.
    """
    if not sparse_rows:
        return []

    def budget_of(p: float) -> float:
        return _gap_budget(num_packets * p)

    ordered = sorted(sparse_rows, key=lambda row: probabilities[row])
    buckets: list[list[int]] = []
    current: list[int] = []
    floor = 0.0
    for row in ordered:
        need = budget_of(float(probabilities[row]))
        if not current:
            current = [row]
            floor = need
        elif need <= 1.4 * floor + 8.0:
            current.append(row)
        else:
            buckets.append(current)
            current = [row]
            floor = need
    buckets.append(current)
    return [np.sort(np.asarray(bucket, dtype=np.int64)) for bucket in buckets]


def _bernoulli_position_parts(
    loss_probability: float,
    trials: int,
    length: int,
    rng: np.random.Generator,
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Loss positions as ``(main, extras)`` part pairs of ``(trials, positions)``.

    The *main* part comes from one batched round of geometric gaps and is
    emitted trial-major with strictly increasing positions (globally sorted).
    Trials whose gap budget ran short continue in *extras*, which preserve
    the within-trial ordering but not the global one; with the ~2-sigma gap
    budget extras hold a fraction of a percent of the positions, so callers
    can treat them as a slow path.
    """
    if not 0.0 < loss_probability < 1.0:
        raise ValueError("loss positions need p strictly inside (0, 1)")
    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if trials <= 0 or length <= 0:
        return empty, empty
    if loss_probability >= _SPARSE_SAMPLING_THRESHOLD:
        lost = rng.random((trials, length)) < loss_probability
        trial_idx, positions = np.nonzero(lost)
        return (trial_idx.astype(np.int64), positions.astype(np.int64)), empty
    inv_rate = np.float32(1.0 / -np.log1p(-loss_probability))
    budget = int(np.ceil(_gap_budget(length * loss_probability)))
    # Gaps beyond the session end all behave the same, so clamping before the
    # integer cast keeps the cumulative positions overflow-free even for tiny
    # loss probabilities (whose raw gaps can be astronomically large).
    gap_dtype = np.int32 if budget * (length + 2) < 2**31 else np.int64
    limit = np.float32(length + 1)
    trial_parts: list[np.ndarray] = []
    position_parts: list[np.ndarray] = []
    active = np.arange(trials, dtype=np.int64)
    cursor = np.full(trials, -1, dtype=np.int64)
    main: tuple[np.ndarray, np.ndarray] | None = None
    while active.size:
        draws = rng.standard_exponential((active.size, budget), dtype=np.float32)
        gaps = np.minimum(draws * inv_rate, limit).astype(gap_dtype)
        gaps += 1
        positions = np.cumsum(gaps, axis=1)
        positions += cursor[active, None].astype(gap_dtype)
        valid = positions < length
        counts = valid.sum(axis=1)
        part = (np.repeat(active, counts), positions[valid].astype(np.int64))
        if main is None:
            main = part
        else:
            trial_parts.append(part[0])
            position_parts.append(part[1])
        cursor[active] = positions[:, -1]
        active = active[positions[:, -1] < length - 1]
    if trial_parts:
        extras = (np.concatenate(trial_parts), np.concatenate(position_parts))
    else:
        extras = empty
    return main if main is not None else empty, extras


def sample_bernoulli_positions(
    loss_probability: float,
    trials: int,
    length: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of Bernoulli(p) losses over ``trials`` windows of ``length``.

    Returns ``(trial_indices, positions)`` -- the coordinates of every lost
    packet, exactly distributed as independent per-packet coin flips.  For
    small ``p`` the inter-loss gaps are sampled directly: a gap is
    ``floor(E / -log1p(-p)) + 1`` with ``E`` standard exponential, which is
    *exactly* Geometric(p), so only ``~p * length`` values are generated per
    trial instead of ``length``.  Positions are strictly increasing within
    each trial (several callers rely on this to OR bits without collisions),
    though a small tail of top-up entries may trail the trial-major bulk.
    """
    (main_trials, main_positions), (extra_trials, extra_positions) = (
        _bernoulli_position_parts(loss_probability, trials, length, rng)
    )
    if extra_trials.size == 0:
        return main_trials, main_positions
    return (
        np.concatenate([main_trials, extra_trials]),
        np.concatenate([main_positions, extra_positions]),
    )


class LossModel(ABC):
    """Samples per-packet loss indicator vectors for a link."""

    @abstractmethod
    def sample_losses(
        self,
        loss_probability: float,
        num_packets: int,
        rng: np.random.Generator,
        link: tuple[str, str] | None = None,
    ) -> np.ndarray:
        """Return a boolean array of length ``num_packets``; True means *lost*.

        ``loss_probability`` is the link's long-run average loss rate;
        implementations must (approximately) respect it so the analytic model
        remains the right first-order prediction.
        """

    def sample_loss_matrix(
        self,
        loss_probabilities: np.ndarray,
        trials: int,
        num_packets: int,
        rng: np.random.Generator,
        links: Sequence[tuple[str, str]] | None = None,
    ) -> np.ndarray:
        """Batched sampling: one boolean ``(links, trials, num_packets)`` block.

        The distribution of every ``(link, trial)`` row matches
        :meth:`sample_losses` for that link's probability (the vectorized
        Monte-Carlo engine relies on this).  The generic implementation loops
        over links and trials so any custom model works unmodified; the
        built-in models override it with vectorized samplers.
        """
        loss_probabilities = np.asarray(loss_probabilities, dtype=np.float64)
        out = np.empty((loss_probabilities.size, trials, num_packets), dtype=bool)
        for index, probability in enumerate(loss_probabilities):
            link = links[index] if links is not None else None
            for trial in range(trials):
                out[index, trial] = self.sample_losses(
                    float(probability), num_packets, rng, link=link
                )
        return out

    def sample_packed_loss_matrix(
        self,
        loss_probabilities: np.ndarray,
        trials: int,
        num_packets: int,
        rng: np.random.Generator,
        links: Sequence[tuple[str, str]] | None = None,
    ) -> np.ndarray:
        """Bit-packed loss matrix: ``(links, trials, ceil(packets / 8))`` uint8.

        Packet ``t`` of a row maps to bit ``t % 8`` (little-endian) of byte
        ``t // 8``; trailing pad bits are zero.  The Monte-Carlo engine works
        on this packed form (bitwise AND/OR + popcounts are ~8x cheaper than
        boolean arrays).  The default packs :meth:`sample_loss_matrix`;
        :class:`BernoulliLossModel` builds the bytes directly from sampled
        loss positions without materializing a boolean array at all.
        """
        dense = self.sample_loss_matrix(
            loss_probabilities, trials, num_packets, rng, links=links
        )
        return np.packbits(dense, axis=-1, bitorder="little")


@dataclass
class BernoulliLossModel(LossModel):
    """Independent per-packet loss -- the paper's base model."""

    def sample_losses(
        self,
        loss_probability: float,
        num_packets: int,
        rng: np.random.Generator,
        link: tuple[str, str] | None = None,
    ) -> np.ndarray:
        _check(loss_probability, num_packets)
        return rng.random(num_packets) < loss_probability

    def sample_loss_matrix(
        self,
        loss_probabilities: np.ndarray,
        trials: int,
        num_packets: int,
        rng: np.random.Generator,
        links: Sequence[tuple[str, str]] | None = None,
    ) -> np.ndarray:
        """Vectorized Bernoulli sampling over ``(links, trials, packets)``.

        Real overlay links lose ~1--5% of packets, so drawing one uniform per
        packet wastes almost all of the generated entropy; each row is sampled
        through :func:`sample_bernoulli_positions` (geometric skip-sampling)
        and scattered into a zero mask.
        """
        probabilities = np.asarray(loss_probabilities, dtype=np.float64)
        for probability in probabilities:
            _check(float(probability), num_packets)
        out = np.zeros((probabilities.size, trials, num_packets), dtype=bool)
        if num_packets == 0 or trials == 0:
            return out
        flat = out.reshape(-1)
        for index, probability in enumerate(probabilities):
            p = float(probability)
            if p <= 0.0:
                continue
            if p >= 1.0:
                out[index] = True
                continue
            trial_idx, positions = sample_bernoulli_positions(p, trials, num_packets, rng)
            flat[(index * trials + trial_idx) * num_packets + positions] = True
        return out

    def sample_packed_loss_matrix(
        self,
        loss_probabilities: np.ndarray,
        trials: int,
        num_packets: int,
        rng: np.random.Generator,
        links: Sequence[tuple[str, str]] | None = None,
    ) -> np.ndarray:
        """Packed Bernoulli sampling straight from loss positions.

        Rows with similar probabilities are bucketed into single 3D
        exponential-gap draws (:func:`_budget_buckets`); loss positions turn
        into byte indices + bit values OR-ed straight into the packed output,
        skipping any boolean or dense intermediate.  This is the hot path of
        the Monte-Carlo engine.
        """
        probabilities = np.asarray(loss_probabilities, dtype=np.float64)
        for probability in probabilities:
            _check(float(probability), num_packets)
        num_bytes = (num_packets + 7) // 8
        shape = (probabilities.size, trials, num_bytes)
        out = np.zeros(shape, dtype=np.uint8)
        if trials == 0 or num_packets == 0 or probabilities.size == 0:
            return out
        flat_out = out.reshape(-1)
        sparse_rows: list[int] = []
        for index, probability in enumerate(probabilities):
            p = float(probability)
            if p <= 0.0:
                continue
            if p >= 1.0:
                out[index] = 0xFF
                if num_packets % 8:
                    out[index, :, -1] = (1 << (num_packets % 8)) - 1
            elif p >= _SPARSE_SAMPLING_THRESHOLD:
                lost = rng.random((trials, num_packets)) < p
                out[index] = np.packbits(lost, axis=-1, bitorder="little")
            else:
                sparse_rows.append(index)
        for rows in _budget_buckets(probabilities, sparse_rows, num_packets):
            self._fill_packed_bucket(
                flat_out, probabilities, rows, trials, num_packets, num_bytes, rng
            )
        return out

    @staticmethod
    def _fill_packed_bucket(
        flat_out: np.ndarray,
        probabilities: np.ndarray,
        rows: np.ndarray,
        trials: int,
        num_packets: int,
        num_bytes: int,
        rng: np.random.Generator,
    ) -> None:
        """Sample one bucket of similar-probability rows in a single 3D draw.

        Loss positions become byte indices + bit values OR-ed into the packed
        output with one unbuffered ``bitwise_or.at`` (correct under any order
        and under same-byte collisions).  The ~2-sigma gap budget is sized by
        the bucket's largest probability; chains that run short continue with
        vectorized top-up rounds over the remaining packets (the process is
        memoryless).
        """
        bucket = probabilities[rows]
        inv_rate = (1.0 / -np.log1p(-bucket)).astype(np.float32)
        budget = int(np.ceil(_gap_budget(num_packets * float(bucket.max()))))
        gap_dtype = np.int32 if budget * (num_packets + 2) < 2**31 else np.int64
        draws = rng.standard_exponential((rows.size, trials, budget), dtype=np.float32)
        gaps = np.minimum(
            draws * inv_rate[:, None, None], np.float32(num_packets + 1)
        ).astype(gap_dtype)
        gaps += 1
        positions = np.cumsum(gaps, axis=2)
        positions -= 1
        valid = positions < num_packets
        counts = valid.sum(axis=2)
        base = (rows[:, None] * trials + np.arange(trials)[None, :]) * num_bytes
        kept = positions[valid]
        flat_index = np.repeat(base.ravel(), counts.ravel()) + (kept >> 3)
        bits = np.left_shift(1, kept & 7).astype(np.uint8)
        if flat_index.size:
            np.bitwise_or.at(flat_out, flat_index, bits)
        # Chains whose budget ran short (a few percent with the 2-sigma
        # budget) continue in bulk: vectorized rounds over the short chains
        # only, with the entries OR-ed in at the end (bitwise_or.at is
        # unbuffered, so unsorted/duplicate byte indices are safe).
        last = positions[:, :, -1]
        short_row, short_trial = np.nonzero(last < num_packets - 1)
        if short_row.size:
            chain_offsets = (rows[short_row] * trials + short_trial) * num_bytes
            chain_inv = inv_rate[short_row]
            cursor = last[short_row, short_trial].astype(np.int64)
            active = np.arange(short_row.size)
            tail_index_parts: list[np.ndarray] = []
            tail_bit_parts: list[np.ndarray] = []
            topup = max(8, budget // 8)
            while active.size:
                draws = rng.standard_exponential((active.size, topup), dtype=np.float32)
                gaps = np.minimum(
                    draws * chain_inv[active, None], np.float32(num_packets + 1)
                ).astype(np.int64)
                gaps += 1
                tail_positions = np.cumsum(gaps, axis=1)
                tail_positions += cursor[active, None]
                tail_valid = tail_positions < num_packets
                tail_counts = tail_valid.sum(axis=1)
                kept_tail = tail_positions[tail_valid]
                tail_index_parts.append(
                    np.repeat(chain_offsets[active], tail_counts) + (kept_tail >> 3)
                )
                tail_bit_parts.append(np.left_shift(1, kept_tail & 7).astype(np.uint8))
                cursor[active] = tail_positions[:, -1]
                active = active[tail_positions[:, -1] < num_packets - 1]
            np.bitwise_or.at(
                flat_out,
                np.concatenate(tail_index_parts),
                np.concatenate(tail_bit_parts),
            )


@dataclass
class GilbertElliottLossModel(LossModel):
    """Two-state (good/bad) bursty loss with a configurable mean burst length.

    The chain spends a ``pi_bad`` fraction of time in the bad state; packets
    are lost with probability ``loss_good`` in the good state and
    ``loss_bad`` in the bad state.  Given the target average ``p`` we place
    the chain so that ``pi_bad * loss_bad + (1 - pi_bad) * loss_good = p``
    with ``loss_good = p * good_scale`` (mostly clean) and ``loss_bad``
    derived; the mean sojourn time in the bad state is ``mean_burst_length``
    packets.
    """

    mean_burst_length: float = 20.0
    bad_state_fraction: float = 0.1
    good_scale: float = 0.2

    def sample_losses(
        self,
        loss_probability: float,
        num_packets: int,
        rng: np.random.Generator,
        link: tuple[str, str] | None = None,
    ) -> np.ndarray:
        _check(loss_probability, num_packets)
        if loss_probability in (0.0, 1.0):
            return np.full(num_packets, bool(loss_probability))
        pi_bad = self.bad_state_fraction
        loss_good = min(loss_probability * self.good_scale, 1.0)
        # Solve pi_bad * loss_bad + (1 - pi_bad) * loss_good = p for loss_bad.
        loss_bad = (loss_probability - (1.0 - pi_bad) * loss_good) / pi_bad
        loss_bad = float(np.clip(loss_bad, 0.0, 1.0))
        # Transition probabilities: leave bad state w.p. 1/burst, enter so that
        # the stationary distribution has mass pi_bad on the bad state.
        p_leave_bad = 1.0 / max(self.mean_burst_length, 1.0)
        p_enter_bad = p_leave_bad * pi_bad / max(1.0 - pi_bad, 1e-9)
        p_enter_bad = float(np.clip(p_enter_bad, 0.0, 1.0))

        states = np.empty(num_packets, dtype=bool)  # True = bad state
        uniforms = rng.random(num_packets)
        transitions = rng.random(num_packets)
        state = rng.random() < pi_bad
        for t in range(num_packets):
            states[t] = state
            if state:
                state = not (transitions[t] < p_leave_bad)
            else:
                state = transitions[t] < p_enter_bad
        loss_rates = np.where(states, loss_bad, loss_good)
        return uniforms < loss_rates

    def _chain_parameters(
        self, probabilities: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float, float]:
        """Per-link (loss_good, loss_bad) plus the shared transition rates."""
        pi_bad = self.bad_state_fraction
        loss_good = np.minimum(probabilities * self.good_scale, 1.0)
        loss_bad = np.clip(
            (probabilities - (1.0 - pi_bad) * loss_good) / pi_bad, 0.0, 1.0
        )
        p_leave_bad = 1.0 / max(self.mean_burst_length, 1.0)
        p_enter_bad = float(
            np.clip(p_leave_bad * pi_bad / max(1.0 - pi_bad, 1e-9), 0.0, 1.0)
        )
        return loss_good, loss_bad, p_leave_bad, p_enter_bad

    def sample_loss_matrix(
        self,
        loss_probabilities: np.ndarray,
        trials: int,
        num_packets: int,
        rng: np.random.Generator,
        links: Sequence[tuple[str, str]] | None = None,
    ) -> np.ndarray:
        """Vectorized chains: all ``(link, trial)`` state machines step together.

        The per-packet Markov update runs once over an ``(links, trials)``
        state matrix instead of once per packet per link in Python, which is
        what makes the bursty scenario usable at Monte-Carlo trial counts.
        """
        probabilities = np.asarray(loss_probabilities, dtype=np.float64)
        for probability in probabilities:
            _check(float(probability), num_packets)
        num_links = probabilities.size
        if num_links == 0 or trials == 0 or num_packets == 0:
            return np.zeros((num_links, trials, num_packets), dtype=bool)
        loss_good, loss_bad, p_leave_bad, p_enter_bad = self._chain_parameters(
            probabilities
        )
        uniforms = rng.random((num_links, trials, num_packets))
        transitions = rng.random((num_links, trials, num_packets))
        state = rng.random((num_links, trials)) < self.bad_state_fraction
        rates = np.empty((num_links, trials, num_packets))
        good = loss_good[:, None]
        bad = loss_bad[:, None]
        for t in range(num_packets):
            rates[:, :, t] = np.where(state, bad, good)
            step = transitions[:, :, t]
            state = np.where(state, step >= p_leave_bad, step < p_enter_bad)
        lost = uniforms < rates
        # Degenerate endpoints keep the exact semantics of sample_losses.
        lost[probabilities <= 0.0] = False
        lost[probabilities >= 1.0] = True
        return lost


@dataclass
class IspOutageLossModel(LossModel):
    """Force total loss on links touching a failed ISP; delegate otherwise.

    ``node_isp`` maps node name -> ISP name; ``failed_isps`` is the outage
    scenario.  The wrapped ``base`` model handles ordinary loss.
    """

    node_isp: dict[str, str | None]
    failed_isps: set[str] = field(default_factory=set)
    base: LossModel = field(default_factory=BernoulliLossModel)

    def sample_losses(
        self,
        loss_probability: float,
        num_packets: int,
        rng: np.random.Generator,
        link: tuple[str, str] | None = None,
    ) -> np.ndarray:
        _check(loss_probability, num_packets)
        if link is not None and self.failed_isps:
            tail_isp = self.node_isp.get(link[0])
            head_isp = self.node_isp.get(link[1])
            if tail_isp in self.failed_isps or head_isp in self.failed_isps:
                return np.ones(num_packets, dtype=bool)
        return self.base.sample_losses(loss_probability, num_packets, rng, link)


def _check(loss_probability: float, num_packets: int) -> None:
    if not 0.0 <= loss_probability <= 1.0:
        raise ValueError(f"loss probability must lie in [0, 1], got {loss_probability}")
    if num_packets < 0:
        raise ValueError(f"num_packets must be non-negative, got {num_packets}")
