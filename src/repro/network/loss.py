"""Link-loss models for the packet-level simulation.

The paper's analytical model (Section 1.3) is *independent Bernoulli loss*:
every packet traversing a link is lost with the link's measured probability,
independently across links.  :class:`BernoulliLossModel` implements exactly
that and is what the analytic/simulated cross-validation tests rely on.

Two richer models exercise the extensions:

* :class:`GilbertElliottLossModel` -- two-state bursty loss (good/bad channel),
  the classic model of correlated *in-link* loss.  The paper explicitly allows
  losses on a single link to be correlated ("we don't assume that loss of
  packets on individual links are uncorrelated"); this model lets the
  simulation show that the design quality degrades gracefully under bursts of
  the same average rate.
* :class:`IspOutageLossModel` -- wraps another model and forces loss 1.0 on
  links whose tail or head is homed in a failed ISP, implementing the
  catastrophic events of Sections 1.2 / 6.4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np


class LossModel(ABC):
    """Samples per-packet loss indicator vectors for a link."""

    @abstractmethod
    def sample_losses(
        self,
        loss_probability: float,
        num_packets: int,
        rng: np.random.Generator,
        link: tuple[str, str] | None = None,
    ) -> np.ndarray:
        """Return a boolean array of length ``num_packets``; True means *lost*.

        ``loss_probability`` is the link's long-run average loss rate;
        implementations must (approximately) respect it so the analytic model
        remains the right first-order prediction.
        """


@dataclass
class BernoulliLossModel(LossModel):
    """Independent per-packet loss -- the paper's base model."""

    def sample_losses(
        self,
        loss_probability: float,
        num_packets: int,
        rng: np.random.Generator,
        link: tuple[str, str] | None = None,
    ) -> np.ndarray:
        _check(loss_probability, num_packets)
        return rng.random(num_packets) < loss_probability


@dataclass
class GilbertElliottLossModel(LossModel):
    """Two-state (good/bad) bursty loss with a configurable mean burst length.

    The chain spends a ``pi_bad`` fraction of time in the bad state; packets
    are lost with probability ``loss_good`` in the good state and
    ``loss_bad`` in the bad state.  Given the target average ``p`` we place
    the chain so that ``pi_bad * loss_bad + (1 - pi_bad) * loss_good = p``
    with ``loss_good = p * good_scale`` (mostly clean) and ``loss_bad``
    derived; the mean sojourn time in the bad state is ``mean_burst_length``
    packets.
    """

    mean_burst_length: float = 20.0
    bad_state_fraction: float = 0.1
    good_scale: float = 0.2

    def sample_losses(
        self,
        loss_probability: float,
        num_packets: int,
        rng: np.random.Generator,
        link: tuple[str, str] | None = None,
    ) -> np.ndarray:
        _check(loss_probability, num_packets)
        if loss_probability in (0.0, 1.0):
            return np.full(num_packets, bool(loss_probability))
        pi_bad = self.bad_state_fraction
        loss_good = min(loss_probability * self.good_scale, 1.0)
        # Solve pi_bad * loss_bad + (1 - pi_bad) * loss_good = p for loss_bad.
        loss_bad = (loss_probability - (1.0 - pi_bad) * loss_good) / pi_bad
        loss_bad = float(np.clip(loss_bad, 0.0, 1.0))
        # Transition probabilities: leave bad state w.p. 1/burst, enter so that
        # the stationary distribution has mass pi_bad on the bad state.
        p_leave_bad = 1.0 / max(self.mean_burst_length, 1.0)
        p_enter_bad = p_leave_bad * pi_bad / max(1.0 - pi_bad, 1e-9)
        p_enter_bad = float(np.clip(p_enter_bad, 0.0, 1.0))

        states = np.empty(num_packets, dtype=bool)  # True = bad state
        uniforms = rng.random(num_packets)
        transitions = rng.random(num_packets)
        state = rng.random() < pi_bad
        for t in range(num_packets):
            states[t] = state
            if state:
                state = not (transitions[t] < p_leave_bad)
            else:
                state = transitions[t] < p_enter_bad
        loss_rates = np.where(states, loss_bad, loss_good)
        return uniforms < loss_rates


@dataclass
class IspOutageLossModel(LossModel):
    """Force total loss on links touching a failed ISP; delegate otherwise.

    ``node_isp`` maps node name -> ISP name; ``failed_isps`` is the outage
    scenario.  The wrapped ``base`` model handles ordinary loss.
    """

    node_isp: dict[str, str | None]
    failed_isps: set[str] = field(default_factory=set)
    base: LossModel = field(default_factory=BernoulliLossModel)

    def sample_losses(
        self,
        loss_probability: float,
        num_packets: int,
        rng: np.random.Generator,
        link: tuple[str, str] | None = None,
    ) -> np.ndarray:
        _check(loss_probability, num_packets)
        if link is not None and self.failed_isps:
            tail_isp = self.node_isp.get(link[0])
            head_isp = self.node_isp.get(link[1])
            if tail_isp in self.failed_isps or head_isp in self.failed_isps:
                return np.ones(num_packets, dtype=bool)
        return self.base.sample_losses(loss_probability, num_packets, rng, link)


def _check(loss_probability: float, num_packets: int) -> None:
    if not 0.0 <= loss_probability <= 1.0:
        raise ValueError(f"loss probability must lie in [0, 1], got {loss_probability}")
    if num_packets < 0:
        raise ValueError(f"num_packets must be non-negative, got {num_packets}")
