"""Partitioning internet-scale instances into ISP/metro shards.

A :class:`Partitioner` groups a problem's *sinks* into named groups; the
planner coalesces those groups into a target number of balanced shards and
extracts one self-contained sub-:class:`~repro.core.problem.OverlayDesignProblem`
per shard.  Each shard contains

* the shard's sinks and their demands (every sink lands in exactly one shard,
  so the shard demand sets partition ``problem.demands``);
* *all* candidate reflectors of those demands -- including reflectors whose
  metro belongs to another shard.  Shards therefore see the full candidate
  weight their demands have globally (no artificial infeasibility), at the
  price of possibly over-committing shared reflectors; the stitch stage
  (:mod:`repro.scale.stitch`) reconciles that.

Built-in partitioners:

``metro``
    Groups sinks by their co-location prefix (``colo3-edge``,
    ``metro0042-s17``), the same naming convention
    :func:`repro.simulation.scenarios.infer_clusters` uses.
``isp``
    Groups sinks by the modal ISP *color* of their candidate reflectors
    (the Section-6.4 metadata carried by :mod:`repro.network.isp`).
``hash``
    Singleton groups (one per sink); the coalescing step then deals sinks
    round-robin into balanced shards.  The content-free fallback.
``auto``
    ``metro`` when the naming yields more than one cluster, else ``isp``
    when colors do, else ``hash``.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.problem import OverlayDesignProblem

#: Hard ceiling on ``--shards auto`` (beyond this, per-shard overheads win).
AUTO_SHARD_CAP = 64


@dataclass(frozen=True)
class Partitioner:
    """A named strategy grouping sinks into labelled clusters."""

    name: str
    group_sinks: Callable[[OverlayDesignProblem], dict[str, list[str]]]
    description: str = ""


_PARTITIONERS: dict[str, Partitioner] = {}


def register_partitioner(partitioner: Partitioner) -> Partitioner:
    """Register a partitioner under its name (last registration wins)."""
    _PARTITIONERS[partitioner.name] = partitioner
    return partitioner


def get_partitioner(name: str) -> Partitioner:
    """Resolve a registered partitioner (raises ``KeyError`` when unknown)."""
    try:
        return _PARTITIONERS[name]
    except KeyError:
        known = ", ".join([*sorted(_PARTITIONERS), "auto"])
        raise KeyError(f"unknown partitioner {name!r} (known: {known})") from None


def partitioner_names() -> list[str]:
    return sorted(_PARTITIONERS)


def _metro_groups(problem: OverlayDesignProblem) -> dict[str, list[str]]:
    groups: dict[str, list[str]] = {}
    for sink in problem.sinks:
        prefix = sink.split("-", 1)[0]
        groups.setdefault(prefix, []).append(sink)
    return groups


def _isp_groups(problem: OverlayDesignProblem) -> dict[str, list[str]]:
    candidate_colors: dict[str, Counter] = {}
    for demand in problem.demands:
        counter = candidate_colors.setdefault(demand.sink, Counter())
        for reflector in problem.candidate_reflectors(demand):
            color = problem.color(reflector)
            if color is not None:
                counter[str(color)] += 1
    groups: dict[str, list[str]] = {}
    for sink in problem.sinks:
        counter = candidate_colors.get(sink)
        if counter:
            # Modal color; deterministic tie-break by label.
            label = min(counter, key=lambda c: (-counter[c], c))
        else:
            label = "uncolored"
        groups.setdefault(label, []).append(sink)
    return groups


def _hash_groups(problem: OverlayDesignProblem) -> dict[str, list[str]]:
    return {sink: [sink] for sink in problem.sinks}


register_partitioner(
    Partitioner(
        "metro",
        _metro_groups,
        "group sinks by co-location name prefix (metro/colo clusters)",
    )
)
register_partitioner(
    Partitioner(
        "isp",
        _isp_groups,
        "group sinks by the modal ISP color of their candidate reflectors",
    )
)
register_partitioner(
    Partitioner("hash", _hash_groups, "balanced content-free sharding of sinks")
)


def resolve_partitioner(
    problem: OverlayDesignProblem, partitioner: str | Partitioner = "auto"
) -> Partitioner:
    """Resolve ``"auto"`` (or a name) to a concrete :class:`Partitioner`."""
    return _resolve_with_groups(problem, partitioner)[0]


def _resolve_with_groups(
    problem: OverlayDesignProblem, partitioner: str | Partitioner
) -> tuple[Partitioner, dict[str, list[str]]]:
    """Resolve the partitioner and return its grouping in the same pass.

    The ``"auto"`` probe has to compute the candidate groupings anyway to
    decide, so callers on the hot path (:func:`build_partition`) reuse them
    instead of grouping twice.
    """
    if isinstance(partitioner, Partitioner):
        return partitioner, partitioner.group_sinks(problem)
    if partitioner != "auto":
        chosen = get_partitioner(partitioner)
        return chosen, chosen.group_sinks(problem)
    metro = get_partitioner("metro")
    groups = metro.group_sinks(problem)
    if len(groups) > 1:
        return metro, groups
    isp = get_partitioner("isp")
    groups = isp.group_sinks(problem)
    if len(groups) > 1:
        return isp, groups
    fallback = get_partitioner("hash")
    return fallback, fallback.group_sinks(problem)


def resolve_shard_count(shards: int | str | None, problem: OverlayDesignProblem) -> int:
    """Normalise a ``--shards`` value to a positive integer target.

    ``"auto"`` (or ``None``) targets roughly ``sqrt(n/2)`` shards capped at
    :data:`AUTO_SHARD_CAP` -- enough parallelism to matter while keeping each
    shard large enough that per-shard designs stay meaningful.
    """
    if shards is None or shards == "auto":
        return int(
            min(
                AUTO_SHARD_CAP,
                max(1, round(math.sqrt(problem.num_demands / 2.0))),
            )
        )
    if isinstance(shards, str):
        shards = int(shards)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return min(shards, problem.num_sinks)


class Shard:
    """One shard: its sinks, its slice of the demands, and its subproblem.

    ``problem`` may be materialized lazily (``build_partition(...,
    materialize=False)``): extraction is a pure function of the full problem,
    so *when* it runs does not affect determinism.  The incremental engine
    relies on this -- it touches only the dirty shards' subproblems, so a
    lazy plan costs membership bookkeeping instead of a full extraction per
    shard.  Lazily-built shards hold a closure and are not picklable until
    ``problem`` has been accessed.
    """

    def __init__(
        self,
        shard_id: str,
        sinks: list[str],
        demand_keys: list[tuple[str, str]],
        problem: OverlayDesignProblem | None = None,
        problem_factory: Callable[[], OverlayDesignProblem] | None = None,
    ) -> None:
        if problem is None and problem_factory is None:
            raise ValueError("Shard needs a problem or a problem_factory")
        self.shard_id = shard_id
        self.sinks = sinks
        self.demand_keys = demand_keys
        self._problem = problem
        self._problem_factory = problem_factory

    @property
    def problem(self) -> OverlayDesignProblem:
        if self._problem is None:
            assert self._problem_factory is not None
            self._problem = self._problem_factory()
            self._problem_factory = None
        return self._problem

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Shard({self.shard_id!r}, sinks={len(self.sinks)}, "
            f"demands={len(self.demand_keys)})"
        )


@dataclass
class PartitionPlan:
    """The output of :func:`build_partition`: balanced, self-contained shards."""

    partitioner: str
    requested_shards: int
    shards: list[Shard] = field(default_factory=list)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def sink_to_shard(self) -> dict[str, str]:
        return {
            sink: shard.shard_id for shard in self.shards for sink in shard.sinks
        }


def _coalesce_groups(
    groups: Mapping[str, list[str]], target: int
) -> list[list[str]]:
    """Deal labelled groups into ``target`` balanced bins (deterministic).

    Groups are kept whole (a metro never straddles shards); bins are filled
    greedily largest-group-first into the least-loaded bin, ties broken by
    bin index, so the layout is a pure function of the group sizes and labels.
    """
    ordered = sorted(groups.items(), key=lambda item: (-len(item[1]), item[0]))
    bins: list[list[str]] = [[] for _ in range(min(target, len(ordered)))]
    loads = [0] * len(bins)
    for _label, sinks in ordered:
        index = min(range(len(bins)), key=lambda i: (loads[i], i))
        bins[index].extend(sinks)
        loads[index] += len(sinks)
    return [sorted(b) for b in bins if b]


def extract_shard_problem(
    problem: OverlayDesignProblem,
    sinks: list[str],
    name: str,
    delivery_by_sink: Mapping[str, list[tuple[str, float, float]]] | None = None,
    demand_keys: set[tuple[str, str]] | None = None,
    fanout_overrides: Mapping[str, int] | None = None,
    reflector_cost_overrides: Mapping[str, float] | None = None,
    stream_edge_cost_overrides: Mapping[tuple[str, str], float] | None = None,
) -> OverlayDesignProblem:
    """Build the self-contained subproblem for one shard.

    The subproblem keeps the shard's sinks and demands, every candidate
    reflector of those demands (with its full cost/fanout/color/capacity),
    and exactly the edges connecting them; weights, costs and thresholds are
    copied verbatim, so a demand's feasible weight in the shard equals its
    feasible weight in the full problem.

    The override knobs serve the incremental engine's *residual* subproblems
    (:mod:`repro.incremental`): ``demand_keys`` restricts the subproblem to
    the churn-affected subset of the shard's demands, ``fanout_overrides``
    substitutes the fanout budget left over by the assignments the engine
    keeps, and ``reflector_cost_overrides`` / ``stream_edge_cost_overrides``
    (keyed ``(stream, reflector)``) discount builds and stream deliveries
    the kept assignments already pay for -- sunk costs the warm-started
    re-solve should treat as free.
    """
    sink_set = set(sinks)
    demands = [d for d in problem.demands if d.sink in sink_set]
    if demand_keys is not None:
        demands = [d for d in demands if d.key in demand_keys]
    if delivery_by_sink is None:
        delivery_by_sink = _delivery_index(problem)

    reflectors: list[str] = []
    seen_reflectors: set[str] = set()
    streams: list[str] = []
    seen_streams: set[str] = set()
    for demand in demands:
        if demand.stream not in seen_streams:
            seen_streams.add(demand.stream)
            streams.append(demand.stream)
        for reflector in problem.candidate_reflectors(demand):
            if reflector not in seen_reflectors:
                seen_reflectors.add(reflector)
                reflectors.append(reflector)

    shard = OverlayDesignProblem(name=name)
    for stream in problem.streams:
        if stream in seen_streams:
            shard.add_stream(stream, bandwidth=problem.stream_bandwidth(stream))
    for reflector in problem.reflectors:
        if reflector not in seen_reflectors:
            continue
        info = problem.reflector_info(reflector)
        fanout = info.fanout
        if fanout_overrides is not None:
            fanout = fanout_overrides.get(reflector, fanout)
        cost = info.cost
        if reflector_cost_overrides is not None:
            cost = reflector_cost_overrides.get(reflector, cost)
        shard.add_reflector(
            reflector,
            cost=cost,
            fanout=fanout,
            color=info.color,
            capacity=info.capacity,
        )
    for sink in problem.sinks:
        if sink in sink_set:
            shard.add_sink(sink)
    for edge in problem.stream_edges():
        if edge.stream in seen_streams and edge.reflector in seen_reflectors:
            edge_cost = edge.cost
            if stream_edge_cost_overrides is not None:
                edge_cost = stream_edge_cost_overrides.get(
                    (edge.stream, edge.reflector), edge_cost
                )
            shard.add_stream_edge(
                edge.stream, edge.reflector, edge.loss_probability, edge_cost
            )
    overrides = problem.delivery_stream_cost_overrides()
    for sink in sinks:
        for reflector, loss, base_cost in delivery_by_sink.get(sink, []):
            if reflector not in seen_reflectors:
                continue
            stream_costs = overrides.get((reflector, sink))
            if stream_costs is not None:
                stream_costs = {
                    stream: cost
                    for stream, cost in stream_costs.items()
                    if stream in seen_streams
                }
            shard.add_delivery_edge(
                reflector,
                sink,
                loss_probability=loss,
                cost=base_cost,
                stream_costs=stream_costs or None,
                capacity=problem.arc_capacity(reflector, sink),
            )
    for demand in demands:
        shard.add_demand(demand.sink, demand.stream, demand.success_threshold)
    return shard


def _delivery_index(
    problem: OverlayDesignProblem,
) -> dict[str, list[tuple[str, float, float]]]:
    """Index delivery links by sink: ``sink -> [(reflector, loss, base_cost)]``."""
    index: dict[str, list[tuple[str, float, float]]] = {}
    for reflector, sink, loss, base_cost in problem.delivery_link_data():
        index.setdefault(sink, []).append((reflector, loss, base_cost))
    return index


def build_partition(
    problem: OverlayDesignProblem,
    partitioner: str | Partitioner = "auto",
    shards: int | str | None = "auto",
    materialize: bool = True,
) -> PartitionPlan:
    """Partition ``problem`` into balanced, self-contained shards.

    The plan is a pure function of the problem and the two knobs -- no
    randomness, no environment dependence -- which is what makes the sharded
    pipeline deterministic regardless of ``--jobs``.  Raises ``ValueError``
    if the partitioner fails to cover every sink exactly once.

    With ``materialize=False`` the shard subproblems are extracted on first
    access instead of eagerly; the plan (shard ids, sink membership, demand
    keys) is identical either way.  Callers that only touch a few shards --
    the incremental engine re-solving dirty shards -- skip the extraction
    cost of the others entirely.  Lazy shards hold closures, so pass
    ``materialize=True`` (the default) when shards cross process boundaries.
    """
    chosen, raw_groups = _resolve_with_groups(problem, partitioner)
    target = resolve_shard_count(shards, problem)
    groups = {label: sinks for label, sinks in raw_groups.items() if sinks}
    covered = [sink for sinks in groups.values() for sink in sinks]
    if sorted(covered) != sorted(problem.sinks):
        raise ValueError(
            f"partitioner {chosen.name!r} does not cover every sink exactly once "
            f"({len(covered)} placements for {problem.num_sinks} sinks)"
        )
    bins = _coalesce_groups(groups, target)
    delivery_by_sink = _delivery_index(problem)
    # Per-shard demand keys in problem.demands order, built in one pass.
    bin_of_sink = {sink: i for i, sinks in enumerate(bins) for sink in sinks}
    demand_keys_by_bin: list[list[tuple[str, str]]] = [[] for _ in bins]
    for demand in problem.demands:
        demand_keys_by_bin[bin_of_sink[demand.sink]].append(demand.key)
    width = len(str(max(len(bins) - 1, 1)))
    plan = PartitionPlan(partitioner=chosen.name, requested_shards=target)
    for index, sinks in enumerate(bins):
        shard_id = f"shard{index:0{width}d}"

        def factory(
            sinks: list[str] = sinks, shard_id: str = shard_id
        ) -> OverlayDesignProblem:
            return extract_shard_problem(
                problem,
                sinks,
                name=f"{problem.name}/{shard_id}",
                delivery_by_sink=delivery_by_sink,
            )

        shard = Shard(
            shard_id=shard_id,
            sinks=sinks,
            demand_keys=demand_keys_by_bin[index],
            problem_factory=factory,
        )
        if materialize:
            shard.problem  # noqa: B018 - resolve the factory eagerly
        plan.shards.append(shard)
    return plan


def rebind_partition(
    plan: PartitionPlan,
    problem: OverlayDesignProblem,
    materialize: bool = False,
) -> PartitionPlan:
    """Re-attach an existing plan's shard layout to a changed problem.

    Sharding is a two-step process -- group sinks, then extract subproblems
    -- and only the second step looks at demands, links, or costs.  When a
    delta leaves the *sink set* unchanged, the layout (shard ids, sink
    membership) stays valid, so a long-lived session can skip the grouping
    pass and re-extract against the new problem: per-shard ``demand_keys``
    are recomputed in ``problem.demands`` order and subproblem factories are
    rebound, exactly as :func:`build_partition` would have produced for the
    same layout.  Raises ``ValueError`` when the sink sets differ (callers
    should rebuild from scratch instead).

    The input plan is never mutated; lazy shards default (``materialize=
    False``) because rebind callers -- the incremental engine -- touch only
    dirty shards.
    """
    plan_sinks = sorted(sink for shard in plan.shards for sink in shard.sinks)
    if plan_sinks != sorted(problem.sinks):
        raise ValueError(
            "partition plan does not cover the problem's sink set "
            f"({len(plan_sinks)} plan sinks vs {problem.num_sinks} problem sinks); "
            "rebuild the partition instead of rebinding"
        )
    delivery_by_sink = _delivery_index(problem)
    bin_of_sink = {
        sink: index for index, shard in enumerate(plan.shards) for sink in shard.sinks
    }
    demand_keys_by_bin: list[list[tuple[str, str]]] = [[] for _ in plan.shards]
    for demand in problem.demands:
        demand_keys_by_bin[bin_of_sink[demand.sink]].append(demand.key)
    rebound = PartitionPlan(
        partitioner=plan.partitioner, requested_shards=plan.requested_shards
    )
    for index, shard in enumerate(plan.shards):
        sinks = list(shard.sinks)
        shard_id = shard.shard_id

        def factory(
            sinks: list[str] = sinks, shard_id: str = shard_id
        ) -> OverlayDesignProblem:
            return extract_shard_problem(
                problem,
                sinks,
                name=f"{problem.name}/{shard_id}",
                delivery_by_sink=delivery_by_sink,
            )

        new_shard = Shard(
            shard_id=shard_id,
            sinks=sinks,
            demand_keys=demand_keys_by_bin[index],
            problem_factory=factory,
        )
        if materialize:
            new_shard.problem  # noqa: B018 - resolve the factory eagerly
        rebound.shards.append(new_shard)
    return rebound


__all__ = [
    "AUTO_SHARD_CAP",
    "PartitionPlan",
    "Partitioner",
    "Shard",
    "build_partition",
    "extract_shard_problem",
    "get_partitioner",
    "partitioner_names",
    "rebind_partition",
    "register_partitioner",
    "resolve_partitioner",
    "resolve_shard_count",
]
